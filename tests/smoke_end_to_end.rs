//! End-to-end smoke test: optimize and execute a query with every single
//! exploration rule disabled in turn; the result multiset must not change.

use ruletest_common::multisets_equal;
use ruletest_executor::execute;
use ruletest_expr::{AggCall, AggFunc, Expr};
use ruletest_logical::{IdGen, JoinKind, LogicalTree};
use ruletest_optimizer::{Optimizer, OptimizerConfig};
use ruletest_storage::{tpch_database, TpchConfig};
use std::sync::Arc;

#[test]
fn every_rule_mask_preserves_results_on_a_representative_query() {
    let db = Arc::new(tpch_database(&TpchConfig::default()).unwrap());
    let opt = Optimizer::new(db.clone());
    let cat = &db.catalog;
    let mut ids = IdGen::new();

    // SELECT n.name, COUNT(*), MAX(s.acctbal) FROM supplier s
    //   JOIN nation n ON s.nationkey = n.nationkey
    //   LEFT OUTER JOIN region r ON n.regionkey = r.regionkey  -- via tree
    // WHERE s.acctbal > 0 GROUP BY n.name
    let s = LogicalTree::get(cat.table_by_name("supplier").unwrap(), &mut ids);
    let n = LogicalTree::get(cat.table_by_name("nation").unwrap(), &mut ids);
    let r = LogicalTree::get(cat.table_by_name("region").unwrap(), &mut ids);
    let (s_nation, s_acct) = (s.output_col(2), s.output_col(3));
    let (n_key, n_name, n_region) = (n.output_col(0), n.output_col(1), n.output_col(2));
    let r_key = r.output_col(0);

    let join1 = LogicalTree::join(
        JoinKind::Inner,
        s,
        n,
        Expr::eq(Expr::col(s_nation), Expr::col(n_key)),
    );
    let join2 = LogicalTree::join(
        JoinKind::LeftOuter,
        join1,
        r,
        Expr::eq(Expr::col(n_region), Expr::col(r_key)),
    );
    let filtered = LogicalTree::select(
        join2,
        Expr::bin(ruletest_expr::BinOp::Gt, Expr::col(s_acct), Expr::lit(0i64)),
    );
    let cnt = ids.fresh();
    let mx = ids.fresh();
    let query = LogicalTree::gbagg(
        filtered,
        vec![n_name],
        vec![
            AggCall::new(AggFunc::CountStar, None, cnt),
            AggCall::new(AggFunc::Max, Some(s_acct), mx),
        ],
    );

    let base = opt.optimize(&query).unwrap();
    let base_rows = execute(&db, &base.plan).unwrap();
    assert!(!base_rows.is_empty());

    for rid in opt.exploration_rule_ids() {
        let masked = opt
            .optimize_with(&query, &OptimizerConfig::disabling(&[rid]))
            .unwrap();
        assert!(
            masked.cost >= base.cost - 1e-9,
            "cost monotonicity violated by {}",
            opt.rule(rid).name
        );
        let rows = execute(&db, &masked.plan).unwrap();
        assert!(
            multisets_equal(&base_rows, &rows),
            "disabling {} changed the result",
            opt.rule(rid).name
        );
    }
}
