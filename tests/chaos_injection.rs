//! The chaos engine against the supervision layer: every injected fault
//! must be caught, attributed (supervise.* counters, quarantine entries),
//! and survivable — a campaign under a panic+stall+budget storm completes
//! cleanly, and a fixed plan replays to identical quarantine state.
//!
//! Chaos state is process-global, so every test here serializes on one
//! lock and clears the plan before returning. Thread count is pinned to 1
//! inside chaos sections: injection fires on global site hit counts, and
//! only a sequential run gives those counts a deterministic order.

use ruletest_common::chaos::{self, ChaosPlan};
use ruletest_core::compress::topk;
use ruletest_core::{
    crash_bundles, execute_solution_supervised, run_checkpointed_campaign_supervised,
    CampaignParams, Framework, FrameworkConfig, GenConfig, Instance, Quarantine,
};
use ruletest_core::{CorrectnessReport, TriageConfig};
use ruletest_executor::ExecConfig;
use ruletest_telemetry::{Counter, RunReport, Telemetry};
use std::path::PathBuf;
use std::sync::Mutex;

static CHAOS_TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    CHAOS_TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ruletest_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fw() -> Framework {
    let mut cfg = FrameworkConfig::default();
    cfg.parallelism.threads = 1;
    Framework::new(&cfg)
        .unwrap()
        .with_telemetry(Telemetry::metrics_only())
}

fn params() -> CampaignParams {
    CampaignParams {
        rules: 6,
        k: 2,
        seed: 42,
        pad_ops: 2,
        max_trials: GenConfig::default().max_trials,
    }
}

/// Supervised campaign + execution under whatever chaos plan is
/// installed; returns the report slice, quarantine, and correctness
/// outcome.
fn supervised_run(fw: &Framework) -> (RunReport, Quarantine, CorrectnessReport) {
    let mut quarantine = Quarantine::new();
    let run =
        run_checkpointed_campaign_supervised(fw, &params(), None, false, None, &mut quarantine)
            .expect("supervised campaign must absorb chaos, not abort")
            .expect("no stop hook");
    let inst = Instance::from_graph(&run.graph);
    let sol = topk(&inst).unwrap();
    let report = execute_solution_supervised(
        fw,
        &run.suite,
        &inst,
        &sol,
        &ExecConfig::default(),
        &mut quarantine,
    )
    .expect("supervised execution must absorb chaos, not abort");
    (fw.run_report(), quarantine, report)
}

/// The headline robustness claim: a campaign under a panic + stall +
/// budget fault storm completes, quarantines all three kinds, attributes
/// each in the supervision counters, and still produces crash bundles
/// for the quarantined inputs that carry SQL.
#[test]
fn campaign_survives_panic_stall_and_budget_storm() {
    let _guard = locked();
    // Generation retries optimizer errors as discarded trials, so a
    // budget fault only quarantines when it lands in the graph stage.
    // Calibration pass: same panic rule, a never-firing budget sentinel,
    // stop after suite generation — `site_hits` then tells us exactly how
    // many memo inserts generation consumes, and the real run (identical
    // seed, one worker) aims the budget fault one hit past them.
    chaos::install(
        ChaosPlan::parse("memo.insert:panic@35#1,memo.insert:budget@1000000000000").unwrap(),
    );
    let mut q = Quarantine::new();
    run_checkpointed_campaign_supervised(&fw(), &params(), None, false, Some("suite"), &mut q)
        .unwrap();
    let gen_hits = chaos::site_hits("memo.insert");
    assert!(
        gen_hits > 35,
        "calibration run looks wrong: {gen_hits} hits"
    );
    chaos::clear();

    chaos::install(
        ChaosPlan::parse(&format!(
            "memo.insert:panic@35#1,memo.insert:budget@{}#1,exec.batch:stall@3#1",
            gen_hits + 1
        ))
        .unwrap(),
    );
    let fw = fw();
    let (report, quarantine, correctness) = supervised_run(&fw);
    let stats = chaos::stats();
    chaos::clear();

    assert_eq!(
        (stats.panics, stats.budgets, stats.stalls),
        (1, 1, 1),
        "every bounded rule must have spent its injection budget: {stats:?}"
    );
    for kind in ["panic", "budget", "timeout"] {
        assert!(
            quarantine.entries().iter().any(|e| e.kind == kind),
            "no {kind} entry in quarantine: {:?}",
            quarantine.entries()
        );
    }
    // Attribution: each absorbed fault bumped its per-kind counter, and
    // every new entry bumped the quarantine counter.
    assert_eq!(report.counter(Counter::SupervisePanics), 1);
    assert_eq!(report.counter(Counter::SuperviseBudget), 1);
    assert_eq!(report.counter(Counter::SuperviseTimeouts), 1);
    assert_eq!(
        report.counter(Counter::SuperviseQuarantined),
        quarantine.len() as u64
    );
    // Execution-stage faults carry a SQL witness, so the triage minimizer
    // can emit crash repro bundles for them.
    let bundles = crash_bundles(&fw, params().seed, &quarantine, &TriageConfig::default());
    assert!(
        !bundles.is_empty(),
        "quarantined executions must yield crash bundles"
    );
    for b in &bundles {
        assert!(b.signature.starts_with("crash:"), "{}", b.signature);
        assert!(!b.sql.is_empty());
    }
    // The campaign itself stayed healthy: quarantined inputs are skipped,
    // not reported as correctness bugs.
    assert!(correctness.bugs.is_empty());
    assert!(correctness.skipped_quarantined > 0);
}

/// Fixed plan + fixed seed + one worker ⇒ byte-identical replay: the
/// same faults land on the same inputs and the quarantine (and the
/// deterministic report slice) comes out identical.
#[test]
fn fixed_plan_replays_to_identical_quarantine() {
    let _guard = locked();
    let run_once = || {
        chaos::install(ChaosPlan::parse("memo.insert:panic@40#1,exec.batch:stall@4#1").unwrap());
        let fw = fw();
        let (report, quarantine, _) = supervised_run(&fw);
        let stats = chaos::stats();
        chaos::clear();
        (
            report.deterministic_json(),
            quarantine.to_json().to_string_compact(),
            stats,
        )
    };
    let a = run_once();
    let b = run_once();
    assert_eq!(a.1, b.1, "quarantine replay diverged");
    assert_eq!(a.0, b.0, "deterministic slice replay diverged");
    assert_eq!(a.2, b.2, "injection stats replay diverged");
}

/// Cache-I/O chaos degrades gracefully: a stall on `cache.load` cold-
/// starts the shard, a budget fault on `cache.save` skips one snapshot
/// round — the campaign completes and the deterministic slice matches a
/// chaos-free run.
#[test]
fn cache_io_chaos_degrades_to_cold_start() {
    let _guard = locked();
    chaos::clear();
    let dir = temp_dir("cache-io");

    // Seed the cache with a clean checkpointed campaign.
    let clean_fw = fw();
    let mut q = Quarantine::new();
    run_checkpointed_campaign_supervised(&clean_fw, &params(), Some(&dir), false, None, &mut q)
        .unwrap()
        .unwrap();
    ruletest_core::final_persist(&clean_fw).unwrap();
    let clean_slice = clean_fw.run_report().deterministic_json();

    // A warm start under cache-I/O chaos: every load degrades cold, every
    // save is skipped, nothing crashes, nothing is quarantined, and the
    // recomputed campaign reproduces the clean slice.
    chaos::install(ChaosPlan::parse("cache.load:stall@1,cache.save:budget@1").unwrap());
    let chaotic_fw = fw();
    let mut q = Quarantine::new();
    let run = run_checkpointed_campaign_supervised(
        &chaotic_fw,
        &params(),
        Some(&dir),
        false,
        None,
        &mut q,
    )
    .unwrap()
    .unwrap();
    ruletest_core::final_persist(&chaotic_fw).unwrap();
    let stats = chaos::stats();
    chaos::clear();

    assert!(stats.total() > 0, "cache chaos never fired");
    assert!(q.is_empty(), "cache-I/O faults degrade, never quarantine");
    assert!(!run.suite.queries.is_empty());
    assert_eq!(
        clean_fw.run_report().counter(Counter::CacheWarmHits),
        0,
        "the seeding run was cold"
    );
    assert_eq!(
        chaotic_fw.run_report().counter(Counter::CacheWarmHits),
        0,
        "chaos-degraded loads must not serve warm entries"
    );
    assert_eq!(
        clean_slice,
        chaotic_fw.run_report().deterministic_json(),
        "cold-started recomputation must reproduce the clean slice"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
