//! Persistent invocation cache + campaign checkpoint/resume invariants:
//! (1) a warm start answers every unchanged invocation from disk and
//! reproduces the cold run's deterministic report slice byte for byte,
//! (2) a campaign killed at a stage boundary resumes to the identical
//! deterministic slice an uninterrupted run produces, and (3) a snapshot
//! written under a different campaign fingerprint is rejected, never
//! served.

use ruletest_core::compress::topk;
use ruletest_core::correctness::execute_solution;
use ruletest_core::{
    final_persist, run_checkpointed_campaign, CampaignParams, Framework, FrameworkConfig,
    GenConfig, Instance,
};
use ruletest_executor::ExecConfig;
use ruletest_telemetry::{Counter, RunReport, Telemetry};
use std::path::{Path, PathBuf};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ruletest_resume_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fw() -> Framework {
    Framework::new(&FrameworkConfig::default())
        .unwrap()
        .with_telemetry(Telemetry::metrics_only())
}

fn params() -> CampaignParams {
    CampaignParams {
        rules: 3,
        k: 2,
        seed: 11,
        pad_ops: 1,
        max_trials: GenConfig::default().max_trials,
    }
}

/// Runs the full campaign (generation → graph → compression → execution →
/// final cache save) and returns the resumed-stage list and final report.
fn full_campaign(
    fw: &Framework,
    cache_dir: Option<&Path>,
    resume: bool,
) -> (Vec<&'static str>, RunReport) {
    let run = run_checkpointed_campaign(fw, &params(), cache_dir, resume, None)
        .unwrap()
        .expect("no stop hook: campaign runs to completion");
    let inst = Instance::from_graph(&run.graph);
    let sol = topk(&inst).unwrap();
    execute_solution(fw, &run.suite, &inst, &sol, &ExecConfig::default()).unwrap();
    final_persist(fw).unwrap();
    let report = fw.run_report();
    report.check().unwrap();
    (run.resumed, report)
}

/// A warm start recomputes nothing and reproduces the cold deterministic
/// slice exactly.
#[test]
fn warm_start_is_deterministic_with_zero_recomputation() {
    let dir = temp_dir("warm");

    let cold_fw = fw();
    let (resumed, cold) = full_campaign(&cold_fw, Some(&dir), false);
    assert!(resumed.is_empty(), "nothing to resume on a cold start");
    assert!(cold_fw.optimizer.invocation_count() > 0);
    assert!(cold.counter(Counter::CachePersisted) > 0);
    assert_eq!(cold.counter(Counter::CacheWarmHits), 0);

    let warm_fw = fw();
    let (_, warm) = full_campaign(&warm_fw, Some(&dir), false);
    assert_eq!(
        warm_fw.optimizer.invocation_count(),
        0,
        "warm start must not re-optimize any unchanged entry"
    );
    assert!(warm.counter(Counter::CacheWarmHits) > 0);
    assert_eq!(
        cold.deterministic_json(),
        warm.deterministic_json(),
        "cold and warm deterministic slices diverged"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// Killing the campaign at a stage boundary and resuming yields the same
/// deterministic slice as never having been killed.
#[test]
fn resume_after_kill_matches_uninterrupted_run() {
    for (tag, stop_after, expect_resumed) in [
        ("kill-suite", "suite", vec!["suite"]),
        ("kill-graph", "graph", vec!["suite", "graph"]),
    ] {
        let dir = temp_dir(tag);

        // The "killed" process: runs up to the boundary, then vanishes —
        // the Framework is dropped without any further persistence, like
        // a SIGKILL between stages.
        let killed = fw();
        let out =
            run_checkpointed_campaign(&killed, &params(), Some(&dir), false, Some(stop_after))
                .unwrap();
        assert!(out.is_none(), "stop hook must report the simulated kill");
        drop(killed);

        let resumed_fw = fw();
        let (resumed, report) = full_campaign(&resumed_fw, Some(&dir), true);
        assert_eq!(resumed, expect_resumed, "{tag}");

        let baseline_dir = temp_dir(&format!("{tag}-baseline"));
        let (_, uninterrupted) = full_campaign(&fw(), Some(&baseline_dir), false);
        assert_eq!(
            report.deterministic_json(),
            uninterrupted.deterministic_json(),
            "{tag}: resumed slice diverged from the uninterrupted run"
        );

        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&baseline_dir);
    }
}

/// A checkpoint written by an unobserved (telemetry-disabled) campaign
/// must not serve as the report base of a metrics-enabled resume: the
/// empty base would make the merged report claim zero invocations for
/// stages that ran, tripping `RunReport::check`. A telemetry-mode switch
/// recomputes the stages instead.
#[test]
fn telemetry_mode_switch_invalidates_checkpoints() {
    let dir = temp_dir("mode-switch");

    let unobserved = Framework::new(&FrameworkConfig::default()).unwrap();
    let out = run_checkpointed_campaign(&unobserved, &params(), Some(&dir), false, Some("graph"))
        .unwrap();
    assert!(out.is_none());
    drop(unobserved);

    // full_campaign's fw() enables metrics, and the helper runs
    // `report.check()` — which would fail on a zero-invocation report.
    let (resumed, report) = full_campaign(&fw(), Some(&dir), true);
    assert!(
        resumed.is_empty(),
        "unobserved checkpoints must not resume an observed campaign"
    );
    assert!(report.counter(Counter::OptInvocations) > 0);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Corrupted or truncated checkpoint files degrade to recomputation, not
/// a crash: garbage in a stage checkpoint, a truncated cache shard, or a
/// mangled quarantine file each warn and cold-start, and the recomputed
/// campaign reproduces the clean deterministic slice.
#[test]
fn corrupted_checkpoints_recompute_instead_of_crashing() {
    let dir = temp_dir("corrupt");
    let (_, clean) = full_campaign(&fw(), Some(&dir), false);

    // Corrupt every persisted artifact class at once: stage checkpoints
    // (truncated JSON), one cache shard (binary garbage), and the
    // quarantine file (not JSON at all).
    let checkpoint = dir.join("checkpoint");
    std::fs::write(checkpoint.join("stage-suite.json"), "{\"format\":1,\"trunc").unwrap();
    std::fs::write(checkpoint.join("stage-graph.json"), "\0\0garbage\0").unwrap();
    std::fs::write(checkpoint.join("quarantine.json"), "not json either").unwrap();
    let shard = dir.join("cache").join("shard-0.jsonl");
    if shard.exists() {
        std::fs::write(&shard, "{\"truncated").unwrap();
    }

    let resumed_fw = fw();
    let mut quarantine = ruletest_core::Quarantine::new();
    let run = ruletest_core::run_checkpointed_campaign_supervised(
        &resumed_fw,
        &params(),
        Some(&dir),
        true,
        None,
        &mut quarantine,
    )
    .unwrap()
    .expect("no stop hook");
    assert!(
        run.resumed.is_empty(),
        "corrupted checkpoints must not resume: {:?}",
        run.resumed
    );
    assert!(
        quarantine.is_empty(),
        "a corrupted quarantine file loads as empty, not as an error"
    );
    let inst = Instance::from_graph(&run.graph);
    let sol = topk(&inst).unwrap();
    execute_solution(&resumed_fw, &run.suite, &inst, &sol, &ExecConfig::default()).unwrap();
    final_persist(&resumed_fw).unwrap();
    let report = resumed_fw.run_report();
    report.check().unwrap();
    assert_eq!(
        clean.deterministic_json(),
        report.deterministic_json(),
        "recomputation after corruption diverged from the clean run"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

/// A snapshot produced under one campaign fingerprint is rejected by a
/// campaign with another (here: a different database seed) — the second
/// campaign recomputes everything rather than serve poisoned entries.
#[test]
fn fingerprint_mismatch_rejects_snapshot_and_checkpoints() {
    let dir = temp_dir("mismatch");
    full_campaign(&fw(), Some(&dir), false);

    let mut other_cfg = FrameworkConfig::default();
    other_cfg.db.seed = other_cfg.db.seed.wrapping_add(1);
    let other_fw = Framework::new(&other_cfg)
        .unwrap()
        .with_telemetry(Telemetry::metrics_only());
    let (resumed, report) = full_campaign(&other_fw, Some(&dir), true);
    assert!(
        resumed.is_empty(),
        "checkpoints from a different fingerprint must not resume"
    );
    assert_eq!(
        report.counter(Counter::CacheFingerprintRejected),
        1,
        "the stale snapshot must be counted as rejected"
    );
    assert_eq!(report.counter(Counter::CacheWarmHits), 0);
    assert!(
        other_fw.optimizer.invocation_count() > 0,
        "a rejected snapshot means everything recomputes"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
