//! JSONL trace-export schema tests: every event a real campaign emits
//! parses back with its per-type required keys, and the histogram/counter
//! cross-invariants hold (bucket sums equal counts, histogram counts equal
//! the counters that gate their observations).

use ruletest_common::Parallelism;
use ruletest_core::compress::topk;
use ruletest_core::correctness::execute_solution;
use ruletest_core::{
    build_graph_pruned, generate_suite, singleton_targets, Framework, FrameworkConfig, GenConfig,
    Instance, Strategy,
};
use ruletest_executor::ExecConfig;
use ruletest_storage::tpch_database;
use ruletest_telemetry::{Counter, Hist, Json, Telemetry};
use std::collections::HashMap;
use std::sync::Arc;

/// Runs a small single-threaded campaign with a tracer big enough to
/// retain every event, and returns the framework.
fn traced_campaign() -> Framework {
    let db = Arc::new(tpch_database(&FrameworkConfig::default().db).unwrap());
    let fw = Framework::over_database(db)
        .with_parallelism(Parallelism {
            threads: 1,
            seed: 7,
        })
        .with_telemetry(Telemetry::with_tracing(65_536));
    let gen_cfg = GenConfig {
        seed: 0x7ACE,
        pad_ops: 1,
        ..Default::default()
    };
    let suite = generate_suite(
        &fw,
        singleton_targets(&fw, 5),
        2,
        Strategy::Pattern,
        &gen_cfg,
    )
    .unwrap();
    let graph = build_graph_pruned(&fw, &suite).unwrap();
    let inst = Instance::from_graph(&graph);
    let sol = topk(&inst).unwrap();
    execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default()).unwrap();
    fw
}

/// Keys every event of a given type must carry, beyond `seq` and `type`.
fn required_keys(kind: &str) -> &'static [&'static str] {
    match kind {
        "invocation" => &[
            "fingerprint",
            "masked_rules",
            "groups",
            "exprs",
            "truncated",
            "elapsed_us",
        ],
        "cache_lookup" => &["fingerprint", "hit"],
        "rule_fire" => &["rule", "phase", "produced"],
        "gen_outcome" => &["rule", "trials", "ops", "found"],
        "graph_probe" => &["target", "scanned", "pruned"],
        "validation" => &["target", "query", "outcome"],
        other => panic!("unknown event type in trace: {other}"),
    }
}

#[test]
fn every_exported_event_parses_with_its_schema() {
    let fw = traced_campaign();
    let stats = fw.telemetry.trace_stats();
    assert!(stats.recorded > 0, "campaign emitted no events");
    assert_eq!(stats.dropped, 0, "ring capacity too small for the test");

    let mut buf = Vec::new();
    fw.telemetry.export_trace(&mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64, stats.recorded, "events lost on export");

    let num_rules = fw.optimizer.num_rules() as u64;
    let mut by_kind: HashMap<String, u64> = HashMap::new();
    let mut last_seq = None;
    for line in &lines {
        let doc = Json::parse(line).unwrap_or_else(|e| panic!("unparseable line {line:?}: {e}"));
        let seq = doc
            .get("seq")
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("missing seq in {line}"));
        // Single-threaded run: seq must be a strictly increasing total
        // order with no gaps.
        if let Some(prev) = last_seq {
            assert_eq!(seq, prev + 1, "sequence gap after {prev}");
        }
        last_seq = Some(seq);
        let kind = doc
            .get("type")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("missing type in {line}"))
            .to_string();
        for key in required_keys(&kind) {
            assert!(doc.get(key).is_some(), "{kind} event missing {key}: {line}");
        }
        if kind == "rule_fire" || kind == "gen_outcome" {
            let rule = doc.get("rule").and_then(Json::as_u64).unwrap();
            assert!(rule < num_rules, "rule index {rule} out of range: {line}");
        }
        *by_kind.entry(kind).or_insert(0) += 1;
    }

    // Event counts must agree with the counters that gate them
    // (single-threaded, so no racing duplicate computes).
    let tel = &fw.telemetry;
    assert_eq!(
        by_kind.get("invocation").copied().unwrap_or(0),
        tel.counter(Counter::OptInvocations),
        "one invocation event per computed optimization"
    );
    let cache = fw.optimizer.cache_stats();
    assert_eq!(
        by_kind.get("cache_lookup").copied().unwrap_or(0),
        cache.hits + cache.misses,
        "one cache_lookup event per lookup"
    );
    assert_eq!(
        by_kind.get("gen_outcome").copied().unwrap_or(0),
        tel.counter(Counter::GenHits) + tel.counter(Counter::GenFailures),
        "one gen_outcome event per generation problem"
    );
    assert_eq!(
        by_kind.get("validation").copied().unwrap_or(0),
        tel.counter(Counter::Validations),
        "one validation event per (target, query) validation"
    );
    assert!(by_kind.get("rule_fire").copied().unwrap_or(0) > 0);
    assert!(by_kind.get("graph_probe").copied().unwrap_or(0) > 0);
}

#[test]
fn histogram_invariants_hold_against_counters() {
    let fw = traced_campaign();
    let snap = fw.telemetry.metrics_snapshot();

    // Bucket sums always equal the observation count.
    for h in Hist::ALL {
        let hist = snap.histogram(h);
        assert_eq!(
            hist.buckets.iter().sum::<u64>(),
            hist.count,
            "bucket sum != count for {}",
            h.name()
        );
    }

    // Each histogram's count equals the counter gating its observations.
    let invocations = snap.counter(Counter::OptInvocations);
    assert!(invocations > 0);
    assert_eq!(
        snap.histogram(Hist::GenTrialsToHit).count,
        snap.counter(Counter::GenHits)
    );
    assert_eq!(snap.histogram(Hist::MemoGroups).count, invocations);
    assert_eq!(snap.histogram(Hist::MemoExprs).count, invocations);
    // Single-threaded: every compute is the insertion winner, so the
    // per-compute timing histogram matches the unique-invocation counter.
    assert_eq!(snap.histogram(Hist::InvocationMicros).count, invocations);

    // Trials-to-hit observations can never exceed total trials.
    assert!(snap.histogram(Hist::GenTrialsToHit).sum <= snap.counter(Counter::GenTrials));

    // The JSON round-trip of the full report preserves the histograms.
    let report = fw.run_report();
    let back = ruletest_telemetry::RunReport::from_json(&report.to_json().to_string_pretty())
        .expect("report JSON round-trip");
    assert_eq!(back, report);
}
