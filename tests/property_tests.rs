//! Property-based tests (proptest) over the whole stack.
//!
//! Trees are generated through the framework's own seeded generator (one
//! `u64` seed is the proptest input), which keeps shrinking meaningful
//! while exercising realistic query shapes.

use proptest::prelude::*;
use ruletest_common::{diff_multisets, multisets_equal, RuleId, Rng, Value};
use ruletest_core::generate::random::random_tree;
use ruletest_core::{Framework, FrameworkConfig};
use ruletest_executor::{execute_with, ExecConfig};
use ruletest_logical::IdGen;
use ruletest_optimizer::{OptimizerConfig, RuleMask};
use ruletest_sql::{parse_sql, to_sql};
use std::sync::OnceLock;

fn fw() -> &'static Framework {
    static FW: OnceLock<Framework> = OnceLock::new();
    FW.get_or_init(|| Framework::new(&FrameworkConfig::default()).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48,
        ..ProptestConfig::default()
    })]

    /// Any generated tree renders to SQL that parses back to the identical
    /// tree.
    #[test]
    fn sql_round_trip_is_exact(seed in any::<u64>(), budget in 1usize..9) {
        let fw = fw();
        let mut rng = Rng::new(seed);
        let mut ids = IdGen::new();
        let built = random_tree(&fw.db, &mut rng, &mut ids, budget);
        let sql = to_sql(&fw.db.catalog, &built.tree).unwrap();
        let parsed = parse_sql(&fw.db.catalog, &sql).unwrap();
        prop_assert_eq!(parsed, built.tree, "SQL: {}", sql);
    }

    /// Optimizing under an arbitrary exploration-rule mask never changes
    /// executed results (the paper's core correctness premise, as a
    /// property over random queries and random masks).
    #[test]
    fn random_masks_preserve_results(seed in any::<u64>(), mask_bits in any::<u64>()) {
        let fw = fw();
        let mut rng = Rng::new(seed);
        let mut ids = IdGen::new();
        let built = random_tree(&fw.db, &mut rng, &mut ids, 5);
        let exploration = fw.optimizer.exploration_rule_ids();
        let disabled: Vec<RuleId> = exploration
            .iter()
            .enumerate()
            .filter(|(i, _)| mask_bits >> (i % 64) & 1 == 1)
            .map(|(_, r)| *r)
            .collect();
        let base = fw.optimizer.optimize(&built.tree).unwrap();
        let masked = fw
            .optimizer
            .optimize_with(&built.tree, &OptimizerConfig {
                mask: RuleMask::disabling(&disabled),
                ..Default::default()
            })
            .unwrap();
        if !base.truncated && !masked.truncated {
            prop_assert!(masked.cost >= base.cost - 1e-9, "monotonicity");
        }
        let exec = ExecConfig::default();
        if let (Ok(a), Ok(b)) = (
            execute_with(&fw.db, &base.plan, &exec),
            execute_with(&fw.db, &masked.plan, &exec),
        ) {
            prop_assert!(
                multisets_equal(&a, &b),
                "mask {:?} changed results of\n{}",
                disabled.len(),
                built.tree.explain()
            );
        }
    }

    /// Optimization is deterministic: same tree, same plan, same cost.
    #[test]
    fn optimization_is_deterministic(seed in any::<u64>()) {
        let fw = fw();
        let mut rng = Rng::new(seed);
        let mut ids = IdGen::new();
        let built = random_tree(&fw.db, &mut rng, &mut ids, 5);
        let a = fw.optimizer.optimize(&built.tree).unwrap();
        let b = fw.optimizer.optimize(&built.tree).unwrap();
        prop_assert!(a.plan.same_shape(&b.plan));
        prop_assert_eq!(a.cost, b.cost);
        prop_assert_eq!(a.rule_set, b.rule_set);
    }
}

proptest! {
    /// Multiset comparison laws over arbitrary row sets.
    #[test]
    fn multiset_laws(rows in prop::collection::vec(
        prop::collection::vec(-3i64..3, 2),
        0..12,
    ), perm_seed in any::<u64>()) {
        let rows: Vec<Vec<Value>> = rows
            .into_iter()
            .map(|r| r.into_iter().map(Value::Int).collect())
            .collect();
        // Reflexive.
        prop_assert!(multisets_equal(&rows, &rows));
        prop_assert!(diff_multisets(&rows, &rows).is_empty());
        // Permutation-invariant.
        let mut shuffled = rows.clone();
        Rng::new(perm_seed).shuffle(&mut shuffled);
        prop_assert!(multisets_equal(&rows, &shuffled));
        // Dropping a row breaks equality.
        if !rows.is_empty() {
            let fewer = &rows[1..];
            prop_assert!(!multisets_equal(&rows, fewer));
            let d = diff_multisets(&rows, fewer);
            prop_assert!(!d.is_empty());
            prop_assert!(d.only_right.is_empty());
        }
    }

    /// `Value::total_cmp` is a total order (antisymmetric + transitive on
    /// sampled triples).
    #[test]
    fn value_total_order(a in value_strategy(), b in value_strategy(), c in value_strategy()) {
        use std::cmp::Ordering;
        prop_assert_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            prop_assert_ne!(a.total_cmp(&c), Ordering::Greater);
        }
    }

    /// Rule masks behave like sets.
    #[test]
    fn rule_mask_set_semantics(ids in prop::collection::btree_set(0u16..200, 0..20)) {
        let rules: Vec<RuleId> = ids.iter().map(|&i| RuleId(i)).collect();
        let mask = RuleMask::disabling(&rules);
        prop_assert_eq!(mask.disabled_count(), rules.len());
        for r in &rules {
            prop_assert!(mask.is_disabled(*r));
        }
        prop_assert_eq!(mask.disabled_rules(), rules.clone());
        let mut cleared = mask.clone();
        for r in &rules {
            cleared.enable(*r);
        }
        prop_assert!(cleared.is_empty());
    }
}

fn value_strategy() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        (-50i64..50).prop_map(Value::Int),
        "[a-c]{0,3}".prop_map(Value::Str),
    ]
}
