//! Property-based tests over the whole stack, on the in-repo `check`
//! harness (no external dependencies).
//!
//! Trees are generated through the framework's own seeded generator (one
//! `u64` seed is the property input), which keeps shrinking meaningful
//! while exercising realistic query shapes.

use ruletest_common::check::{self, gen, CheckConfig};
use ruletest_common::{diff_multisets, ensure, ensure_eq, ensure_ne, forall};
use ruletest_common::{multisets_equal, Rng, RuleId, Value};
use ruletest_core::generate::random::random_tree;
use ruletest_core::{Framework, FrameworkConfig};
use ruletest_executor::{execute_with, ExecConfig};
use ruletest_logical::IdGen;
use ruletest_optimizer::{OptimizerConfig, RuleMask};
use ruletest_sql::{parse_sql, to_sql};
use std::sync::OnceLock;

fn fw() -> &'static Framework {
    static FW: OnceLock<Framework> = OnceLock::new();
    FW.get_or_init(|| Framework::new(&FrameworkConfig::default()).unwrap())
}

/// Any generated tree renders to SQL that parses back to the identical
/// tree.
#[test]
fn sql_round_trip_is_exact() {
    forall!(CheckConfig::cases(48); seed in gen::u64s(), budget in gen::usizes(1..9) => {
        let fw = fw();
        let mut rng = Rng::new(seed);
        let mut ids = IdGen::new();
        let built = random_tree(&fw.db, &mut rng, &mut ids, budget);
        let sql = to_sql(&fw.db.catalog, &built.tree).unwrap();
        let parsed = parse_sql(&fw.db.catalog, &sql).unwrap();
        ensure_eq!(parsed, built.tree, "SQL: {}", sql);
        Ok(())
    });
}

/// Optimizing under an arbitrary exploration-rule mask never changes
/// executed results (the paper's core correctness premise, as a property
/// over random queries and random masks).
#[test]
fn random_masks_preserve_results() {
    forall!(CheckConfig::cases(48); seed in gen::u64s(), mask_bits in gen::u64s() => {
        let fw = fw();
        let mut rng = Rng::new(seed);
        let mut ids = IdGen::new();
        let built = random_tree(&fw.db, &mut rng, &mut ids, 5);
        let exploration = fw.optimizer.exploration_rule_ids();
        let disabled: Vec<RuleId> = exploration
            .iter()
            .enumerate()
            .filter(|(i, _)| mask_bits >> (i % 64) & 1 == 1)
            .map(|(_, r)| *r)
            .collect();
        let base = fw.optimizer.optimize(&built.tree).unwrap();
        let masked = fw
            .optimizer
            .optimize_with(&built.tree, &OptimizerConfig {
                mask: RuleMask::disabling(&disabled),
                ..Default::default()
            })
            .unwrap();
        if !base.truncated && !masked.truncated {
            ensure!(masked.cost >= base.cost - 1e-9, "monotonicity");
        }
        let exec = ExecConfig::default();
        if let (Ok(a), Ok(b)) = (
            execute_with(&fw.db, &base.plan, &exec),
            execute_with(&fw.db, &masked.plan, &exec),
        ) {
            ensure!(
                multisets_equal(&a, &b),
                "mask {:?} changed results of\n{}",
                disabled.len(),
                built.tree.explain()
            );
        }
        Ok(())
    });
}

/// Optimization is deterministic: same tree, same plan, same cost.
#[test]
fn optimization_is_deterministic() {
    forall!(CheckConfig::cases(48); seed in gen::u64s() => {
        let fw = fw();
        let mut rng = Rng::new(seed);
        let mut ids = IdGen::new();
        let built = random_tree(&fw.db, &mut rng, &mut ids, 5);
        let a = fw.optimizer.optimize(&built.tree).unwrap();
        let b = fw.optimizer.optimize(&built.tree).unwrap();
        ensure!(a.plan.same_shape(&b.plan));
        ensure_eq!(a.cost, b.cost);
        ensure_eq!(a.rule_set, b.rule_set);
        Ok(())
    });
}

/// Multiset comparison laws over arbitrary row sets.
#[test]
fn multiset_laws() {
    let rows_gen = gen::vecs(gen::vecs(gen::i64s(-3..3), 2..3), 0..12);
    forall!(CheckConfig::default(); raw in rows_gen, perm_seed in gen::u64s() => {
        let rows: Vec<Vec<Value>> = raw
            .into_iter()
            .map(|r| r.into_iter().map(Value::Int).collect())
            .collect();
        // Reflexive.
        ensure!(multisets_equal(&rows, &rows));
        ensure!(diff_multisets(&rows, &rows).is_empty());
        // Permutation-invariant.
        let mut shuffled = rows.clone();
        Rng::new(perm_seed).shuffle(&mut shuffled);
        ensure!(multisets_equal(&rows, &shuffled));
        // Dropping a row breaks equality.
        if !rows.is_empty() {
            let fewer = &rows[1..];
            ensure!(!multisets_equal(&rows, fewer));
            let d = diff_multisets(&rows, fewer);
            ensure!(!d.is_empty());
            ensure!(d.only_right.is_empty());
        }
        Ok(())
    });
}

fn value_gen() -> impl check::Gen<Value = Value> {
    gen::from_fn(|rng: &mut Rng| match rng.gen_index(4) {
        0 => Value::Null,
        1 => Value::Bool(rng.gen_bool(0.5)),
        2 => Value::Int(rng.gen_range_i64(-50, 50)),
        _ => {
            let len = rng.gen_index(4);
            let s: String = (0..len)
                .map(|_| char::from(b'a' + rng.gen_index(3) as u8))
                .collect();
            Value::Str(s)
        }
    })
}

/// `Value::total_cmp` is a total order (antisymmetric + transitive on
/// sampled triples).
#[test]
fn value_total_order() {
    forall!(CheckConfig::default();
            a in value_gen(), b in value_gen(), c in value_gen() => {
        use std::cmp::Ordering;
        ensure_eq!(a.total_cmp(&b), b.total_cmp(&a).reverse());
        if a.total_cmp(&b) != Ordering::Greater && b.total_cmp(&c) != Ordering::Greater {
            ensure_ne!(a.total_cmp(&c), Ordering::Greater);
        }
        Ok(())
    });
}

/// Rule masks behave like sets.
#[test]
fn rule_mask_set_semantics() {
    let ids_gen = gen::from_fn(|rng: &mut Rng| {
        let n = rng.gen_index(20);
        let mut ids: Vec<u16> = (0..n).map(|_| rng.gen_index(200) as u16).collect();
        ids.sort_unstable();
        ids.dedup();
        ids
    });
    forall!(CheckConfig::default(); ids in ids_gen => {
        let rules: Vec<RuleId> = ids.iter().map(|&i| RuleId(i)).collect();
        let mask = RuleMask::disabling(&rules);
        ensure_eq!(mask.disabled_count(), rules.len());
        for r in &rules {
            ensure!(mask.is_disabled(*r));
        }
        ensure_eq!(mask.disabled_rules(), rules.clone());
        let mut cleared = mask.clone();
        for r in &rules {
            cleared.enable(*r);
        }
        ensure!(cleared.is_empty());
        Ok(())
    });
}
