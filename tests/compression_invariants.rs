//! Cross-crate invariants of the compression pipeline on real generated
//! suites: solution validity, orderings among methods, the factor-2 bound,
//! the no-sharing variant, and correctness execution of compressed suites.

use ruletest_core::compress::{baseline, exact, matching, smc, topk, Instance};
use ruletest_core::correctness::execute_solution;
use ruletest_core::{
    build_graph, build_graph_pruned, generate_suite, pair_targets, singleton_targets, Framework,
    FrameworkConfig, GenConfig, Strategy,
};
use ruletest_executor::ExecConfig;

fn fw() -> Framework {
    Framework::new(&FrameworkConfig::default()).unwrap()
}

fn small_singleton_instance(
    fw: &Framework,
    n: usize,
    k: usize,
) -> (ruletest_core::TestSuite, Instance) {
    let suite = generate_suite(
        fw,
        singleton_targets(fw, n),
        k,
        Strategy::Pattern,
        &GenConfig {
            seed: 77,
            pad_ops: 2,
            ..Default::default()
        },
    )
    .unwrap();
    let graph = build_graph(fw, &suite).unwrap();
    (suite, Instance::from_graph(&graph))
}

#[test]
fn all_methods_produce_valid_solutions_on_a_real_suite() {
    let fw = fw();
    let (_suite, inst) = small_singleton_instance(&fw, 6, 3);
    for sol in [
        baseline(&inst).unwrap(),
        smc(&inst).unwrap(),
        topk(&inst).unwrap(),
    ] {
        sol.validate(&inst).unwrap();
        assert!(sol.total_cost(&inst).is_finite());
    }
}

#[test]
fn compressed_methods_beat_baseline_on_singletons() {
    let fw = fw();
    let (_suite, inst) = small_singleton_instance(&fw, 8, 5);
    let b = baseline(&inst).unwrap().total_cost(&inst);
    let s = smc(&inst).unwrap().total_cost(&inst);
    let t = topk(&inst).unwrap().total_cost(&inst);
    assert!(s <= b + 1e-9, "SMC {s} vs BASELINE {b}");
    assert!(t <= b + 1e-9, "TOPK {t} vs BASELINE {b}");
}

#[test]
fn topk_is_within_factor_two_of_exact_on_a_real_small_instance() {
    let fw = fw();
    let (_suite, inst) = small_singleton_instance(&fw, 4, 2);
    let Some(opt) = exact(&inst) else {
        panic!("instance should be small enough for the exact solver");
    };
    let opt_cost = opt.total_cost(&inst);
    let tk = topk(&inst).unwrap().total_cost(&inst);
    assert!(tk >= opt_cost - 1e-9);
    assert!(
        tk <= 2.0 * opt_cost + 1e-9,
        "factor-2 bound violated: {tk} vs opt {opt_cost}"
    );
    let s = smc(&inst).unwrap().total_cost(&inst);
    assert!(s >= opt_cost - 1e-9);
}

#[test]
fn matching_variant_assigns_all_queries_once() {
    let fw = fw();
    let (_suite, inst) = small_singleton_instance(&fw, 5, 2);
    let sol = matching(&inst).unwrap();
    sol.validate(&inst).unwrap();
    assert_eq!(sol.used_queries().len(), inst.num_queries());
    // No sharing can never be cheaper than the shared optimum would allow,
    // and in particular never cheaper than TOPK's lower bound on edges.
    let shared = topk(&inst).unwrap();
    let edge_sum = |sol: &ruletest_core::compress::Solution| -> f64 {
        sol.assignment
            .iter()
            .enumerate()
            .flat_map(|(t, qs)| qs.iter().map(move |&q| (t, q)))
            .map(|(t, q)| inst.edge(t, q))
            .sum()
    };
    assert!(edge_sum(&sol) >= edge_sum(&shared) - 1e-9);
}

#[test]
fn pruned_graph_supports_topk_with_same_edge_quality() {
    let fw = fw();
    let suite = generate_suite(
        &fw,
        pair_targets(&fw, 4),
        2,
        Strategy::Pattern,
        &GenConfig {
            seed: 99,
            pad_ops: 1,
            ..Default::default()
        },
    )
    .unwrap();
    let eager = build_graph(&fw, &suite).unwrap();
    let pruned = build_graph_pruned(&fw, &suite).unwrap();
    assert!(pruned.optimizer_calls <= eager.optimizer_calls);
    let edge_sum = |g: &ruletest_core::BipartiteGraph| -> f64 {
        let inst = Instance::from_graph(g);
        let sol = topk(&inst).unwrap();
        sol.assignment
            .iter()
            .enumerate()
            .flat_map(|(t, qs)| qs.iter().map(move |&q| (t, q)))
            .map(|(t, q)| inst.edge(t, q))
            .sum()
    };
    let a = edge_sum(&eager);
    let b = edge_sum(&pruned);
    assert!(
        (a - b).abs() < 1e-6,
        "pruning changed TOPK quality: {a} vs {b}"
    );
}

#[test]
fn executing_a_compressed_suite_is_cheaper_and_equally_clean() {
    let fw = fw();
    let (suite, inst) = small_singleton_instance(&fw, 5, 2);
    let base_sol = baseline(&inst).unwrap();
    let topk_sol = topk(&inst).unwrap();
    let exec = ExecConfig::default();
    let base_rep = execute_solution(&fw, &suite, &inst, &base_sol, &exec).unwrap();
    let topk_rep = execute_solution(&fw, &suite, &inst, &topk_sol, &exec).unwrap();
    assert!(base_rep.passed() && topk_rep.passed());
    assert_eq!(base_rep.validations, topk_rep.validations);
    // The whole point of compression (Example 1): lower execution cost for
    // the same number of validations.
    assert!(topk_rep.estimated_cost <= base_rep.estimated_cost + 1e-6);
}
