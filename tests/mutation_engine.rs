//! Acceptance tests for the rule-mutation engine: the full catalog run
//! end-to-end, every expected-detectable mutant killed per its verdict,
//! every benign mutant reported as a non-bug, and the lint-escape
//! matrix non-trivial.

use ruletest_core::mutate::{BugClass, Mutant, MutationConfig, Verdict};
use ruletest_storage::{tpch_database, TpchConfig};
use ruletest_telemetry::{Counter, Telemetry};
use std::sync::Arc;

#[test]
fn full_catalog_campaign_meets_the_acceptance_bar() {
    let db = Arc::new(tpch_database(&TpchConfig::default()).unwrap());
    let tel = Telemetry::metrics_only();
    let cfg = MutationConfig {
        threads: 3,
        ..Default::default()
    };
    let report = ruletest_core::mutate::run_mutation_campaign(&db, &cfg, &tel).unwrap();
    println!("{}", report.render_text());

    // Catalog breadth: ≥18 mutants across all 6 classes.
    assert!(report.outcomes.len() >= 18, "{}", report.outcomes.len());
    for class in BugClass::ALL {
        assert!(
            report.outcomes.iter().any(|o| o.mutant.class == class),
            "class {class} unexercised"
        );
    }

    // Every mutant must meet its expected verdict; report the whole
    // failure set at once for debuggability.
    let failures: Vec<String> = report
        .failures()
        .iter()
        .map(|o| {
            format!(
                "{} (expected {}, lint={}, dyn={:?}, fired={})",
                o.mutant.id,
                o.mutant.expected.name(),
                o.static_caught,
                o.dynamic().map(|k| k.seed),
                o.detection.fired,
            )
        })
        .collect();
    assert!(
        failures.is_empty(),
        "verdict violations:\n{}",
        failures.join("\n")
    );

    // The lint-escape matrix is the point of the exercise: at least 4
    // mutants must be invisible to the static linter yet dynamically
    // killed.
    let escapes = report.lint_escapes();
    assert!(
        escapes.len() >= 4,
        "only {} lint escapes: {escapes:?}",
        escapes.len()
    );

    // Benign controls: no false positives anywhere.
    for s in report.class_stats() {
        assert_eq!(s.false_positives, 0, "{}", s.class);
    }

    // Telemetry counters reflect the run.
    let detectable = report
        .outcomes
        .iter()
        .filter(|o| o.mutant.expected != Verdict::Benign)
        .count() as u64;
    assert_eq!(
        tel.counter(Counter::MutantsKilled) + tel.counter(Counter::MutantsSurvived),
        detectable
    );
    assert_eq!(
        tel.counter(Counter::MutantsKilled),
        detectable,
        "survivors leaked"
    );
    assert_eq!(tel.counter(Counter::LintEscapes), escapes.len() as u64);
    assert!(!report.failed());
}

#[test]
fn class_and_sample_filters_select_stratified_subsets() {
    let only_boundary = MutationConfig {
        class: Some(BugClass::BoundaryBug),
        ..Default::default()
    };
    let picked = only_boundary.select();
    assert!(!picked.is_empty());
    assert!(picked.iter().all(|m| m.class == BugClass::BoundaryBug));

    let one_per_class = MutationConfig {
        sample: Some(1),
        ..Default::default()
    };
    let picked = one_per_class.select();
    assert_eq!(picked.len(), BugClass::ALL.len());
    for class in BugClass::ALL {
        assert_eq!(picked.iter().filter(|m| m.class == class).count(), 1);
    }
}

#[test]
fn mutant_ids_resolve_and_bad_ids_name_the_offender() {
    for m in Mutant::all() {
        assert!(std::ptr::eq(Mutant::by_id(m.id).unwrap(), m));
    }
    let err = Mutant::by_id("Bogus").unwrap_err();
    assert!(err.to_string().contains("Bogus"), "{err}");
}
