//! Supervision determinism invariants: (1) on a clean run the supervised
//! campaign's deterministic report slice is byte-identical to the
//! unsupervised campaign's, at one worker and at four; (2) a
//! pre-quarantined target is skipped without ever reaching the optimizer
//! and the surviving targets' queries stay byte-identical to a strict
//! run; (3) the quarantine persists in campaign checkpoints, so a
//! `--resume` skips poisoned inputs instead of re-hitting them.

use ruletest_core::compress::topk;
use ruletest_core::correctness::execute_solution;
use ruletest_core::supervise::SITE_SUITE;
use ruletest_core::{
    execute_solution_supervised, run_checkpointed_campaign, run_checkpointed_campaign_supervised,
    CampaignParams, Framework, FrameworkConfig, GenConfig, Instance, Quarantine, QuarantineEntry,
};
use ruletest_executor::ExecConfig;
use ruletest_telemetry::{Counter, RunReport, Telemetry};
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ruletest_supervisor_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn fw(threads: usize) -> Framework {
    let mut cfg = FrameworkConfig::default();
    cfg.parallelism.threads = threads;
    Framework::new(&cfg)
        .unwrap()
        .with_telemetry(Telemetry::metrics_only())
}

fn params() -> CampaignParams {
    CampaignParams {
        rules: 4,
        k: 2,
        seed: 17,
        pad_ops: 1,
        max_trials: GenConfig::default().max_trials,
    }
}

/// Full campaign, unsupervised.
fn strict_campaign(fw: &Framework) -> RunReport {
    let run = run_checkpointed_campaign(fw, &params(), None, false, None)
        .unwrap()
        .expect("no stop hook");
    let inst = Instance::from_graph(&run.graph);
    let sol = topk(&inst).unwrap();
    execute_solution(fw, &run.suite, &inst, &sol, &ExecConfig::default()).unwrap();
    fw.run_report()
}

/// Full campaign, supervised; returns the final quarantine too.
fn supervised_campaign(fw: &Framework, quarantine: &mut Quarantine) -> RunReport {
    let run = run_checkpointed_campaign_supervised(fw, &params(), None, false, None, quarantine)
        .unwrap()
        .expect("no stop hook");
    let inst = Instance::from_graph(&run.graph);
    let sol = topk(&inst).unwrap();
    execute_solution_supervised(
        fw,
        &run.suite,
        &inst,
        &sol,
        &ExecConfig::default(),
        quarantine,
    )
    .unwrap();
    fw.run_report()
}

/// The tentpole determinism contract: with no failures, supervision is
/// invisible — the deterministic slice matches the unsupervised run byte
/// for byte at any thread count.
#[test]
fn clean_supervised_slice_matches_unsupervised_at_any_thread_count() {
    let baseline = strict_campaign(&fw(1)).deterministic_json();
    for threads in [1, 4] {
        let strict = strict_campaign(&fw(threads));
        assert_eq!(
            baseline,
            strict.deterministic_json(),
            "unsupervised slice diverged at {threads} threads"
        );
        let mut quarantine = Quarantine::new();
        let supervised = supervised_campaign(&fw(threads), &mut quarantine);
        assert!(quarantine.is_empty(), "clean run must not quarantine");
        assert_eq!(supervised.counter(Counter::SuperviseQuarantined), 0);
        assert_eq!(
            baseline,
            supervised.deterministic_json(),
            "supervised slice diverged at {threads} threads"
        );
    }
}

/// A pre-quarantined target is dropped without optimizer calls, and the
/// surviving targets' queries are byte-identical to the strict run's
/// (original-index seed streams).
#[test]
fn quarantined_targets_are_skipped_and_survivors_unchanged() {
    let strict_fw = fw(2);
    let strict_run = run_checkpointed_campaign(&strict_fw, &params(), None, false, None)
        .unwrap()
        .unwrap();
    let poisoned_label = strict_run.suite.targets[1].label(&strict_fw.optimizer);

    let sup_fw = fw(2);
    let mut quarantine = Quarantine::new();
    quarantine.add(QuarantineEntry {
        fingerprint: ruletest_core::input_fingerprint(SITE_SUITE, &poisoned_label),
        kind: "panic".to_string(),
        site: SITE_SUITE.to_string(),
        message: "injected by test".to_string(),
        label: poisoned_label.clone(),
        sql: None,
        rule_mask: vec![poisoned_label.clone()],
    });
    let sup_run = run_checkpointed_campaign_supervised(
        &sup_fw,
        &params(),
        None,
        false,
        None,
        &mut quarantine,
    )
    .unwrap()
    .unwrap();
    assert_eq!(
        sup_run.suite.targets.len(),
        strict_run.suite.targets.len() - 1,
        "the poisoned target must be dropped"
    );
    assert!(
        !sup_run
            .suite
            .targets
            .iter()
            .any(|t| t.label(&sup_fw.optimizer) == poisoned_label),
        "the poisoned target must not survive"
    );
    // Survivors keep their strict-run queries byte for byte.
    let strict_sql: Vec<&str> = strict_run
        .suite
        .queries
        .iter()
        .filter(|q| {
            strict_run.suite.targets[q.generated_for].label(&strict_fw.optimizer) != poisoned_label
        })
        .map(|q| q.sql.as_str())
        .collect();
    let sup_sql: Vec<&str> = sup_run
        .suite
        .queries
        .iter()
        .map(|q| q.sql.as_str())
        .collect();
    assert_eq!(strict_sql, sup_sql, "surviving queries diverged");
}

/// The quarantine rides campaign checkpoints: a resumed campaign loads it
/// and keeps skipping the poisoned input without re-running it.
#[test]
fn resume_skips_quarantined_inputs() {
    let dir = temp_dir("resume-skip");

    let first_fw = fw(2);
    let first_params = params();
    let label = {
        // Learn a real target label from a throwaway strict run.
        let probe = run_checkpointed_campaign(&fw(1), &first_params, None, false, None)
            .unwrap()
            .unwrap();
        probe.suite.targets[0].label(&fw(1).optimizer)
    };
    let mut quarantine = Quarantine::new();
    quarantine.add(QuarantineEntry {
        fingerprint: ruletest_core::input_fingerprint(SITE_SUITE, &label),
        kind: "timeout".to_string(),
        site: SITE_SUITE.to_string(),
        message: "injected by test".to_string(),
        label: label.clone(),
        sql: None,
        rule_mask: vec![label.clone()],
    });
    let first_run = run_checkpointed_campaign_supervised(
        &first_fw,
        &first_params,
        Some(&dir),
        false,
        None,
        &mut quarantine,
    )
    .unwrap()
    .unwrap();
    first_run
        .store
        .as_ref()
        .expect("cache-dir campaign has a store")
        .save_quarantine(&quarantine)
        .unwrap();
    let first_queries: Vec<String> = first_run
        .suite
        .queries
        .iter()
        .map(|q| q.sql.clone())
        .collect();

    // A fresh process resumes: the quarantine is loaded from disk, the
    // poisoned target stays dropped, and the checkpointed (shrunk) suite
    // is reused as-is.
    let resumed_fw = fw(2);
    let mut resumed_quarantine = Quarantine::new();
    let resumed = run_checkpointed_campaign_supervised(
        &resumed_fw,
        &first_params,
        Some(&dir),
        true,
        None,
        &mut resumed_quarantine,
    )
    .unwrap()
    .unwrap();
    assert_eq!(
        resumed.resumed,
        vec!["suite", "graph"],
        "both stages must resume from checkpoints"
    );
    assert!(
        resumed_quarantine.contains_input(SITE_SUITE, &label),
        "the persisted quarantine must be loaded on resume"
    );
    let resumed_queries: Vec<String> = resumed
        .suite
        .queries
        .iter()
        .map(|q| q.sql.clone())
        .collect();
    assert_eq!(first_queries, resumed_queries);
    assert!(
        !resumed
            .suite
            .targets
            .iter()
            .any(|t| t.label(&resumed_fw.optimizer) == label),
        "the poisoned target must stay dropped across resume"
    );

    let _ = std::fs::remove_dir_all(&dir);
}
