//! Per-rule semantic correctness: for every exploration rule, find queries
//! that exercise it (via its exported pattern), then verify the §2.3
//! methodology finds *no* bugs — `Plan(q)` and `Plan(q, ¬{r})` must return
//! identical result multisets. This is the strongest end-to-end statement
//! that every one of the optimizer's transformation rules is semantically
//! correct on real data (NULLs included).

use ruletest_common::multisets_equal;
use ruletest_core::{Framework, FrameworkConfig, GenConfig, Strategy};
use ruletest_executor::{execute_with, ExecConfig};
use ruletest_optimizer::OptimizerConfig;

#[test]
fn no_exploration_rule_changes_results() {
    let fw = Framework::new(&FrameworkConfig::default()).unwrap();
    let exec = ExecConfig::default();
    let mut validated = 0usize;
    for rid in fw.optimizer.exploration_rule_ids() {
        let name = fw.optimizer.rule(rid).name;
        // Two queries per rule: a minimal pattern query and a padded one.
        for (seed, pad) in [(1u64, 0usize), (2, 3)] {
            let cfg = GenConfig {
                seed: seed.wrapping_mul(0x9E37).wrapping_add(rid.0 as u64),
                pad_ops: pad,
                max_trials: 200,
                ..Default::default()
            };
            let out = fw
                .find_query_for_rule(rid, Strategy::Pattern, &cfg)
                .unwrap_or_else(|e| panic!("generation failed for {name}: {e}"));
            let base = fw.optimizer.optimize(&out.query).unwrap();
            let masked = fw
                .optimizer
                .optimize_with(&out.query, &OptimizerConfig::disabling(&[rid]))
                .unwrap();
            // Cost monotonicity is guaranteed only for fixpoint searches
            // (truncated exploration is order-dependent); result equality
            // below must hold unconditionally.
            if !base.truncated && !masked.truncated {
                assert!(
                    masked.cost >= base.cost - 1e-9,
                    "cost monotonicity violated by {name}"
                );
            }
            if base.plan.same_shape(&masked.plan) {
                continue; // identical plans — results guaranteed equal
            }
            let (Ok(a), Ok(b)) = (
                execute_with(&fw.db, &base.plan, &exec),
                execute_with(&fw.db, &masked.plan, &exec),
            ) else {
                continue; // work budget exceeded — skip like the framework does
            };
            assert!(
                multisets_equal(&a, &b),
                "rule {name} changed the result of:\n{}",
                out.sql
            );
            validated += 1;
        }
    }
    assert!(
        validated >= 20,
        "too few rules produced plan-changing validations ({validated})"
    );
}

#[test]
fn rule_pairs_validate_together() {
    let fw = Framework::new(&FrameworkConfig::default()).unwrap();
    let rules = fw.optimizer.exploration_rule_ids();
    let exec = ExecConfig::default();
    // A sample of pairs across the catalog.
    let pairs = [
        (0usize, 1usize),
        (3, 6),
        (12, 14),
        (13, 24),
        (26, 27),
        (30, 33),
    ];
    for (i, j) in pairs {
        let (a, b) = (rules[i], rules[j]);
        let cfg = GenConfig {
            seed: 0xABCD + (i * 37 + j) as u64,
            max_trials: 300,
            ..Default::default()
        };
        let Ok(out) = fw.find_query_for_pair((a, b), Strategy::Pattern, &cfg) else {
            continue; // some arbitrary pairs are legitimately hard
        };
        let base = fw.optimizer.optimize(&out.query).unwrap();
        assert!(base.rule_set.contains(&a) && base.rule_set.contains(&b));
        let masked = fw
            .optimizer
            .optimize_with(&out.query, &OptimizerConfig::disabling(&[a, b]))
            .unwrap();
        if !base.truncated && !masked.truncated {
            assert!(masked.cost >= base.cost - 1e-9);
        }
        if base.plan.same_shape(&masked.plan) {
            continue;
        }
        let (Ok(x), Ok(y)) = (
            execute_with(&fw.db, &base.plan, &exec),
            execute_with(&fw.db, &masked.plan, &exec),
        ) else {
            continue;
        };
        assert!(
            multisets_equal(&x, &y),
            "pair ({}, {}) changed results",
            fw.optimizer.rule(a).name,
            fw.optimizer.rule(b).name
        );
    }
}
