//! The paper's §6.1 generality claim: "We have also evaluated our tests on
//! other databases with different schemas and sizes, and the results are
//! similar." Run the framework's core experiments against the star-schema
//! database and assert the same shapes.

use ruletest_core::compress::{baseline, topk, Instance};
use ruletest_core::correctness::execute_solution;
use ruletest_core::{
    build_graph, generate_suite, singleton_targets, Framework, GenConfig, Strategy,
};
use ruletest_executor::ExecConfig;
use ruletest_storage::{ssb_database, SsbConfig};
use std::sync::Arc;

fn star_framework() -> Framework {
    Framework::over_database(Arc::new(ssb_database(&SsbConfig::default()).unwrap()))
}

#[test]
fn pattern_beats_random_on_the_star_schema_too() {
    let fw = star_framework();
    let rules = fw.optimizer.exploration_rule_ids();
    let mut random_total = 0usize;
    let mut pattern_total = 0usize;
    for (i, rid) in rules.iter().take(12).enumerate() {
        let rnd = fw.find_query_for_rule(
            *rid,
            Strategy::Random,
            &GenConfig {
                seed: 0x57A + i as u64,
                max_trials: 1500,
                ..Default::default()
            },
        );
        let pat = fw.find_query_for_rule(
            *rid,
            Strategy::Pattern,
            &GenConfig {
                seed: 0x57B + i as u64,
                max_trials: 60,
                ..Default::default()
            },
        );
        random_total += rnd.map(|o| o.trials).unwrap_or(1500);
        pattern_total += pat.map(|o| o.trials).unwrap_or(60);
    }
    assert!(
        pattern_total * 2 < random_total,
        "star schema: PATTERN {pattern_total} vs RANDOM {random_total}"
    );
}

#[test]
fn compression_and_correctness_hold_on_the_star_schema() {
    let fw = star_framework();
    let suite = generate_suite(
        &fw,
        singleton_targets(&fw, 5),
        2,
        Strategy::Pattern,
        &GenConfig {
            seed: 0x57AC,
            pad_ops: 1,
            max_trials: 80,
            ..Default::default()
        },
    )
    .unwrap();
    let graph = build_graph(&fw, &suite).unwrap();
    let inst = Instance::from_graph(&graph);
    let b = baseline(&inst).unwrap();
    let t = topk(&inst).unwrap();
    assert!(t.total_cost(&inst) <= b.total_cost(&inst) + 1e-9);
    let report = execute_solution(&fw, &suite, &inst, &t, &ExecConfig::default()).unwrap();
    assert!(
        report.passed(),
        "rules must be correct on any schema: {:?}",
        report.bugs
    );
    assert!(report.validations > 0);
}

#[test]
fn sql_round_trips_on_the_star_schema() {
    let fw = star_framework();
    let sql = "SELECT c_region, COUNT(*) AS orders, SUM(lo_revenue) AS revenue \
               FROM lineorder JOIN ssb_customer ON lo_custkey = c_custkey \
               GROUP BY c_region";
    let tree = ruletest_sql::parse_sql(&fw.db.catalog, sql).unwrap();
    let res = fw.optimizer.optimize(&tree).unwrap();
    let rows = ruletest_executor::execute(&fw.db, &res.plan).unwrap();
    assert!(!rows.is_empty());
    let rendered = ruletest_sql::to_sql(&fw.db.catalog, &tree).unwrap();
    let reparsed = ruletest_sql::parse_sql(&fw.db.catalog, &rendered).unwrap();
    assert_eq!(tree, reparsed);
}
