//! Determinism of the mutation campaign: same configuration must yield a
//! byte-identical `MUTATION_REPORT.json` at any thread count. The report
//! deliberately excludes wall-clock; outcomes come back from `par_map`
//! in catalog order; telemetry folds in after the parallel phase.

use ruletest_core::mutate::{run_mutation_campaign, MutationConfig};
use ruletest_storage::{tpch_database, TpchConfig};
use ruletest_telemetry::Telemetry;
use std::sync::Arc;

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let db = Arc::new(tpch_database(&TpchConfig::default()).unwrap());
    let json_at = |threads: usize| {
        let cfg = MutationConfig {
            sample: Some(1),
            threads,
            ..Default::default()
        };
        let report = run_mutation_campaign(&db, &cfg, &Telemetry::disabled()).unwrap();
        report.to_json().to_string_pretty()
    };
    let sequential = json_at(1);
    assert_eq!(sequential, json_at(3));
    assert_eq!(sequential, json_at(7));
}
