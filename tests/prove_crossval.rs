//! Cross-validation of the symbolic prover against the mutant corpus —
//! the prover's acceptance bar:
//!
//! * ≥60% of the *target-class* mutants (dropped-precondition,
//!   predicate-misplacement, duplicate-sensitivity, operand-corruption)
//!   are proved inequivalent statically;
//! * no correctness mutant is ever proved *equivalent* (that would be
//!   prover unsoundness);
//! * no cost-only (benign) mutant is proved inequivalent (that would be
//!   a false alarm).

use ruletest_core::mutate::{crossval_prove, BugClass};
use ruletest_lint::prove::ProveVerdict;

const TARGET_CLASSES: [BugClass; 4] = [
    BugClass::DroppedPrecondition,
    BugClass::PredicateMisplacement,
    BugClass::DuplicateSensitivity,
    BugClass::OperandCorruption,
];

#[test]
fn prover_kills_most_target_class_mutants_statically() {
    let report = crossval_prove().unwrap();
    let (mut kills, mut total) = (0usize, 0usize);
    for class in TARGET_CLASSES {
        let (k, t) = report.class_kills(class);
        assert!(t > 0, "no mutants in target class {class}");
        kills += k;
        total += t;
    }
    // ≥60% static kill rate across the target classes. (Currently
    // 16/17: only TopTopKeysCheckDropped escapes to `Unknown` — its
    // differing-keys corpus tree defeats normalization.)
    assert!(
        kills * 100 >= total * 60,
        "static kill rate {kills}/{total} below the 60% bar:\n{}",
        report.render_text()
    );
}

#[test]
fn prover_never_proves_a_correctness_mutant_equivalent() {
    let report = crossval_prove().unwrap();
    let unsound = report.unsound();
    assert!(
        unsound.is_empty(),
        "prover UNSOUND — buggy rewrites proved equivalent: {:?}",
        unsound.iter().map(|r| r.mutant).collect::<Vec<_>>()
    );
}

#[test]
fn prover_raises_no_false_alarms_on_benign_mutants() {
    let report = crossval_prove().unwrap();
    let alarms = report.false_alarms();
    assert!(
        alarms.is_empty(),
        "cost-only mutants proved inequivalent: {:?}",
        alarms.iter().map(|r| r.mutant).collect::<Vec<_>>()
    );
    let (kills, total) = report.class_kills(BugClass::CostOnly);
    assert_eq!(kills, 0);
    assert_eq!(total, 4);
}

#[test]
fn crossval_covers_the_whole_catalog_with_honest_escapes() {
    let report = crossval_prove().unwrap();
    assert!(
        report.rows.len() >= 18,
        "thin corpus: {}",
        report.rows.len()
    );
    for row in &report.rows {
        // Every non-kill on a correctness mutant must be an honest
        // `Unknown` (escape to the dynamic campaign), never a proof.
        if row.class != BugClass::CostOnly && row.proved != ProveVerdict::Inequivalent {
            assert_eq!(
                row.proved,
                ProveVerdict::Unknown,
                "mutant {} verdicted {}",
                row.mutant,
                row.proved
            );
        }
    }
}
