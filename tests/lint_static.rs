//! Static lint acceptance: the shipped rule catalog audits clean, every
//! injected fault from `ruletest_core::faults` is caught *without
//! executing a single query*, and the pattern-necessity audit holds for
//! every exported rule pattern.

use ruletest_core::faults::{buggy_optimizer, Fault};
use ruletest_lint::{lint_rules, LintPass};
use ruletest_optimizer::Optimizer;
use ruletest_storage::{tpch_database, TpchConfig};
use std::sync::Arc;

fn db() -> Arc<ruletest_storage::Database> {
    // The audit is purely static — only the catalog matters — so the
    // default (smallest) data scale suffices.
    Arc::new(tpch_database(&TpchConfig::default()).unwrap())
}

#[test]
fn clean_catalog_has_no_violations() {
    let opt = Optimizer::new(db());
    let report = lint_rules(&opt).unwrap();
    assert!(
        report.is_clean(),
        "clean rule catalog flagged:\n{}",
        report.render_text()
    );
    // The audit must have actually exercised the catalog, not vacuously
    // passed on an empty corpus.
    assert!(report.rules_audited > 20);
    assert!(report.stats.corpus_trees > 50);
    assert!(report.stats.substitutes_audited > 100);
    assert!(report.stats.necessity_probes > 500);
}

#[test]
fn every_injected_fault_is_caught_statically() {
    for fault in Fault::ALL {
        let opt = buggy_optimizer(db(), fault);
        let report = lint_rules(&opt).unwrap();
        let flagged = report.flagged_rules();
        assert!(
            flagged.iter().any(|r| r == fault.rule_name()),
            "{:?} not caught: flagged {:?}\n{}",
            fault,
            flagged,
            report.render_text()
        );
        // All three faults corrupt outer-join row provenance; the audit
        // must attribute them to the right pass, not trip incidentally.
        assert!(
            report
                .violations
                .iter()
                .any(|v| v.pass == LintPass::RowProvenance
                    && v.rule.as_deref() == Some(fault.rule_name())),
            "{fault:?} caught but not by the row-provenance pass:\n{}",
            report.render_text()
        );
    }
}

#[test]
fn necessity_audit_covers_every_rule() {
    let opt = Optimizer::new(db());
    let report = lint_rules(&opt).unwrap();
    assert_eq!(report.count_for(LintPass::PatternNecessity), 0);
    // Every rule in the catalog (exploration and implementation) was
    // probed against every corpus tree.
    let rules = opt.num_rules();
    assert!(report.stats.necessity_probes >= rules * report.stats.corpus_trees / 2);
}
