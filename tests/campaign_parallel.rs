//! Tentpole invariants of the parallel campaign engine: (1) any thread
//! count reproduces byte-identical results from the same seed, and (2)
//! the optimizer-invocation cache is result-transparent — cached and
//! uncached optimization agree on every observable.

use ruletest_common::{Parallelism, Rng};
use ruletest_core::compress::topk;
use ruletest_core::correctness::execute_solution;
use ruletest_core::generate::random::random_tree;
use ruletest_core::{
    build_graph_pruned, generate_suite, singleton_targets, Framework, FrameworkConfig, GenConfig,
    Instance, Strategy,
};
use ruletest_executor::ExecConfig;
use ruletest_logical::IdGen;
use ruletest_optimizer::{OptimizerConfig, RuleMask};
use ruletest_storage::tpch_database;
use ruletest_telemetry::{RunReport, Telemetry};
use std::sync::Arc;

fn fw_with_threads(threads: usize) -> Framework {
    let db = Arc::new(tpch_database(&FrameworkConfig::default().db).unwrap());
    Framework::over_database(db).with_parallelism(Parallelism { threads, seed: 7 })
}

/// Runs the full pipeline with telemetry attached and returns the final
/// aggregate report.
fn telemetry_campaign(threads: usize, seed: u64) -> RunReport {
    let fw = fw_with_threads(threads).with_telemetry(Telemetry::metrics_only());
    let gen_cfg = GenConfig {
        seed,
        pad_ops: 1,
        ..Default::default()
    };
    let suite = generate_suite(
        &fw,
        singleton_targets(&fw, 6),
        2,
        Strategy::Pattern,
        &gen_cfg,
    )
    .unwrap();
    let graph = build_graph_pruned(&fw, &suite).unwrap();
    let inst = Instance::from_graph(&graph);
    let sol = topk(&inst).unwrap();
    execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default()).unwrap();
    fw.run_report()
}

/// The full campaign — suite generation, pruned graph, compression,
/// correctness execution — produces identical output at 1 and 3 threads.
#[test]
fn campaign_is_deterministic_across_thread_counts() {
    let gen_cfg = GenConfig {
        seed: 0x00D5_7E12,
        pad_ops: 1,
        ..Default::default()
    };
    let mut outcomes = Vec::new();
    for threads in [1usize, 3] {
        let fw = fw_with_threads(threads);
        let suite = generate_suite(
            &fw,
            singleton_targets(&fw, 6),
            2,
            Strategy::Pattern,
            &gen_cfg,
        )
        .unwrap();
        let graph = build_graph_pruned(&fw, &suite).unwrap();
        let inst = Instance::from_graph(&graph);
        let sol = topk(&inst).unwrap();
        let report = execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default()).unwrap();

        let sqls: Vec<String> = suite.queries.iter().map(|q| q.sql.clone()).collect();
        let costs: Vec<u64> = suite.queries.iter().map(|q| q.cost.to_bits()).collect();
        let mut edges: Vec<((usize, usize), u64)> = graph
            .edges
            .iter()
            .map(|(&e, &c)| (e, c.to_bits()))
            .collect();
        edges.sort();
        outcomes.push((
            sqls,
            costs,
            edges,
            graph.optimizer_calls,
            (
                report.validations,
                report.executions,
                report.skipped_identical,
                report.skipped_expensive,
                report.estimated_cost.to_bits(),
                report.bugs.len(),
            ),
        ));
    }
    assert_eq!(
        outcomes[0], outcomes[1],
        "1-thread and 3-thread campaigns diverged"
    );
}

/// Cached optimization returns exactly what uncached optimization returns,
/// over a randomized workload of trees and rule masks — and actually
/// serves repeats from the cache instead of re-invoking the optimizer.
#[test]
fn cache_is_result_transparent() {
    let fw = fw_with_threads(1);
    let mut rng = Rng::new(0xCAC4E);
    let exploration = fw.optimizer.exploration_rule_ids();
    let mut workload = Vec::new();
    for _ in 0..20 {
        let mut ids = IdGen::new();
        let tree = random_tree(&fw.db, &mut rng, &mut ids, 4).tree;
        let n = rng.gen_index(4);
        let disabled: Vec<_> = (0..n)
            .map(|_| exploration[rng.gen_index(exploration.len())])
            .collect();
        workload.push((tree, disabled));
    }

    for (tree, disabled) in &workload {
        let cfg = OptimizerConfig {
            mask: RuleMask::disabling(disabled),
            ..Default::default()
        };
        let uncached = fw.optimizer.optimize_with(tree, &cfg).unwrap();
        let cached = fw.optimizer.optimize_with_cached(tree, &cfg).unwrap();
        assert_eq!(uncached.cost.to_bits(), cached.cost.to_bits());
        assert!(uncached.plan.same_shape(&cached.plan));
        assert_eq!(uncached.rule_set, cached.rule_set);
        assert_eq!(uncached.truncated, cached.truncated);
    }

    // Replaying the cached half must not spend a single new invocation.
    let before = fw.optimizer.invocation_count();
    let hits_before = fw.optimizer.cache_stats().hits;
    for (tree, disabled) in &workload {
        let cfg = OptimizerConfig {
            mask: RuleMask::disabling(disabled),
            ..Default::default()
        };
        fw.optimizer.optimize_with_cached(tree, &cfg).unwrap();
    }
    assert_eq!(fw.optimizer.invocation_count(), before);
    assert_eq!(
        fw.optimizer.cache_stats().hits,
        hits_before + workload.len() as u64
    );
}

/// Repeating the identical campaign (same seed, same thread count) yields
/// the identical deterministic aggregate view — rule firings, logical
/// counters, and seed-determined histograms, byte for byte.
#[test]
fn telemetry_report_is_reproducible_for_a_fixed_seed_and_threads() {
    let a = telemetry_campaign(3, 0x07E1_EAE7);
    let b = telemetry_campaign(3, 0x07E1_EAE7);
    assert_eq!(
        a.deterministic_json(),
        b.deterministic_json(),
        "repeat runs disagreed on deterministic aggregates"
    );
}

/// The deterministic aggregates — per-rule firing counts in particular —
/// are identical at 1 and 3 threads: unique-optimization counting is what
/// makes firing counts schedule-independent even when racing workers
/// duplicate a cache-miss compute.
#[test]
fn telemetry_report_is_thread_count_invariant() {
    let single = telemetry_campaign(1, 0x07E1_EAE8);
    let multi = telemetry_campaign(3, 0x07E1_EAE8);
    assert_eq!(
        single.rule_firings, multi.rule_firings,
        "per-rule firing counts diverged across thread counts"
    );
    assert_eq!(
        single.counter(ruletest_telemetry::Counter::EdgesPruned),
        multi.counter(ruletest_telemetry::Counter::EdgesPruned),
        "edge-prune counts diverged across thread counts"
    );
    assert_eq!(
        single.deterministic_json(),
        multi.deterministic_json(),
        "deterministic aggregates diverged across thread counts"
    );
    // The campaign actually exercised the instrumentation.
    single.check().expect("single-threaded report self-check");
}

/// `clear_cache` really drops entries (the next lookup is a miss, not a
/// stale hit) without perturbing results.
#[test]
fn clearing_the_cache_is_safe() {
    let fw = fw_with_threads(1);
    let mut ids = IdGen::new();
    let tree = random_tree(&fw.db, &mut Rng::new(5), &mut ids, 3).tree;
    let a = fw.optimizer.optimize_cached(&tree).unwrap();
    fw.optimizer.clear_cache();
    let misses_before = fw.optimizer.cache_stats().misses;
    let b = fw.optimizer.optimize_cached(&tree).unwrap();
    assert_eq!(fw.optimizer.cache_stats().misses, misses_before + 1);
    assert_eq!(a.cost.to_bits(), b.cost.to_bits());
    assert!(a.plan.same_shape(&b.plan));
}
