//! Tentpole invariants of the span profiler: (1) the span *tree shape*
//! (paths + counts) over a full campaign is identical at any thread
//! count, (2) the exact-accounting invariant holds on real runs — every
//! row's child time is precisely the sum of its direct children's wall
//! time, so self time sums to the root walls — and (3) the folded-stack
//! export is well-formed.

use ruletest_common::Parallelism;
use ruletest_core::compress::topk;
use ruletest_core::correctness::execute_solution;
use ruletest_core::{
    build_graph_pruned, generate_suite, singleton_targets, Framework, FrameworkConfig, GenConfig,
    Instance, Strategy,
};
use ruletest_executor::ExecConfig;
use ruletest_storage::tpch_database;
use ruletest_telemetry::{ProfileSection, RunReport, Telemetry};
use std::sync::Arc;

/// Runs the full pipeline — generation, pruned graph, compression,
/// correctness — with metrics-only telemetry and returns the report.
fn profiled_campaign(threads: usize, seed: u64) -> RunReport {
    let db = Arc::new(tpch_database(&FrameworkConfig::default().db).unwrap());
    let fw = Framework::over_database(db)
        .with_parallelism(Parallelism { threads, seed: 7 })
        .with_telemetry(Telemetry::metrics_only());
    let gen_cfg = GenConfig {
        seed,
        pad_ops: 1,
        ..Default::default()
    };
    let suite = generate_suite(
        &fw,
        singleton_targets(&fw, 6),
        2,
        Strategy::Pattern,
        &gen_cfg,
    )
    .unwrap();
    let graph = build_graph_pruned(&fw, &suite).unwrap();
    let inst = Instance::from_graph(&graph);
    let sol = topk(&inst).unwrap();
    execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default()).unwrap();
    fw.run_report()
}

/// The deterministic slice of a profile: paths + counts, no durations.
fn shape(p: &ProfileSection) -> Vec<(String, u64)> {
    p.spans.iter().map(|s| (s.path.clone(), s.count)).collect()
}

#[test]
fn span_tree_shape_is_thread_count_invariant_over_a_full_campaign() {
    let single = profiled_campaign(1, 0x5AA5_0001);
    let multi = profiled_campaign(3, 0x5AA5_0001);
    assert!(!single.profile.is_empty(), "campaign produced no spans");
    assert_eq!(
        shape(&single.profile),
        shape(&multi.profile),
        "span tree shape diverged across thread counts"
    );
    assert_eq!(
        single.profile.rules.keys().collect::<Vec<_>>(),
        multi.profile.rules.keys().collect::<Vec<_>>(),
        "per-rule cost attribution keys diverged across thread counts"
    );
    for (k, a) in &single.profile.rules {
        let b = &multi.profile.rules[k];
        assert_eq!(
            (a.binds, a.fires),
            (b.binds, b.fires),
            "deterministic rule-cost counts diverged for {k}"
        );
    }
}

#[test]
fn campaign_profile_covers_the_pipeline_and_accounts_exactly() {
    let report = profiled_campaign(2, 0x5AA5_0002);
    let profile = &report.profile;
    // Every pipeline stage this campaign ran shows up as a root span, with
    // the optimizer and executor attributed beneath them.
    for root in ["generation", "graph", "correctness"] {
        assert!(
            profile.spans.iter().any(|s| s.path == root),
            "missing root span '{root}'"
        );
    }
    assert!(
        profile.spans.iter().any(|s| s.path.ends_with(";optimize")),
        "no optimizer invocations attributed under a stage"
    );
    assert!(
        profile
            .spans
            .iter()
            .any(|s| s.path == "correctness;execution"),
        "no executor time attributed under correctness"
    );
    // Rule-phase attribution reached the per-rule cost table.
    assert!(!profile.rules.is_empty(), "per-rule cost table is empty");
    assert!(profile.rules.values().any(|r| r.binds > 0));
    // Exact accounting: validate() enforces child_ns == Σ children wall_ns
    // per row; consequently self time over all rows sums to the root walls.
    report.check().expect("report self-check");
    assert_eq!(
        profile.total_self_ns(),
        profile.root_wall_ns(),
        "self time does not sum to total wall"
    );
    // And the report JSON round-trips the whole profile.
    let back = RunReport::from_json(&report.to_json().to_string_pretty()).unwrap();
    assert_eq!(back.profile, *profile);
}

#[test]
fn folded_export_is_well_formed() {
    let report = profiled_campaign(1, 0x5AA5_0003);
    let folded = report.profile.folded();
    assert!(!folded.is_empty());
    let mut lines = 0;
    for line in folded.lines() {
        let (path, value) = line.rsplit_once(' ').expect("line has 'path value' form");
        assert!(!path.is_empty(), "empty path in folded line {line:?}");
        assert!(
            !path.contains(' '),
            "unescaped space in folded path {path:?}"
        );
        value
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("non-numeric self time in {line:?}"));
        lines += 1;
    }
    assert_eq!(
        lines,
        report.profile.spans.len(),
        "folded output must have one line per span row"
    );
}
