//! Oracle testing: the full pipeline (optimize to a physical plan, execute
//! it) must agree with an independent, brute-force reference evaluator of
//! the logical tree — over many random queries and over pattern-generated
//! queries for every rule. This catches coordinated bugs that comparing
//! two optimizer outputs to each other cannot (e.g. a cost-model-neutral
//! executor bug shared by all plans).

use ruletest_common::check::{gen, CheckConfig};
use ruletest_common::{ensure, forall, multisets_equal, Rng};
use ruletest_core::generate::random::random_tree;
use ruletest_core::{Framework, FrameworkConfig, GenConfig, Strategy};
use ruletest_executor::{execute_with, reference_eval, ExecConfig};
use ruletest_logical::IdGen;
use std::sync::OnceLock;

fn fw() -> &'static Framework {
    static FW: OnceLock<Framework> = OnceLock::new();
    FW.get_or_init(|| Framework::new(&FrameworkConfig::default()).unwrap())
}

/// The root projection the optimizer pins may permute nothing, but the
/// reference evaluates the *raw* tree whose output column order equals the
/// derived schema order — which is also the plan's declared order, so rows
/// are directly comparable.
fn check(tree: &ruletest_logical::LogicalTree) -> std::result::Result<(), String> {
    let fw = fw();
    let exec = ExecConfig::default();
    let res = fw
        .optimizer
        .optimize(tree)
        .map_err(|e| format!("optimize: {e}"))?;
    let (Ok(actual), Ok(expected)) = (
        execute_with(&fw.db, &res.plan, &exec),
        reference_eval(&fw.db, tree, &exec),
    ) else {
        return Ok(()); // budget exceeded on either path — skip
    };
    if multisets_equal(&actual, &expected) {
        Ok(())
    } else {
        Err(format!(
            "pipeline disagrees with the reference on:\n{}\nplan:\n{}",
            tree.explain(),
            res.plan.explain()
        ))
    }
}

#[test]
fn pipeline_matches_reference_on_random_queries() {
    forall!(CheckConfig::cases(64); seed in gen::u64s(), budget in gen::usizes(1..8) => {
        let fw = fw();
        let mut rng = Rng::new(seed);
        let mut ids = IdGen::new();
        let built = random_tree(&fw.db, &mut rng, &mut ids, budget);
        if let Err(msg) = check(&built.tree) {
            ensure!(false, "{}", msg);
        }
        Ok(())
    });
}

#[test]
fn pipeline_matches_reference_on_every_rules_pattern_queries() {
    let fw = fw();
    for rid in fw.optimizer.exploration_rule_ids() {
        let name = fw.optimizer.rule(rid).name;
        let cfg = GenConfig {
            seed: 0x0_5AC1E + rid.0 as u64,
            pad_ops: 1,
            max_trials: 120,
            ..Default::default()
        };
        let out = fw
            .find_query_for_rule(rid, Strategy::Pattern, &cfg)
            .unwrap_or_else(|e| panic!("generation for {name}: {e}"));
        if let Err(msg) = check(&out.query) {
            panic!("rule {name}: {msg}");
        }
    }
}
