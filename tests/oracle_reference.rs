//! Oracle testing: the full pipeline (optimize to a physical plan, execute
//! it) must agree with an independent, brute-force reference evaluator of
//! the logical tree — over many random queries and over pattern-generated
//! queries for every rule. This catches coordinated bugs that comparing
//! two optimizer outputs to each other cannot (e.g. a cost-model-neutral
//! executor bug shared by all plans).

use ruletest_common::check::{gen, CheckConfig};
use ruletest_common::{ensure, forall, multisets_equal, Rng};
use ruletest_core::generate::random::random_tree;
use ruletest_core::{Framework, FrameworkConfig, GenConfig, Strategy};
use ruletest_executor::{execute_with, reference_eval, ExecConfig};
use ruletest_logical::IdGen;
use std::sync::OnceLock;

fn fw() -> &'static Framework {
    static FW: OnceLock<Framework> = OnceLock::new();
    FW.get_or_init(|| Framework::new(&FrameworkConfig::default()).unwrap())
}

/// The root projection the optimizer pins may permute nothing, but the
/// reference evaluates the *raw* tree whose output column order equals the
/// derived schema order — which is also the plan's declared order, so rows
/// are directly comparable.
fn check(tree: &ruletest_logical::LogicalTree) -> std::result::Result<(), String> {
    let fw = fw();
    let exec = ExecConfig::default();
    let res = fw
        .optimizer
        .optimize(tree)
        .map_err(|e| format!("optimize: {e}"))?;
    let (Ok(actual), Ok(expected)) = (
        execute_with(&fw.db, &res.plan, &exec),
        reference_eval(&fw.db, tree, &exec),
    ) else {
        return Ok(()); // budget exceeded on either path — skip
    };
    if multisets_equal(&actual, &expected) {
        Ok(())
    } else {
        Err(format!(
            "pipeline disagrees with the reference on:\n{}\nplan:\n{}",
            tree.explain(),
            res.plan.explain()
        ))
    }
}

#[test]
fn pipeline_matches_reference_on_random_queries() {
    forall!(CheckConfig::cases(64); seed in gen::u64s(), budget in gen::usizes(1..8) => {
        let fw = fw();
        let mut rng = Rng::new(seed);
        let mut ids = IdGen::new();
        let built = random_tree(&fw.db, &mut rng, &mut ids, budget);
        if let Err(msg) = check(&built.tree) {
            ensure!(false, "{}", msg);
        }
        Ok(())
    });
}

/// Edge cases the random corpora rarely hit, on a hand-built database
/// whose shape forces them: an *empty* null-supplying side, join keys
/// that are NULL in every row, duplicate-heavy inputs (the set/bag
/// mutants' feeding ground), and TopN ties exactly at the limit
/// boundary. Each query runs through the full optimize → execute
/// pipeline and must agree with the brute-force reference evaluator.
mod edge_cases {
    use super::*;
    use ruletest_common::{DataType, Row, Value};
    use ruletest_executor::{execute_with, reference_eval, ExecConfig};
    use ruletest_optimizer::Optimizer;
    use ruletest_sql::parse_sql;
    use ruletest_storage::{Catalog, ColumnDef, Database, TableDef};
    use std::sync::Arc;

    fn int(v: i64) -> Value {
        Value::Int(v)
    }

    /// left(5 rows), empty(0 rows), nulls(3 rows, all-NULL join column),
    /// dups(8 rows over 3 distinct values, ties straddling LIMIT 3).
    fn mini_db() -> Arc<Database> {
        let mut catalog = Catalog::new();
        let table = |id: u32, name: &str, cols: Vec<ColumnDef>| TableDef {
            id: ruletest_common::TableId(id),
            name: name.to_string(),
            columns: cols,
            primary_key: vec![0],
            unique_keys: vec![],
            foreign_keys: vec![],
        };
        let lt = catalog
            .add_table(table(
                0,
                "lt",
                vec![
                    ColumnDef::new("lk", DataType::Int, false),
                    ColumnDef::new("lv", DataType::Int, true),
                ],
            ))
            .unwrap();
        let et = catalog
            .add_table(table(
                1,
                "et",
                vec![
                    ColumnDef::new("ek", DataType::Int, false),
                    ColumnDef::new("ev", DataType::Int, true),
                ],
            ))
            .unwrap();
        let nt = catalog
            .add_table(table(
                2,
                "nt",
                vec![
                    ColumnDef::new("nk", DataType::Int, false),
                    ColumnDef::new("nv", DataType::Int, true),
                ],
            ))
            .unwrap();
        let dt = catalog
            .add_table(table(
                3,
                "dt",
                vec![
                    ColumnDef::new("dk", DataType::Int, false),
                    ColumnDef::new("dv", DataType::Int, true),
                ],
            ))
            .unwrap();
        let mut db = Database::new(catalog);
        db.load_table(
            lt,
            vec![
                vec![int(1), int(10)],
                vec![int(2), int(20)],
                vec![int(3), Value::Null],
                vec![int(4), int(20)],
                vec![int(5), int(50)],
            ],
        )
        .unwrap();
        db.load_table(et, Vec::<Row>::new()).unwrap();
        db.load_table(
            nt,
            vec![
                vec![int(1), Value::Null],
                vec![int(2), Value::Null],
                vec![int(3), Value::Null],
            ],
        )
        .unwrap();
        // dv multiset {10×3, 20×3, 30×2}: the LIMIT-3 boundary falls
        // inside the 10/20 tie region when ordered by dv.
        db.load_table(
            dt,
            vec![
                vec![int(1), int(10)],
                vec![int(2), int(10)],
                vec![int(3), int(10)],
                vec![int(4), int(20)],
                vec![int(5), int(20)],
                vec![int(6), int(20)],
                vec![int(7), int(30)],
                vec![int(8), int(30)],
            ],
        )
        .unwrap();
        Arc::new(db)
    }

    fn check_sql(db: &Arc<Database>, opt: &Optimizer, sql: &str) {
        let exec = ExecConfig::default();
        let tree = parse_sql(&db.catalog, sql).unwrap_or_else(|e| panic!("parse {sql}: {e}"));
        let res = opt
            .optimize(&tree)
            .unwrap_or_else(|e| panic!("optimize {sql}: {e}"));
        let actual =
            execute_with(db, &res.plan, &exec).unwrap_or_else(|e| panic!("execute {sql}: {e}"));
        let expected =
            reference_eval(db, &tree, &exec).unwrap_or_else(|e| panic!("reference {sql}: {e}"));
        assert!(
            multisets_equal(&actual, &expected),
            "pipeline disagrees with the reference on {sql}\nplan:\n{}",
            res.plan.explain()
        );
    }

    #[test]
    fn pipeline_matches_reference_on_boundary_shaped_inputs() {
        let db = mini_db();
        let opt = Optimizer::new(db.clone());
        for sql in [
            // Empty null-supplying side: every left row must come back
            // exactly once, NULL-padded.
            "SELECT lk, ev FROM lt LEFT JOIN et ON lk = ek",
            "SELECT lk FROM lt LEFT JOIN et ON lk = ek WHERE ev IS NULL",
            // All-NULL join keys: NULL never equals anything, so the
            // inner join is empty and the outer join pads every row.
            "SELECT lk, nk FROM lt JOIN nt ON lv = nv",
            "SELECT lk, nk FROM lt LEFT JOIN nt ON lv = nv",
            // Duplicate-heavy inputs: multiplicities must survive the
            // join (dv 10×3 meets lv 10×1, dv 20×3 meets lv 20×2 → 9
            // rows) and DISTINCT must collapse them exactly once.
            "SELECT dk FROM dt JOIN lt ON dv = lv",
            "SELECT DISTINCT dv FROM dt",
            "SELECT DISTINCT dv FROM dt JOIN lt ON dv = lv",
            // TopN ties at the limit boundary: the cut falls inside a
            // tie group; projecting only the ordered column keeps the
            // answer multiset well-defined.
            "SELECT dv FROM dt ORDER BY dv LIMIT 3",
            "SELECT dv FROM dt ORDER BY dv LIMIT 6",
            "SELECT dv FROM dt ORDER BY dv DESC LIMIT 3",
        ] {
            check_sql(&db, &opt, sql);
        }
    }
}

#[test]
fn pipeline_matches_reference_on_every_rules_pattern_queries() {
    let fw = fw();
    for rid in fw.optimizer.exploration_rule_ids() {
        let name = fw.optimizer.rule(rid).name;
        let cfg = GenConfig {
            seed: 0x0_5AC1E + rid.0 as u64,
            pad_ops: 1,
            max_trials: 120,
            ..Default::default()
        };
        let out = fw
            .find_query_for_rule(rid, Strategy::Pattern, &cfg)
            .unwrap_or_else(|e| panic!("generation for {name}: {e}"));
        if let Err(msg) = check(&out.query) {
            panic!("rule {name}: {msg}");
        }
    }
}
