//! End-to-end fault detection: inject a known-buggy rule into the
//! optimizer, run the full pipeline (suite generation -> graph ->
//! compression -> correctness execution), and require a bug report.

use ruletest_core::compress::{topk, Instance};
use ruletest_core::correctness::execute_solution;
use ruletest_core::faults::{buggy_optimizer, Fault};
use ruletest_core::{build_graph, generate_suite, Framework, GenConfig, RuleTarget, Strategy};
use ruletest_executor::ExecConfig;
use ruletest_storage::{tpch_database, TpchConfig};
use std::sync::Arc;

fn detect(fault: Fault) -> bool {
    let db = Arc::new(tpch_database(&TpchConfig::default()).unwrap());
    let opt = Arc::new(buggy_optimizer(db, fault));
    let fw = Framework::with_optimizer(opt.clone());
    let rule = opt.rule_id(fault.rule_name()).unwrap();
    // A handful of seeds: suite generation is deterministic per seed, and
    // detection needs the buggy alternative to win costing on at least one
    // of the k queries.
    for seed in [3u64, 11, 19, 27, 40, 55, 63, 71] {
        let Ok(suite) = generate_suite(
            &fw,
            vec![RuleTarget::Single(rule)],
            4,
            Strategy::Pattern,
            &GenConfig {
                seed,
                pad_ops: 1,
                max_trials: 100,
                ..Default::default()
            },
        ) else {
            continue;
        };
        let Ok(graph) = build_graph(&fw, &suite) else {
            continue;
        };
        let inst = Instance::from_graph(&graph);
        let Ok(sol) = topk(&inst) else {
            continue;
        };
        let Ok(report) = execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default()) else {
            continue;
        };
        if !report.passed() {
            // The report identifies the sabotaged rule.
            assert!(report
                .bugs
                .iter()
                .all(|b| b.target_label == fault.rule_name()));
            assert!(report.bugs.iter().all(|b| !b.sql.is_empty()));
            assert!(report
                .bugs
                .iter()
                .all(|b| b.diff_summary.contains("results differ")));
            return true;
        }
    }
    false
}

#[test]
fn pipeline_detects_unconditional_outer_join_simplification() {
    assert!(detect(Fault::OuterJoinSimplifyUnconditional));
}

#[test]
fn pipeline_detects_pushdown_below_null_supplying_side() {
    assert!(detect(Fault::PushBelowNullSupplyingSide));
}

#[test]
fn pipeline_detects_filter_merged_into_outer_join() {
    assert!(detect(Fault::SelectMergedIntoOuterJoin));
}

#[test]
fn clean_optimizer_produces_no_bug_reports_on_the_same_seeds() {
    let fw = Framework::new(&Default::default()).unwrap();
    let rule = fw.optimizer.rule_id("OuterJoinSimplify").unwrap();
    for seed in [3u64, 11] {
        let suite = generate_suite(
            &fw,
            vec![RuleTarget::Single(rule)],
            4,
            Strategy::Pattern,
            &GenConfig {
                seed,
                pad_ops: 1,
                max_trials: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let graph = build_graph(&fw, &suite).unwrap();
        let inst = Instance::from_graph(&graph);
        let sol = topk(&inst).unwrap();
        let report = execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default()).unwrap();
        assert!(report.passed(), "false positives: {:?}", report.bugs);
    }
}
