//! End-to-end fault detection *and triage*: inject a known-buggy rule
//! into the optimizer, run the full pipeline (suite generation -> graph
//! -> compression -> correctness execution -> triage), and require
//! exactly one deduplicated, minimized, replayable bug signature.

use ruletest_core::compress::{topk, Instance};
use ruletest_core::correctness::execute_solution;
use ruletest_core::faults::{buggy_optimizer, Fault};
use ruletest_core::{
    build_graph, generate_suite, read_bundles, replay, to_bundles, triage_report, write_bundles,
    Framework, GenConfig, RuleTarget, Strategy, TriageConfig,
};
use ruletest_executor::ExecConfig;
use ruletest_storage::{tpch_database, TpchConfig};
use std::sync::Arc;

/// Detects the fault via the full campaign pipeline, then triages the
/// findings and checks every triage guarantee: one signature, a small
/// witness, a replayable bundle, and cache locality at least as good as
/// the campaign's.
fn detect_and_triage(fault: Fault) {
    let db = Arc::new(tpch_database(&TpchConfig::default()).unwrap());
    let opt = Arc::new(buggy_optimizer(db, fault));
    let fw = Framework::with_optimizer(opt.clone());
    let rule = opt.rule_id(fault.rule_name()).unwrap();
    // A handful of seeds: suite generation is deterministic per seed, and
    // detection needs the buggy alternative to win costing on at least one
    // of the k queries.
    for seed in [3u64, 11, 19, 27, 40, 55, 63, 71] {
        let Ok(suite) = generate_suite(
            &fw,
            vec![RuleTarget::Single(rule)],
            4,
            Strategy::Pattern,
            &GenConfig {
                seed,
                pad_ops: 1,
                max_trials: 100,
                ..Default::default()
            },
        ) else {
            continue;
        };
        let Ok(graph) = build_graph(&fw, &suite) else {
            continue;
        };
        let inst = Instance::from_graph(&graph);
        let Ok(sol) = topk(&inst) else {
            continue;
        };
        let Ok(report) = execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default()) else {
            continue;
        };
        if report.passed() {
            continue;
        }
        // The report identifies the sabotaged rule and carries the
        // provenance needed to reproduce each finding.
        assert!(report
            .bugs
            .iter()
            .all(|b| b.target_label == fault.rule_name()));
        assert!(report.bugs.iter().all(|b| !b.sql.is_empty()));
        assert!(report
            .bugs
            .iter()
            .all(|b| b.diff_summary.contains("results differ")));
        assert!(report.bugs.iter().all(|b| b.seed == seed));
        assert!(report.bugs.iter().all(|b| b.scale == 1));
        assert!(report
            .bugs
            .iter()
            .all(|b| b.rule_mask == vec![fault.rule_name().to_string()]));

        // Triage: every raw finding for one injected fault must collapse
        // to a single signature with a small witness.
        let campaign = fw.optimizer.cache_stats();
        let cfg = TriageConfig {
            fault: Some(fault),
            ..TriageConfig::default()
        };
        let triaged = triage_report(&fw, &suite, &report, &cfg).unwrap();
        assert_eq!(triaged.raw_bugs, report.bugs.len());
        assert_eq!(
            triaged.bugs.len(),
            1,
            "{fault:?}: expected one deduplicated signature, got {:?}",
            triaged
                .bugs
                .iter()
                .map(|b| b.signature.key())
                .collect::<Vec<_>>()
        );
        let bug = &triaged.bugs[0];
        assert!(
            bug.ops <= 8,
            "{fault:?}: minimized witness still has {} operators",
            bug.ops
        );
        assert_eq!(bug.duplicates, report.bugs.len() - 1);
        assert!(
            bug.certified,
            "{fault:?}: minimizer failed to certify the witness"
        );

        // The bundle round-trips through JSONL and replays to the exact
        // recorded divergence from its own fields alone.
        let bundles = to_bundles(&fw, &triaged, &cfg).unwrap();
        assert_eq!(bundles.len(), 1);

        // Triage (minimization, certification, bundle self-checks) leans
        // on the invocation cache: its hit ratio must be at least the
        // campaign's.
        let total = fw.optimizer.cache_stats();
        let (t_hits, t_misses) = (total.hits - campaign.hits, total.misses - campaign.misses);
        let triage_ratio = t_hits as f64 / (t_hits + t_misses).max(1) as f64;
        let campaign_ratio = campaign.hits as f64 / (campaign.hits + campaign.misses).max(1) as f64;
        assert!(
            triage_ratio >= campaign_ratio,
            "{fault:?}: triage cache hit ratio {triage_ratio:.2} below campaign's {campaign_ratio:.2}"
        );
        let mut buf = Vec::new();
        write_bundles(&mut buf, &bundles).unwrap();
        let back = read_bundles(&buf[..]).unwrap();
        assert_eq!(back, bundles);
        let outcome = replay(&back[0]).unwrap();
        assert!(
            outcome.confirmed,
            "{fault:?}: replay did not confirm (diverged={}, replayed diff: {})",
            outcome.diverged, outcome.diff_summary
        );
        return;
    }
    panic!("{fault:?} not detected by any seed");
}

#[test]
fn pipeline_detects_unconditional_outer_join_simplification() {
    detect_and_triage(Fault::OuterJoinSimplifyUnconditional);
}

#[test]
fn pipeline_detects_pushdown_below_null_supplying_side() {
    detect_and_triage(Fault::PushBelowNullSupplyingSide);
}

#[test]
fn pipeline_detects_filter_merged_into_outer_join() {
    detect_and_triage(Fault::SelectMergedIntoOuterJoin);
}

#[test]
fn clean_optimizer_produces_no_bug_reports_on_the_same_seeds() {
    let fw = Framework::new(&Default::default()).unwrap();
    let rule = fw.optimizer.rule_id("OuterJoinSimplify").unwrap();
    for seed in [3u64, 11] {
        let suite = generate_suite(
            &fw,
            vec![RuleTarget::Single(rule)],
            4,
            Strategy::Pattern,
            &GenConfig {
                seed,
                pad_ops: 1,
                max_trials: 100,
                ..Default::default()
            },
        )
        .unwrap();
        let graph = build_graph(&fw, &suite).unwrap();
        let inst = Instance::from_graph(&graph);
        let sol = topk(&inst).unwrap();
        let report = execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default()).unwrap();
        assert!(report.passed(), "false positives: {:?}", report.bugs);
        let triaged = triage_report(&fw, &suite, &report, &TriageConfig::default()).unwrap();
        assert!(triaged.bugs.is_empty());
    }
}
