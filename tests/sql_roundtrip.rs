//! Generate SQL <-> parser round trips: a generated logical tree rendered
//! to SQL and parsed back must be the *same tree*; and independently, the
//! round-tripped tree must optimize and execute to the same results.

use ruletest_common::{multisets_equal, Rng};
use ruletest_core::generate::random::random_tree;
use ruletest_core::{Framework, FrameworkConfig};
use ruletest_executor::execute_with;
use ruletest_logical::IdGen;
use ruletest_sql::{parse_sql, to_sql};

#[test]
fn random_trees_round_trip_structurally() {
    let fw = Framework::new(&FrameworkConfig::default()).unwrap();
    let mut rng = Rng::new(0x5EED);
    let mut exact = 0usize;
    const N: usize = 200;
    for _ in 0..N {
        let mut ids = IdGen::new();
        let built = random_tree(&fw.db, &mut rng, &mut ids, 6);
        let sql = to_sql(&fw.db.catalog, &built.tree).expect("render");
        let parsed = parse_sql(&fw.db.catalog, &sql)
            .unwrap_or_else(|e| panic!("parse failed: {e}\nSQL: {sql}"));
        if parsed == built.tree {
            exact += 1;
        }
    }
    // Structural identity should hold essentially always for generated SQL
    // (`c<id>` aliases pin every column id).
    assert!(
        exact == N,
        "only {exact}/{N} round trips were structurally exact"
    );
}

#[test]
fn round_tripped_trees_execute_identically() {
    let fw = Framework::new(&FrameworkConfig::default()).unwrap();
    let mut rng = Rng::new(0xCAFE);
    let exec = ruletest_executor::ExecConfig::default();
    let mut compared = 0usize;
    for _ in 0..60 {
        let mut ids = IdGen::new();
        let built = random_tree(&fw.db, &mut rng, &mut ids, 7);
        let sql = to_sql(&fw.db.catalog, &built.tree).expect("render");
        let parsed = parse_sql(&fw.db.catalog, &sql).expect("parse");
        let p1 = fw.optimizer.optimize(&built.tree).expect("optimize orig");
        let p2 = fw.optimizer.optimize(&parsed).expect("optimize parsed");
        let (Ok(r1), Ok(r2)) = (
            execute_with(&fw.db, &p1.plan, &exec),
            execute_with(&fw.db, &p2.plan, &exec),
        ) else {
            continue;
        };
        assert!(
            multisets_equal(&r1, &r2),
            "round trip changed results:\n{sql}"
        );
        compared += 1;
    }
    assert!(compared >= 40);
}

#[test]
fn handwritten_sql_parses_and_runs() {
    let fw = Framework::new(&FrameworkConfig::default()).unwrap();
    let queries = [
        "SELECT r_name FROM region WHERE r_regionkey < 2",
        "SELECT n.n_name, r.r_name FROM nation n JOIN region r \
         ON n.n_regionkey = r.r_regionkey WHERE n.n_nationkey > 3",
        "SELECT c_mktsegment, COUNT(*) AS cnt, MAX(c_acctbal) AS top_bal \
         FROM customer GROUP BY c_mktsegment",
        "SELECT o_custkey, SUM(o_totalprice) AS total FROM orders \
         GROUP BY o_custkey ORDER BY total DESC LIMIT 5",
        "SELECT s_name FROM supplier s WHERE EXISTS \
         (SELECT 1 FROM nation n WHERE n.n_nationkey = s.s_nationkey AND n.n_regionkey = 1)",
        "SELECT p_brand FROM part WHERE p_size > 10 UNION SELECT p_brand FROM part",
        "SELECT l_returnflag, COUNT(l_shipdate) AS shipped FROM lineitem \
         WHERE l_quantity >= 25 GROUP BY l_returnflag",
        "SELECT * FROM region LEFT OUTER JOIN nation ON r_regionkey = n_regionkey",
    ];
    for sql in queries {
        let tree = parse_sql(&fw.db.catalog, sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
        let res = fw
            .optimizer
            .optimize(&tree)
            .unwrap_or_else(|e| panic!("{sql}: {e}"));
        let rows =
            ruletest_executor::execute(&fw.db, &res.plan).unwrap_or_else(|e| panic!("{sql}: {e}"));
        // Smoke sanity: queries over the generated data return something
        // for at least the unfiltered ones.
        if !sql.contains("WHERE") {
            assert!(!rows.is_empty(), "{sql} returned nothing");
        }
    }
}

#[test]
fn parsed_sql_round_trips_through_generation_again() {
    let fw = Framework::new(&FrameworkConfig::default()).unwrap();
    let sql = "SELECT n_name FROM nation WHERE n_regionkey = 1";
    let t1 = parse_sql(&fw.db.catalog, sql).unwrap();
    let rendered = to_sql(&fw.db.catalog, &t1).unwrap();
    let t2 = parse_sql(&fw.db.catalog, &rendered).unwrap();
    assert_eq!(t1, t2, "second round trip must be a fixpoint");
}
