//! Schema metadata: tables, columns, keys, and foreign keys.
//!
//! Several transformation rules fire only under schema constraints (paper
//! §7): `GbAggEliminateOnKey` needs the grouping columns to cover a key,
//! `SemiJoinToInnerJoinOnKey` needs the probe-side join column to be unique.
//! The catalog is therefore the source of truth for keys and nullability.

use ruletest_common::{DataType, Error, Result, TableId};
use std::collections::HashMap;

/// A column definition within a base table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    pub name: String,
    pub data_type: DataType,
    pub nullable: bool,
}

impl ColumnDef {
    pub fn new(name: &str, data_type: DataType, nullable: bool) -> Self {
        Self {
            name: name.to_string(),
            data_type,
            nullable,
        }
    }
}

/// A foreign-key constraint: `columns` of this table reference
/// `ref_columns` of `ref_table` (ordinals in both cases).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForeignKey {
    pub columns: Vec<usize>,
    pub ref_table: TableId,
    pub ref_columns: Vec<usize>,
}

/// A base table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    pub id: TableId,
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Ordinals of the primary-key columns (possibly composite, never empty
    /// for the shipped schemas).
    pub primary_key: Vec<usize>,
    /// Additional unique keys (ordinal sets).
    pub unique_keys: Vec<Vec<usize>>,
    pub foreign_keys: Vec<ForeignKey>,
}

impl TableDef {
    /// Looks up a column ordinal by name.
    pub fn column_ordinal(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// True iff the given set of ordinals contains some unique key
    /// (primary or secondary) of this table.
    pub fn ordinals_cover_key(&self, ordinals: &[usize]) -> bool {
        let covers = |key: &[usize]| key.iter().all(|k| ordinals.contains(k));
        covers(&self.primary_key) || self.unique_keys.iter().any(|k| covers(k))
    }

    /// True iff the single column ordinal is by itself a unique key.
    pub fn is_unique_column(&self, ordinal: usize) -> bool {
        (self.primary_key.len() == 1 && self.primary_key[0] == ordinal)
            || self
                .unique_keys
                .iter()
                .any(|k| k.len() == 1 && k[0] == ordinal)
    }
}

/// The collection of table definitions the framework runs against.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: Vec<TableDef>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table; its id must equal its insertion index.
    pub fn add_table(&mut self, def: TableDef) -> Result<TableId> {
        if def.id.0 as usize != self.tables.len() {
            return Err(Error::invalid(format!(
                "table {} registered with id {}, expected {}",
                def.name,
                def.id,
                self.tables.len()
            )));
        }
        if self.by_name.contains_key(&def.name) {
            return Err(Error::invalid(format!("duplicate table name {}", def.name)));
        }
        for fk in &def.foreign_keys {
            if fk.columns.len() != fk.ref_columns.len() {
                return Err(Error::invalid(format!(
                    "foreign key arity mismatch on {}",
                    def.name
                )));
            }
        }
        let id = def.id;
        self.by_name.insert(def.name.clone(), id);
        self.tables.push(def);
        Ok(id)
    }

    pub fn table(&self, id: TableId) -> Result<&TableDef> {
        self.tables
            .get(id.0 as usize)
            .ok_or_else(|| Error::not_found(format!("table {id}")))
    }

    pub fn table_by_name(&self, name: &str) -> Result<&TableDef> {
        let id = self
            .by_name
            .get(name)
            .ok_or_else(|| Error::not_found(format!("table '{name}'")))?;
        self.table(*id)
    }

    pub fn tables(&self) -> &[TableDef] {
        &self.tables
    }

    pub fn len(&self) -> usize {
        self.tables.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_col_table(id: u32, name: &str) -> TableDef {
        TableDef {
            id: TableId(id),
            name: name.to_string(),
            columns: vec![
                ColumnDef::new("k", DataType::Int, false),
                ColumnDef::new("v", DataType::Str, true),
            ],
            primary_key: vec![0],
            unique_keys: vec![],
            foreign_keys: vec![],
        }
    }

    #[test]
    fn add_and_lookup_by_name_and_id() {
        let mut cat = Catalog::new();
        let id = cat.add_table(two_col_table(0, "t")).unwrap();
        assert_eq!(cat.table(id).unwrap().name, "t");
        assert_eq!(cat.table_by_name("t").unwrap().id, id);
        assert_eq!(cat.len(), 1);
        assert!(!cat.is_empty());
    }

    #[test]
    fn rejects_out_of_order_ids() {
        let mut cat = Catalog::new();
        assert!(cat.add_table(two_col_table(5, "t")).is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let mut cat = Catalog::new();
        cat.add_table(two_col_table(0, "t")).unwrap();
        assert!(cat.add_table(two_col_table(1, "t")).is_err());
    }

    #[test]
    fn missing_lookups_error() {
        let cat = Catalog::new();
        assert!(cat.table(TableId(0)).is_err());
        assert!(cat.table_by_name("nope").is_err());
    }

    #[test]
    fn key_coverage() {
        let mut t = two_col_table(0, "t");
        t.unique_keys = vec![vec![1]];
        assert!(t.ordinals_cover_key(&[0]));
        assert!(t.ordinals_cover_key(&[1]));
        assert!(t.ordinals_cover_key(&[0, 1]));
        assert!(t.is_unique_column(0));
        assert!(t.is_unique_column(1));

        let mut comp = two_col_table(0, "c");
        comp.primary_key = vec![0, 1];
        assert!(!comp.ordinals_cover_key(&[0]));
        assert!(comp.ordinals_cover_key(&[1, 0]));
        assert!(!comp.is_unique_column(0));
    }

    #[test]
    fn column_ordinal_by_name() {
        let t = two_col_table(0, "t");
        assert_eq!(t.column_ordinal("v"), Some(1));
        assert_eq!(t.column_ordinal("zz"), None);
    }

    #[test]
    fn foreign_key_arity_checked() {
        let mut cat = Catalog::new();
        cat.add_table(two_col_table(0, "parent")).unwrap();
        let mut child = two_col_table(1, "child");
        child.foreign_keys = vec![ForeignKey {
            columns: vec![0],
            ref_table: TableId(0),
            ref_columns: vec![0, 1],
        }];
        assert!(cat.add_table(child).is_err());
    }
}
