//! Deterministic synthetic data generation for the TPC-H schema.
//!
//! All values derive from the configured seed. Foreign keys reference
//! existing parent keys; nullable columns receive NULL with the configured
//! probability, so that null-sensitive rules (outer-join simplification,
//! anti-join rewrites) are genuinely exercised. Value distributions are
//! skewed slightly (modular patterns) so equality predicates have varied
//! selectivities.

use crate::table::Database;
use crate::tpch::{table_ids::*, TpchConfig};
use ruletest_common::{Result, Rng, Row, Value};

const REGION_NAMES: &[&str] = &["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];
const SEGMENTS: &[&str] = &[
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "HOUSEHOLD",
    "MACHINERY",
];
const STATUSES: &[&str] = &["F", "O", "P"];
const PRIORITIES: &[&str] = &["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
const BRANDS: &[&str] = &["Brand#11", "Brand#12", "Brand#21", "Brand#22", "Brand#31"];
const FLAGS: &[&str] = &["A", "N", "R"];

fn maybe_null(rng: &mut Rng, p: f64, v: Value) -> Value {
    if rng.gen_bool(p) {
        Value::Null
    } else {
        v
    }
}

/// Populates all eight TPC-H tables in `db` according to `config`.
pub fn populate_tpch(db: &mut Database, config: &TpchConfig) -> Result<()> {
    let mut rng = Rng::new(config.seed);
    let p = config.null_probability;

    // region
    let rows: Vec<Row> = (0..config.regions)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Str(REGION_NAMES[i % REGION_NAMES.len()].to_string()),
            ]
        })
        .collect();
    db.load_table(REGION, rows)?;

    // nation
    let mut r = rng.fork(1);
    let rows: Vec<Row> = (0..config.nations)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Str(format!("NATION_{i:02}")),
                Value::Int(r.gen_index(config.regions) as i64),
            ]
        })
        .collect();
    db.load_table(NATION, rows)?;

    // supplier
    let mut r = rng.fork(2);
    let rows: Vec<Row> = (0..config.suppliers)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Str(format!("Supplier#{i:04}")),
                Value::Int(r.gen_index(config.nations) as i64),
                {
                    let v = Value::Int(r.gen_range_i64(-999, 9999));
                    maybe_null(&mut r, p, v)
                },
            ]
        })
        .collect();
    db.load_table(SUPPLIER, rows)?;

    // part
    let mut r = rng.fork(3);
    let rows: Vec<Row> = (0..config.parts)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Str(format!("part_{i:04}")),
                Value::Str(BRANDS[r.gen_index(BRANDS.len())].to_string()),
                Value::Int(r.gen_range_i64(1, 50)),
                {
                    let v = Value::Int(r.gen_range_i64(100, 2000));
                    maybe_null(&mut r, p, v)
                },
            ]
        })
        .collect();
    db.load_table(PART, rows)?;

    // partsupp: distinct (partkey, suppkey) pairs.
    let mut r = rng.fork(4);
    let max_pairs = config.parts * config.suppliers;
    let n_ps = config.partsupps.min(max_pairs);
    let mut pair_ids = r.sample_indices(max_pairs, n_ps);
    pair_ids.sort_unstable();
    let rows: Vec<Row> = pair_ids
        .into_iter()
        .map(|pid| {
            vec![
                Value::Int((pid / config.suppliers) as i64),
                Value::Int((pid % config.suppliers) as i64),
                Value::Int(r.gen_range_i64(0, 1000)),
                {
                    let v = Value::Int(r.gen_range_i64(1, 100));
                    maybe_null(&mut r, p, v)
                },
            ]
        })
        .collect();
    db.load_table(PARTSUPP, rows)?;

    // customer
    let mut r = rng.fork(5);
    let rows: Vec<Row> = (0..config.customers)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Str(format!("Customer#{i:05}")),
                Value::Int(r.gen_index(config.nations) as i64),
                {
                    let v = Value::Int(r.gen_range_i64(-999, 9999));
                    maybe_null(&mut r, p, v)
                },
                Value::Str(SEGMENTS[r.gen_index(SEGMENTS.len())].to_string()),
            ]
        })
        .collect();
    db.load_table(CUSTOMER, rows)?;

    // orders
    let mut r = rng.fork(6);
    let rows: Vec<Row> = (0..config.orders)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Int(r.gen_index(config.customers) as i64),
                Value::Str(STATUSES[r.gen_index(STATUSES.len())].to_string()),
                Value::Int(r.gen_range_i64(1000, 500_000)),
                Value::Int(r.gen_range_i64(8000, 10_000)),
                {
                    let v = Value::Str(PRIORITIES[r.gen_index(PRIORITIES.len())].to_string());
                    maybe_null(&mut r, p, v)
                },
            ]
        })
        .collect();
    db.load_table(ORDERS, rows)?;

    // lineitem: line numbers are dense per order.
    let mut r = rng.fork(7);
    let mut rows: Vec<Row> = Vec::with_capacity(config.lineitems);
    let mut order = 0usize;
    let mut line = 1i64;
    for _ in 0..config.lineitems {
        if line > 7 || (line > 1 && r.gen_bool(0.4)) {
            order = (order + 1) % config.orders;
            line = 1;
        }
        rows.push(vec![
            Value::Int(order as i64),
            Value::Int(line),
            Value::Int(r.gen_index(config.parts) as i64),
            Value::Int(r.gen_index(config.suppliers) as i64),
            Value::Int(r.gen_range_i64(1, 50)),
            Value::Int(r.gen_range_i64(100, 100_000)),
            Value::Int(r.gen_range_i64(0, 10)),
            Value::Str(FLAGS[r.gen_index(FLAGS.len())].to_string()),
            {
                let v = Value::Int(r.gen_range_i64(8000, 10_000));
                maybe_null(&mut r, p, v)
            },
        ]);
        line += 1;
        if r.gen_bool(0.5) {
            order = (order + 1) % config.orders;
            line = 1;
        }
    }
    // Ensure PK (l_orderkey, l_linenumber) uniqueness even after wrap-around
    // of the order counter: dedup by renumbering collisions.
    let mut seen = std::collections::HashSet::new();
    for row in &mut rows {
        let mut key = (row[0].clone(), row[1].clone());
        while !seen.insert(key.clone()) {
            let ln = key.1.as_int().expect("linenumber is non-null int") + 1;
            row[1] = Value::Int(ln);
            key = (row[0].clone(), row[1].clone());
        }
    }
    db.load_table(LINEITEM, rows)?;

    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::tpch_database;
    use std::collections::HashSet;

    #[test]
    fn foreign_keys_resolve() {
        let db = tpch_database(&TpchConfig::default()).unwrap();
        for def in db.catalog.tables().to_vec() {
            let child = db.table(def.id).unwrap();
            for fk in &def.foreign_keys {
                let parent = db.table(fk.ref_table).unwrap();
                let parent_keys: HashSet<Vec<Value>> = parent
                    .rows
                    .iter()
                    .map(|r| fk.ref_columns.iter().map(|&c| r[c].clone()).collect())
                    .collect();
                for row in &child.rows {
                    let key: Vec<Value> = fk.columns.iter().map(|&c| row[c].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    assert!(
                        parent_keys.contains(&key),
                        "dangling FK {key:?} in {}",
                        def.name
                    );
                }
            }
        }
    }

    #[test]
    fn primary_keys_are_unique_and_non_null() {
        let db = tpch_database(&TpchConfig::default()).unwrap();
        for def in db.catalog.tables().to_vec() {
            let t = db.table(def.id).unwrap();
            let mut seen = HashSet::new();
            for row in &t.rows {
                let key: Vec<Value> = def.primary_key.iter().map(|&c| row[c].clone()).collect();
                assert!(
                    !key.iter().any(Value::is_null),
                    "NULL in PK of {}",
                    def.name
                );
                assert!(seen.insert(key), "duplicate PK in {}", def.name);
            }
        }
    }

    #[test]
    fn nullable_columns_actually_contain_nulls() {
        let mut cfg = TpchConfig::default();
        cfg.null_probability = 0.3;
        let db = tpch_database(&cfg).unwrap();
        let sup = db.table(SUPPLIER).unwrap();
        let nulls = sup.rows.iter().filter(|r| r[3].is_null()).count();
        assert!(nulls > 0, "expected some NULL s_acctbal values");
    }

    #[test]
    fn non_nullable_columns_contain_no_nulls() {
        let db = tpch_database(&TpchConfig::default()).unwrap();
        for def in db.catalog.tables().to_vec() {
            let t = db.table(def.id).unwrap();
            for (c, cd) in def.columns.iter().enumerate() {
                if !cd.nullable {
                    assert!(
                        t.rows.iter().all(|r| !r[c].is_null()),
                        "NULL in non-nullable {}.{}",
                        def.name,
                        cd.name
                    );
                }
            }
        }
    }

    #[test]
    fn partsupp_pairs_are_distinct() {
        let db = tpch_database(&TpchConfig::default()).unwrap();
        let ps = db.table(PARTSUPP).unwrap();
        let mut seen = HashSet::new();
        for row in &ps.rows {
            assert!(seen.insert((row[0].clone(), row[1].clone())));
        }
    }
}
