//! Catalog, schema, in-memory storage, and synthetic test data.
//!
//! The paper (§2.3, §6.1) assumes a *given, fixed* test database — in their
//! case TPC-H on SQL Server. This crate supplies the equivalent substrate:
//! a TPC-H-shaped schema with primary keys, foreign keys, and nullable
//! columns (the schema properties that rule preconditions depend on), plus a
//! deterministic seeded data generator and per-column statistics consumed by
//! the optimizer's cardinality model.

pub mod catalog;
pub mod datagen;
pub mod ssb;
pub mod stats;
pub mod table;
pub mod tpch;

pub use catalog::{Catalog, ColumnDef, ForeignKey, TableDef};
pub use ssb::{ssb_catalog, ssb_database, SsbConfig};
pub use stats::{ColumnStats, TableStats};
pub use table::{Database, Table};
pub use tpch::{tpch_catalog, tpch_database, TpchConfig};
