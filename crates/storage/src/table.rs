//! In-memory tables and the database handle.

use crate::catalog::Catalog;
use crate::stats::TableStats;
use ruletest_common::{Error, Result, Row, TableId, Value};
use std::collections::HashMap;

/// A materialized base table: its rows plus precomputed statistics and a
/// hash index over the primary key (used by the `IndexSeek` physical
/// operator).
#[derive(Debug, Clone)]
pub struct Table {
    pub id: TableId,
    pub rows: Vec<Row>,
    pub stats: TableStats,
    /// Primary-key hash index: PK value tuple -> row offsets. Keys with any
    /// NULL component are not indexed (our shipped schemas have non-null
    /// keys; the guard is for user-supplied data).
    pk_index: HashMap<Vec<Value>, Vec<usize>>,
}

impl Table {
    /// Builds a table from rows, validating arity and computing stats.
    pub fn from_rows(catalog: &Catalog, id: TableId, rows: Vec<Row>) -> Result<Table> {
        let def = catalog.table(id)?;
        let ncols = def.columns.len();
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(Error::invalid(format!(
                    "row {i} of {} has {} values, expected {ncols}",
                    def.name,
                    row.len()
                )));
            }
        }
        let stats = TableStats::compute(def, &rows);
        let mut pk_index: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
        for (off, row) in rows.iter().enumerate() {
            let key: Vec<Value> = def.primary_key.iter().map(|&o| row[o].clone()).collect();
            if key.iter().any(Value::is_null) {
                continue;
            }
            pk_index.entry(key).or_default().push(off);
        }
        Ok(Table {
            id,
            rows,
            stats,
            pk_index,
        })
    }

    /// Looks up row offsets by primary-key value tuple.
    pub fn pk_lookup(&self, key: &[Value]) -> &[usize] {
        self.pk_index.get(key).map(|v| v.as_slice()).unwrap_or(&[])
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

/// A catalog plus materialized tables — the "given test database" of §2.3.
#[derive(Debug, Clone)]
pub struct Database {
    pub catalog: Catalog,
    tables: HashMap<TableId, Table>,
}

impl Database {
    pub fn new(catalog: Catalog) -> Self {
        Self {
            catalog,
            tables: HashMap::new(),
        }
    }

    /// Materializes a table's data (replacing any previous contents).
    pub fn load_table(&mut self, id: TableId, rows: Vec<Row>) -> Result<()> {
        let table = Table::from_rows(&self.catalog, id, rows)?;
        self.tables.insert(id, table);
        Ok(())
    }

    pub fn table(&self, id: TableId) -> Result<&Table> {
        self.tables
            .get(&id)
            .ok_or_else(|| Error::not_found(format!("table data for {id}")))
    }

    /// Statistics for a table; required by the optimizer's cost model.
    pub fn stats(&self, id: TableId) -> Result<&TableStats> {
        Ok(&self.table(id)?.stats)
    }

    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::row_count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, TableDef};
    use ruletest_common::DataType;

    fn db_with_one_table() -> Database {
        let mut cat = Catalog::new();
        cat.add_table(TableDef {
            id: TableId(0),
            name: "t".into(),
            columns: vec![
                ColumnDef::new("k", DataType::Int, false),
                ColumnDef::new("v", DataType::Str, true),
            ],
            primary_key: vec![0],
            unique_keys: vec![],
            foreign_keys: vec![],
        })
        .unwrap();
        Database::new(cat)
    }

    #[test]
    fn load_and_read_back() {
        let mut db = db_with_one_table();
        db.load_table(
            TableId(0),
            vec![
                vec![Value::Int(1), Value::Str("a".into())],
                vec![Value::Int(2), Value::Null],
            ],
        )
        .unwrap();
        let t = db.table(TableId(0)).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(db.total_rows(), 2);
        assert_eq!(db.stats(TableId(0)).unwrap().row_count, 2);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut db = db_with_one_table();
        let err = db.load_table(TableId(0), vec![vec![Value::Int(1)]]);
        assert!(err.is_err());
    }

    #[test]
    fn pk_index_lookup() {
        let mut db = db_with_one_table();
        db.load_table(
            TableId(0),
            vec![
                vec![Value::Int(10), Value::Null],
                vec![Value::Int(20), Value::Str("x".into())],
            ],
        )
        .unwrap();
        let t = db.table(TableId(0)).unwrap();
        assert_eq!(t.pk_lookup(&[Value::Int(20)]), &[1]);
        assert!(t.pk_lookup(&[Value::Int(99)]).is_empty());
    }

    #[test]
    fn missing_table_data_errors() {
        let db = db_with_one_table();
        assert!(db.table(TableId(0)).is_err());
    }
}
