//! The TPC-H-shaped test schema and database builder.
//!
//! The paper's evaluation (§6.1) "use[s] tables from the TPC-H database" and
//! notes that the logical rules it tests fire largely independent of data
//! size/distribution. We reproduce the eight-table TPC-H schema with
//! simplified types (dates become BIGINT day numbers, monetary columns
//! become BIGINT cents) and configurable, small row counts so that
//! correctness validation — which *executes* plans — stays fast.

use crate::catalog::{Catalog, ColumnDef, ForeignKey, TableDef};
use crate::datagen;
use crate::table::Database;
use ruletest_common::{DataType, Result};

/// Table ids in the TPC-H catalog, in registration order.
pub mod table_ids {
    use ruletest_common::TableId;
    pub const REGION: TableId = TableId(0);
    pub const NATION: TableId = TableId(1);
    pub const SUPPLIER: TableId = TableId(2);
    pub const PART: TableId = TableId(3);
    pub const PARTSUPP: TableId = TableId(4);
    pub const CUSTOMER: TableId = TableId(5);
    pub const ORDERS: TableId = TableId(6);
    pub const LINEITEM: TableId = TableId(7);
}

/// Row-count configuration for the generated database.
///
/// Defaults are deliberately tiny (hundreds of rows): rule firing depends on
/// tree shape and schema, not volume, and small tables keep cross products
/// (which random generation does produce) executable.
#[derive(Debug, Clone)]
pub struct TpchConfig {
    pub seed: u64,
    pub regions: usize,
    pub nations: usize,
    pub suppliers: usize,
    pub parts: usize,
    pub partsupps: usize,
    pub customers: usize,
    pub orders: usize,
    pub lineitems: usize,
    /// Probability that a nullable column's value is NULL.
    pub null_probability: f64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self {
            seed: 0xC0FFEE,
            regions: 3,
            nations: 10,
            suppliers: 12,
            parts: 25,
            partsupps: 60,
            customers: 30,
            orders: 120,
            lineitems: 300,
            null_probability: 0.1,
        }
    }
}

impl TpchConfig {
    /// A configuration scaled by an integer factor (factor 1 = default).
    pub fn scaled(seed: u64, factor: usize) -> Self {
        let base = Self::default();
        let f = factor.max(1);
        Self {
            seed,
            regions: base.regions,
            nations: base.nations,
            suppliers: base.suppliers * f,
            parts: base.parts * f,
            partsupps: base.partsupps * f,
            customers: base.customers * f,
            orders: base.orders * f,
            lineitems: base.lineitems * f,
            null_probability: base.null_probability,
        }
    }

    /// Recovers the integer scale factor this configuration was built
    /// with (1 for the default). Derived from the lineitem count so
    /// hand-tweaked configs still report a sensible magnitude.
    pub fn scale_factor(&self) -> usize {
        (self.lineitems / Self::default().lineitems).max(1)
    }
}

fn col(name: &str, dt: DataType, nullable: bool) -> ColumnDef {
    ColumnDef::new(name, dt, nullable)
}

/// Builds the TPC-H catalog (schema only, no data).
pub fn tpch_catalog() -> Catalog {
    use table_ids::*;
    let mut cat = Catalog::new();

    cat.add_table(TableDef {
        id: REGION,
        name: "region".into(),
        columns: vec![
            col("r_regionkey", DataType::Int, false),
            col("r_name", DataType::Str, false),
        ],
        primary_key: vec![0],
        unique_keys: vec![vec![1]],
        foreign_keys: vec![],
    })
    .expect("static schema");

    cat.add_table(TableDef {
        id: NATION,
        name: "nation".into(),
        columns: vec![
            col("n_nationkey", DataType::Int, false),
            col("n_name", DataType::Str, false),
            col("n_regionkey", DataType::Int, false),
        ],
        primary_key: vec![0],
        unique_keys: vec![],
        foreign_keys: vec![ForeignKey {
            columns: vec![2],
            ref_table: REGION,
            ref_columns: vec![0],
        }],
    })
    .expect("static schema");

    cat.add_table(TableDef {
        id: SUPPLIER,
        name: "supplier".into(),
        columns: vec![
            col("s_suppkey", DataType::Int, false),
            col("s_name", DataType::Str, false),
            col("s_nationkey", DataType::Int, false),
            col("s_acctbal", DataType::Int, true),
        ],
        primary_key: vec![0],
        unique_keys: vec![],
        foreign_keys: vec![ForeignKey {
            columns: vec![2],
            ref_table: NATION,
            ref_columns: vec![0],
        }],
    })
    .expect("static schema");

    cat.add_table(TableDef {
        id: PART,
        name: "part".into(),
        columns: vec![
            col("p_partkey", DataType::Int, false),
            col("p_name", DataType::Str, false),
            col("p_brand", DataType::Str, false),
            col("p_size", DataType::Int, false),
            col("p_retailprice", DataType::Int, true),
        ],
        primary_key: vec![0],
        unique_keys: vec![],
        foreign_keys: vec![],
    })
    .expect("static schema");

    cat.add_table(TableDef {
        id: PARTSUPP,
        name: "partsupp".into(),
        columns: vec![
            col("ps_partkey", DataType::Int, false),
            col("ps_suppkey", DataType::Int, false),
            col("ps_availqty", DataType::Int, false),
            col("ps_supplycost", DataType::Int, true),
        ],
        primary_key: vec![0, 1],
        unique_keys: vec![],
        foreign_keys: vec![
            ForeignKey {
                columns: vec![0],
                ref_table: PART,
                ref_columns: vec![0],
            },
            ForeignKey {
                columns: vec![1],
                ref_table: SUPPLIER,
                ref_columns: vec![0],
            },
        ],
    })
    .expect("static schema");

    cat.add_table(TableDef {
        id: CUSTOMER,
        name: "customer".into(),
        columns: vec![
            col("c_custkey", DataType::Int, false),
            col("c_name", DataType::Str, false),
            col("c_nationkey", DataType::Int, false),
            col("c_acctbal", DataType::Int, true),
            col("c_mktsegment", DataType::Str, false),
        ],
        primary_key: vec![0],
        unique_keys: vec![],
        foreign_keys: vec![ForeignKey {
            columns: vec![2],
            ref_table: NATION,
            ref_columns: vec![0],
        }],
    })
    .expect("static schema");

    cat.add_table(TableDef {
        id: ORDERS,
        name: "orders".into(),
        columns: vec![
            col("o_orderkey", DataType::Int, false),
            col("o_custkey", DataType::Int, false),
            col("o_orderstatus", DataType::Str, false),
            col("o_totalprice", DataType::Int, false),
            col("o_orderdate", DataType::Int, false),
            col("o_orderpriority", DataType::Str, true),
        ],
        primary_key: vec![0],
        unique_keys: vec![],
        foreign_keys: vec![ForeignKey {
            columns: vec![1],
            ref_table: CUSTOMER,
            ref_columns: vec![0],
        }],
    })
    .expect("static schema");

    cat.add_table(TableDef {
        id: LINEITEM,
        name: "lineitem".into(),
        columns: vec![
            col("l_orderkey", DataType::Int, false),
            col("l_linenumber", DataType::Int, false),
            col("l_partkey", DataType::Int, false),
            col("l_suppkey", DataType::Int, false),
            col("l_quantity", DataType::Int, false),
            col("l_extendedprice", DataType::Int, false),
            col("l_discount", DataType::Int, false),
            col("l_returnflag", DataType::Str, false),
            col("l_shipdate", DataType::Int, true),
        ],
        primary_key: vec![0, 1],
        unique_keys: vec![],
        foreign_keys: vec![
            ForeignKey {
                columns: vec![0],
                ref_table: ORDERS,
                ref_columns: vec![0],
            },
            ForeignKey {
                columns: vec![2],
                ref_table: PART,
                ref_columns: vec![0],
            },
            ForeignKey {
                columns: vec![3],
                ref_table: SUPPLIER,
                ref_columns: vec![0],
            },
        ],
    })
    .expect("static schema");

    cat
}

/// Builds and populates the full TPC-H test database.
pub fn tpch_database(config: &TpchConfig) -> Result<Database> {
    let catalog = tpch_catalog();
    let mut db = Database::new(catalog);
    datagen::populate_tpch(&mut db, config)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_eight_tables_with_keys() {
        let cat = tpch_catalog();
        assert_eq!(cat.len(), 8);
        assert_eq!(cat.table_by_name("lineitem").unwrap().primary_key.len(), 2);
        assert!(cat.table_by_name("orders").unwrap().is_unique_column(0));
        assert!(!cat.table_by_name("lineitem").unwrap().is_unique_column(0));
    }

    #[test]
    fn foreign_keys_reference_existing_tables() {
        let cat = tpch_catalog();
        for t in cat.tables() {
            for fk in &t.foreign_keys {
                let parent = cat.table(fk.ref_table).unwrap();
                for &rc in &fk.ref_columns {
                    assert!(rc < parent.columns.len());
                }
            }
        }
    }

    #[test]
    fn default_database_builds_with_expected_row_counts() {
        let cfg = TpchConfig::default();
        let db = tpch_database(&cfg).unwrap();
        assert_eq!(
            db.table(table_ids::LINEITEM).unwrap().row_count(),
            cfg.lineitems
        );
        assert_eq!(
            db.table(table_ids::REGION).unwrap().row_count(),
            cfg.regions
        );
    }

    #[test]
    fn scaled_config_multiplies_fact_tables_only() {
        let c = TpchConfig::scaled(1, 3);
        let base = TpchConfig::default();
        assert_eq!(c.lineitems, base.lineitems * 3);
        assert_eq!(c.regions, base.regions);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = tpch_database(&TpchConfig::default()).unwrap();
        let b = tpch_database(&TpchConfig::default()).unwrap();
        let ta = a.table(table_ids::ORDERS).unwrap();
        let tb = b.table(table_ids::ORDERS).unwrap();
        assert_eq!(ta.rows, tb.rows);

        let mut cfg2 = TpchConfig::default();
        cfg2.seed = 999;
        let c = tpch_database(&cfg2).unwrap();
        assert_ne!(ta.rows, c.table(table_ids::ORDERS).unwrap().rows);
    }
}
