//! A second test schema: a Star-Schema-Benchmark-style retail database.
//!
//! The paper notes (§6.1) that it "also evaluated our tests on other
//! databases with different schemas and sizes, and the results are
//! similar". This schema backs that claim in our reproduction: one wide
//! fact table referencing four dimensions — a shape with very different
//! join topology from TPC-H's chains — behind the same `Database` API, so
//! every framework component runs against it unchanged.

use crate::catalog::{Catalog, ColumnDef, ForeignKey, TableDef};
use crate::table::Database;
use ruletest_common::{DataType, Result, Rng, Row, Value};

/// Table ids in the SSB catalog, in registration order.
pub mod table_ids {
    use ruletest_common::TableId;
    pub const DATE_DIM: TableId = TableId(0);
    pub const CUSTOMER: TableId = TableId(1);
    pub const SUPPLIER: TableId = TableId(2);
    pub const PART: TableId = TableId(3);
    pub const LINEORDER: TableId = TableId(4);
}

/// Row counts and seed for the generated star schema.
#[derive(Debug, Clone)]
pub struct SsbConfig {
    pub seed: u64,
    pub dates: usize,
    pub customers: usize,
    pub suppliers: usize,
    pub parts: usize,
    pub lineorders: usize,
    pub null_probability: f64,
}

impl Default for SsbConfig {
    fn default() -> Self {
        Self {
            seed: 0x55B,
            dates: 24,
            customers: 25,
            suppliers: 10,
            parts: 20,
            lineorders: 250,
            null_probability: 0.1,
        }
    }
}

fn col(name: &str, dt: DataType, nullable: bool) -> ColumnDef {
    ColumnDef::new(name, dt, nullable)
}

/// Builds the SSB catalog (schema only).
pub fn ssb_catalog() -> Catalog {
    use table_ids::*;
    let mut cat = Catalog::new();
    cat.add_table(TableDef {
        id: DATE_DIM,
        name: "date_dim".into(),
        columns: vec![
            col("d_datekey", DataType::Int, false),
            col("d_month", DataType::Int, false),
            col("d_year", DataType::Int, false),
            col("d_weekday", DataType::Str, false),
        ],
        primary_key: vec![0],
        unique_keys: vec![],
        foreign_keys: vec![],
    })
    .expect("static schema");
    cat.add_table(TableDef {
        id: CUSTOMER,
        name: "ssb_customer".into(),
        columns: vec![
            col("c_custkey", DataType::Int, false),
            col("c_city", DataType::Str, false),
            col("c_region", DataType::Str, false),
        ],
        primary_key: vec![0],
        unique_keys: vec![],
        foreign_keys: vec![],
    })
    .expect("static schema");
    cat.add_table(TableDef {
        id: SUPPLIER,
        name: "ssb_supplier".into(),
        columns: vec![
            col("s_suppkey", DataType::Int, false),
            col("s_city", DataType::Str, false),
        ],
        primary_key: vec![0],
        unique_keys: vec![],
        foreign_keys: vec![],
    })
    .expect("static schema");
    cat.add_table(TableDef {
        id: PART,
        name: "ssb_part".into(),
        columns: vec![
            col("p_partkey", DataType::Int, false),
            col("p_category", DataType::Str, false),
            col("p_color", DataType::Str, true),
        ],
        primary_key: vec![0],
        unique_keys: vec![],
        foreign_keys: vec![],
    })
    .expect("static schema");
    cat.add_table(TableDef {
        id: LINEORDER,
        name: "lineorder".into(),
        columns: vec![
            col("lo_orderkey", DataType::Int, false),
            col("lo_linenumber", DataType::Int, false),
            col("lo_custkey", DataType::Int, false),
            col("lo_suppkey", DataType::Int, false),
            col("lo_partkey", DataType::Int, false),
            col("lo_orderdate", DataType::Int, false),
            col("lo_quantity", DataType::Int, false),
            col("lo_revenue", DataType::Int, false),
            col("lo_discount", DataType::Int, true),
        ],
        primary_key: vec![0, 1],
        unique_keys: vec![],
        foreign_keys: vec![
            ForeignKey {
                columns: vec![2],
                ref_table: CUSTOMER,
                ref_columns: vec![0],
            },
            ForeignKey {
                columns: vec![3],
                ref_table: SUPPLIER,
                ref_columns: vec![0],
            },
            ForeignKey {
                columns: vec![4],
                ref_table: PART,
                ref_columns: vec![0],
            },
            ForeignKey {
                columns: vec![5],
                ref_table: DATE_DIM,
                ref_columns: vec![0],
            },
        ],
    })
    .expect("static schema");
    cat
}

const CITIES: &[&str] = &["LIMA", "CAIRO", "OSLO", "KYOTO", "QUITO"];
const REGIONS: &[&str] = &["AMERICA", "AFRICA", "EUROPE", "ASIA"];
const CATEGORIES: &[&str] = &["MFGR#11", "MFGR#12", "MFGR#21"];
const COLORS: &[&str] = &["red", "green", "blue", "plum"];
const WEEKDAYS: &[&str] = &["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

/// Builds and populates the star-schema test database.
pub fn ssb_database(config: &SsbConfig) -> Result<Database> {
    let mut db = Database::new(ssb_catalog());
    let mut rng = Rng::new(config.seed);
    let p = config.null_probability;
    use table_ids::*;

    let rows: Vec<Row> = (0..config.dates)
        .map(|i| {
            vec![
                Value::Int(19_920_101 + i as i64),
                Value::Int(1 + (i as i64 % 12)),
                Value::Int(1992 + (i as i64 / 12)),
                Value::Str(WEEKDAYS[i % WEEKDAYS.len()].to_string()),
            ]
        })
        .collect();
    db.load_table(DATE_DIM, rows)?;

    let mut r = rng.fork(1);
    let rows: Vec<Row> = (0..config.customers)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Str(CITIES[r.gen_index(CITIES.len())].to_string()),
                Value::Str(REGIONS[r.gen_index(REGIONS.len())].to_string()),
            ]
        })
        .collect();
    db.load_table(CUSTOMER, rows)?;

    let mut r = rng.fork(2);
    let rows: Vec<Row> = (0..config.suppliers)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Str(CITIES[r.gen_index(CITIES.len())].to_string()),
            ]
        })
        .collect();
    db.load_table(SUPPLIER, rows)?;

    let mut r = rng.fork(3);
    let rows: Vec<Row> = (0..config.parts)
        .map(|i| {
            let color = if r.gen_bool(p) {
                Value::Null
            } else {
                Value::Str(COLORS[r.gen_index(COLORS.len())].to_string())
            };
            vec![
                Value::Int(i as i64),
                Value::Str(CATEGORIES[r.gen_index(CATEGORIES.len())].to_string()),
                color,
            ]
        })
        .collect();
    db.load_table(PART, rows)?;

    let mut r = rng.fork(4);
    let mut rows: Vec<Row> = Vec::with_capacity(config.lineorders);
    for i in 0..config.lineorders {
        let order = (i / 3) as i64;
        let line = (i % 3) as i64 + 1;
        let discount = if r.gen_bool(p) {
            Value::Null
        } else {
            Value::Int(r.gen_range_i64(0, 10))
        };
        rows.push(vec![
            Value::Int(order),
            Value::Int(line),
            Value::Int(r.gen_index(config.customers) as i64),
            Value::Int(r.gen_index(config.suppliers) as i64),
            Value::Int(r.gen_index(config.parts) as i64),
            Value::Int(19_920_101 + r.gen_index(config.dates) as i64),
            Value::Int(r.gen_range_i64(1, 50)),
            Value::Int(r.gen_range_i64(100, 10_000)),
            discount,
        ]);
    }
    db.load_table(LINEORDER, rows)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_shape() {
        let cat = ssb_catalog();
        assert_eq!(cat.len(), 5);
        let fact = cat.table_by_name("lineorder").unwrap();
        assert_eq!(fact.foreign_keys.len(), 4, "star: fact references all dims");
        assert_eq!(fact.primary_key, vec![0, 1]);
    }

    #[test]
    fn generated_data_upholds_constraints() {
        let db = ssb_database(&SsbConfig::default()).unwrap();
        for def in db.catalog.tables().to_vec() {
            let t = db.table(def.id).unwrap();
            let mut seen = HashSet::new();
            for row in &t.rows {
                let key: Vec<Value> = def.primary_key.iter().map(|&c| row[c].clone()).collect();
                assert!(seen.insert(key), "duplicate PK in {}", def.name);
            }
            for fk in &def.foreign_keys {
                let parent = db.table(fk.ref_table).unwrap();
                let keys: HashSet<Vec<Value>> = parent
                    .rows
                    .iter()
                    .map(|r| fk.ref_columns.iter().map(|&c| r[c].clone()).collect())
                    .collect();
                for row in &t.rows {
                    let k: Vec<Value> = fk.columns.iter().map(|&c| row[c].clone()).collect();
                    if !k.iter().any(Value::is_null) {
                        assert!(keys.contains(&k), "dangling FK in {}", def.name);
                    }
                }
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = ssb_database(&SsbConfig::default()).unwrap();
        let b = ssb_database(&SsbConfig::default()).unwrap();
        assert_eq!(
            a.table(table_ids::LINEORDER).unwrap().rows,
            b.table(table_ids::LINEORDER).unwrap().rows
        );
    }
}
