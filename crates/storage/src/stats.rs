//! Per-table and per-column statistics.
//!
//! These feed the optimizer's cardinality estimator. They are computed
//! exactly (the test databases are small); a production system would sample.

use crate::catalog::TableDef;
use ruletest_common::{Row, Value};
use std::collections::HashSet;

/// Statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnStats {
    /// Number of distinct non-null values.
    pub ndv: u64,
    /// Number of NULLs.
    pub null_count: u64,
    /// Minimum / maximum non-null value (None when all values are NULL or
    /// the table is empty).
    pub min: Option<Value>,
    pub max: Option<Value>,
}

impl ColumnStats {
    /// Fraction of rows that are NULL in this column.
    pub fn null_fraction(&self, row_count: u64) -> f64 {
        if row_count == 0 {
            0.0
        } else {
            self.null_count as f64 / row_count as f64
        }
    }
}

/// Statistics for a whole table.
#[derive(Debug, Clone, PartialEq)]
pub struct TableStats {
    pub row_count: u64,
    pub columns: Vec<ColumnStats>,
}

impl TableStats {
    /// Exact single-pass computation over materialized rows.
    pub fn compute(def: &TableDef, rows: &[Row]) -> TableStats {
        let ncols = def.columns.len();
        let mut distinct: Vec<HashSet<&Value>> = vec![HashSet::new(); ncols];
        let mut nulls = vec![0u64; ncols];
        let mut mins: Vec<Option<&Value>> = vec![None; ncols];
        let mut maxs: Vec<Option<&Value>> = vec![None; ncols];
        for row in rows {
            for (c, v) in row.iter().enumerate() {
                if v.is_null() {
                    nulls[c] += 1;
                    continue;
                }
                distinct[c].insert(v);
                match &mins[c] {
                    Some(m) if v.total_cmp(m).is_ge() => {}
                    _ => mins[c] = Some(v),
                }
                match &maxs[c] {
                    Some(m) if v.total_cmp(m).is_le() => {}
                    _ => maxs[c] = Some(v),
                }
            }
        }
        let columns = (0..ncols)
            .map(|c| ColumnStats {
                ndv: distinct[c].len() as u64,
                null_count: nulls[c],
                min: mins[c].cloned(),
                max: maxs[c].cloned(),
            })
            .collect();
        TableStats {
            row_count: rows.len() as u64,
            columns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, TableDef};
    use ruletest_common::{DataType, TableId};

    fn def() -> TableDef {
        TableDef {
            id: TableId(0),
            name: "t".into(),
            columns: vec![
                ColumnDef::new("a", DataType::Int, false),
                ColumnDef::new("b", DataType::Str, true),
            ],
            primary_key: vec![0],
            unique_keys: vec![],
            foreign_keys: vec![],
        }
    }

    #[test]
    fn computes_ndv_nulls_min_max() {
        let rows = vec![
            vec![Value::Int(3), Value::Str("x".into())],
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(3), Value::Str("y".into())],
        ];
        let s = TableStats::compute(&def(), &rows);
        assert_eq!(s.row_count, 3);
        assert_eq!(s.columns[0].ndv, 2);
        assert_eq!(s.columns[0].null_count, 0);
        assert_eq!(s.columns[0].min, Some(Value::Int(1)));
        assert_eq!(s.columns[0].max, Some(Value::Int(3)));
        assert_eq!(s.columns[1].ndv, 2);
        assert_eq!(s.columns[1].null_count, 1);
        assert_eq!(s.columns[1].min, Some(Value::Str("x".into())));
    }

    #[test]
    fn empty_table() {
        let s = TableStats::compute(&def(), &[]);
        assert_eq!(s.row_count, 0);
        assert_eq!(s.columns[0].ndv, 0);
        assert_eq!(s.columns[0].min, None);
        assert_eq!(s.columns[0].null_fraction(0), 0.0);
    }

    #[test]
    fn null_fraction() {
        let rows = vec![
            vec![Value::Int(1), Value::Null],
            vec![Value::Int(2), Value::Null],
            vec![Value::Int(3), Value::Str("z".into())],
            vec![Value::Int(4), Value::Str("z".into())],
        ];
        let s = TableStats::compute(&def(), &rows);
        assert!((s.columns[1].null_fraction(4) - 0.5).abs() < 1e-12);
    }
}
