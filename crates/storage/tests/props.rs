//! Property tests for the test-database substrate: the invariants the
//! generator must hold for *any* seed and scale, because rule
//! preconditions (keys, FKs, nullability) depend on them. Runs on the
//! in-repo `check` harness.

use ruletest_common::check::{gen, CheckConfig};
use ruletest_common::{ensure, ensure_eq, forall, Value};
use ruletest_storage::{tpch_database, TpchConfig};
use std::collections::HashSet;

fn config(seed: u64, factor: usize, null_p: f64) -> TpchConfig {
    let mut cfg = TpchConfig::scaled(seed, factor);
    cfg.null_probability = null_p;
    cfg
}

/// Primary keys are unique and non-null at every seed/scale.
#[test]
fn primary_keys_hold() {
    forall!(CheckConfig::cases(24);
            seed in gen::u64s(),
            factor in gen::usizes(1..4),
            null_p in gen::f64s(0.0..0.5) => {
        let db = tpch_database(&config(seed, factor, null_p)).unwrap();
        for def in db.catalog.tables().to_vec() {
            let t = db.table(def.id).unwrap();
            let mut seen = HashSet::new();
            for row in &t.rows {
                let key: Vec<Value> =
                    def.primary_key.iter().map(|&c| row[c].clone()).collect();
                ensure!(!key.iter().any(Value::is_null), "{}: NULL PK", def.name);
                ensure!(seen.insert(key), "{}: duplicate PK", def.name);
            }
        }
        Ok(())
    });
}

/// Every non-null foreign key resolves to a parent row.
#[test]
fn foreign_keys_resolve() {
    forall!(CheckConfig::cases(24); seed in gen::u64s(), factor in gen::usizes(1..3) => {
        let db = tpch_database(&config(seed, factor, 0.15)).unwrap();
        for def in db.catalog.tables().to_vec() {
            let child = db.table(def.id).unwrap();
            for fk in &def.foreign_keys {
                let parent = db.table(fk.ref_table).unwrap();
                let parent_keys: HashSet<Vec<Value>> = parent
                    .rows
                    .iter()
                    .map(|r| fk.ref_columns.iter().map(|&c| r[c].clone()).collect())
                    .collect();
                for row in &child.rows {
                    let key: Vec<Value> =
                        fk.columns.iter().map(|&c| row[c].clone()).collect();
                    if key.iter().any(Value::is_null) {
                        continue;
                    }
                    ensure!(parent_keys.contains(&key), "{}: dangling FK", def.name);
                }
            }
        }
        Ok(())
    });
}

/// Statistics agree with the data they were computed from.
#[test]
fn statistics_are_exact() {
    forall!(CheckConfig::cases(24); seed in gen::u64s() => {
        let db = tpch_database(&config(seed, 1, 0.2)).unwrap();
        for def in db.catalog.tables().to_vec() {
            let t = db.table(def.id).unwrap();
            ensure_eq!(t.stats.row_count as usize, t.rows.len());
            for (c, stats) in t.stats.columns.iter().enumerate() {
                let nulls = t.rows.iter().filter(|r| r[c].is_null()).count();
                ensure_eq!(stats.null_count as usize, nulls);
                let distinct: HashSet<&Value> = t
                    .rows
                    .iter()
                    .map(|r| &r[c])
                    .filter(|v| !v.is_null())
                    .collect();
                ensure_eq!(stats.ndv as usize, distinct.len());
                if let Some(min) = &stats.min {
                    ensure!(distinct.iter().all(|v| min.total_cmp(v).is_le()));
                    ensure!(distinct.contains(min));
                }
            }
        }
        Ok(())
    });
}

/// The generator is a pure function of its configuration.
#[test]
fn generation_is_pure() {
    forall!(CheckConfig::cases(24); seed in gen::u64s() => {
        let a = tpch_database(&config(seed, 1, 0.1)).unwrap();
        let b = tpch_database(&config(seed, 1, 0.1)).unwrap();
        for def in a.catalog.tables().to_vec() {
            ensure_eq!(&a.table(def.id).unwrap().rows, &b.table(def.id).unwrap().rows);
        }
        Ok(())
    });
}

/// The PK hash index answers point lookups consistently with a scan.
#[test]
fn pk_index_matches_scan() {
    forall!(CheckConfig::cases(24); seed in gen::u64s(), probe in gen::i64s(0..50) => {
        let db = tpch_database(&config(seed, 1, 0.1)).unwrap();
        let def = db.catalog.table_by_name("orders").unwrap().clone();
        let t = db.table(def.id).unwrap();
        let key = vec![Value::Int(probe)];
        let via_index: HashSet<usize> = t.pk_lookup(&key).iter().copied().collect();
        let via_scan: HashSet<usize> = t
            .rows
            .iter()
            .enumerate()
            .filter(|(_, r)| r[0] == Value::Int(probe))
            .map(|(i, _)| i)
            .collect();
        ensure_eq!(via_index, via_scan);
        Ok(())
    });
}
