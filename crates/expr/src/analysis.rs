//! Expression analyses used by transformation-rule preconditions.
//!
//! These are the load-bearing pieces behind the paper's observation that a
//! rule's *pattern* is necessary but not sufficient (§3): the sufficient
//! conditions live here — which side of a join a conjunct references,
//! whether a predicate rejects NULLs, whether a projection can absorb a
//! predicate, and so on.

use crate::expr::{BinOp, Expr};
use ruletest_common::ColId;
use std::collections::{BTreeSet, HashMap};

/// Collects all column ids referenced by `expr` into `out`.
pub fn collect_columns(expr: &Expr, out: &mut BTreeSet<ColId>) {
    match expr {
        Expr::Col(c) => {
            out.insert(*c);
        }
        Expr::Lit(_) => {}
        Expr::Bin { left, right, .. } => {
            collect_columns(left, out);
            collect_columns(right, out);
        }
        Expr::Not(e) | Expr::IsNull(e) => collect_columns(e, out),
    }
}

/// The set of column ids referenced by `expr`.
pub fn columns_of(expr: &Expr) -> BTreeSet<ColId> {
    let mut out = BTreeSet::new();
    collect_columns(expr, &mut out);
    out
}

/// Splits a predicate into its top-level AND conjuncts. The literal TRUE
/// contributes no conjuncts.
///
/// ```
/// use ruletest_common::ColId;
/// use ruletest_expr::{conjuncts, Expr};
/// let p = Expr::and(
///     Expr::eq(Expr::col(ColId(1)), Expr::lit(1i64)),
///     Expr::eq(Expr::col(ColId(2)), Expr::lit(2i64)),
/// );
/// assert_eq!(conjuncts(&p).len(), 2);
/// assert!(conjuncts(&Expr::true_lit()).is_empty());
/// ```
pub fn conjuncts(expr: &Expr) -> Vec<Expr> {
    fn walk(e: &Expr, out: &mut Vec<Expr>) {
        match e {
            Expr::Bin {
                op: BinOp::And,
                left,
                right,
            } => {
                walk(left, out);
                walk(right, out);
            }
            _ if e.is_true_lit() => {}
            other => out.push(other.clone()),
        }
    }
    let mut out = Vec::new();
    walk(expr, &mut out);
    out
}

/// Reassembles conjuncts into a single predicate (empty list -> TRUE).
pub fn conjoin(parts: Vec<Expr>) -> Expr {
    let mut iter = parts.into_iter();
    match iter.next() {
        None => Expr::true_lit(),
        Some(first) => iter.fold(first, Expr::and),
    }
}

/// If `expr` is a simple equality between two distinct column refs, returns
/// the pair. Used to detect equi-join conjuncts for hash/merge join rules.
pub fn try_col_eq_col(expr: &Expr) -> Option<(ColId, ColId)> {
    if let Expr::Bin {
        op: BinOp::Eq,
        left,
        right,
    } = expr
    {
        if let (Expr::Col(a), Expr::Col(b)) = (left.as_ref(), right.as_ref()) {
            if a != b {
                return Some((*a, *b));
            }
        }
    }
    None
}

/// Rewrites column references according to `map` (unmapped columns are left
/// unchanged).
pub fn remap_columns(expr: &Expr, map: &HashMap<ColId, ColId>) -> Expr {
    match expr {
        Expr::Col(c) => Expr::Col(*map.get(c).unwrap_or(c)),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Bin { op, left, right } => {
            Expr::bin(*op, remap_columns(left, map), remap_columns(right, map))
        }
        Expr::Not(e) => Expr::not(remap_columns(e, map)),
        Expr::IsNull(e) => Expr::is_null(remap_columns(e, map)),
    }
}

/// Substitutes whole expressions for column references (used to push a
/// predicate through a computing projection, and to merge projections).
pub fn substitute(expr: &Expr, map: &HashMap<ColId, Expr>) -> Expr {
    match expr {
        Expr::Col(c) => map.get(c).cloned().unwrap_or(Expr::Col(*c)),
        Expr::Lit(v) => Expr::Lit(v.clone()),
        Expr::Bin { op, left, right } => {
            Expr::bin(*op, substitute(left, map), substitute(right, map))
        }
        Expr::Not(e) => Expr::not(substitute(e, map)),
        Expr::IsNull(e) => Expr::is_null(substitute(e, map)),
    }
}

/// True iff `expr` evaluates to NULL whenever column `col` is NULL
/// (strict null propagation).
fn strictly_propagates_null(expr: &Expr, col: ColId) -> bool {
    match expr {
        Expr::Col(c) => *c == col,
        Expr::Lit(_) => false,
        Expr::Bin { op, left, right } => {
            if op.is_logical() {
                // Kleene AND/OR can absorb NULL (FALSE AND NULL = FALSE).
                false
            } else {
                strictly_propagates_null(left, col) || strictly_propagates_null(right, col)
            }
        }
        Expr::Not(e) => strictly_propagates_null(e, col),
        Expr::IsNull(_) => false,
    }
}

/// Conservative syntactic test: does the predicate reject rows where *any*
/// of `cols` is NULL? (i.e. the predicate cannot evaluate to TRUE then).
///
/// This is the precondition of the outer-join-to-inner-join rule: a
/// null-rejecting predicate above a left outer join on the null-supplying
/// side's columns makes the outer join equivalent to an inner join.
pub fn is_null_rejecting(expr: &Expr, cols: &BTreeSet<ColId>) -> bool {
    cols.iter().any(|&c| rejects_null_on(expr, c))
}

fn rejects_null_on(expr: &Expr, col: ColId) -> bool {
    match expr {
        // A strict expression that is NULL is not TRUE, so the filter drops
        // the row.
        Expr::Bin { op, left, right } if op.is_comparison() => {
            strictly_propagates_null(left, col) || strictly_propagates_null(right, col)
        }
        Expr::Bin {
            op: BinOp::And,
            left,
            right,
        } => rejects_null_on(left, col) || rejects_null_on(right, col),
        Expr::Bin {
            op: BinOp::Or,
            left,
            right,
        } => rejects_null_on(left, col) && rejects_null_on(right, col),
        // NOT(e) is TRUE iff e is FALSE; if e is strict on col, NULL col
        // makes e NULL, so NOT e is NULL -> rejected.
        Expr::Not(e) => match e.as_ref() {
            Expr::Bin { op, left, right } if op.is_comparison() => {
                strictly_propagates_null(left, col) || strictly_propagates_null(right, col)
            }
            // NOT (x IS NULL) rejects NULL x.
            Expr::IsNull(inner) => matches!(inner.as_ref(), Expr::Col(c) if *c == col),
            _ => false,
        },
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval;
    use ruletest_common::Value;

    fn c(i: u32) -> ColId {
        ColId(i)
    }

    #[test]
    fn columns_collects_all_refs() {
        let e = Expr::and(
            Expr::eq(Expr::col(c(1)), Expr::col(c(2))),
            Expr::is_null(Expr::col(c(3))),
        );
        let cols = columns_of(&e);
        assert_eq!(cols, BTreeSet::from([c(1), c(2), c(3)]));
    }

    #[test]
    fn conjuncts_roundtrip_through_conjoin() {
        let e = Expr::and(
            Expr::and(
                Expr::eq(Expr::col(c(1)), Expr::lit(1i64)),
                Expr::eq(Expr::col(c(2)), Expr::lit(2i64)),
            ),
            Expr::eq(Expr::col(c(3)), Expr::lit(3i64)),
        );
        let parts = conjuncts(&e);
        assert_eq!(parts.len(), 3);
        let back = conjoin(parts);
        // Same truth value under any binding (associativity only).
        for v in [Value::Int(1), Value::Int(2), Value::Null] {
            let mut g1 = |_id: ColId| v.clone();
            let mut g2 = |_id: ColId| v.clone();
            assert_eq!(eval(&e, &mut g1), eval(&back, &mut g2));
        }
    }

    #[test]
    fn conjuncts_of_true_is_empty() {
        assert!(conjuncts(&Expr::true_lit()).is_empty());
        assert!(conjoin(vec![]).is_true_lit());
    }

    #[test]
    fn col_eq_col_detection() {
        assert_eq!(
            try_col_eq_col(&Expr::eq(Expr::col(c(1)), Expr::col(c(2)))),
            Some((c(1), c(2)))
        );
        assert_eq!(
            try_col_eq_col(&Expr::eq(Expr::col(c(1)), Expr::lit(5i64))),
            None
        );
        assert_eq!(
            try_col_eq_col(&Expr::eq(Expr::col(c(1)), Expr::col(c(1)))),
            None
        );
    }

    #[test]
    fn remap_rewrites_only_mapped() {
        let e = Expr::eq(Expr::col(c(1)), Expr::col(c(2)));
        let map = HashMap::from([(c(1), c(10))]);
        assert_eq!(
            remap_columns(&e, &map),
            Expr::eq(Expr::col(c(10)), Expr::col(c(2)))
        );
    }

    #[test]
    fn substitute_expands_computed_columns() {
        let e = Expr::eq(Expr::col(c(5)), Expr::lit(7i64));
        let map = HashMap::from([(
            c(5),
            Expr::bin(BinOp::Add, Expr::col(c(1)), Expr::col(c(2))),
        )]);
        let sub = substitute(&e, &map);
        assert_eq!(sub.to_string(), "((c1 + c2) = 7)");
    }

    #[test]
    fn null_rejection_on_comparisons() {
        let cols = BTreeSet::from([c(1)]);
        assert!(is_null_rejecting(
            &Expr::eq(Expr::col(c(1)), Expr::lit(3i64)),
            &cols
        ));
        assert!(is_null_rejecting(
            &Expr::bin(BinOp::Lt, Expr::col(c(2)), Expr::col(c(1))),
            &cols
        ));
        // IS NULL accepts nulls.
        assert!(!is_null_rejecting(&Expr::is_null(Expr::col(c(1))), &cols));
        // NOT (c1 IS NULL) rejects.
        assert!(is_null_rejecting(
            &Expr::not(Expr::is_null(Expr::col(c(1)))),
            &cols
        ));
    }

    #[test]
    fn null_rejection_through_and_or() {
        let cols = BTreeSet::from([c(1)]);
        let rej = Expr::eq(Expr::col(c(1)), Expr::lit(3i64));
        let acc = Expr::is_null(Expr::col(c(1)));
        assert!(is_null_rejecting(
            &Expr::and(rej.clone(), acc.clone()),
            &cols
        ));
        assert!(!is_null_rejecting(
            &Expr::or(rej.clone(), acc.clone()),
            &cols
        ));
        assert!(is_null_rejecting(&Expr::or(rej.clone(), rej), &cols));
    }

    #[test]
    fn null_rejection_is_semantically_sound() {
        // For a sample of predicates flagged as null-rejecting on c1,
        // evaluating with c1 = NULL must not yield TRUE.
        let preds = vec![
            Expr::eq(Expr::col(c(1)), Expr::lit(3i64)),
            Expr::and(Expr::eq(Expr::col(c(1)), Expr::col(c(2))), Expr::lit(true)),
            Expr::not(Expr::is_null(Expr::col(c(1)))),
            Expr::bin(
                BinOp::Ge,
                Expr::bin(BinOp::Add, Expr::col(c(1)), Expr::lit(1i64)),
                Expr::lit(0i64),
            ),
        ];
        let cols = BTreeSet::from([c(1)]);
        for p in preds {
            assert!(is_null_rejecting(&p, &cols), "{p}");
            for other in [Value::Int(0), Value::Int(5), Value::Null] {
                let mut get = |id: ColId| {
                    if id == c(1) {
                        Value::Null
                    } else {
                        other.clone()
                    }
                };
                assert_ne!(eval(&p, &mut get), Value::Bool(true), "{p}");
            }
        }
    }

    #[test]
    fn arithmetic_propagates_through_comparison() {
        let cols = BTreeSet::from([c(1)]);
        let p = Expr::eq(
            Expr::bin(BinOp::Mul, Expr::col(c(1)), Expr::lit(2i64)),
            Expr::lit(10i64),
        );
        assert!(is_null_rejecting(&p, &cols));
    }
}
