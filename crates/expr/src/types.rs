//! Static type inference for scalar expressions.

use crate::expr::Expr;
use ruletest_common::{ColId, DataType, Error, Result};

/// Infers the type of `expr` given a column-type resolver. Returns `None`
/// for the untyped literal NULL.
pub fn infer_type(
    expr: &Expr,
    col_type: &impl Fn(ColId) -> Option<DataType>,
) -> Result<Option<DataType>> {
    match expr {
        Expr::Col(c) => col_type(*c)
            .map(Some)
            .ok_or_else(|| Error::invalid(format!("unknown column {c}"))),
        Expr::Lit(v) => Ok(v.data_type()),
        Expr::IsNull(e) => {
            infer_type(e, col_type)?;
            Ok(Some(DataType::Bool))
        }
        Expr::Not(e) => {
            let t = infer_type(e, col_type)?;
            match t {
                None | Some(DataType::Bool) => Ok(Some(DataType::Bool)),
                Some(other) => Err(Error::invalid(format!("NOT over {other}"))),
            }
        }
        Expr::Bin { op, left, right } => {
            let lt = infer_type(left, col_type)?;
            let rt = infer_type(right, col_type)?;
            if op.is_comparison() {
                match (lt, rt) {
                    (Some(a), Some(b)) if a != b => {
                        Err(Error::invalid(format!("comparing {a} with {b}")))
                    }
                    _ => Ok(Some(DataType::Bool)),
                }
            } else if op.is_arithmetic() {
                for t in [lt, rt].into_iter().flatten() {
                    if t != DataType::Int {
                        return Err(Error::invalid(format!("arithmetic over {t}")));
                    }
                }
                Ok(Some(DataType::Int))
            } else {
                for t in [lt, rt].into_iter().flatten() {
                    if t != DataType::Bool {
                        return Err(Error::invalid(format!("logical op over {t}")));
                    }
                }
                Ok(Some(DataType::Bool))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    fn resolver(id: ColId) -> Option<DataType> {
        match id.0 {
            1 => Some(DataType::Int),
            2 => Some(DataType::Str),
            3 => Some(DataType::Bool),
            _ => None,
        }
    }

    #[test]
    fn well_typed_predicate() {
        let e = Expr::and(
            Expr::eq(Expr::col(ColId(1)), Expr::lit(4i64)),
            Expr::not(Expr::col(ColId(3))),
        );
        assert_eq!(infer_type(&e, &resolver).unwrap(), Some(DataType::Bool));
    }

    #[test]
    fn cross_type_comparison_rejected() {
        let e = Expr::eq(Expr::col(ColId(1)), Expr::col(ColId(2)));
        assert!(infer_type(&e, &resolver).is_err());
    }

    #[test]
    fn arithmetic_requires_int() {
        let ok = Expr::bin(BinOp::Add, Expr::col(ColId(1)), Expr::lit(1i64));
        assert_eq!(infer_type(&ok, &resolver).unwrap(), Some(DataType::Int));
        let bad = Expr::bin(BinOp::Add, Expr::col(ColId(2)), Expr::lit(1i64));
        assert!(infer_type(&bad, &resolver).is_err());
    }

    #[test]
    fn null_literal_is_polymorphic() {
        use ruletest_common::Value;
        let e = Expr::eq(Expr::col(ColId(2)), Expr::Lit(Value::Null));
        assert_eq!(infer_type(&e, &resolver).unwrap(), Some(DataType::Bool));
        assert_eq!(
            infer_type(&Expr::Lit(Value::Null), &resolver).unwrap(),
            None
        );
    }

    #[test]
    fn unknown_column_errors() {
        let e = Expr::col(ColId(99));
        assert!(infer_type(&e, &resolver).is_err());
    }

    #[test]
    fn logical_over_string_rejected() {
        let e = Expr::and(Expr::col(ColId(2)), Expr::lit(true));
        assert!(infer_type(&e, &resolver).is_err());
    }
}
