//! Aggregate functions and their accumulators.
//!
//! The supported set (COUNT(*), COUNT, SUM, MIN, MAX) is exactly the
//! decomposable core that the local/global aggregation-split and eager
//! aggregation rules are defined over. AVG is intentionally excluded: its
//! division would introduce cross-plan rounding divergence in correctness
//! validation (see DESIGN.md).

use crate::expr::Expr;
use ruletest_common::{ColId, DataType, Value};

/// An aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` — counts rows.
    CountStar,
    /// `COUNT(col)` — counts non-null values.
    Count,
    /// `SUM(col)` — NULL over an empty/all-null group.
    Sum,
    /// `MIN(col)`.
    Min,
    /// `MAX(col)`.
    Max,
}

impl AggFunc {
    /// The function that combines partial results of this aggregate when an
    /// aggregation is split into local and global phases:
    /// `COUNT -> SUM of partial counts`, the others are self-combining.
    pub fn combining_func(self) -> AggFunc {
        match self {
            AggFunc::CountStar | AggFunc::Count => AggFunc::Sum,
            AggFunc::Sum => AggFunc::Sum,
            AggFunc::Min => AggFunc::Min,
            AggFunc::Max => AggFunc::Max,
        }
    }

    /// Output type given the argument type (COUNT variants are INT
    /// regardless; SUM requires INT; MIN/MAX preserve).
    pub fn output_type(self, arg: Option<DataType>) -> DataType {
        match self {
            AggFunc::CountStar | AggFunc::Count | AggFunc::Sum => DataType::Int,
            AggFunc::Min | AggFunc::Max => arg.unwrap_or(DataType::Int),
        }
    }

    /// SQL name.
    pub fn sql_name(self) -> &'static str {
        match self {
            AggFunc::CountStar | AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        }
    }
}

/// One aggregate in a Group-By Aggregate operator: the function, its column
/// argument (None only for COUNT(*)), and the output column id it produces.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AggCall {
    pub func: AggFunc,
    pub arg: Option<ColId>,
    pub output: ColId,
}

impl AggCall {
    pub fn new(func: AggFunc, arg: Option<ColId>, output: ColId) -> Self {
        debug_assert_eq!(arg.is_none(), func == AggFunc::CountStar);
        Self { func, arg, output }
    }

    /// Renders the call over a rendered argument, e.g. `SUM(t0.a)`.
    pub fn render(&self, arg_sql: &str) -> String {
        match self.func {
            AggFunc::CountStar => "COUNT(*)".to_string(),
            f => format!("{}({})", f.sql_name(), arg_sql),
        }
    }

    /// The argument as an expression (COUNT(*) has none).
    pub fn arg_expr(&self) -> Option<Expr> {
        self.arg.map(Expr::Col)
    }
}

/// Running state for one aggregate over one group.
#[derive(Debug, Clone)]
pub enum AggAccumulator {
    Count(i64),
    Sum { sum: i64, saw_value: bool },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggAccumulator {
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::CountStar | AggFunc::Count => AggAccumulator::Count(0),
            AggFunc::Sum => AggAccumulator::Sum {
                sum: 0,
                saw_value: false,
            },
            AggFunc::Min => AggAccumulator::Min(None),
            AggFunc::Max => AggAccumulator::Max(None),
        }
    }

    /// Feeds one input value. For COUNT(*) the value is ignored (callers
    /// pass `Value::Bool(true)` or anything non-null); for the others, SQL
    /// null-skipping applies.
    pub fn update(&mut self, func: AggFunc, v: &Value) {
        match (self, func) {
            (AggAccumulator::Count(n), AggFunc::CountStar) => *n += 1,
            (AggAccumulator::Count(n), AggFunc::Count) => {
                if !v.is_null() {
                    *n += 1;
                }
            }
            (AggAccumulator::Sum { sum, saw_value }, _) => {
                if let Some(i) = v.as_int() {
                    *sum = sum.wrapping_add(i);
                    *saw_value = true;
                }
            }
            (AggAccumulator::Min(cur), _) => {
                if !v.is_null() {
                    match cur {
                        Some(m) if v.sql_cmp(m) != Some(std::cmp::Ordering::Less) => {}
                        _ => *cur = Some(v.clone()),
                    }
                }
            }
            (AggAccumulator::Max(cur), _) => {
                if !v.is_null() {
                    match cur {
                        Some(m) if v.sql_cmp(m) != Some(std::cmp::Ordering::Greater) => {}
                        _ => *cur = Some(v.clone()),
                    }
                }
            }
            (acc, f) => panic!("accumulator/function mismatch: {acc:?} vs {f:?}"),
        }
    }

    /// Finalizes the aggregate for the group.
    pub fn finish(self) -> Value {
        match self {
            AggAccumulator::Count(n) => Value::Int(n),
            AggAccumulator::Sum { sum, saw_value } => {
                if saw_value {
                    Value::Int(sum)
                } else {
                    Value::Null
                }
            }
            AggAccumulator::Min(v) | AggAccumulator::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, vals: &[Value]) -> Value {
        let mut acc = AggAccumulator::new(func);
        for v in vals {
            acc.update(func, v);
        }
        acc.finish()
    }

    #[test]
    fn count_star_counts_everything() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(run(AggFunc::CountStar, &vals), Value::Int(3));
    }

    #[test]
    fn count_skips_nulls() {
        let vals = vec![Value::Int(1), Value::Null, Value::Int(3)];
        assert_eq!(run(AggFunc::Count, &vals), Value::Int(2));
    }

    #[test]
    fn sum_of_empty_or_all_null_is_null() {
        assert_eq!(run(AggFunc::Sum, &[]), Value::Null);
        assert_eq!(run(AggFunc::Sum, &[Value::Null, Value::Null]), Value::Null);
        assert_eq!(
            run(AggFunc::Sum, &[Value::Int(2), Value::Null, Value::Int(5)]),
            Value::Int(7)
        );
    }

    #[test]
    fn min_max_skip_nulls_and_handle_strings() {
        let vals = vec![
            Value::Str("m".into()),
            Value::Null,
            Value::Str("a".into()),
            Value::Str("z".into()),
        ];
        assert_eq!(run(AggFunc::Min, &vals), Value::Str("a".into()));
        assert_eq!(run(AggFunc::Max, &vals), Value::Str("z".into()));
        assert_eq!(run(AggFunc::Min, &[Value::Null]), Value::Null);
    }

    #[test]
    fn combining_functions_are_decomposition_correct() {
        // Split [1,2,NULL,4] into [1,2] and [NULL,4]; combining partials must
        // equal the direct aggregate.
        let all = [Value::Int(1), Value::Int(2), Value::Null, Value::Int(4)];
        for func in [AggFunc::Count, AggFunc::Sum, AggFunc::Min, AggFunc::Max] {
            let direct = run(func, &all);
            let p1 = run(func, &all[..2]);
            let p2 = run(func, &all[2..]);
            let combined = run(func.combining_func(), &[p1, p2]);
            assert_eq!(combined, direct, "{func:?}");
        }
        // COUNT(*) combines via SUM too.
        let direct = run(AggFunc::CountStar, &all);
        let p1 = run(AggFunc::CountStar, &all[..1]);
        let p2 = run(AggFunc::CountStar, &all[1..]);
        assert_eq!(run(AggFunc::Sum, &[p1, p2]), direct);
    }

    #[test]
    fn render_and_types() {
        let call = AggCall::new(AggFunc::CountStar, None, ColId(9));
        assert_eq!(call.render(""), "COUNT(*)");
        let call = AggCall::new(AggFunc::Sum, Some(ColId(1)), ColId(9));
        assert_eq!(call.render("t.a"), "SUM(t.a)");
        assert_eq!(AggFunc::Sum.output_type(Some(DataType::Int)), DataType::Int);
        assert_eq!(AggFunc::Min.output_type(Some(DataType::Str)), DataType::Str);
        assert_eq!(AggFunc::Count.output_type(None), DataType::Int);
    }
}
