//! Scalar expressions, three-valued-logic evaluation, and the expression
//! analyses that transformation-rule preconditions are built from
//! (conjunct decomposition, column usage, null-rejection, substitution).

pub mod agg;
pub mod analysis;
pub mod eval;
pub mod expr;
pub mod types;

pub use agg::{AggAccumulator, AggCall, AggFunc};
pub use analysis::{
    collect_columns, columns_of, conjoin, conjuncts, is_null_rejecting, remap_columns, substitute,
    try_col_eq_col,
};
pub use eval::eval;
pub use expr::{BinOp, Expr};
pub use types::infer_type;
