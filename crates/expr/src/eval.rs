//! Three-valued-logic expression evaluation.
//!
//! NULL semantics follow SQL: comparisons and arithmetic are *strict*
//! (NULL in, NULL out); AND/OR/NOT use Kleene logic; `IS NULL` is total.
//! Integer arithmetic wraps on overflow — the generators keep literals small
//! enough that this never fires in practice, but wrapping guarantees two
//! equivalent plans can never diverge via a panic.

use crate::expr::{BinOp, Expr};
use ruletest_common::{ColId, Value};
use std::cmp::Ordering;

/// Evaluates `expr`, resolving column references through `get`.
pub fn eval(expr: &Expr, get: &mut impl FnMut(ColId) -> Value) -> Value {
    match expr {
        Expr::Col(c) => get(*c),
        Expr::Lit(v) => v.clone(),
        Expr::Not(e) => match eval(e, get) {
            Value::Null => Value::Null,
            Value::Bool(b) => Value::Bool(!b),
            other => panic!("type error: NOT over {other:?}"),
        },
        Expr::IsNull(e) => Value::Bool(eval(e, get).is_null()),
        Expr::Bin { op, left, right } => {
            // Kleene AND/OR need non-strict handling (short-circuit on the
            // dominating value even when the other side is NULL).
            if *op == BinOp::And || *op == BinOp::Or {
                let l = eval(left, get);
                let r = eval(right, get);
                return eval_logical(*op, l, r);
            }
            let l = eval(left, get);
            let r = eval(right, get);
            if l.is_null() || r.is_null() {
                return Value::Null;
            }
            if op.is_comparison() {
                let ord = l.sql_cmp(&r).expect("non-null operands");
                Value::Bool(match op {
                    BinOp::Eq => ord == Ordering::Equal,
                    BinOp::Ne => ord != Ordering::Equal,
                    BinOp::Lt => ord == Ordering::Less,
                    BinOp::Le => ord != Ordering::Greater,
                    BinOp::Gt => ord == Ordering::Greater,
                    BinOp::Ge => ord != Ordering::Less,
                    _ => unreachable!(),
                })
            } else {
                let a = l.as_int().expect("arith over non-null");
                let b = r.as_int().expect("arith over non-null");
                Value::Int(match op {
                    BinOp::Add => a.wrapping_add(b),
                    BinOp::Sub => a.wrapping_sub(b),
                    BinOp::Mul => a.wrapping_mul(b),
                    _ => unreachable!(),
                })
            }
        }
    }
}

fn eval_logical(op: BinOp, l: Value, r: Value) -> Value {
    let lb = match &l {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        other => panic!("type error: logical op over {other:?}"),
    };
    let rb = match &r {
        Value::Null => None,
        Value::Bool(b) => Some(*b),
        other => panic!("type error: logical op over {other:?}"),
    };
    match op {
        BinOp::And => match (lb, rb) {
            (Some(false), _) | (_, Some(false)) => Value::Bool(false),
            (Some(true), Some(true)) => Value::Bool(true),
            _ => Value::Null,
        },
        BinOp::Or => match (lb, rb) {
            (Some(true), _) | (_, Some(true)) => Value::Bool(true),
            (Some(false), Some(false)) => Value::Bool(false),
            _ => Value::Null,
        },
        _ => unreachable!(),
    }
}

/// Evaluates a predicate to a SQL filter decision: keep the row only if the
/// predicate is TRUE (UNKNOWN and FALSE both reject).
pub fn eval_predicate(expr: &Expr, get: &mut impl FnMut(ColId) -> Value) -> bool {
    matches!(eval(expr, get), Value::Bool(true))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(e: &Expr) -> Value {
        eval(e, &mut |_| Value::Null)
    }

    fn with_col(e: &Expr, v: Value) -> Value {
        eval(e, &mut |_| v.clone())
    }

    #[test]
    fn comparisons_are_strict() {
        let e = Expr::eq(Expr::col(ColId(0)), Expr::lit(1i64));
        assert_eq!(with_col(&e, Value::Null), Value::Null);
        assert_eq!(with_col(&e, Value::Int(1)), Value::Bool(true));
        assert_eq!(with_col(&e, Value::Int(2)), Value::Bool(false));
    }

    #[test]
    fn all_comparison_ops() {
        let cases = [
            (BinOp::Eq, false, true, false),
            (BinOp::Ne, true, false, true),
            (BinOp::Lt, true, false, false),
            (BinOp::Le, true, true, false),
            (BinOp::Gt, false, false, true),
            (BinOp::Ge, false, true, true),
        ];
        for (op, lt, eq, gt) in cases {
            let mk = |a: i64, b: i64| Expr::bin(op, Expr::lit(a), Expr::lit(b));
            assert_eq!(ev(&mk(1, 2)), Value::Bool(lt), "{op:?} lt");
            assert_eq!(ev(&mk(2, 2)), Value::Bool(eq), "{op:?} eq");
            assert_eq!(ev(&mk(3, 2)), Value::Bool(gt), "{op:?} gt");
        }
    }

    #[test]
    fn kleene_and_truth_table() {
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        let n = Expr::Lit(Value::Null);
        let and = |a: &Expr, b: &Expr| ev(&Expr::and(a.clone(), b.clone()));
        assert_eq!(and(&t, &t), Value::Bool(true));
        assert_eq!(and(&t, &f), Value::Bool(false));
        assert_eq!(and(&f, &n), Value::Bool(false));
        assert_eq!(and(&n, &f), Value::Bool(false));
        assert_eq!(and(&t, &n), Value::Null);
        assert_eq!(and(&n, &n), Value::Null);
    }

    #[test]
    fn kleene_or_truth_table() {
        let t = Expr::lit(true);
        let f = Expr::lit(false);
        let n = Expr::Lit(Value::Null);
        let or = |a: &Expr, b: &Expr| ev(&Expr::or(a.clone(), b.clone()));
        assert_eq!(or(&f, &f), Value::Bool(false));
        assert_eq!(or(&t, &n), Value::Bool(true));
        assert_eq!(or(&n, &t), Value::Bool(true));
        assert_eq!(or(&f, &n), Value::Null);
        assert_eq!(or(&n, &n), Value::Null);
    }

    #[test]
    fn not_and_is_null() {
        assert_eq!(ev(&Expr::not(Expr::lit(true))), Value::Bool(false));
        assert_eq!(ev(&Expr::not(Expr::Lit(Value::Null))), Value::Null);
        assert_eq!(
            ev(&Expr::is_null(Expr::Lit(Value::Null))),
            Value::Bool(true)
        );
        assert_eq!(ev(&Expr::is_null(Expr::lit(3i64))), Value::Bool(false));
    }

    #[test]
    fn arithmetic_is_strict_and_wrapping() {
        let add = Expr::bin(BinOp::Add, Expr::lit(2i64), Expr::lit(3i64));
        assert_eq!(ev(&add), Value::Int(5));
        let strict = Expr::bin(BinOp::Mul, Expr::Lit(Value::Null), Expr::lit(3i64));
        assert_eq!(ev(&strict), Value::Null);
        let wrap = Expr::bin(BinOp::Add, Expr::lit(i64::MAX), Expr::lit(1i64));
        assert_eq!(ev(&wrap), Value::Int(i64::MIN));
        let sub = Expr::bin(BinOp::Sub, Expr::lit(2i64), Expr::lit(7i64));
        assert_eq!(ev(&sub), Value::Int(-5));
    }

    #[test]
    fn predicate_rejects_unknown() {
        let unknown = Expr::eq(Expr::Lit(Value::Null), Expr::lit(1i64));
        assert!(!eval_predicate(&unknown, &mut |_| Value::Null));
        assert!(eval_predicate(&Expr::true_lit(), &mut |_| Value::Null));
        assert!(!eval_predicate(&Expr::lit(false), &mut |_| Value::Null));
    }

    #[test]
    fn string_comparison() {
        let e = Expr::bin(BinOp::Lt, Expr::lit("apple"), Expr::lit("banana"));
        assert_eq!(ev(&e), Value::Bool(true));
    }

    #[test]
    #[should_panic(expected = "type error")]
    fn logical_over_int_panics() {
        ev(&Expr::and(Expr::lit(1i64), Expr::lit(true)));
    }
}
