//! The scalar expression tree.

use ruletest_common::{ColId, Value};
use std::fmt;

/// Binary operators. Comparison and logical operators produce BOOL;
/// arithmetic operators produce INT.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Add,
    Sub,
    Mul,
    And,
    Or,
}

impl BinOp {
    /// True for `=, <>, <, <=, >, >=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// True for `+, -, *`.
    pub fn is_arithmetic(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul)
    }

    /// True for `AND, OR`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::And => "AND",
            BinOp::Or => "OR",
        }
    }
}

/// A scalar expression over column ids.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Reference to a column instance by id.
    Col(ColId),
    /// A constant.
    Lit(Value),
    /// Binary operation.
    Bin {
        op: BinOp,
        left: Box<Expr>,
        right: Box<Expr>,
    },
    /// Logical negation (Kleene NOT).
    Not(Box<Expr>),
    /// `expr IS NULL` — total (never returns NULL itself).
    IsNull(Box<Expr>),
}

impl Expr {
    pub fn col(id: ColId) -> Expr {
        Expr::Col(id)
    }

    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    pub fn bin(op: BinOp, left: Expr, right: Expr) -> Expr {
        Expr::Bin {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::bin(BinOp::Eq, left, right)
    }

    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::bin(BinOp::And, left, right)
    }

    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::bin(BinOp::Or, left, right)
    }

    // An associated constructor, not a `Not` impl: `Expr::not(e)` takes
    // no receiver, so it cannot shadow the operator trait.
    #[allow(clippy::should_implement_trait)]
    pub fn not(inner: Expr) -> Expr {
        Expr::Not(Box::new(inner))
    }

    pub fn is_null(inner: Expr) -> Expr {
        Expr::IsNull(Box::new(inner))
    }

    /// The constant TRUE predicate.
    pub fn true_lit() -> Expr {
        Expr::Lit(Value::Bool(true))
    }

    /// True iff this is the literal TRUE.
    pub fn is_true_lit(&self) -> bool {
        matches!(self, Expr::Lit(Value::Bool(true)))
    }

    /// Number of nodes in the expression tree.
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Col(_) | Expr::Lit(_) => 1,
            Expr::Bin { left, right, .. } => 1 + left.node_count() + right.node_count(),
            Expr::Not(e) | Expr::IsNull(e) => 1 + e.node_count(),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Col(c) => write!(f, "{c}"),
            Expr::Lit(v) => write!(f, "{}", v.to_sql_literal()),
            Expr::Bin { op, left, right } => write!(f, "({left} {} {right})", op.sql()),
            Expr::Not(e) => write!(f, "(NOT {e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_classification_is_partition() {
        for op in [
            BinOp::Eq,
            BinOp::Ne,
            BinOp::Lt,
            BinOp::Le,
            BinOp::Gt,
            BinOp::Ge,
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::And,
            BinOp::Or,
        ] {
            let classes = [op.is_comparison(), op.is_arithmetic(), op.is_logical()];
            assert_eq!(classes.iter().filter(|&&b| b).count(), 1, "{op:?}");
        }
    }

    #[test]
    fn display_renders_sql_like_text() {
        let e = Expr::and(
            Expr::eq(Expr::col(ColId(1)), Expr::lit(5i64)),
            Expr::not(Expr::is_null(Expr::col(ColId(2)))),
        );
        assert_eq!(e.to_string(), "((c1 = 5) AND (NOT (c2 IS NULL)))");
    }

    #[test]
    fn node_count() {
        let e = Expr::and(
            Expr::eq(Expr::col(ColId(1)), Expr::lit(5i64)),
            Expr::true_lit(),
        );
        assert_eq!(e.node_count(), 5);
        assert!(Expr::true_lit().is_true_lit());
        assert!(!Expr::lit(false).is_true_lit());
    }
}
