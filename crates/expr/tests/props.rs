//! Property tests for the expression analyses that rule preconditions rely
//! on — above all, that the *syntactic* null-rejection test is sound with
//! respect to actual three-valued evaluation. Runs on the in-repo `check`
//! harness; random expressions are derived from a seed via local
//! recursive builders.

use ruletest_common::check::{gen, CheckConfig, Gen};
use ruletest_common::{ensure, ensure_eq, ensure_ne, forall};
use ruletest_common::{ColId, Rng, Value};
use ruletest_expr::{
    columns_of, conjoin, conjuncts, eval, is_null_rejecting, remap_columns, substitute, BinOp, Expr,
};
use std::collections::{BTreeSet, HashMap};

const CMP_OPS: [BinOp; 6] = [
    BinOp::Eq,
    BinOp::Ne,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Gt,
    BinOp::Ge,
];

fn cmp_op(rng: &mut Rng) -> BinOp {
    CMP_OPS[rng.gen_index(CMP_OPS.len())]
}

/// Random integer-valued expression over columns c0..c4, mirroring the
/// old recursive strategy: comparisons, IS NULL, and ANDs of derived
/// comparisons, bottoming out at column/literal leaves.
fn int_expr(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return if rng.gen_bool(0.5) {
            Expr::col(ColId(rng.gen_index(5) as u32))
        } else {
            Expr::lit(rng.gen_range_i64(-5, 5))
        };
    }
    match rng.gen_index(3) {
        0 => {
            let op = cmp_op(rng);
            let a = int_expr(rng, depth - 1);
            let b = int_expr(rng, depth - 1);
            Expr::bin(op, a, b)
        }
        1 => Expr::is_null(int_expr(rng, depth - 1)),
        _ => {
            let mut cmp = |rng: &mut Rng| {
                let op = cmp_op(rng);
                let a = int_expr(rng, depth - 1);
                let b = int_expr(rng, depth - 1);
                Expr::bin(op, a, b)
            };
            let a = cmp(rng);
            let b = cmp(rng);
            Expr::and(a, b)
        }
    }
}

/// A random boolean predicate (comparisons combined with AND/OR/NOT).
fn predicate(rng: &mut Rng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_index(3) {
            0 => {
                let c = ColId(rng.gen_index(5) as u32);
                let v = rng.gen_range_i64(-5, 5);
                let op = cmp_op(rng);
                Expr::bin(op, Expr::col(c), Expr::lit(v))
            }
            1 => {
                let a = ColId(rng.gen_index(5) as u32);
                let b = ColId(rng.gen_index(5) as u32);
                let op = cmp_op(rng);
                Expr::bin(op, Expr::col(a), Expr::col(b))
            }
            _ => Expr::is_null(Expr::col(ColId(rng.gen_index(5) as u32))),
        };
    }
    match rng.gen_index(3) {
        0 => {
            let a = predicate(rng, depth - 1);
            let b = predicate(rng, depth - 1);
            Expr::and(a, b)
        }
        1 => {
            let a = predicate(rng, depth - 1);
            let b = predicate(rng, depth - 1);
            Expr::or(a, b)
        }
        _ => Expr::not(predicate(rng, depth - 1)),
    }
}

fn expr_gen() -> impl Gen<Value = Expr> {
    gen::from_fn(|rng: &mut Rng| {
        let depth = rng.gen_index(4);
        int_expr(rng, depth)
    })
}

fn predicate_gen() -> impl Gen<Value = Expr> {
    gen::from_fn(|rng: &mut Rng| {
        let depth = rng.gen_index(4);
        predicate(rng, depth)
    })
}

/// Five column bindings, NULL with probability 1/4.
fn binding_gen() -> impl Gen<Value = Vec<Value>> {
    gen::vecs(
        gen::from_fn(|rng: &mut Rng| {
            if rng.gen_bool(0.25) {
                Value::Null
            } else {
                Value::Int(rng.gen_range_i64(-5, 5))
            }
        }),
        5..6,
    )
}

fn eval_with(pred: &Expr, binding: &HashMap<ColId, Value>) -> Value {
    eval(pred, &mut |c| {
        binding.get(&c).cloned().unwrap_or(Value::Null)
    })
}

/// Soundness of the null-rejection analysis: if the analysis says a
/// predicate rejects NULLs of column c, then no binding with c = NULL can
/// make the predicate TRUE.
#[test]
fn null_rejection_is_sound() {
    forall!(CheckConfig::default();
            pred in predicate_gen(),
            vals in gen::vecs(gen::i64s(-5..5), 5..6),
            target in gen::usizes(0..5) => {
        let target = target as u32;
        let cols = BTreeSet::from([ColId(target)]);
        if is_null_rejecting(&pred, &cols) {
            let mut binding: HashMap<ColId, Value> = vals
                .iter()
                .enumerate()
                .map(|(i, &v)| (ColId(i as u32), Value::Int(v)))
                .collect();
            binding.insert(ColId(target), Value::Null);
            ensure_ne!(
                eval_with(&pred, &binding),
                Value::Bool(true),
                "analysis claimed rejection but predicate is TRUE: {}",
                pred
            );
        }
        Ok(())
    });
}

/// `conjoin(conjuncts(p))` is truth-equivalent to `p` under any binding.
#[test]
fn conjunct_roundtrip_preserves_truth() {
    forall!(CheckConfig::default();
            pred in predicate_gen(), vals in binding_gen() => {
        let binding: HashMap<ColId, Value> = vals
            .into_iter()
            .enumerate()
            .map(|(i, v)| (ColId(i as u32), v))
            .collect();
        let parts = conjuncts(&pred);
        let rebuilt = conjoin(parts);
        ensure_eq!(eval_with(&pred, &binding), eval_with(&rebuilt, &binding));
        Ok(())
    });
}

/// Column remapping is invertible and consistent with the column set.
#[test]
fn remap_roundtrip() {
    forall!(CheckConfig::default(); expr in expr_gen() => {
        let forward: HashMap<ColId, ColId> =
            (0..5).map(|i| (ColId(i), ColId(i + 100))).collect();
        let back: HashMap<ColId, ColId> =
            (0..5).map(|i| (ColId(i + 100), ColId(i))).collect();
        let mapped = remap_columns(&expr, &forward);
        for c in columns_of(&mapped) {
            ensure!(c.0 >= 100, "column {c} escaped the remap");
        }
        ensure_eq!(remap_columns(&mapped, &back), expr);
        Ok(())
    });
}

/// Substituting identity expressions is a no-op.
#[test]
fn identity_substitution_is_noop() {
    forall!(CheckConfig::default(); expr in expr_gen() => {
        let identity: HashMap<ColId, Expr> =
            (0..5).map(|i| (ColId(i), Expr::col(ColId(i)))).collect();
        ensure_eq!(substitute(&expr, &identity), expr);
        Ok(())
    });
}

/// Evaluation never panics on well-typed integer predicates, and produces
/// only NULL/TRUE/FALSE for boolean shapes.
#[test]
fn predicates_evaluate_to_three_values() {
    forall!(CheckConfig::default();
            pred in predicate_gen(), vals in binding_gen() => {
        let binding: HashMap<ColId, Value> = vals
            .into_iter()
            .enumerate()
            .map(|(i, v)| (ColId(i as u32), v))
            .collect();
        let v = eval_with(&pred, &binding);
        ensure!(matches!(v, Value::Null | Value::Bool(_)), "got {v:?}");
        Ok(())
    });
}
