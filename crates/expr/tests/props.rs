//! Property tests for the expression analyses that rule preconditions rely
//! on — above all, that the *syntactic* null-rejection test is sound with
//! respect to actual three-valued evaluation.

use proptest::prelude::*;
use ruletest_common::{ColId, Value};
use ruletest_expr::{
    columns_of, conjoin, conjuncts, eval, is_null_rejecting, remap_columns, substitute, BinOp,
    Expr,
};
use std::collections::{BTreeSet, HashMap};

/// Random predicate over columns c0..c4 (INT-typed domain).
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0u32..5).prop_map(|i| Expr::col(ColId(i))),
        (-5i64..5).prop_map(Expr::lit),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone(), cmp_op())
                .prop_map(|(a, b, op)| Expr::bin(op, a, b)),
            inner.clone().prop_map(|e| Expr::is_null(e)),
            (pred_strategy_inner(inner.clone()), pred_strategy_inner(inner.clone()))
                .prop_map(|(a, b)| Expr::and(a, b)),
        ]
    })
}

fn cmp_op() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Eq),
        Just(BinOp::Ne),
        Just(BinOp::Lt),
        Just(BinOp::Le),
        Just(BinOp::Gt),
        Just(BinOp::Ge),
    ]
}

/// Boolean-valued expression built over integer leaves.
fn pred_strategy_inner(int_expr: impl Strategy<Value = Expr> + Clone) -> impl Strategy<Value = Expr> {
    (int_expr.clone(), int_expr, cmp_op()).prop_map(|(a, b, op)| Expr::bin(op, a, b))
}

/// A random boolean predicate (comparisons combined with AND/OR/NOT).
fn predicate_strategy() -> impl Strategy<Value = Expr> {
    let atom = prop_oneof![
        ((0u32..5), (-5i64..5), cmp_op())
            .prop_map(|(c, v, op)| Expr::bin(op, Expr::col(ColId(c)), Expr::lit(v))),
        ((0u32..5), (0u32..5), cmp_op())
            .prop_map(|(a, b, op)| Expr::bin(op, Expr::col(ColId(a)), Expr::col(ColId(b)))),
        (0u32..5).prop_map(|c| Expr::is_null(Expr::col(ColId(c)))),
    ];
    atom.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::and(a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::or(a, b)),
            inner.clone().prop_map(Expr::not),
        ]
    })
}

fn eval_with(pred: &Expr, binding: &HashMap<ColId, Value>) -> Value {
    eval(pred, &mut |c| {
        binding.get(&c).cloned().unwrap_or(Value::Null)
    })
}

proptest! {
    /// Soundness of the null-rejection analysis: if the analysis says a
    /// predicate rejects NULLs of column c, then no binding with c = NULL
    /// can make the predicate TRUE.
    #[test]
    fn null_rejection_is_sound(
        pred in predicate_strategy(),
        vals in prop::collection::vec(-5i64..5, 5),
        target in 0u32..5,
    ) {
        let cols = BTreeSet::from([ColId(target)]);
        if is_null_rejecting(&pred, &cols) {
            let mut binding: HashMap<ColId, Value> = vals
                .iter()
                .enumerate()
                .map(|(i, &v)| (ColId(i as u32), Value::Int(v)))
                .collect();
            binding.insert(ColId(target), Value::Null);
            prop_assert_ne!(
                eval_with(&pred, &binding),
                Value::Bool(true),
                "analysis claimed rejection but predicate is TRUE: {}",
                pred
            );
        }
    }

    /// `conjoin(conjuncts(p))` is truth-equivalent to `p` under any binding.
    #[test]
    fn conjunct_roundtrip_preserves_truth(
        pred in predicate_strategy(),
        vals in prop::collection::vec(prop_oneof![
            Just(Value::Null),
            (-5i64..5).prop_map(Value::Int)
        ], 5),
    ) {
        let binding: HashMap<ColId, Value> = vals
            .into_iter()
            .enumerate()
            .map(|(i, v)| (ColId(i as u32), v))
            .collect();
        let parts = conjuncts(&pred);
        let rebuilt = conjoin(parts);
        prop_assert_eq!(eval_with(&pred, &binding), eval_with(&rebuilt, &binding));
    }

    /// Column remapping is invertible and consistent with the column set.
    #[test]
    fn remap_roundtrip(expr in expr_strategy()) {
        let forward: HashMap<ColId, ColId> =
            (0..5).map(|i| (ColId(i), ColId(i + 100))).collect();
        let back: HashMap<ColId, ColId> =
            (0..5).map(|i| (ColId(i + 100), ColId(i))).collect();
        let mapped = remap_columns(&expr, &forward);
        for c in columns_of(&mapped) {
            prop_assert!(c.0 >= 100, "column {c} escaped the remap");
        }
        prop_assert_eq!(remap_columns(&mapped, &back), expr);
    }

    /// Substituting identity expressions is a no-op.
    #[test]
    fn identity_substitution_is_noop(expr in expr_strategy()) {
        let identity: HashMap<ColId, Expr> =
            (0..5).map(|i| (ColId(i), Expr::col(ColId(i)))).collect();
        prop_assert_eq!(substitute(&expr, &identity), expr);
    }

    /// Evaluation never panics on well-typed integer predicates, and
    /// produces only NULL/TRUE/FALSE for boolean shapes.
    #[test]
    fn predicates_evaluate_to_three_values(
        pred in predicate_strategy(),
        vals in prop::collection::vec(prop_oneof![
            Just(Value::Null),
            (-5i64..5).prop_map(Value::Int)
        ], 5),
    ) {
        let binding: HashMap<ColId, Value> = vals
            .into_iter()
            .enumerate()
            .map(|(i, v)| (ColId(i as u32), v))
            .collect();
        let v = eval_with(&pred, &binding);
        prop_assert!(matches!(v, Value::Null | Value::Bool(_)), "got {v:?}");
    }
}
