//! Algebraic-identity tests for the prover's normal form: equivalent
//! shapes must reach identical fingerprints, known-inequivalent pairs
//! must not.

use ruletest_common::{ColId, TableId};
use ruletest_expr::{BinOp, Expr};
use ruletest_lint::prove::normalize::normalize;
use ruletest_lint::prove::symbolic_catalog;
use ruletest_logical::{JoinKind, LogicalTree, SortKey};
use ruletest_storage::Catalog;

/// Scan of symbolic table `t` with column ids `10*t .. 10*t+2`
/// (positional: k, a, b — see [`symbolic_catalog`]).
fn scan(t: u32) -> LogicalTree {
    let base = 10 * t;
    LogicalTree::get_with_cols(
        TableId(t),
        vec![ColId(base), ColId(base + 1), ColId(base + 2)],
    )
}

fn col(id: u32) -> Expr {
    Expr::col(ColId(id))
}

fn fp(cat: &Catalog, tree: &LogicalTree) -> String {
    normalize(cat, tree)
        .unwrap_or_else(|| panic!("tree must normalize: {tree:?}"))
        .fingerprint()
}

#[test]
fn conjunct_order_is_canonicalized() {
    let cat = symbolic_catalog();
    let a = Expr::bin(BinOp::Gt, col(1), Expr::lit(3i64));
    let b = Expr::eq(col(0), Expr::lit(7i64));
    let ab = LogicalTree::select(scan(0), Expr::and(a.clone(), b.clone()));
    let ba = LogicalTree::select(scan(0), Expr::and(b, a));
    assert_eq!(fp(&cat, &ab), fp(&cat, &ba));
}

#[test]
fn split_selects_match_one_conjoined_select() {
    let cat = symbolic_catalog();
    let a = Expr::bin(BinOp::Gt, col(1), Expr::lit(3i64));
    let b = Expr::eq(col(2), Expr::lit(7i64));
    let stacked = LogicalTree::select(LogicalTree::select(scan(0), a.clone()), b.clone());
    let merged = LogicalTree::select(scan(0), Expr::and(a, b));
    assert_eq!(fp(&cat, &stacked), fp(&cat, &merged));
}

#[test]
fn inner_join_commutes_and_reassociates() {
    let cat = symbolic_catalog();
    let p01 = Expr::eq(col(0), Expr::col(ColId(10)));
    let p12 = Expr::eq(col(10), Expr::col(ColId(20)));
    // (s0 ⋈ s1) ⋈ s2
    let left_assoc = LogicalTree::join(
        JoinKind::Inner,
        LogicalTree::join(JoinKind::Inner, scan(0), scan(1), p01.clone()),
        scan(2),
        p12.clone(),
    );
    // s0 ⋈ (s1 ⋈ s2), with the other predicate placement
    let right_assoc = LogicalTree::join(
        JoinKind::Inner,
        scan(0),
        LogicalTree::join(JoinKind::Inner, scan(1), scan(2), p12.clone()),
        p01.clone(),
    );
    // s2 ⋈ (s1 ⋈ s0): fully commuted
    let commuted = LogicalTree::join(
        JoinKind::Inner,
        scan(2),
        LogicalTree::join(JoinKind::Inner, scan(1), scan(0), p01),
        p12,
    );
    let f = fp(&cat, &left_assoc);
    assert_eq!(f, fp(&cat, &right_assoc));
    assert_eq!(f, fp(&cat, &commuted));
}

#[test]
fn join_predicates_and_filters_share_one_conjunct_pool() {
    let cat = symbolic_catalog();
    let p = Expr::eq(col(0), Expr::col(ColId(10)));
    let on_join = LogicalTree::join(JoinKind::Inner, scan(0), scan(1), p.clone());
    let on_filter = LogicalTree::select(
        LogicalTree::join(JoinKind::Inner, scan(0), scan(1), Expr::true_lit()),
        p,
    );
    assert_eq!(fp(&cat, &on_join), fp(&cat, &on_filter));
}

#[test]
fn null_rejecting_filter_demotes_left_outer_join() {
    let cat = symbolic_catalog();
    let on = Expr::eq(col(0), Expr::col(ColId(10)));
    // col 11 ("a" of s1) comes from the null-supplying side; `> 5`
    // rejects NULLs, so LOJ-then-filter equals join-then-filter.
    let guard = Expr::bin(BinOp::Gt, Expr::col(ColId(11)), Expr::lit(5i64));
    let over_loj = LogicalTree::select(
        LogicalTree::join(JoinKind::LeftOuter, scan(0), scan(1), on.clone()),
        guard.clone(),
    );
    let over_inner = LogicalTree::select(
        LogicalTree::join(JoinKind::Inner, scan(0), scan(1), on.clone()),
        guard,
    );
    assert_eq!(fp(&cat, &over_loj), fp(&cat, &over_inner));

    // `IS NULL` does *not* reject NULLs: the padded rows survive, so the
    // outer join must be preserved and the two sides stay distinct.
    let keeps = Expr::is_null(Expr::col(ColId(11)));
    let loj_kept = LogicalTree::select(
        LogicalTree::join(JoinKind::LeftOuter, scan(0), scan(1), on.clone()),
        keeps.clone(),
    );
    let inner_kept = LogicalTree::select(
        LogicalTree::join(JoinKind::Inner, scan(0), scan(1), on),
        keeps,
    );
    assert_ne!(fp(&cat, &loj_kept), fp(&cat, &inner_kept));
}

#[test]
fn right_outer_join_is_a_mirrored_left_outer_join() {
    let cat = symbolic_catalog();
    let on = Expr::eq(col(0), Expr::col(ColId(10)));
    let roj = LogicalTree::join(JoinKind::RightOuter, scan(0), scan(1), on.clone());
    let loj = LogicalTree::join(JoinKind::LeftOuter, scan(1), scan(0), on);
    assert_eq!(fp(&cat, &roj), fp(&cat, &loj));
}

#[test]
fn distinct_equals_group_by_all_columns() {
    let cat = symbolic_catalog();
    let distinct = LogicalTree::distinct(scan(0));
    let gbagg = LogicalTree::gbagg(scan(0), vec![ColId(0), ColId(1), ColId(2)], vec![]);
    assert_eq!(fp(&cat, &distinct), fp(&cat, &gbagg));
}

#[test]
fn distinct_over_a_key_preserving_tree_is_dropped() {
    let cat = symbolic_catalog();
    // s0's primary key makes the scan duplicate-free already.
    let distinct = LogicalTree::distinct(scan(0));
    assert_eq!(fp(&cat, &distinct), fp(&cat, &scan(0)));
}

#[test]
fn sort_is_transparent_and_top_over_top_takes_the_min() {
    let cat = symbolic_catalog();
    let keys = vec![SortKey::asc(ColId(1))];
    let sorted = LogicalTree::sort(scan(0), keys.clone());
    assert_eq!(fp(&cat, &sorted), fp(&cat, &scan(0)));

    let stacked = LogicalTree::top(LogicalTree::top(scan(0), 5, keys.clone()), 3, keys.clone());
    let collapsed = LogicalTree::top(scan(0), 3, keys.clone());
    assert_eq!(fp(&cat, &stacked), fp(&cat, &collapsed));
    // Different counts are *not* the same relation.
    let five = LogicalTree::top(scan(0), 5, keys);
    assert_ne!(fp(&cat, &collapsed), fp(&cat, &five));
}

#[test]
fn projections_compose_and_identity_projections_vanish() {
    let cat = symbolic_catalog();
    let wide = LogicalTree::project(
        scan(0),
        vec![(ColId(0), col(0)), (ColId(1), col(1)), (ColId(2), col(2))],
    );
    assert_eq!(fp(&cat, &wide), fp(&cat, &scan(0)));

    let narrow_direct = LogicalTree::project(scan(0), vec![(ColId(1), col(1))]);
    let narrow_stacked = LogicalTree::project(wide, vec![(ColId(1), col(1))]);
    assert_eq!(fp(&cat, &narrow_direct), fp(&cat, &narrow_stacked));
}

#[test]
fn known_inequivalent_pairs_keep_distinct_fingerprints() {
    let cat = symbolic_catalog();
    // Different filter columns.
    let on_k = LogicalTree::select(scan(0), Expr::eq(col(0), Expr::lit(1i64)));
    let on_a = LogicalTree::select(scan(0), Expr::eq(col(1), Expr::lit(1i64)));
    assert_ne!(fp(&cat, &on_k), fp(&cat, &on_a));
    // Inner vs left outer join.
    let on = Expr::eq(col(0), Expr::col(ColId(10)));
    let inner = LogicalTree::join(JoinKind::Inner, scan(0), scan(1), on.clone());
    let loj = LogicalTree::join(JoinKind::LeftOuter, scan(0), scan(1), on);
    assert_ne!(fp(&cat, &inner), fp(&cat, &loj));
    // Filter dropped entirely.
    assert_ne!(fp(&cat, &on_k), fp(&cat, &scan(0)));
}

#[test]
fn equality_closure_identifies_transitive_conjuncts() {
    let cat = symbolic_catalog();
    let j = |p: Expr| {
        LogicalTree::select(
            LogicalTree::join(
                JoinKind::Inner,
                scan(0),
                LogicalTree::join(JoinKind::Inner, scan(1), scan(2), Expr::true_lit()),
                Expr::true_lit(),
            ),
            p,
        )
    };
    // {c0=c10, c10=c20} and {c10=c20, c20=c0} generate the same closure.
    let a = j(Expr::and(
        Expr::eq(col(0), Expr::col(ColId(10))),
        Expr::eq(col(10), Expr::col(ColId(20))),
    ));
    let b = j(Expr::and(
        Expr::eq(col(10), Expr::col(ColId(20))),
        Expr::eq(col(20), Expr::col(ColId(0))),
    ));
    assert_eq!(fp(&cat, &a), fp(&cat, &b));
}
