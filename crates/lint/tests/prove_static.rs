//! Acceptance tests for the symbolic prover over the *clean* catalog:
//! no rule may be proved inequivalent, the undecided residue stays
//! under a pinned ceiling, telemetry carries the proof counters and
//! per-rule spans, and the whole-catalog proof stays fast.

use ruletest_lint::prove::{self, ProveVerdict};
use ruletest_optimizer::Optimizer;
use ruletest_telemetry::{Counter, Telemetry};
use std::sync::Arc;
use std::time::Instant;

/// The catalog's current undecided residue: 5 fresh-id-minting rules
/// plus 5 `UnionAll`-shaped rules. A higher count means a rule fell out
/// of the decidable fragment — treat that as a regression, not noise.
const UNKNOWN_CEILING: u64 = 10;

#[test]
fn clean_catalog_proves_with_no_inequivalences() {
    let db = Arc::new(prove::symbolic_database());
    let opt = Optimizer::new(db);
    let telemetry = Telemetry::metrics_only();

    let started = Instant::now();
    let report = prove::prove_rules(&opt, &telemetry).unwrap();
    let elapsed = started.elapsed();

    // Zero inequivalent: every flagged rule would be a prover false
    // positive (the catalog is correct).
    assert!(
        !report.has_inequivalent(),
        "clean rules proved inequivalent:\n{}",
        report.render_text()
    );
    // The majority of the catalog is decided, and the undecided residue
    // is pinned.
    assert!(
        report.equivalent >= 25,
        "only {} rules proved equivalent",
        report.equivalent
    );
    assert!(
        report.unknown <= UNKNOWN_CEILING,
        "{} unknown verdicts exceed the pinned ceiling {UNKNOWN_CEILING}",
        report.unknown
    );
    assert_eq!(
        report.rules.len() as u64,
        report.equivalent + report.inequivalent + report.unknown
    );

    // Counters mirror the report.
    assert_eq!(
        telemetry.counter(Counter::ProveEquivalent),
        report.equivalent
    );
    assert_eq!(telemetry.counter(Counter::ProveInequivalent), 0);
    assert_eq!(telemetry.counter(Counter::ProveUnknown), report.unknown);

    // The span profiler carries one `prove` stage span with nested
    // per-rule spans.
    let names: Vec<String> = (0..opt.num_rules())
        .map(|i| opt.rule(ruletest_common::RuleId(i as u16)).name.to_string())
        .collect();
    let section = telemetry.profile_section(&names);
    let prove_row = section
        .spans
        .iter()
        .find(|s| s.path == "prove")
        .expect("a `prove` stage span");
    assert_eq!(prove_row.count, 1);
    let rule_rows = section
        .spans
        .iter()
        .filter(|s| s.path.starts_with("prove;"))
        .count();
    assert_eq!(
        rule_rows as u64,
        report.equivalent + report.inequivalent + report.unknown,
        "one nested span per proved rule"
    );

    // Whole-catalog proof must stay interactive: <100ms single-threaded
    // in release builds (debug builds get generous slack so `cargo
    // test` stays meaningful without --release).
    let budget_ms = if cfg!(debug_assertions) { 2_000 } else { 100 };
    assert!(
        elapsed.as_millis() < budget_ms,
        "full-catalog proof took {elapsed:?} (budget {budget_ms}ms)"
    );
}

#[test]
fn focused_proof_checks_one_rule_and_rejects_unknown_names() {
    let db = Arc::new(prove::symbolic_database());
    let opt = Optimizer::new(db);
    let report =
        prove::prove_rules_focused(&opt, "TopTopCollapse", &Telemetry::disabled()).unwrap();
    assert_eq!(report.rules.len(), 1);
    assert_eq!(
        report.verdict_of("TopTopCollapse"),
        Some(ProveVerdict::Equivalent)
    );
    let err = prove::prove_rules_focused(&opt, "NoSuchRule", &Telemetry::disabled());
    assert!(err.is_err());
}

#[test]
fn report_json_round_trips_the_greppable_counts() {
    let db = Arc::new(prove::symbolic_database());
    let opt = Optimizer::new(db);
    let report = prove::prove_rules(&opt, &Telemetry::disabled()).unwrap();
    let text = report.to_json().to_string_pretty();
    // The CI gate greps these exact shapes; keep them stable.
    assert!(text.contains("\"schema_version\": 1"));
    assert!(text.contains("\"inequivalent\": 0"));
    assert!(text.contains(&format!("\"unknown\": {}", report.unknown)));
    assert!(text.contains("\"verdict\": \"equivalent\""));
}

#[test]
fn unknown_reasons_name_the_undecidable_fragment() {
    let db = Arc::new(prove::symbolic_database());
    let opt = Optimizer::new(db);
    let report = prove::prove_rules(&opt, &Telemetry::disabled()).unwrap();
    for rule in &report.rules {
        if rule.verdict == ProveVerdict::Unknown {
            let reason = rule.reason.as_deref().unwrap_or("");
            assert!(
                reason.contains("fresh column ids")
                    || reason.contains("UnionAll")
                    || reason.contains("normal"),
                "unknown verdict for {} lacks a fragment reason: {reason:?}",
                rule.rule
            );
        }
    }
}
