//! Canonical algebraic normal form for the symbolic equivalence prover.
//!
//! [`normalize`] rewrites a concrete [`LogicalTree`] into a normal form
//! ([`Nf`]) in which every algebraic identity the rule catalog exploits
//! maps both sides of a rewrite to the same shape:
//!
//! * inner joins and the filters above/between them flatten into one
//!   n-ary *join group* whose conjuncts live in a canonical set at the
//!   group top (children that can absorb a conjunct — outer joins'
//!   preserved side, projections, grouping columns — take it instead);
//! * `RightOuter` becomes `LeftOuter` with swapped children; a filter
//!   that is null-rejecting on the null-supplying side demotes the outer
//!   join to an inner group; an outer join whose null-supplying side no
//!   group conjunct touches lifts out of the group;
//! * `Project ∘ Project` composes; identity projections vanish; a
//!   projection that hides one side of a key-bound two-way join is
//!   recognized as a semi join, and the `LeftOuter` + `IS NULL` idiom as
//!   an anti join;
//! * a grouped aggregation whose keys cover a candidate key of its input
//!   becomes a projection, and one that merely deduplicates all columns
//!   becomes `Distinct`; `Distinct` over a provably duplicate-free input
//!   vanishes;
//! * `Sort` is dropped (results compare as multisets); stacked `Top`s
//!   with identical keys collapse to the smaller limit.
//!
//! Conjunct sets compare modulo equality closure: `a=b ∧ a=1` and
//! `a=1 ∧ b=1` render identically, as do `a=b` and `a=c ∧ c=b`.
//!
//! Everything here is a *sound* equivalence, so equal normal forms imply
//! equal semantics; unequal normal forms imply nothing by themselves
//! (the verdict layer decides between `Unknown` and the conjunct-diff
//! witness). `UnionAll` is outside the fragment: [`normalize`] returns
//! `None` and the prover falls back to witness passes alone.

use crate::derive::{self, class_of, CardClass, KeySets};
use ruletest_common::{ColId, TableId};
use ruletest_expr::{
    columns_of, conjoin, conjuncts, is_null_rejecting, substitute, try_col_eq_col, AggCall,
    AggFunc, Expr,
};
use ruletest_logical::{JoinKind, LogicalTree, Operator, SortKey};
use ruletest_storage::Catalog;
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Normal form of a logical plan. Conjunct positions hold raw exprs;
/// canonicalization to comparable sets happens at render time.
#[derive(Debug, Clone)]
pub enum Nf {
    Leaf {
        table: TableId,
        cols: Vec<ColId>,
    },
    /// N-ary inner-join group with its filter conjuncts. One child with
    /// conjuncts is a plain filter; one child with none is unwrapped.
    Group {
        children: Vec<Nf>,
        conjuncts: Vec<Expr>,
    },
    /// Left (or, with `full`, full) outer join. RightOuter is
    /// canonicalized away at construction.
    Outer {
        full: bool,
        left: Box<Nf>,
        right: Box<Nf>,
        on: Vec<Expr>,
    },
    /// Semi (`anti == false`) or anti join.
    Semi {
        anti: bool,
        left: Box<Nf>,
        right: Box<Nf>,
        on: Vec<Expr>,
    },
    Project {
        outputs: Vec<(ColId, Expr)>,
        child: Box<Nf>,
    },
    GbAgg {
        group_by: Vec<ColId>,
        aggs: Vec<AggCall>,
        child: Box<Nf>,
    },
    Distinct {
        child: Box<Nf>,
    },
    Top {
        n: u64,
        keys: Vec<SortKey>,
        child: Box<Nf>,
    },
}

/// Normalizes `tree`; `None` iff the tree is outside the decidable
/// fragment (contains `UnionAll`).
pub fn normalize(catalog: &Catalog, tree: &LogicalTree) -> Option<Nf> {
    let mut kids = Vec::with_capacity(tree.children.len());
    for c in &tree.children {
        kids.push(normalize(catalog, c)?);
    }
    Some(match &tree.op {
        Operator::Get { table, cols } => Nf::Leaf {
            table: *table,
            cols: cols.clone(),
        },
        Operator::Select { predicate } => {
            let child = kids.pop()?;
            absorb_all(catalog, child, conjuncts(predicate))
        }
        Operator::Project { outputs } => project_over(catalog, outputs.clone(), kids.pop()?),
        Operator::Join { kind, predicate } => {
            let r = kids.pop()?;
            let l = kids.pop()?;
            let on = conjuncts(predicate);
            match kind {
                JoinKind::Inner => make_group(catalog, vec![l, r], on),
                JoinKind::LeftOuter => make_outer(catalog, false, l, r, on),
                JoinKind::RightOuter => make_outer(catalog, false, r, l, on),
                JoinKind::FullOuter => make_outer(catalog, true, l, r, on),
                JoinKind::LeftSemi => make_semi(catalog, false, l, r, on),
                JoinKind::LeftAnti => make_semi(catalog, true, l, r, on),
            }
        }
        Operator::GbAgg { group_by, aggs } => {
            make_gbagg(catalog, group_by.clone(), aggs.clone(), kids.pop()?)
        }
        Operator::UnionAll { .. } => return None,
        Operator::Distinct => make_distinct(catalog, kids.pop()?),
        Operator::Sort { .. } => kids.pop()?,
        Operator::Top { n, keys } => make_top(*n, keys.clone(), kids.pop()?),
    })
}

impl Nf {
    /// Output column-id set.
    pub fn cols(&self) -> BTreeSet<ColId> {
        match self {
            Nf::Leaf { cols, .. } => cols.iter().copied().collect(),
            Nf::Group { children, .. } => children.iter().flat_map(|c| c.cols()).collect(),
            Nf::Outer { left, right, .. } => left.cols().union(&right.cols()).copied().collect(),
            Nf::Semi { left, .. } => left.cols(),
            Nf::Project { outputs, .. } => outputs.iter().map(|(id, _)| *id).collect(),
            Nf::GbAgg { group_by, aggs, .. } => group_by
                .iter()
                .copied()
                .chain(aggs.iter().map(|a| a.output))
                .collect(),
            Nf::Distinct { child } | Nf::Top { child, .. } => child.cols(),
        }
    }

    /// Full canonical rendering; equal strings imply equivalent plans.
    pub fn fingerprint(&self) -> String {
        self.render(true)
    }

    /// Rendering with every conjunct set erased — the shape against
    /// which the conjunct-diff witness compares.
    pub fn skeleton(&self) -> String {
        self.render(false)
    }

    fn render(&self, with_conjuncts: bool) -> String {
        let set = |conjs: &[Expr]| {
            if with_conjuncts {
                canonical_conjuncts(conjs)
                    .into_iter()
                    .collect::<Vec<_>>()
                    .join(" & ")
            } else {
                String::new()
            }
        };
        match self {
            Nf::Leaf { table, cols } => {
                let cs: Vec<String> = cols.iter().map(|c| c.to_string()).collect();
                format!("get:{table}({})", cs.join(","))
            }
            Nf::Group {
                children,
                conjuncts,
            } => {
                let mut cs: Vec<String> =
                    children.iter().map(|c| c.render(with_conjuncts)).collect();
                cs.sort();
                format!("join{{{}}}({})", set(conjuncts), cs.join(", "))
            }
            Nf::Outer {
                full,
                left,
                right,
                on,
            } => {
                let l = left.render(with_conjuncts);
                let r = right.render(with_conjuncts);
                // Full outer join is commutative: sort the children.
                let (l, r) = if *full && l > r { (r, l) } else { (l, r) };
                let tag = if *full { "foj" } else { "loj" };
                format!("{tag}{{{}}}({l}, {r})", set(on))
            }
            Nf::Semi {
                anti,
                left,
                right,
                on,
            } => {
                let tag = if *anti { "anti" } else { "semi" };
                format!(
                    "{tag}{{{}}}({}, {})",
                    set(on),
                    left.render(with_conjuncts),
                    right.render(with_conjuncts)
                )
            }
            Nf::Project { outputs, child } => {
                let items: Vec<String> =
                    outputs.iter().map(|(id, e)| format!("{id}:={e}")).collect();
                format!("pi[{}]({})", items.join(","), child.render(with_conjuncts))
            }
            Nf::GbAgg {
                group_by,
                aggs,
                child,
            } => {
                let gb: Vec<String> = group_by.iter().map(|c| c.to_string()).collect();
                let ags: Vec<String> = aggs
                    .iter()
                    .map(|a| {
                        let arg = a.arg.map(|c| c.to_string()).unwrap_or_default();
                        format!("{}:={}", a.output, a.render(&arg))
                    })
                    .collect();
                format!(
                    "agg[{}][{}]({})",
                    gb.join(","),
                    ags.join(","),
                    child.render(with_conjuncts)
                )
            }
            Nf::Distinct { child } => format!("distinct({})", child.render(with_conjuncts)),
            Nf::Top { n, keys, child } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("{}{}", k.col, if k.descending { " desc" } else { "" }))
                    .collect();
                format!(
                    "top[{n};{}]({})",
                    ks.join(","),
                    child.render(with_conjuncts)
                )
            }
        }
    }
}

/// Candidate keys of a normal form, via the shared transfer functions in
/// [`crate::derive`] (the same ones the concrete auditor's key pass uses).
pub fn nf_keys(catalog: &Catalog, nf: &Nf) -> KeySets {
    match nf {
        Nf::Leaf { table, cols } => match catalog.table(*table) {
            Ok(def) => derive::get_keys(def, cols),
            Err(_) => vec![],
        },
        Nf::Group {
            children,
            conjuncts,
        } => {
            let pred = conjoin(conjuncts.clone());
            let mut it = children.iter();
            let Some(first) = it.next() else {
                return vec![];
            };
            let mut keys = nf_keys(catalog, first);
            let mut cols = first.cols();
            for ch in it {
                let ck = nf_keys(catalog, ch);
                let ccols = ch.cols();
                keys = derive::join_keys(JoinKind::Inner, &pred, &keys, &ck, &cols, &ccols);
                cols.extend(ccols);
            }
            keys
        }
        Nf::Outer {
            full,
            left,
            right,
            on,
        } => {
            let kind = if *full {
                JoinKind::FullOuter
            } else {
                JoinKind::LeftOuter
            };
            derive::join_keys(
                kind,
                &conjoin(on.clone()),
                &nf_keys(catalog, left),
                &nf_keys(catalog, right),
                &left.cols(),
                &right.cols(),
            )
        }
        Nf::Semi { left, .. } => nf_keys(catalog, left),
        Nf::Project { outputs, child } => derive::project_keys(nf_keys(catalog, child), outputs),
        Nf::GbAgg {
            group_by, child, ..
        } => derive::gbagg_keys(nf_keys(catalog, child), group_by),
        Nf::Distinct { child } => derive::distinct_keys(nf_keys(catalog, child), child.cols()),
        // A Top emits a subset of its child's rows: keys survive.
        Nf::Top { child, .. } => nf_keys(catalog, child),
    }
}

fn is_true(e: &Expr) -> bool {
    *e == Expr::true_lit()
}

/// Filters `nf` by `cs`, sinking each conjunct as deep as it can go and
/// wrapping whatever is left in a join group.
fn absorb_all(catalog: &Catalog, nf: Nf, cs: Vec<Expr>) -> Nf {
    let mut cur = nf;
    let mut leftovers = Vec::new();
    for c in cs {
        if is_true(&c) {
            continue;
        }
        let (n, lo) = absorb(catalog, cur, c);
        cur = n;
        leftovers.extend(lo);
    }
    if leftovers.is_empty() {
        cur
    } else {
        make_group(catalog, vec![cur], leftovers)
    }
}

/// Tries to push one conjunct into `nf`; returns the (possibly rewritten)
/// node plus the conjunct back if no canonical position below exists.
fn absorb(catalog: &Catalog, nf: Nf, c: Expr) -> (Nf, Option<Expr>) {
    match nf {
        Nf::Leaf { .. } | Nf::Top { .. } => (nf, Some(c)),
        Nf::Group {
            children,
            mut conjuncts,
        } => {
            conjuncts.push(c);
            (make_group(catalog, children, conjuncts), None)
        }
        Nf::Outer {
            full: false,
            left,
            right,
            mut on,
        } => {
            let ccols = columns_of(&c);
            if ccols.is_subset(&left.cols()) {
                // Filter on the preserved side commutes with the join.
                let left = absorb_or_wrap(catalog, *left, c);
                (
                    Nf::Outer {
                        full: false,
                        left: Box::new(left),
                        right,
                        on,
                    },
                    None,
                )
            } else if is_null_rejecting(&c, &right.cols()) {
                // The filter kills every NULL-padded row: the outer join
                // is an inner join (§3.1's outer-join-simplify identity).
                on.push(c);
                (make_group(catalog, vec![*left, *right], on), None)
            } else {
                (
                    Nf::Outer {
                        full: false,
                        left,
                        right,
                        on,
                    },
                    Some(c),
                )
            }
        }
        Nf::Outer {
            full: true,
            left,
            right,
            on,
        } => {
            // A filter null-rejecting on one side kills the rows padded
            // on that side, leaving the join preserving that side only.
            if is_null_rejecting(&c, &left.cols()) {
                absorb(catalog, make_outer(catalog, false, *left, *right, on), c)
            } else if is_null_rejecting(&c, &right.cols()) {
                absorb(catalog, make_outer(catalog, false, *right, *left, on), c)
            } else {
                (
                    Nf::Outer {
                        full: true,
                        left,
                        right,
                        on,
                    },
                    Some(c),
                )
            }
        }
        Nf::Semi {
            anti,
            left,
            right,
            on,
        } => {
            if columns_of(&c).is_subset(&left.cols()) {
                let left = absorb_or_wrap(catalog, *left, c);
                (
                    Nf::Semi {
                        anti,
                        left: Box::new(left),
                        right,
                        on,
                    },
                    None,
                )
            } else {
                (
                    Nf::Semi {
                        anti,
                        left,
                        right,
                        on,
                    },
                    Some(c),
                )
            }
        }
        Nf::Project { outputs, child } => {
            // Rewrite through the projection and keep sinking.
            let map: HashMap<ColId, Expr> =
                outputs.iter().map(|(id, e)| (*id, e.clone())).collect();
            let c = substitute(&c, &map);
            let child = absorb_or_wrap(catalog, *child, c);
            (
                Nf::Project {
                    outputs,
                    child: Box::new(child),
                },
                None,
            )
        }
        Nf::GbAgg {
            group_by,
            aggs,
            child,
        } => {
            let gb: BTreeSet<ColId> = group_by.iter().copied().collect();
            if columns_of(&c).is_subset(&gb) {
                let child = absorb_or_wrap(catalog, *child, c);
                (
                    Nf::GbAgg {
                        group_by,
                        aggs,
                        child: Box::new(child),
                    },
                    None,
                )
            } else {
                (
                    Nf::GbAgg {
                        group_by,
                        aggs,
                        child,
                    },
                    Some(c),
                )
            }
        }
        Nf::Distinct { child } => {
            let child = absorb_or_wrap(catalog, *child, c);
            (
                Nf::Distinct {
                    child: Box::new(child),
                },
                None,
            )
        }
    }
}

fn absorb_or_wrap(catalog: &Catalog, nf: Nf, c: Expr) -> Nf {
    let (nf, lo) = absorb(catalog, nf, c);
    match lo {
        None => nf,
        Some(c) => make_group(catalog, vec![nf], vec![c]),
    }
}

/// Smart constructor for an inner-join group: flattens nested groups,
/// lifts untouched outer joins out, sinks conjuncts into children that
/// can take them, and unwraps the degenerate single-child case.
fn make_group(catalog: &Catalog, mut children: Vec<Nf>, mut conjuncts: Vec<Expr>) -> Nf {
    conjuncts.retain(|c| !is_true(c));
    let mut lifted: Vec<(Nf, Vec<Expr>)> = Vec::new();
    loop {
        // Flatten nested inner-join groups, hoisting their conjuncts.
        let mut flat = Vec::with_capacity(children.len());
        for ch in children {
            match ch {
                Nf::Group {
                    children: cc,
                    conjuncts: cj,
                } => {
                    flat.extend(cc);
                    conjuncts.extend(cj);
                }
                other => flat.push(other),
            }
        }
        children = flat;

        // Lift: (A LOJ B) ⨝p C ≡ (A ⨝p C) LOJ B when nothing else in the
        // group touches B's columns.
        let mut lift_at = None;
        for (i, ch) in children.iter().enumerate() {
            if let Nf::Outer {
                full: false, right, ..
            } = ch
            {
                let rcols = right.cols();
                let touched = conjuncts.iter().any(|c| !columns_of(c).is_disjoint(&rcols))
                    || children
                        .iter()
                        .enumerate()
                        .any(|(j, other)| j != i && !other.cols().is_disjoint(&rcols));
                let degenerate = children.len() == 1 && conjuncts.is_empty();
                if !touched && !degenerate {
                    lift_at = Some(i);
                    break;
                }
            }
        }
        if let Some(i) = lift_at {
            let Nf::Outer {
                left, right, on, ..
            } = children.remove(i)
            else {
                unreachable!("index found above holds an Outer");
            };
            lifted.push((*right, on));
            children.insert(i, *left);
            continue;
        }

        // Sink each conjunct into the unique child covering its columns.
        let mut remaining = Vec::new();
        let mut progressed = false;
        'conj: for c in conjuncts.drain(..) {
            let ccols = columns_of(&c);
            if !ccols.is_empty() {
                for i in 0..children.len() {
                    if ccols.is_subset(&children[i].cols()) {
                        let child = children.remove(i);
                        let (child, lo) = absorb(catalog, child, c.clone());
                        children.insert(i, child);
                        match lo {
                            None => progressed = true,
                            Some(c2) => remaining.push(c2),
                        }
                        continue 'conj;
                    }
                }
            }
            remaining.push(c);
        }
        conjuncts = remaining;
        if !progressed {
            break;
        }
        // A demotion may have produced a nested group: re-flatten.
    }

    let mut result = if children.len() == 1 && conjuncts.is_empty() {
        children.pop().expect("one child")
    } else {
        Nf::Group {
            children,
            conjuncts,
        }
    };
    for (right, on) in lifted {
        result = make_outer(catalog, false, result, right, on);
    }
    result
}

/// Smart constructor for outer joins. For a left outer join, on-conjuncts
/// over the null-supplying side alone sink into that side.
fn make_outer(catalog: &Catalog, full: bool, left: Nf, right: Nf, mut on: Vec<Expr>) -> Nf {
    on.retain(|c| !is_true(c));
    if full {
        return Nf::Outer {
            full,
            left: Box::new(left),
            right: Box::new(right),
            on,
        };
    }
    let rcols = right.cols();
    let mut right = right;
    let mut kept = Vec::new();
    for c in on {
        let ccols = columns_of(&c);
        if !ccols.is_empty() && ccols.is_subset(&rcols) {
            right = absorb_or_wrap(catalog, right, c);
        } else {
            kept.push(c);
        }
    }
    Nf::Outer {
        full,
        left: Box::new(left),
        right: Box::new(right),
        on: kept,
    }
}

/// Smart constructor for semi/anti joins: right-only on-conjuncts sink
/// into the probe side (valid for both kinds — they restrict which right
/// rows can witness a match).
fn make_semi(catalog: &Catalog, anti: bool, left: Nf, right: Nf, mut on: Vec<Expr>) -> Nf {
    on.retain(|c| !is_true(c));
    let rcols = right.cols();
    let mut right = right;
    let mut kept = Vec::new();
    for c in on {
        let ccols = columns_of(&c);
        if !ccols.is_empty() && ccols.is_subset(&rcols) {
            right = absorb_or_wrap(catalog, right, c);
        } else {
            kept.push(c);
        }
    }
    Nf::Semi {
        anti,
        left: Box::new(left),
        right: Box::new(right),
        on: kept,
    }
}

fn make_distinct(catalog: &Catalog, child: Nf) -> Nf {
    if class_of(&nf_keys(catalog, &child)) == CardClass::Set {
        child
    } else {
        Nf::Distinct {
            child: Box::new(child),
        }
    }
}

fn make_top(n: u64, keys: Vec<SortKey>, child: Nf) -> Nf {
    if let Nf::Top {
        n: m,
        keys: inner_keys,
        child: inner,
    } = &child
    {
        if *inner_keys == keys {
            return Nf::Top {
                n: n.min(*m),
                keys,
                child: inner.clone(),
            };
        }
    }
    Nf::Top {
        n,
        keys,
        child: Box::new(child),
    }
}

fn make_gbagg(
    catalog: &Catalog,
    mut group_by: Vec<ColId>,
    mut aggs: Vec<AggCall>,
    child: Nf,
) -> Nf {
    group_by.sort_unstable();
    group_by.dedup();
    aggs.sort_by_key(|a| a.output);
    let gb: BTreeSet<ColId> = group_by.iter().copied().collect();

    // Pure deduplication over every child column is Distinct.
    if aggs.is_empty() && gb == child.cols() {
        return make_distinct(catalog, child);
    }

    // Grouping on a candidate key makes every group a singleton, so
    // order-insensitive single-row aggregates become projections
    // (CountStar of one row is 1; Sum/Min/Max of one row is the value —
    // even a NULL one. Count(col) differs on NULL, so it blocks this).
    let agg_safe = aggs.iter().all(|a| match a.func {
        AggFunc::CountStar => true,
        AggFunc::Sum | AggFunc::Min | AggFunc::Max => a.arg.is_some(),
        AggFunc::Count => false,
    });
    let keyed = nf_keys(catalog, &child)
        .iter()
        .any(|k| !k.is_empty() && k.is_subset(&gb));
    if agg_safe && keyed && !group_by.is_empty() {
        let mut outputs: Vec<(ColId, Expr)> =
            group_by.iter().map(|g| (*g, Expr::col(*g))).collect();
        for a in &aggs {
            let e = match a.func {
                AggFunc::CountStar => Expr::lit(1i64),
                _ => Expr::col(a.arg.expect("checked agg_safe")),
            };
            outputs.push((a.output, e));
        }
        return project_over(catalog, outputs, child);
    }

    Nf::GbAgg {
        group_by,
        aggs,
        child: Box::new(child),
    }
}

/// Smart constructor for projections: composes stacked projections,
/// recognizes semi/anti-join idioms, and drops identities.
fn project_over(catalog: &Catalog, outputs: Vec<(ColId, Expr)>, child: Nf) -> Nf {
    // Compose Project ∘ Project.
    if let Nf::Project {
        outputs: inner_out,
        child: inner_child,
    } = child
    {
        let map: HashMap<ColId, Expr> = inner_out.iter().map(|(id, e)| (*id, e.clone())).collect();
        let composed: Vec<(ColId, Expr)> = outputs
            .into_iter()
            .map(|(id, e)| (id, substitute(&e, &map)))
            .collect();
        return project_over(catalog, composed, *inner_child);
    }

    let used: BTreeSet<ColId> = outputs.iter().flat_map(|(_, e)| columns_of(e)).collect();

    let child = recognize_semi(catalog, used, child);

    // Identity projection.
    let ids: BTreeSet<ColId> = outputs.iter().map(|(id, _)| *id).collect();
    let identity = outputs
        .iter()
        .all(|(id, e)| matches!(e, Expr::Col(c) if c == id))
        && ids == child.cols();
    if identity {
        return child;
    }

    let mut outputs = outputs;
    outputs.sort_by_key(|(id, _)| *id);
    Nf::Project {
        outputs,
        child: Box::new(child),
    }
}

/// Semi/anti-join recognition under a projection that hides one join
/// side. `used` is the column set the projection still references.
fn recognize_semi(catalog: &Catalog, used: BTreeSet<ColId>, child: Nf) -> Nf {
    match child {
        // π_X(X ⨝ L) with L a base table none of whose columns survive
        // and a cross-side equi conjunct binding a single-column key of
        // L: each X row matches at most once, so this is a semi join.
        Nf::Group {
            mut children,
            conjuncts,
        } if children.len() == 2 => {
            let leaf_side = (0..2).find(|&i| {
                let lcols = children[i].cols();
                let xcols = children[1 - i].cols();
                matches!(&children[i], Nf::Leaf { table, cols }
                if used.is_disjoint(&lcols)
                && used.is_subset(&xcols)
                && conjuncts.iter().any(|c| match try_col_eq_col(c) {
                    Some((a, b)) => {
                        let key_binds = |x: ColId, l: ColId| {
                            xcols.contains(&x)
                                && lcols.contains(&l)
                                && catalog.table(*table).is_ok_and(|def| {
                                    derive::get_keys(def, cols)
                                        .iter()
                                        .any(|k| k.len() == 1 && k.contains(&l))
                                })
                        };
                        key_binds(a, b) || key_binds(b, a)
                    }
                    None => false,
                }))
            });
            match leaf_side {
                Some(i) => {
                    let leaf = children.remove(i);
                    let x = children.pop().expect("two children");
                    make_semi(catalog, false, x, leaf, conjuncts)
                }
                None => Nf::Group {
                    children,
                    conjuncts,
                },
            }
        }
        // π_A(σ_{IsNull(c)}(A LOJ R)) where c is a column of R that is
        // provably non-NULL on every *matched* row — either a
        // non-nullable base column of R, or a column the join predicate
        // rejects NULLs on (`x = c` never matches a NULL c). The filter
        // then keeps exactly the NULL-padded (= unmatched) rows, so
        // this is an anti join.
        Nf::Group {
            mut children,
            conjuncts,
        } if children.len() == 1 && conjuncts.len() == 1 => {
            let is_anti = {
                let null_col = match &conjuncts[0] {
                    Expr::IsNull(inner) => match inner.as_ref() {
                        Expr::Col(c) => Some(*c),
                        _ => None,
                    },
                    _ => None,
                };
                match (&children[0], null_col) {
                    (
                        Nf::Outer {
                            full: false,
                            left,
                            right,
                            on,
                        },
                        Some(c),
                    ) => {
                        let non_nullable = match right.as_ref() {
                            Nf::Leaf { table, cols } => catalog.table(*table).is_ok_and(|def| {
                                cols.iter()
                                    .position(|&cc| cc == c)
                                    .and_then(|ord| def.columns.get(ord))
                                    .is_some_and(|cd| !cd.nullable)
                            }),
                            _ => false,
                        };
                        let probe: BTreeSet<ColId> = [c].into_iter().collect();
                        let match_rejects_null = on.iter().any(|p| is_null_rejecting(p, &probe));
                        (non_nullable || match_rejects_null)
                            && right.cols().contains(&c)
                            && used.is_subset(&left.cols())
                    }
                    _ => false,
                }
            };
            if is_anti {
                let Nf::Outer {
                    left, right, on, ..
                } = children.pop().expect("one child")
                else {
                    unreachable!("matched Outer above");
                };
                make_semi(catalog, true, *left, *right, on)
            } else {
                Nf::Group {
                    children,
                    conjuncts,
                }
            }
        }
        other => other,
    }
}

/// True when some database instance makes the relation arbitrarily
/// large — the soundness side-condition for the Top-n witness (a `Top`
/// over a provably-bounded input may ignore its count). Conservative:
/// `false` means "could not prove unbounded".
pub fn max_rows_unbounded(nf: &Nf) -> bool {
    match nf {
        Nf::Leaf { .. } => true,
        // Pick instances where every factor is non-empty; the product
        // then grows with any one unbounded factor. Conjuncts cannot
        // cap cardinality below that on all instances.
        Nf::Group { children, .. } => children.iter().any(max_rows_unbounded),
        // A left outer join preserves every left row; full outer both.
        Nf::Outer {
            full, left, right, ..
        } => max_rows_unbounded(left) || (*full && max_rows_unbounded(right)),
        // Semi: a fully-matching right side passes all left rows; anti:
        // an empty right side does.
        Nf::Semi { left, .. } => max_rows_unbounded(left),
        // Projection preserves bag cardinality.
        Nf::Project { child, .. } => max_rows_unbounded(child),
        // Distinct/GbAgg collapse duplicates and Top caps the count —
        // boundedness of their outputs needs value-level reasoning.
        Nf::Distinct { .. } | Nf::GbAgg { .. } | Nf::Top { .. } => false,
    }
}

/// Canonical conjunct set: equality closure over `col = col` and
/// `col = literal` conjuncts, remaining conjuncts rewritten to class
/// representatives, everything rendered to sorted strings.
pub fn canonical_conjuncts(conjs: &[Expr]) -> BTreeSet<String> {
    let mut uf: BTreeMap<ColId, ColId> = BTreeMap::new();
    fn find(uf: &mut BTreeMap<ColId, ColId>, c: ColId) -> ColId {
        let p = *uf.entry(c).or_insert(c);
        if p == c {
            c
        } else {
            let root = find(uf, p);
            uf.insert(c, root);
            root
        }
    }
    let mut lits: Vec<(ColId, Expr)> = Vec::new();
    let mut others: Vec<Expr> = Vec::new();
    for c in conjs {
        if let Some((a, b)) = try_col_eq_col(c) {
            let (ra, rb) = (find(&mut uf, a), find(&mut uf, b));
            let (lo, hi) = if ra <= rb { (ra, rb) } else { (rb, ra) };
            uf.insert(hi, lo);
        } else if let Some((col, lit)) = col_eq_lit(c) {
            find(&mut uf, col);
            lits.push((col, lit));
        } else {
            others.push(c.clone());
        }
    }
    // Classes and their minimum-id representatives.
    let cols: Vec<ColId> = uf.keys().copied().collect();
    let mut members: BTreeMap<ColId, BTreeSet<ColId>> = BTreeMap::new();
    for c in cols {
        let r = find(&mut uf, c);
        members.entry(r).or_default().insert(c);
    }
    let mut rep: HashMap<ColId, ColId> = HashMap::new();
    for ms in members.values() {
        let min = *ms.iter().next().expect("class is non-empty");
        for &m in ms {
            rep.insert(m, min);
        }
    }
    let mut out = BTreeSet::new();
    // A class bound to a literal renders as member = literal for every
    // member (subsuming its internal col-col edges): {a=b, a=1} and
    // {a=1, b=1} become the same set.
    let mut lit_roots: BTreeSet<ColId> = BTreeSet::new();
    for (col, lit) in &lits {
        let r = find(&mut uf, *col);
        lit_roots.insert(r);
        for &m in &members[&r] {
            out.insert(Expr::eq(Expr::col(m), lit.clone()).to_string());
        }
    }
    // Literal-free classes render as a chain from the representative:
    // {a=b} and {a=c, c=b} close to the same edges.
    for (root, ms) in &members {
        if lit_roots.contains(root) || ms.len() < 2 {
            continue;
        }
        let mut it = ms.iter();
        let min = *it.next().expect("non-empty");
        for &m in it {
            out.insert(Expr::eq(Expr::col(min), Expr::col(m)).to_string());
        }
    }
    // Everything else, rewritten to class representatives.
    let repmap: HashMap<ColId, ColId> = rep;
    for e in &others {
        let e = ruletest_expr::remap_columns(e, &repmap);
        out.insert(e.to_string());
    }
    out
}

fn col_eq_lit(e: &Expr) -> Option<(ColId, Expr)> {
    if let Expr::Bin {
        op: ruletest_expr::BinOp::Eq,
        left,
        right,
    } = e
    {
        match (left.as_ref(), right.as_ref()) {
            (Expr::Col(c), Expr::Lit(_)) => return Some((*c, (**right).clone())),
            (Expr::Lit(_), Expr::Col(c)) => return Some((*c, (**left).clone())),
            _ => {}
        }
    }
    None
}
