//! Symbolic rule-equivalence prover (§3.1's sufficient-condition side,
//! checked algebraically before any query runs).
//!
//! The concrete auditor ([`crate::lint_rules`]) checks rule substitutes
//! against *necessary* conditions over small concrete corpora; the
//! dynamic campaign then hunts the rest by executing queries. This
//! module closes part of the gap between the two: it instantiates every
//! exploration rule's pattern over *symbolic* relations (typed columns,
//! candidate keys, nullability — no rows), applies the rule's action,
//! and compares input and substitute algebraically.
//!
//! Verdicts are three-valued, and both non-`Unknown` verdicts are
//! proofs:
//!
//! * [`ProveVerdict::Equivalent`] — both sides reduce to the same
//!   canonical normal form ([`normalize`]); every rewrite step is a
//!   sound algebraic identity, so the rule preserves results on every
//!   database instance (within the instantiated shapes).
//! * [`ProveVerdict::Inequivalent`] — an inequivalence witness fired
//!   ([`verdict`]): a concrete audit violation, an unbound column, a
//!   provably-empty side, a union leaf-set mismatch, or a
//!   conjunct-set difference under an identical skeleton. Each
//!   [`ProofViolation`] names the witness.
//! * [`ProveVerdict::Unknown`] — outside the decidable fragment
//!   (fresh-id minting rules, `UnionAll` shapes, diverging normal
//!   forms). These fall back to the concrete auditor and the dynamic
//!   campaign; `prove.unknown` counts them so CI can gate regressions.

pub mod normalize;
pub mod verdict;

use ruletest_common::{DataType, Result, TableId};
use ruletest_optimizer::Optimizer;
use ruletest_storage::{Catalog, ColumnDef, Database, TableDef};
use ruletest_telemetry::{Counter, Json, Stage, Telemetry};

/// Three-valued proof outcome for one rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProveVerdict {
    Equivalent,
    Inequivalent,
    Unknown,
}

impl ProveVerdict {
    pub fn name(self) -> &'static str {
        match self {
            ProveVerdict::Equivalent => "equivalent",
            ProveVerdict::Inequivalent => "inequivalent",
            ProveVerdict::Unknown => "unknown",
        }
    }
}

impl std::fmt::Display for ProveVerdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One symbolic counterexample: the witness pass that fired and what it
/// found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofViolation {
    /// Witness name (`WellFormed`, `ColumnScope`, `ProvablyEmpty`, ...).
    pub component: String,
    pub detail: String,
}

/// The proof outcome for one rule.
#[derive(Debug, Clone)]
pub struct RuleProof {
    pub rule: String,
    pub verdict: ProveVerdict,
    /// Why the verdict is `Unknown` (or a note on a vacuous proof).
    pub reason: Option<String>,
    pub violations: Vec<ProofViolation>,
    /// Substitutes examined across the extended corpus.
    pub substitutes: usize,
}

/// Whole-catalog proof report.
#[derive(Debug, Clone)]
pub struct ProveReport {
    pub schema_version: u32,
    /// Per-rule proofs, sorted by rule name.
    pub rules: Vec<RuleProof>,
    pub equivalent: u64,
    pub inequivalent: u64,
    pub unknown: u64,
}

/// Bumped on breaking changes to [`ProveReport::to_json`].
pub const PROVE_SCHEMA_VERSION: u32 = 1;

impl ProveReport {
    pub fn verdict_of(&self, rule: &str) -> Option<ProveVerdict> {
        self.rules
            .iter()
            .find(|r| r.rule == rule)
            .map(|r| r.verdict)
    }

    pub fn has_inequivalent(&self) -> bool {
        self.inequivalent > 0
    }

    pub fn to_json(&self) -> Json {
        let rules: Vec<Json> = self
            .rules
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("rule", Json::str(r.rule.clone())),
                    ("verdict", Json::str(r.verdict.name())),
                    (
                        "reason",
                        r.reason.clone().map(Json::str).unwrap_or(Json::Null),
                    ),
                    ("substitutes", Json::count(r.substitutes as u64)),
                    (
                        "violations",
                        Json::Arr(
                            r.violations
                                .iter()
                                .map(|v| {
                                    Json::obj(vec![
                                        ("component", Json::str(v.component.clone())),
                                        ("detail", Json::str(v.detail.clone())),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema_version", Json::count(self.schema_version as u64)),
            ("equivalent", Json::count(self.equivalent)),
            ("inequivalent", Json::count(self.inequivalent)),
            ("unknown", Json::count(self.unknown)),
            ("rules", Json::Arr(rules)),
        ])
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "prove: {} rules — {} equivalent, {} inequivalent, {} unknown\n",
            self.rules.len(),
            self.equivalent,
            self.inequivalent,
            self.unknown
        ));
        for r in &self.rules {
            out.push_str(&format!("  {:<34} {}", r.rule, r.verdict));
            if let Some(reason) = &r.reason {
                out.push_str(&format!("  ({reason})"));
            }
            out.push('\n');
            for v in &r.violations {
                out.push_str(&format!("      [{}] {}\n", v.component, v.detail));
            }
        }
        out
    }
}

/// The symbolic catalog: three identically-shaped relations, each with a
/// non-nullable single-column primary key, a non-nullable data column,
/// and a nullable one. Identical shapes keep union variants arity-
/// compatible; the key/nullability mix exercises every precondition the
/// rule catalog states.
pub fn symbolic_catalog() -> Catalog {
    let mut cat = Catalog::new();
    for (i, name) in ["s0", "s1", "s2"].iter().enumerate() {
        cat.add_table(TableDef {
            id: TableId(i as u32),
            name: (*name).to_string(),
            columns: vec![
                ColumnDef::new("k", DataType::Int, false),
                ColumnDef::new("a", DataType::Int, false),
                ColumnDef::new("b", DataType::Int, true),
            ],
            primary_key: vec![0],
            unique_keys: vec![],
            foreign_keys: vec![],
        })
        .expect("symbolic catalog is well-formed");
    }
    cat
}

/// A rowless database over [`symbolic_catalog`] — proofs never execute,
/// so the tables stay unmaterialized.
pub fn symbolic_database() -> Database {
    Database::new(symbolic_catalog())
}

/// Proves every exploration rule in `opt`'s catalog. Telemetry gets one
/// `prove` stage span with nested per-rule spans, plus the
/// `prove.{equivalent,inequivalent,unknown}` counters.
pub fn prove_rules(opt: &Optimizer, telemetry: &Telemetry) -> Result<ProveReport> {
    prove_selected(opt, telemetry, None)
}

/// Proves only the named rule — used to focus a fault investigation.
/// Fails if the name is not an exploration rule of this optimizer.
pub fn prove_rules_focused(
    opt: &Optimizer,
    rule_name: &str,
    telemetry: &Telemetry,
) -> Result<ProveReport> {
    if !opt
        .exploration_rule_ids()
        .iter()
        .any(|&id| opt.rule(id).name == rule_name)
    {
        return Err(ruletest_common::Error::unsupported(format!(
            "unknown exploration rule '{rule_name}'"
        )));
    }
    prove_selected(opt, telemetry, Some(rule_name))
}

fn prove_selected(
    opt: &Optimizer,
    telemetry: &Telemetry,
    only: Option<&str>,
) -> Result<ProveReport> {
    let db = opt.database();
    let _stage = telemetry.span(Stage::Prove);
    let mut rules = Vec::new();
    for id in opt.exploration_rule_ids() {
        let rule = opt.rule(id);
        if only.is_some_and(|name| name != rule.name) {
            continue;
        }
        let proof = {
            let _rule_span = telemetry.rule_span(id.0);
            verdict::prove_rule(db, rule)?
        };
        telemetry.incr(match proof.verdict {
            ProveVerdict::Equivalent => Counter::ProveEquivalent,
            ProveVerdict::Inequivalent => Counter::ProveInequivalent,
            ProveVerdict::Unknown => Counter::ProveUnknown,
        });
        rules.push(proof);
    }
    rules.sort_by(|a, b| a.rule.cmp(&b.rule));
    let count = |v: ProveVerdict| rules.iter().filter(|r| r.verdict == v).count() as u64;
    Ok(ProveReport {
        schema_version: PROVE_SCHEMA_VERSION,
        equivalent: count(ProveVerdict::Equivalent),
        inequivalent: count(ProveVerdict::Inequivalent),
        unknown: count(ProveVerdict::Unknown),
        rules,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbolic_catalog_shape() {
        let cat = symbolic_catalog();
        for name in ["s0", "s1", "s2"] {
            let def = cat.table_by_name(name).unwrap();
            assert_eq!(def.columns.len(), 3);
            assert_eq!(def.primary_key, vec![0]);
            assert!(!def.columns[0].nullable);
            assert!(def.columns[2].nullable);
        }
    }

    #[test]
    fn report_json_has_greppable_counts() {
        let report = ProveReport {
            schema_version: PROVE_SCHEMA_VERSION,
            rules: vec![RuleProof {
                rule: "X".to_string(),
                verdict: ProveVerdict::Unknown,
                reason: Some("why".to_string()),
                violations: vec![],
                substitutes: 2,
            }],
            equivalent: 0,
            inequivalent: 0,
            unknown: 1,
        };
        let text = report.to_json().to_string_pretty();
        assert!(text.contains("\"unknown\": 1"));
        assert!(text.contains("\"verdict\": \"unknown\""));
    }
}
