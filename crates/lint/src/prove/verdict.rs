//! Per-rule verdict engine: witness passes plus normal-form comparison.
//!
//! For every substitute a rule produces over its extended symbolic
//! corpus, the engine runs *inequivalence witnesses* — checks whose
//! positive finding proves the rewrite changes results on some database
//! instance:
//!
//! 1. the concrete audit passes reused from
//!    [`crate::audit::audit_substitute`]. Well-formedness and schema
//!    equivalence findings are structural facts and fire immediately;
//!    row provenance and duplicate sensitivity are conservative
//!    analyses that can lose precision on valid rewrites, so their
//!    findings are *deferred* — an equal normal form (a sound
//!    equivalence proof) overrides them, anything less confirms them;
//! 2. a column-scope pass that catches predicates/projections referring
//!    to columns no child provides (type inference alone treats unknown
//!    columns as un-inferable and lets them pass);
//! 3. a provably-empty pass: a filter conjunct `c IS NULL` over a
//!    non-nullable `c` empties its subtree, so one side empty while the
//!    other is satisfiable is a counterexample;
//! 4. a leaf-set pass for `UnionAll` trees (outside the normalization
//!    fragment): a substitute reading a different *set* of base-table
//!    scans cannot be equivalent (a multiset would false-positive on
//!    valid scan-duplicating rules like join-over-union distribution);
//! 5. a conjunct-diff pass: when both sides normalize to the same
//!    skeleton but different canonical conjunct sets, the filters
//!    disagree on some instance (conjuncts are independent atoms in the
//!    symbolic domain).
//!
//! If no witness fires, equal normal forms give `Equivalent`; anything
//! else is `Unknown` and falls back to the concrete auditor.

use crate::audit::{self, CorpusTree};
use crate::node::AuditNode;
use crate::prove::{ProofViolation, ProveVerdict, RuleProof};
use crate::wellformed;
use ruletest_expr::{columns_of, conjuncts, Expr};
use ruletest_logical::{IdGen, JoinKind, LogicalTree, Operator};
use ruletest_optimizer::{match_bindings, Bound, GroupId, Memo, NewTree, Rule, RuleCtx};
use ruletest_storage::Database;
use std::cell::RefCell;
use std::collections::BTreeSet;

/// Outcome for a single substitute.
enum SubVerdict {
    Equivalent,
    Inequivalent(Vec<ProofViolation>),
    Unknown(String),
}

/// Proves one exploration rule over its extended symbolic corpus.
pub fn prove_rule(db: &Database, rule: &Rule) -> ruletest_common::Result<RuleProof> {
    if rule.mints_fresh_ids {
        return Ok(RuleProof {
            rule: rule.name.to_string(),
            verdict: ProveVerdict::Unknown,
            reason: Some(
                "mints fresh column ids: substitutes introduce symbols absent from the input \
                 (outside the decidable fragment)"
                    .to_string(),
            ),
            violations: vec![],
            substitutes: 0,
        });
    }

    let corpus = audit::build_corpus_extended(db, rule)?;
    let mut violations: Vec<ProofViolation> = Vec::new();
    let mut unknown_reason: Option<String> = None;
    let mut substitutes = 0usize;

    for ct in &corpus {
        for (bound, _) in match_bindings(&ct.memo, &rule.pattern, ct.root, 0) {
            let ids = RefCell::new(IdGen::above(&ct.tree));
            let ctx = RuleCtx {
                db,
                memo: &ct.memo,
                ids: &ids,
            };
            let Some(results) = rule.action.apply_explore(&ctx, &bound) else {
                continue;
            };
            for nt in &results {
                substitutes += 1;
                match prove_substitute(db, ct, &bound, nt, rule.name) {
                    SubVerdict::Equivalent => {}
                    SubVerdict::Inequivalent(vs) => {
                        for v in vs {
                            if !violations
                                .iter()
                                .any(|o| o.component == v.component && o.detail == v.detail)
                            {
                                violations.push(v);
                            }
                        }
                    }
                    SubVerdict::Unknown(reason) => {
                        unknown_reason.get_or_insert(reason);
                    }
                }
            }
        }
    }

    let (verdict, reason) = if !violations.is_empty() {
        (ProveVerdict::Inequivalent, None)
    } else if let Some(r) = unknown_reason {
        (ProveVerdict::Unknown, Some(r))
    } else if substitutes == 0 {
        (
            ProveVerdict::Equivalent,
            Some("vacuous: the rule never fired on its symbolic corpus".to_string()),
        )
    } else {
        (ProveVerdict::Equivalent, None)
    };
    Ok(RuleProof {
        rule: rule.name.to_string(),
        verdict,
        reason,
        violations,
        substitutes,
    })
}

fn prove_substitute(
    db: &Database,
    ct: &CorpusTree,
    bound: &Bound,
    nt: &NewTree,
    rule_name: &str,
) -> SubVerdict {
    // Witness 1: the concrete audit passes. Well-formedness and schema
    // equivalence are hard witnesses — their findings are structural
    // facts. Row provenance and duplicate sensitivity are *conservative
    // analyses* that can lose precision on valid rewrites (e.g. keys
    // through an outer-join-plus-filter anti-join encoding), so their
    // findings are held back until normal-form comparison: an equal
    // fingerprint is a sound equivalence proof and overrides them.
    let audit_found = audit::audit_substitute(db, &ct.memo, bound, &ct.resolve, rule_name, nt);
    let mut hard = Vec::new();
    let mut soft = Vec::new();
    for v in audit_found {
        let pv = ProofViolation {
            component: v.pass.name().to_string(),
            detail: v.detail,
        };
        match v.pass {
            crate::LintPass::WellFormed | crate::LintPass::SchemaEquivalence => hard.push(pv),
            _ => soft.push(pv),
        }
    }
    if !hard.is_empty() {
        return SubVerdict::Inequivalent(hard);
    }

    let input = AuditNode::from_bound(bound, &ct.resolve);
    let sub = AuditNode::from_newtree(nt, &ct.resolve);

    // Witness 2: unbound column references in the substitute.
    let mut unbound = Vec::new();
    check_scope(&ct.memo, &sub, &mut unbound);
    if !unbound.is_empty() {
        return SubVerdict::Inequivalent(
            unbound
                .into_iter()
                .map(|detail| ProofViolation {
                    component: "ColumnScope".to_string(),
                    detail,
                })
                .collect(),
        );
    }

    // Witness 3: one side provably empty, the other satisfiable.
    let empty_in = provably_empty(db, &ct.memo, &input);
    let empty_sub = provably_empty(db, &ct.memo, &sub);
    if empty_in != empty_sub {
        let (which, other) = if empty_in {
            ("input", "substitute")
        } else {
            ("substitute", "input")
        };
        return SubVerdict::Inequivalent(vec![ProofViolation {
            component: "ProvablyEmpty".to_string(),
            detail: format!(
                "the {which} filters on IS NULL of a non-nullable column (provably empty) \
                 but the {other} does not"
            ),
        }]);
    }

    // UnionAll is outside the normalization fragment: compare the *set*
    // of base-table scans (a rule may validly duplicate a scan, e.g.
    // distributing a join over a union), then fall back on the deferred
    // audit findings.
    if contains_union(&input) || contains_union(&sub) {
        let li = leaf_set(&input);
        let ls = leaf_set(&sub);
        if li != ls {
            return SubVerdict::Inequivalent(vec![ProofViolation {
                component: "LeafSet".to_string(),
                detail: format!(
                    "substitute reads a different set of base scans than its input \
                     ({} vs {} distinct leaves)",
                    ls.len(),
                    li.len()
                ),
            }]);
        }
        if !soft.is_empty() {
            return SubVerdict::Inequivalent(soft);
        }
        return SubVerdict::Unknown(
            "contains UnionAll (outside the normalization fragment)".to_string(),
        );
    }

    // Normal-form comparison.
    let normalized = match (to_logical(&input), to_logical(&sub)) {
        (Some(tin), Some(tsub)) => match (
            super::normalize::normalize(&db.catalog, &tin),
            super::normalize::normalize(&db.catalog, &tsub),
        ) {
            (Some(nin), Some(nsub)) => Some((nin, nsub)),
            _ => None,
        },
        _ => None,
    };
    let Some((nin, nsub)) = normalized else {
        if !soft.is_empty() {
            return SubVerdict::Inequivalent(soft);
        }
        return SubVerdict::Unknown("outside the normalization fragment".to_string());
    };
    let (fin, fsub) = (nin.fingerprint(), nsub.fingerprint());
    if fin == fsub {
        // Sound equivalence proof — overrides the conservative passes.
        return SubVerdict::Equivalent;
    }
    // Witness 4b: both sides take a prefix of the *same* ordered stream
    // but with different lengths, and the stream can exceed both — the
    // shorter prefix drops rows on some instance.
    if let (
        super::normalize::Nf::Top {
            n: ni,
            keys: ki,
            child: ci,
        },
        super::normalize::Nf::Top {
            n: ns,
            keys: ks,
            child: cs,
        },
    ) = (&nin, &nsub)
    {
        if ni != ns
            && ki == ks
            && ci.fingerprint() == cs.fingerprint()
            && super::normalize::max_rows_unbounded(ci)
        {
            return SubVerdict::Inequivalent(vec![ProofViolation {
                component: "TopN".to_string(),
                detail: format!(
                    "both sides take a prefix of the same ordered stream, but the input keeps \
                     {ni} rows and the substitute {ns}"
                ),
            }]);
        }
    }
    if !soft.is_empty() {
        return SubVerdict::Inequivalent(soft);
    }
    // Witness 5: same skeleton, different canonical conjunct sets.
    if nin.skeleton() == nsub.skeleton() {
        return SubVerdict::Inequivalent(vec![ProofViolation {
            component: "ConjunctDiff".to_string(),
            detail: format!(
                "both sides normalize to the same operator skeleton but different canonical \
                 conjunct sets: input `{fin}` vs substitute `{fsub}`"
            ),
        }]);
    }
    SubVerdict::Unknown(format!(
        "normal forms diverge: input `{fin}` vs substitute `{fsub}`"
    ))
}

/// Fully concrete `AuditNode` → standalone tree; `None` if any opaque
/// group reference remains.
fn to_logical(node: &AuditNode) -> Option<LogicalTree> {
    match node {
        AuditNode::Group(_) => None,
        AuditNode::Op { op, children, .. } => {
            let kids: Option<Vec<LogicalTree>> = children.iter().map(to_logical).collect();
            Some(LogicalTree {
                op: op.clone(),
                children: kids?,
            })
        }
    }
}

fn contains_union(node: &AuditNode) -> bool {
    match node {
        AuditNode::Group(_) => false,
        AuditNode::Op { op, children, .. } => {
            matches!(op, Operator::UnionAll { .. }) || children.iter().any(contains_union)
        }
    }
}

/// The set of base scans (and opaque groups) a tree reads, as group
/// ids. A set, not a multiset: equivalence-preserving rules may
/// duplicate a scan (join-over-union distribution), but a substitute
/// reading a leaf its input never touches — or dropping one — cannot be
/// equivalent.
fn leaf_set(node: &AuditNode) -> BTreeSet<GroupId> {
    fn walk(node: &AuditNode, out: &mut BTreeSet<GroupId>) {
        match node {
            AuditNode::Group(g) => {
                out.insert(*g);
            }
            AuditNode::Op { op, gid, children } => {
                if let Operator::Get { .. } = op {
                    if let Some(g) = gid {
                        out.insert(*g);
                    }
                }
                for c in children {
                    walk(c, out);
                }
            }
        }
    }
    let mut out = BTreeSet::new();
    walk(node, &mut out);
    out
}

/// Visible output columns of a node (schema-derived for groups).
fn node_cols(memo: &Memo, node: &AuditNode) -> BTreeSet<ruletest_common::ColId> {
    match node {
        AuditNode::Group(g) => memo.schema(*g).iter().map(|c| c.id).collect(),
        AuditNode::Op { op, children, .. } => match op {
            Operator::Get { cols, .. } => cols.iter().copied().collect(),
            Operator::Select { .. }
            | Operator::Distinct
            | Operator::Sort { .. }
            | Operator::Top { .. } => node_cols(memo, &children[0]),
            Operator::Project { outputs } => outputs.iter().map(|(id, _)| *id).collect(),
            Operator::GbAgg { group_by, aggs } => group_by
                .iter()
                .copied()
                .chain(aggs.iter().map(|a| a.output))
                .collect(),
            Operator::Join { kind, .. } => {
                let mut cols = node_cols(memo, &children[0]);
                if kind.emits_both_sides() {
                    cols.extend(node_cols(memo, &children[1]));
                }
                cols
            }
            Operator::UnionAll { outputs, .. } => outputs.iter().copied().collect(),
        },
    }
}

/// Flags every column an operator's scalar arguments reference that no
/// child of that operator provides.
fn check_scope(memo: &Memo, node: &AuditNode, out: &mut Vec<String>) {
    let AuditNode::Op { op, children, .. } = node else {
        return;
    };
    for c in children {
        check_scope(memo, c, out);
    }
    let visible: BTreeSet<_> = match op {
        Operator::Join { .. } | Operator::UnionAll { .. } => {
            children.iter().flat_map(|c| node_cols(memo, c)).collect()
        }
        _ => children
            .first()
            .map(|c| node_cols(memo, c))
            .unwrap_or_default(),
    };
    let mut referenced: BTreeSet<ruletest_common::ColId> = BTreeSet::new();
    match op {
        Operator::Get { .. } | Operator::Distinct => {}
        Operator::Select { predicate } | Operator::Join { predicate, .. } => {
            referenced.extend(columns_of(predicate));
        }
        Operator::Project { outputs } => {
            for (_, e) in outputs {
                referenced.extend(columns_of(e));
            }
        }
        Operator::GbAgg { group_by, aggs } => {
            referenced.extend(group_by.iter().copied());
            referenced.extend(aggs.iter().filter_map(|a| a.arg));
        }
        Operator::UnionAll {
            left_cols,
            right_cols,
            ..
        } => {
            // Side-scoped: each input list must come from its own child.
            for (cols, idx) in [(left_cols, 0), (right_cols, 1)] {
                let side: BTreeSet<_> = children
                    .get(idx)
                    .map(|c| node_cols(memo, c))
                    .unwrap_or_default();
                for c in cols {
                    if !side.contains(c) {
                        out.push(format!(
                            "UnionAll input column {c} is not provided by child {idx}"
                        ));
                    }
                }
            }
        }
        Operator::Sort { keys } | Operator::Top { keys, .. } => {
            referenced.extend(keys.iter().map(|k| k.col));
        }
    }
    for c in referenced {
        if !visible.contains(&c) {
            out.push(format!(
                "{} references column {c}, which no child provides",
                op.label()
            ));
        }
    }
}

/// Conservative emptiness proof: true only when the subtree provably
/// yields zero rows on *every* database instance.
fn provably_empty(db: &Database, memo: &Memo, node: &AuditNode) -> bool {
    let AuditNode::Op { op, children, .. } = node else {
        return false;
    };
    let child_empty = |i: usize| children.get(i).is_some_and(|c| provably_empty(db, memo, c));
    match op {
        Operator::Get { .. } => false,
        Operator::Select { predicate } => {
            if child_empty(0) {
                return true;
            }
            // A conjunct `c IS NULL` over a non-nullable c never holds.
            let Ok(schema) = wellformed::substitute_schema(&db.catalog, memo, &children[0]) else {
                return false;
            };
            conjuncts(predicate).iter().any(|c| match c {
                Expr::IsNull(inner) => match inner.as_ref() {
                    Expr::Col(col) => schema.iter().any(|ci| ci.id == *col && !ci.nullable),
                    _ => false,
                },
                _ => false,
            })
        }
        Operator::Project { .. }
        | Operator::Distinct
        | Operator::Sort { .. }
        | Operator::Top { .. } => child_empty(0),
        // Scalar aggregation yields one row even on empty input.
        Operator::GbAgg { group_by, .. } => !group_by.is_empty() && child_empty(0),
        Operator::Join { kind, .. } => match kind {
            JoinKind::Inner | JoinKind::LeftSemi => child_empty(0) || child_empty(1),
            JoinKind::LeftOuter | JoinKind::LeftAnti => child_empty(0),
            JoinKind::RightOuter => child_empty(1),
            JoinKind::FullOuter => child_empty(0) && child_empty(1),
        },
        Operator::UnionAll { .. } => child_empty(0) && child_empty(1),
    }
}
