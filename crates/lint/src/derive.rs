//! Shared property-derivation core: candidate-key transfer functions over
//! logical operators, independent of any particular plan representation.
//!
//! Two walkers consume these functions — the concrete-corpus auditor's
//! [`crate::keys`] pass (over [`crate::node::AuditNode`]) and the symbolic
//! prover's normal-form construction (over [`ruletest_logical::LogicalTree`]).
//! Keeping one implementation here means the two classifiers cannot drift:
//! a key the auditor tracks is exactly a key the prover tracks.
//!
//! Keys are tracked as column-id sets and survive only while all their
//! columns stay in the output. Join transfer knows the one schema-aware
//! refinement the rule catalog relies on: an equi conjunct binding a
//! single-column key of one side leaves the other side's keys valid
//! (each row matches at most one partner), which is what keeps
//! `SemiJoinToInnerOnKey`-style rewrites set-preserving.

use ruletest_common::ColId;
use ruletest_expr::{conjuncts, try_col_eq_col, Expr};
use ruletest_logical::JoinKind;
use ruletest_storage::TableDef;
use std::collections::{BTreeMap, BTreeSet};

/// Candidate keys of a (sub)plan output. Empty = no known key = bag class.
pub type KeySets = Vec<BTreeSet<ColId>>;

/// Cardinality class derived from the tracked keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CardClass {
    Set,
    Bag,
}

pub fn class_of(keys: &KeySets) -> CardClass {
    if keys.is_empty() {
        CardClass::Bag
    } else {
        CardClass::Set
    }
}

pub fn dedup_keys(mut keys: KeySets) -> KeySets {
    keys.sort();
    keys.dedup();
    // Cap to keep the product transfer bounded on deep join corpora.
    keys.truncate(16);
    keys
}

/// Keys of a base-table scan: the primary key plus declared unique keys,
/// mapped through the scan's minted column ids.
pub fn get_keys(def: &TableDef, cols: &[ColId]) -> KeySets {
    let visible: BTreeSet<ColId> = cols.iter().copied().collect();
    let mut keys = KeySets::new();
    for ordinals in std::iter::once(&def.primary_key).chain(def.unique_keys.iter()) {
        let key: BTreeSet<ColId> = ordinals
            .iter()
            .filter_map(|&o| cols.get(o).copied())
            .collect();
        if key.len() == ordinals.len() && key.is_subset(&visible) {
            keys.push(key);
        }
    }
    dedup_keys(keys)
}

/// Keys surviving a projection: only keys whose every column passes
/// through as a bare column reference, renamed to the output ids.
pub fn project_keys(keys: KeySets, outputs: &[(ColId, Expr)]) -> KeySets {
    let passthru: BTreeMap<ColId, ColId> = outputs
        .iter()
        .filter_map(|(id, e)| match e {
            Expr::Col(c) => Some((*c, *id)),
            _ => None,
        })
        .collect();
    dedup_keys(
        keys.into_iter()
            .filter_map(|k| {
                k.iter()
                    .map(|c| passthru.get(c).copied())
                    .collect::<Option<BTreeSet<_>>>()
            })
            .collect(),
    )
}

/// Keys of a grouped aggregation: the grouping columns, plus any child
/// key already contained in them.
pub fn gbagg_keys(child: KeySets, group_by: &[ColId]) -> KeySets {
    let gb: BTreeSet<ColId> = group_by.iter().copied().collect();
    let mut keys = vec![gb.clone()];
    keys.extend(child.into_iter().filter(|k| k.is_subset(&gb)));
    dedup_keys(keys)
}

/// Keys of a Distinct: the child's keys plus the whole row.
pub fn distinct_keys(child: KeySets, child_cols: BTreeSet<ColId>) -> KeySets {
    let mut keys = child;
    keys.push(child_cols);
    dedup_keys(keys)
}

/// Keys of a join given both sides' keys and visible columns.
pub fn join_keys(
    kind: JoinKind,
    predicate: &Expr,
    lk: &KeySets,
    rk: &KeySets,
    lcols: &BTreeSet<ColId>,
    rcols: &BTreeSet<ColId>,
) -> KeySets {
    match kind {
        // Semi/anti emit each left row at most once.
        JoinKind::LeftSemi | JoinKind::LeftAnti => lk.clone(),
        JoinKind::Inner | JoinKind::LeftOuter | JoinKind::RightOuter | JoinKind::FullOuter => {
            let mut keys = KeySets::new();
            // Pairs (l, r) are unique, so any left-key ∪ right-key
            // combination is a key of the join.
            for l in lk {
                for r in rk {
                    keys.push(l.union(r).copied().collect());
                }
            }
            // A cross-side equi conjunct binding a single-column key of
            // one side gives each other-side row at most one match,
            // keeping the other side's keys valid — unless this join
            // NULL-pads the other side, which can make several padded
            // rows agree on those keys.
            let (pads_left, pads_right) = (
                kind.preserves_right(),
                kind.preserves_left() && kind.emits_both_sides(),
            );
            let single =
                |ks: &KeySets, col: &ColId| ks.iter().any(|k| k.len() == 1 && k.contains(col));
            for c in conjuncts(predicate) {
                if let Some((a, b)) = try_col_eq_col(&c) {
                    let (lcol, rcol) = if lcols.contains(&a) && rcols.contains(&b) {
                        (a, b)
                    } else if lcols.contains(&b) && rcols.contains(&a) {
                        (b, a)
                    } else {
                        continue;
                    };
                    if single(rk, &rcol) && !pads_left {
                        keys.extend(lk.iter().cloned());
                    }
                    if single(lk, &lcol) && !pads_right {
                        keys.extend(rk.iter().cloned());
                    }
                }
            }
            dedup_keys(keys)
        }
    }
}
