//! The common tree shape both sides of a substitute audit are converted
//! into: a tree of concrete operators whose leaves are memo groups.
//!
//! A rule firing gives the auditor two views of "the same" relation — the
//! bound input match and each substitute `NewTree` — expressed over shared
//! memo groups. Converting both into [`AuditNode`]s (resolving group
//! references back to their known concrete subtrees where possible) lets
//! every static pass run one tree walk, independent of whether the tree
//! came from a corpus `LogicalTree`, a `Bound`, or a `NewTree`.

use ruletest_logical::Operator;
use ruletest_optimizer::{Bound, BoundChild, GroupId, NewChild, NewTree};
use std::collections::HashMap;

/// A concrete-operator tree over memo groups.
#[derive(Debug, Clone)]
pub enum AuditNode {
    /// An opaque memo group whose defining expression is unknown to the
    /// auditor (a pattern placeholder in an online match).
    Group(GroupId),
    /// A concrete operator, tagged with its memo group when known.
    Op {
        op: Operator,
        gid: Option<GroupId>,
        children: Vec<AuditNode>,
    },
}

impl AuditNode {
    /// Converts a bound pattern match. `resolve` maps group ids to known
    /// concrete subtrees (corpus nodes, or nothing for online matches);
    /// unresolved placeholder groups stay opaque.
    pub fn from_bound(b: &Bound, resolve: &HashMap<GroupId, AuditNode>) -> AuditNode {
        AuditNode::Op {
            op: b.op.clone(),
            gid: Some(b.group),
            children: b
                .children
                .iter()
                .map(|c| match c {
                    BoundChild::Leaf(g) => resolve.get(g).cloned().unwrap_or(AuditNode::Group(*g)),
                    BoundChild::Nested(nb) => AuditNode::from_bound(nb, resolve),
                })
                .collect(),
        }
    }

    /// Converts a substitute. Group references resolve through the same
    /// map as [`AuditNode::from_bound`], so a substitute that references a
    /// group bound concretely on the input side is compared against that
    /// concrete shape rather than an opaque leaf.
    pub fn from_newtree(t: &NewTree, resolve: &HashMap<GroupId, AuditNode>) -> AuditNode {
        AuditNode::Op {
            op: t.op.clone(),
            gid: None,
            children: t
                .children
                .iter()
                .map(|c| match c {
                    NewChild::Group(g) => resolve.get(g).cloned().unwrap_or(AuditNode::Group(*g)),
                    NewChild::Tree(nt) => AuditNode::from_newtree(nt, resolve),
                })
                .collect(),
        }
    }

    /// The memo group this node belongs to, when known.
    pub fn gid(&self) -> Option<GroupId> {
        match self {
            AuditNode::Group(g) => Some(*g),
            AuditNode::Op { gid, .. } => *gid,
        }
    }

    /// Indexes every group-tagged node of this tree by its group id, so
    /// substitutes referencing those groups resolve to concrete shapes.
    pub fn index_by_group(&self, map: &mut HashMap<GroupId, AuditNode>) {
        match self {
            AuditNode::Group(_) => {}
            AuditNode::Op { gid, children, .. } => {
                if let Some(g) = gid {
                    map.entry(*g).or_insert_with(|| self.clone());
                }
                for c in children {
                    c.index_by_group(map);
                }
            }
        }
    }
}

/// Identifies one analysis leaf. Leaves keyed by a memo group compare
/// across the input/substitute sides; anonymous leaves (operator trees
/// with no group identity) never match and are skipped by comparisons.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LeafKey {
    Group(GroupId),
    Anon(u32),
}
