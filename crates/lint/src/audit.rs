//! The rule substitute auditor and pattern-necessity auditor.
//!
//! For every registered rule the auditor instantiates a bounded corpus of
//! small logical trees from the rule's own exported pattern (each
//! placeholder becomes a catalog table scan, joins get key-binding equi
//! predicates, selects get left-only / right-only / conjunctive predicate
//! variants so outer-join behavior is exposed), applies the rule's
//! substitution in a sandboxed memo, and statically checks each substitute
//! against the input match: well-formedness, schema equivalence, row
//! provenance, and duplicate sensitivity. Separately, every rule's action
//! is probed against every corpus tree — including other rules' — and any
//! firing on a tree the exported pattern does not match is a violation of
//! the paper's §3.1 necessary-condition contract.

use crate::node::AuditNode;
use crate::violation::{LintPass, LintViolation, Severity};
use crate::{keys, props, wellformed};
use ruletest_common::Result;
use ruletest_expr::{AggCall, AggFunc, Expr};
use ruletest_logical::{
    derive_schema, IdGen, JoinKind, LogicalTree, OpKind, Operator, Schema, SortKey,
};
use ruletest_optimizer::{
    match_bindings, Bound, GroupId, Memo, NewChild, NewTree, OpMatcher, PatternTree, Rule, RuleCtx,
};
use ruletest_storage::{Database, TableDef};
use std::cell::RefCell;
use std::collections::HashMap;

/// Cap on corpus trees per rule; patterns with many join kinds × predicate
/// variants are truncated deterministically.
const MAX_CORPUS_PER_RULE: usize = 24;
/// Cap on variants carried per pattern child during instantiation.
const MAX_CHILD_VARIANTS: usize = 4;

/// One instantiated corpus tree with its sandboxed memo.
pub struct CorpusTree {
    /// Rule whose pattern this tree was instantiated from.
    pub origin: &'static str,
    pub tree: LogicalTree,
    pub memo: Memo,
    pub root: GroupId,
    /// Group → concrete subtree, for resolving substitute references.
    pub resolve: HashMap<GroupId, AuditNode>,
}

/// Counters describing how much static checking actually ran.
#[derive(Debug, Clone, Copy, Default)]
pub struct AuditStats {
    pub corpus_trees: usize,
    pub bindings_audited: usize,
    pub substitutes_audited: usize,
    pub necessity_probes: usize,
    pub firings_matched: usize,
}

fn first_int_col(schema: &Schema) -> Option<ruletest_common::ColId> {
    schema
        .iter()
        .find(|c| c.data_type == ruletest_common::DataType::Int)
        .map(|c| c.id)
}

fn last_int_col(schema: &Schema) -> Option<ruletest_common::ColId> {
    schema
        .iter()
        .rev()
        .find(|c| c.data_type == ruletest_common::DataType::Int)
        .map(|c| c.id)
}

/// Tables usable as corpus leaves: single-column integer primary key (so
/// join predicates can bind a key, which the duplicate-sensitivity pass
/// needs for semi/anti rewrites) and at least two integer columns (one
/// may serve as aggregate argument).
fn leaf_pool(db: &Database) -> Vec<TableDef> {
    db.catalog
        .tables()
        .iter()
        .filter(|t| {
            t.primary_key.len() == 1
                && t.columns[t.primary_key[0]].data_type == ruletest_common::DataType::Int
                && t.columns
                    .iter()
                    .filter(|c| c.data_type == ruletest_common::DataType::Int)
                    .count()
                    >= 2
        })
        .cloned()
        .collect()
}

struct Instantiator<'a> {
    db: &'a Database,
    pool: Vec<TableDef>,
    next_table: usize,
    ids: IdGen,
    /// Extended instantiation for the symbolic prover: adds non-key join
    /// predicates, cross-side select conjuncts, `Count(col)` aggregates,
    /// differing Top-over-Top keys, and two-table unions. `false`
    /// preserves the lint corpus byte for byte.
    extended: bool,
}

impl<'a> Instantiator<'a> {
    fn new(db: &'a Database) -> Self {
        Self {
            db,
            pool: leaf_pool(db),
            next_table: 0,
            ids: IdGen::new(),
            extended: false,
        }
    }

    fn next_leaf(&mut self, forced: Option<&TableDef>) -> LogicalTree {
        let def = match forced {
            Some(d) => d.clone(),
            None => {
                let d = self.pool[self.next_table % self.pool.len()].clone();
                self.next_table += 1;
                d
            }
        };
        LogicalTree::get(&def, &mut self.ids)
    }

    fn schema(&self, t: &LogicalTree) -> Schema {
        derive_schema(&self.db.catalog, t).expect("corpus trees are well-formed by construction")
    }

    /// Primary-key column of a Get leaf, for key-binding join predicates.
    fn pk_col(&self, t: &LogicalTree) -> Option<ruletest_common::ColId> {
        let Operator::Get { table, cols } = &t.op else {
            return None;
        };
        let def = self.db.catalog.table(*table).ok()?;
        match def.primary_key.as_slice() {
            [o] => cols.get(*o).copied(),
            _ => None,
        }
    }

    /// Predicate variants for a Select over `child`: a head-column
    /// equality (left-side-only over joins), a tail-column equality
    /// (right-side-only), and their conjunction. Never the TRUE literal —
    /// a trivial predicate would hide preservation bugs.
    fn select_predicates(&self, child: &LogicalTree) -> Vec<Expr> {
        let schema = self.schema(child);
        let Some(head) = first_int_col(&schema) else {
            return vec![];
        };
        let tail = last_int_col(&schema).unwrap_or(head);
        let head_eq = Expr::eq(Expr::col(head), Expr::lit(1i64));
        let tail_eq = Expr::eq(Expr::col(tail), Expr::lit(2i64));
        if head == tail {
            vec![head_eq.clone(), Expr::and(head_eq, tail_eq)]
        } else {
            let mut out = vec![
                head_eq.clone(),
                tail_eq.clone(),
                Expr::and(head_eq, tail_eq),
            ];
            if self.extended {
                // Cross-side column equality: over a join child this
                // conjunct references both sides, exercising residual-
                // conjunct handling in push-down rules.
                out.push(Expr::eq(Expr::col(head), Expr::col(tail)));
            }
            out
        }
    }

    /// Join predicate variants between two instantiated children: equi
    /// conjuncts from a left column to the right child's primary key
    /// (falling back to its first integer column).
    fn join_predicates(&self, left: &LogicalTree, right: &LogicalTree) -> Vec<Expr> {
        let ls = self.schema(left);
        let rcol = match self
            .pk_col(right)
            .or_else(|| first_int_col(&self.schema(right)))
        {
            Some(c) => c,
            None => return vec![Expr::true_lit()],
        };
        let mut out = Vec::new();
        let mut seen = std::collections::BTreeSet::new();
        for lcol in [first_int_col(&ls), last_int_col(&ls)]
            .into_iter()
            .flatten()
        {
            if seen.insert(lcol) {
                out.push(Expr::eq(Expr::col(lcol), Expr::col(rcol)));
            }
        }
        if out.is_empty() {
            out.push(Expr::true_lit());
        }
        if self.extended {
            // Non-key equi variant: bind the right side's *last* integer
            // column instead of its key, so key-dependent rewrites see at
            // least one corpus tree where the key check must fail.
            if let Some(rlast) = last_int_col(&self.schema(right)) {
                if rlast != rcol {
                    if let Some(lcol) = first_int_col(&ls) {
                        out.push(Expr::eq(Expr::col(lcol), Expr::col(rlast)));
                    }
                }
            }
            out.truncate(3);
        } else {
            out.truncate(2);
        }
        out
    }

    fn gbagg_variants(
        &mut self,
        child: &LogicalTree,
    ) -> Vec<(Vec<ruletest_common::ColId>, Vec<AggCall>)> {
        let schema = self.schema(child);
        // Group by the child's primary key when it is a plain scan (so
        // key-covering rules fire), else by the first column.
        let gb = self.pk_col(child).or_else(|| schema.first().map(|c| c.id));
        let Some(gb) = gb else {
            return vec![];
        };
        // Aggregate-argument candidates: for joins, one from each side so
        // both eager-push directions get exercised.
        let mut args = Vec::new();
        if let Operator::Join { .. } = &child.op {
            if let Some(c) = first_int_col(&self.schema(&child.children[0])) {
                args.push(c);
            }
            if let Some(c) = first_int_col(&self.schema(&child.children[1])) {
                args.push(c);
            }
        }
        if args.is_empty() {
            if let Some(c) = schema
                .iter()
                .find(|c| c.data_type == ruletest_common::DataType::Int && c.id != gb)
                .map(|c| c.id)
                .or_else(|| first_int_col(&schema))
            {
                args.push(c);
            }
        }
        let extended = self.extended;
        let mut out: Vec<(Vec<ruletest_common::ColId>, Vec<AggCall>)> = Vec::new();
        for arg in args {
            let aggs = vec![
                AggCall::new(AggFunc::Sum, Some(arg), self.ids.fresh()),
                AggCall::new(AggFunc::CountStar, None, self.ids.fresh()),
            ];
            out.push((vec![gb], aggs));
            if extended {
                // `Count(col)` differs from `CountStar` exactly on NULL
                // arguments — NULL-sensitivity bugs in aggregate rewrites
                // need at least one corpus tree carrying it.
                out.push((
                    vec![gb],
                    vec![AggCall::new(AggFunc::Count, Some(arg), self.ids.fresh())],
                ));
            }
        }
        out
    }

    /// Instantiates a pattern into concrete corpus trees. `forced` pins
    /// the leaf table inside UnionAll subtrees, where both sides must
    /// agree on arity and column types.
    fn instantiate(&mut self, pat: &PatternTree, forced: Option<&TableDef>) -> Vec<LogicalTree> {
        match pat {
            PatternTree::Any => vec![self.next_leaf(forced)],
            PatternTree::Op { matcher, children } => {
                let kind = match matcher {
                    OpMatcher::Kind(k) => *k,
                    OpMatcher::Join(_) => OpKind::Join,
                };
                match kind {
                    OpKind::Get => vec![self.next_leaf(forced)],
                    OpKind::Join => {
                        let kinds: Vec<JoinKind> = match matcher {
                            OpMatcher::Join(ks) => ks.clone(),
                            OpMatcher::Kind(_) => vec![
                                JoinKind::Inner,
                                JoinKind::LeftOuter,
                                JoinKind::RightOuter,
                                JoinKind::FullOuter,
                                JoinKind::LeftSemi,
                                JoinKind::LeftAnti,
                            ],
                        };
                        let lefts = self.capped(&children[0], forced);
                        let rights = self.capped(&children[1], forced);
                        let mut out = Vec::new();
                        for l in &lefts {
                            for r in &rights {
                                for jk in &kinds {
                                    for p in self.join_predicates(l, r) {
                                        out.push(LogicalTree::join(*jk, l.clone(), r.clone(), p));
                                    }
                                }
                            }
                        }
                        out
                    }
                    OpKind::Select => {
                        let inputs = self.capped(&children[0], forced);
                        let mut out = Vec::new();
                        for c in &inputs {
                            for p in self.select_predicates(c) {
                                out.push(LogicalTree::select(c.clone(), p));
                            }
                        }
                        out
                    }
                    OpKind::Project => self
                        .capped(&children[0], forced)
                        .into_iter()
                        .map(|c| {
                            let outputs = self
                                .schema(&c)
                                .iter()
                                .map(|col| (col.id, Expr::col(col.id)))
                                .collect();
                            LogicalTree::project(c, outputs)
                        })
                        .collect(),
                    OpKind::GbAgg => {
                        let inputs = self.capped(&children[0], forced);
                        let mut out = Vec::new();
                        for c in inputs {
                            for (gb, aggs) in self.gbagg_variants(&c) {
                                out.push(LogicalTree::gbagg(c.clone(), gb, aggs));
                            }
                        }
                        out
                    }
                    OpKind::UnionAll => {
                        let table = match forced {
                            Some(d) => d.clone(),
                            None => {
                                let d = self.pool[self.next_table % self.pool.len()].clone();
                                self.next_table += 1;
                                d
                            }
                        };
                        let lefts = self.capped(&children[0], Some(&table));
                        let mut rights = self.capped(&children[1], Some(&table));
                        if self.extended {
                            // A right branch over a *different* table (same
                            // arity, or the pairing is skipped below) makes
                            // the two union sides distinguishable, so
                            // side-confusion bugs become observable.
                            if let Some(other) =
                                self.pool.iter().find(|t| t.id != table.id).cloned()
                            {
                                rights.extend(self.capped(&children[1], Some(&other)));
                            }
                        }
                        let mut out = Vec::new();
                        for l in &lefts {
                            for r in &rights {
                                let ls = self.schema(l);
                                let rs = self.schema(r);
                                if ls.len() != rs.len() {
                                    continue;
                                }
                                let outputs = self.ids.fresh_n(ls.len());
                                out.push(LogicalTree::union_all(
                                    l.clone(),
                                    r.clone(),
                                    outputs,
                                    ls.iter().map(|c| c.id).collect(),
                                    rs.iter().map(|c| c.id).collect(),
                                ));
                            }
                        }
                        out
                    }
                    OpKind::Distinct => self
                        .capped(&children[0], forced)
                        .into_iter()
                        .map(LogicalTree::distinct)
                        .collect(),
                    OpKind::Sort => self.unary_sorted(&children[0], forced, LogicalTree::sort),
                    OpKind::Top => {
                        let mut v = self.unary_sorted(&children[0], forced, |c, keys| {
                            LogicalTree::top(c, 5, keys)
                        });
                        // Extended: a Top directly over a Top also gets a
                        // *different* row count, so Top-over-Top corpora
                        // distinguish min-vs-max (and off-by-one) bugs in
                        // count-combining rules.
                        if self.extended {
                            let outer: Vec<LogicalTree> = self
                                .capped(&children[0], forced)
                                .into_iter()
                                .filter(|c| matches!(c.op, Operator::Top { .. }))
                                .collect();
                            for c in outer {
                                if let Some(col) = self.schema(&c).first() {
                                    let key = col.id;
                                    v.push(LogicalTree::top(c, 3, vec![SortKey::asc(key)]));
                                }
                            }
                        }
                        v
                    }
                }
            }
        }
    }

    fn unary_sorted(
        &mut self,
        child: &PatternTree,
        forced: Option<&TableDef>,
        build: impl Fn(LogicalTree, Vec<SortKey>) -> LogicalTree,
    ) -> Vec<LogicalTree> {
        self.capped(child, forced)
            .into_iter()
            .flat_map(|c| {
                let schema = self.schema(&c);
                let mut out = Vec::new();
                if let Some(col) = schema.first() {
                    out.push(build(c.clone(), vec![SortKey::asc(col.id)]));
                }
                // Extended: a sorted operator directly over a Top *also*
                // gets a different key column, so Top-over-Top corpora
                // include both a tree where the keys-must-match
                // precondition holds and one where it fails.
                if self.extended && matches!(c.op, Operator::Top { .. }) {
                    if let Some(col) = schema.get(1) {
                        out.push(build(c, vec![SortKey::asc(col.id)]));
                    }
                }
                out
            })
            .collect()
    }

    fn capped(&mut self, pat: &PatternTree, forced: Option<&TableDef>) -> Vec<LogicalTree> {
        let mut v = self.instantiate(pat, forced);
        v.truncate(MAX_CHILD_VARIANTS);
        v
    }
}

/// Instantiates the bounded corpus for one rule and sandboxes each tree
/// in its own memo.
pub fn build_corpus(db: &Database, rule: &Rule) -> Result<Vec<CorpusTree>> {
    build_corpus_with(db, rule, false)
}

/// [`build_corpus`] plus the extended instantiation variants the symbolic
/// prover needs (non-key join predicates, cross-side select conjuncts,
/// `Count(col)` aggregates, differing Top-over-Top keys, two-table
/// unions). The plain lint corpus is unchanged byte for byte.
pub fn build_corpus_extended(db: &Database, rule: &Rule) -> Result<Vec<CorpusTree>> {
    build_corpus_with(db, rule, true)
}

fn build_corpus_with(db: &Database, rule: &Rule, extended: bool) -> Result<Vec<CorpusTree>> {
    let mut inst = Instantiator::new(db);
    inst.extended = extended;
    if inst.pool.is_empty() {
        return Ok(vec![]);
    }
    let mut trees = inst.instantiate(&rule.pattern, None);
    trees.truncate(MAX_CORPUS_PER_RULE);
    let mut out = Vec::with_capacity(trees.len());
    for tree in trees {
        let mut memo = Memo::new();
        let mut resolve = HashMap::new();
        let root_node = insert_tree(db, &mut memo, &tree, &mut resolve)?;
        let root = root_node
            .gid()
            .expect("sandbox insertion tags every node with its group");
        out.push(CorpusTree {
            origin: rule.name,
            tree,
            memo,
            root,
            resolve,
        });
    }
    Ok(out)
}

fn insert_tree(
    db: &Database,
    memo: &mut Memo,
    tree: &LogicalTree,
    resolve: &mut HashMap<GroupId, AuditNode>,
) -> Result<AuditNode> {
    let mut children = Vec::with_capacity(tree.children.len());
    let mut child_gids = Vec::with_capacity(tree.children.len());
    for c in &tree.children {
        let node = insert_tree(db, memo, c, resolve)?;
        child_gids.push(NewChild::Group(
            node.gid().expect("children inserted before parents"),
        ));
        children.push(node);
    }
    let (gid, _) = memo.insert(db, &NewTree::new(tree.op.clone(), child_gids), None, true)?;
    let node = AuditNode::Op {
        op: tree.op.clone(),
        gid: Some(gid),
        children,
    };
    resolve.entry(gid).or_insert_with(|| node.clone());
    Ok(node)
}

/// Audits one substitute against its input match. Shared by the corpus
/// auditor and the optimizer's debug-mode hook.
pub fn audit_substitute(
    db: &Database,
    memo: &Memo,
    bound: &Bound,
    resolve: &HashMap<GroupId, AuditNode>,
    rule_name: &str,
    substitute: &NewTree,
) -> Vec<LintViolation> {
    let mut out = Vec::new();
    let input = AuditNode::from_bound(bound, resolve);
    let sub = AuditNode::from_newtree(substitute, resolve);

    // Well-formedness + schema equivalence.
    match wellformed::substitute_schema(&db.catalog, memo, &sub) {
        Err(e) => {
            out.push(LintViolation::new(
                LintPass::WellFormed,
                Severity::Error,
                Some(rule_name),
                format!("substitute does not type-check: {e}"),
            ));
            return out;
        }
        Ok(schema) => {
            let expected = memo.schema(bound.group);
            if !wellformed::schemas_equivalent(expected, &schema) {
                out.push(LintViolation::new(
                    LintPass::SchemaEquivalence,
                    Severity::Error,
                    Some(rule_name),
                    format!(
                        "substitute schema {:?} is not equivalent to its group's schema {:?}",
                        schema
                            .iter()
                            .map(|c| (c.id, c.data_type))
                            .collect::<Vec<_>>(),
                        expected
                            .iter()
                            .map(|c| (c.id, c.data_type))
                            .collect::<Vec<_>>(),
                    ),
                ));
            }
        }
    }

    // Row provenance.
    let mut anon = 0u32;
    let input_props = props::analyze(&input, memo, &mut anon);
    let sub_props = props::analyze(&sub, memo, &mut anon);
    out.extend(props::compare(&input_props, &sub_props, rule_name));

    // Duplicate sensitivity.
    let input_keys = keys::analyze(&input, memo, &db.catalog);
    let sub_keys = keys::analyze(&sub, memo, &db.catalog);
    out.extend(keys::compare(&input_keys, &sub_keys, rule_name));

    out
}

/// Runs the substitute audit for one exploration rule over its corpus.
pub fn audit_rule(
    db: &Database,
    rule: &Rule,
    corpus: &[CorpusTree],
    stats: &mut AuditStats,
) -> Vec<LintViolation> {
    if !rule.action.is_explore() {
        return vec![];
    }
    let mut out = Vec::new();
    for ct in corpus {
        let bindings = match_bindings(&ct.memo, &rule.pattern, ct.root, 0);
        for (bound, _) in bindings {
            stats.bindings_audited += 1;
            let ids = RefCell::new(IdGen::above(&ct.tree));
            let ctx = RuleCtx {
                db,
                memo: &ct.memo,
                ids: &ids,
            };
            // `is_explore()` was checked on entry, so `None` here means
            // the action classification and the action itself disagree —
            // an audit finding in its own right, not a reason to panic.
            let Some(results) = rule.action.apply_explore(&ctx, &bound) else {
                out.push(LintViolation::new(
                    LintPass::WellFormed,
                    Severity::Error,
                    Some(rule.name),
                    "action claims to be an exploration but refused to apply as one",
                ));
                return out;
            };
            if !results.is_empty() {
                // Contract check on the recorded firing: the exported
                // pattern must match the concrete tree at the firing site.
                stats.firings_matched += 1;
                if !rule.pattern.matches_at(&ct.tree) {
                    out.push(LintViolation::new(
                        LintPass::PatternNecessity,
                        Severity::Error,
                        Some(rule.name),
                        "rule fired at a site its exported pattern does not match",
                    ));
                }
            }
            for nt in &results {
                stats.substitutes_audited += 1;
                out.extend(audit_substitute(
                    db,
                    &ct.memo,
                    &bound,
                    &ct.resolve,
                    rule.name,
                    nt,
                ));
            }
        }
    }
    out
}

/// Cross-checks the two implementations of pattern matching over every
/// corpus tree: the memo-side binder (`match_bindings` — what the explore
/// loop actually fires rules on) and the exported tree-side matcher
/// (`PatternTree::matches_at` — what pattern export and the test
/// generator reason with). The §3.1 necessary-condition contract rests on
/// these agreeing: if the binder binds where the export does not match,
/// the optimizer fires the rule on trees the exported pattern disclaims;
/// if the export matches where the binder cannot bind, generated test
/// queries target firings that can never happen.
pub fn necessity_probe(
    rules: &[&Rule],
    corpora: &[CorpusTree],
    stats: &mut AuditStats,
) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for ct in corpora {
        for rule in rules {
            if matches!(rule.pattern, PatternTree::Any) {
                // A bare placeholder binds nothing a rule could use; the
                // binder refuses it by design and no rule exports one.
                continue;
            }
            stats.necessity_probes += 1;
            let binds = !match_bindings(&ct.memo, &rule.pattern, ct.root, 0).is_empty();
            let matches = rule.pattern.matches_at(&ct.tree);
            if binds && !matches {
                out.push(LintViolation::new(
                    LintPass::PatternNecessity,
                    Severity::Error,
                    Some(rule.name),
                    format!(
                        "optimizer binder fires on a {} tree the exported pattern does not match",
                        ct.tree.op.label()
                    ),
                ));
            }
            if matches && !binds {
                out.push(LintViolation::new(
                    LintPass::PatternNecessity,
                    Severity::Error,
                    Some(rule.name),
                    format!(
                        "exported pattern matches a {} tree the optimizer binder cannot bind",
                        ct.tree.op.label()
                    ),
                ));
            }
        }
    }
    out
}

/// Static satisfiability of an exported pattern: concrete nodes must have
/// as many pattern children as the operator kind's arity, and join
/// matchers must allow at least one kind — otherwise no tree can ever
/// match and the rule is dead.
pub fn validate_pattern(rule_name: &str, pattern: &PatternTree) -> Vec<LintViolation> {
    fn arity(kind: OpKind) -> usize {
        match kind {
            OpKind::Get => 0,
            OpKind::Join | OpKind::UnionAll => 2,
            _ => 1,
        }
    }
    let mut out = Vec::new();
    match pattern {
        PatternTree::Any => {}
        PatternTree::Op { matcher, children } => {
            let expected = match matcher {
                OpMatcher::Kind(k) => arity(*k),
                OpMatcher::Join(kinds) => {
                    if kinds.is_empty() {
                        out.push(LintViolation::new(
                            LintPass::PatternNecessity,
                            Severity::Error,
                            Some(rule_name),
                            "join matcher allows no join kind; the pattern can never match",
                        ));
                    }
                    2
                }
            };
            if children.len() != expected {
                out.push(LintViolation::new(
                    LintPass::PatternNecessity,
                    Severity::Error,
                    Some(rule_name),
                    format!(
                        "pattern node has {} children but the operator kind has arity {expected}; \
                         the pattern can never match",
                        children.len()
                    ),
                ));
            }
            for c in children {
                out.extend(validate_pattern(rule_name, c));
            }
        }
    }
    out
}
