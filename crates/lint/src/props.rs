//! Abstract row-provenance analysis: for every base leaf of a plan, two
//! boolean properties of the plan's output with respect to that leaf.
//!
//! * `padded(G)` — the output may contain rows in which G's columns are
//!   NULL-padded by an outer join (G appeared on a null-supplying side and
//!   nothing above rejected those rows).
//! * `preserved(G)` — every source row of G contributes at least one
//!   output row (G sits on row-preserving operators only).
//!
//! A correct substitute must agree with its input group on both properties
//! for every shared leaf: a substitute that turns `padded` on emits
//! NULL-padded rows the input never produces (e.g. pushing a filter below
//! the null-supplying side of an outer join), one that turns it off drops
//! them (e.g. simplifying an outer join to an inner join without a
//! null-rejecting predicate above), and a `preserved` flip changes
//! which source rows reach the output at all (e.g. merging a filter into
//! an outer join's ON clause, where the join then preserves rows the
//! filter used to remove). These are exactly the outer-join rule bugs the
//! dynamic campaign otherwise needs executed queries to catch.

use crate::node::{AuditNode, LeafKey};
use crate::violation::{LintPass, LintViolation, Severity};
use ruletest_expr::is_null_rejecting;
use ruletest_logical::{JoinKind, Operator};
use ruletest_optimizer::Memo;
use std::collections::{BTreeMap, BTreeSet};

/// Provenance properties of one base leaf.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeafProps {
    pub padded: bool,
    pub preserved: bool,
    /// Columns of this leaf still visible in the (sub)plan output. Padding
    /// is only observable through visible columns.
    pub visible: BTreeSet<ruletest_common::ColId>,
}

pub type PropMap = BTreeMap<LeafKey, LeafProps>;

/// Row preservation per join kind: (left preserved, right preserved).
/// Note `LeftAnti` does *not* preserve its left input in the row sense —
/// matched rows are dropped — even though `JoinKind::preserves_left`
/// reports it as preserving for nullability purposes.
fn row_preservation(kind: JoinKind) -> (bool, bool) {
    match kind {
        JoinKind::Inner => (false, false),
        JoinKind::LeftOuter => (true, false),
        JoinKind::RightOuter => (false, true),
        JoinKind::FullOuter => (true, true),
        JoinKind::LeftSemi => (false, false),
        JoinKind::LeftAnti => (false, false),
    }
}

/// Sides whose surviving non-padded rows must have satisfied the ON
/// predicate (so a null-rejecting ON predicate clears `padded` coming from
/// below). Anti join is excluded: its survivors *failed* the predicate.
fn on_pred_filters(kind: JoinKind) -> (bool, bool) {
    match kind {
        JoinKind::Inner => (true, true),
        JoinKind::LeftOuter => (false, true),
        JoinKind::RightOuter => (true, false),
        JoinKind::FullOuter => (false, false),
        JoinKind::LeftSemi => (true, false),
        JoinKind::LeftAnti => (false, false),
    }
}

/// Padding introduced by this join: (pads left side, pads right side).
fn pads(kind: JoinKind) -> (bool, bool) {
    match kind {
        JoinKind::LeftOuter => (false, true),
        JoinKind::RightOuter => (true, false),
        JoinKind::FullOuter => (true, true),
        _ => (false, false),
    }
}

/// Merges a leaf entry into a map, OR-ing both properties and unioning
/// visibility when the leaf already occurs (a relation referenced by both
/// branches of a union, e.g. after distributing a join over a union).
fn merge(map: &mut PropMap, key: LeafKey, props: LeafProps) {
    match map.get_mut(&key) {
        Some(p) => {
            p.padded |= props.padded;
            p.preserved |= props.preserved;
            p.visible.extend(props.visible);
        }
        None => {
            map.insert(key, props);
        }
    }
}

/// Computes the per-leaf provenance map of `node`. `memo` supplies schemas
/// for opaque group leaves; `anon` numbers leaves with no group identity.
pub fn analyze(node: &AuditNode, memo: &Memo, anon: &mut u32) -> PropMap {
    match node {
        AuditNode::Group(g) => {
            let visible = memo.schema(*g).iter().map(|c| c.id).collect();
            let mut m = PropMap::new();
            m.insert(
                LeafKey::Group(*g),
                LeafProps {
                    padded: false,
                    preserved: true,
                    visible,
                },
            );
            m
        }
        AuditNode::Op { op, gid, children } => match op {
            Operator::Get { cols, .. } => {
                let key = match gid {
                    Some(g) => LeafKey::Group(*g),
                    None => {
                        *anon += 1;
                        LeafKey::Anon(*anon)
                    }
                };
                let mut m = PropMap::new();
                m.insert(
                    key,
                    LeafProps {
                        padded: false,
                        preserved: true,
                        visible: cols.iter().copied().collect(),
                    },
                );
                m
            }
            Operator::Select { predicate } => {
                let mut m = analyze(&children[0], memo, anon);
                let keep_all = predicate.is_true_lit();
                for p in m.values_mut() {
                    p.preserved &= keep_all;
                    if p.padded && is_null_rejecting(predicate, &p.visible) {
                        p.padded = false;
                    }
                }
                m
            }
            Operator::Project { outputs } => {
                let mut m = analyze(&children[0], memo, anon);
                // Only bare column passthroughs keep a leaf column visible;
                // computed expressions produce new, unattributed columns.
                let passthru: BTreeMap<_, _> = outputs
                    .iter()
                    .filter_map(|(id, e)| match e {
                        ruletest_expr::Expr::Col(c) => Some((*c, *id)),
                        _ => None,
                    })
                    .collect();
                for p in m.values_mut() {
                    p.visible = p
                        .visible
                        .iter()
                        .filter_map(|c| passthru.get(c).copied())
                        .collect();
                }
                m
            }
            Operator::Join { kind, predicate } => {
                let ml = analyze(&children[0], memo, anon);
                let mr = analyze(&children[1], memo, anon);
                let (pres_l, pres_r) = row_preservation(*kind);
                let (filt_l, filt_r) = on_pred_filters(*kind);
                let (pad_l, pad_r) = pads(*kind);
                let emits_right = kind.emits_both_sides();
                let mut m = PropMap::new();
                for (side_map, pres, filt, pad, visible_side) in [
                    (ml, pres_l, filt_l, pad_l, true),
                    (mr, pres_r, filt_r, pad_r, emits_right),
                ] {
                    for (key, mut p) in side_map {
                        p.preserved &= pres;
                        if p.padded && filt && is_null_rejecting(predicate, &p.visible) {
                            p.padded = false;
                        }
                        p.padded |= pad;
                        if !visible_side {
                            p.visible.clear();
                        }
                        merge(&mut m, key, p);
                    }
                }
                m
            }
            Operator::GbAgg { group_by, .. } => {
                let mut m = analyze(&children[0], memo, anon);
                let gb: BTreeSet<_> = group_by.iter().copied().collect();
                for p in m.values_mut() {
                    p.visible = p.visible.intersection(&gb).copied().collect();
                }
                m
            }
            Operator::UnionAll {
                outputs,
                left_cols,
                right_cols,
            } => {
                let ml = analyze(&children[0], memo, anon);
                let mr = analyze(&children[1], memo, anon);
                let mut m = PropMap::new();
                for (side_map, side_cols) in [(ml, left_cols), (mr, right_cols)] {
                    let remap: BTreeMap<_, _> = side_cols
                        .iter()
                        .copied()
                        .zip(outputs.iter().copied())
                        .collect();
                    for (key, mut p) in side_map {
                        p.visible = p
                            .visible
                            .iter()
                            .filter_map(|c| remap.get(c).copied())
                            .collect();
                        merge(&mut m, key, p);
                    }
                }
                m
            }
            Operator::Distinct | Operator::Sort { .. } => analyze(&children[0], memo, anon),
            Operator::Top { .. } => {
                let mut m = analyze(&children[0], memo, anon);
                for p in m.values_mut() {
                    p.preserved = false;
                }
                m
            }
        },
    }
}

/// Compares the provenance maps of an input match and one substitute;
/// every disagreement on a shared leaf is a violation. Padding is compared
/// effectively — a padded leaf with no visible columns cannot be observed.
pub fn compare(input: &PropMap, substitute: &PropMap, rule: &str) -> Vec<LintViolation> {
    let mut out = Vec::new();
    for (key, i) in input {
        let Some(s) = substitute.get(key) else {
            continue;
        };
        let leaf = match key {
            LeafKey::Group(g) => format!("{g}"),
            LeafKey::Anon(n) => format!("anon#{n}"),
        };
        let eff_i = i.padded && !i.visible.is_empty();
        let eff_s = s.padded && !s.visible.is_empty();
        if eff_i != eff_s {
            out.push(LintViolation::new(
                LintPass::RowProvenance,
                Severity::Error,
                Some(rule),
                format!(
                    "substitute {} NULL-padded rows of leaf {leaf} (input padded={eff_i}, substitute padded={eff_s})",
                    if eff_s { "introduces" } else { "drops" },
                ),
            ));
        }
        if i.preserved != s.preserved {
            out.push(LintViolation::new(
                LintPass::RowProvenance,
                Severity::Error,
                Some(rule),
                format!(
                    "substitute changes row preservation of leaf {leaf} (input preserved={}, substitute preserved={})",
                    i.preserved, s.preserved,
                ),
            ));
        }
    }
    out
}
