//! Lint violation records — the static-analysis analogue of the dynamic
//! campaign's bug reports. Each violation names the pass that produced it,
//! the rule under audit (when there is one), and a human-readable detail
//! string; violations deduplicate on `(pass, rule)` so one broken rule
//! yields one signature no matter how many corpus trees expose it.

use std::collections::BTreeSet;
use std::fmt;

/// Which pass family produced a violation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LintPass {
    /// Plan well-formedness: schema derivation, predicate typing, Union
    /// invariants over a single tree.
    WellFormed,
    /// Substitute audit: schema equivalence between input group and
    /// substitute.
    SchemaEquivalence,
    /// Substitute audit: outer-join row-provenance (padded/preserved)
    /// preservation.
    RowProvenance,
    /// Substitute audit: duplicate-sensitivity (set/bag cardinality class)
    /// preservation.
    DuplicateSensitivity,
    /// Pattern audit: exported pattern must be a necessary firing
    /// condition and structurally satisfiable.
    PatternNecessity,
}

impl LintPass {
    pub fn name(self) -> &'static str {
        match self {
            LintPass::WellFormed => "well_formed",
            LintPass::SchemaEquivalence => "schema_equivalence",
            LintPass::RowProvenance => "row_provenance",
            LintPass::DuplicateSensitivity => "duplicate_sensitivity",
            LintPass::PatternNecessity => "pattern_necessity",
        }
    }
}

impl fmt::Display for LintPass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Severity of a violation. `Error` violations are definite rule bugs;
/// `Warning` marks checks that can have benign explanations (currently
/// unused by the shipped passes, kept for downstream hooks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    Warning,
    Error,
}

impl Severity {
    pub fn name(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One statically detected problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintViolation {
    pub pass: LintPass,
    pub severity: Severity,
    /// Rule under audit, when the violation is attributable to one.
    pub rule: Option<String>,
    /// Human-readable description: what invariant broke and on which
    /// corpus shape.
    pub detail: String,
}

impl LintViolation {
    pub fn new(
        pass: LintPass,
        severity: Severity,
        rule: Option<&str>,
        detail: impl Into<String>,
    ) -> Self {
        LintViolation {
            pass,
            severity,
            rule: rule.map(str::to_string),
            detail: detail.into(),
        }
    }

    /// Dedup signature: one per (pass, rule). A rule that mangles schemas
    /// on twelve corpus trees is one bug, not twelve.
    pub fn signature(&self) -> (LintPass, Option<String>) {
        (self.pass, self.rule.clone())
    }
}

impl fmt::Display for LintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.rule {
            Some(r) => write!(
                f,
                "[{}] {} rule {}: {}",
                self.severity.name(),
                self.pass,
                r,
                self.detail
            ),
            None => write!(
                f,
                "[{}] {}: {}",
                self.severity.name(),
                self.pass,
                self.detail
            ),
        }
    }
}

/// Collapses violations to one representative per signature, preserving
/// first-seen order.
pub fn dedup_violations(violations: Vec<LintViolation>) -> Vec<LintViolation> {
    let mut seen = BTreeSet::new();
    violations
        .into_iter()
        .filter(|v| seen.insert(v.signature()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_collapses_same_pass_and_rule() {
        let v = |detail: &str| {
            LintViolation::new(
                LintPass::SchemaEquivalence,
                Severity::Error,
                Some("R"),
                detail,
            )
        };
        let out = dedup_violations(vec![v("a"), v("b"), v("a")]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].detail, "a");
    }

    #[test]
    fn dedup_keeps_distinct_rules_and_passes() {
        let out = dedup_violations(vec![
            LintViolation::new(
                LintPass::SchemaEquivalence,
                Severity::Error,
                Some("R1"),
                "x",
            ),
            LintViolation::new(
                LintPass::SchemaEquivalence,
                Severity::Error,
                Some("R2"),
                "x",
            ),
            LintViolation::new(LintPass::RowProvenance, Severity::Error, Some("R1"), "x"),
            LintViolation::new(LintPass::WellFormed, Severity::Error, None, "x"),
        ]);
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn display_includes_pass_and_rule() {
        let v = LintViolation::new(LintPass::RowProvenance, Severity::Error, Some("Foo"), "bad");
        let s = v.to_string();
        assert!(s.contains("row_provenance"), "{s}");
        assert!(s.contains("Foo"), "{s}");
    }
}
