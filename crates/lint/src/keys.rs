//! Duplicate-sensitivity analysis: tracks candidate key sets bottom-up to
//! classify each (sub)plan as a *set* (provably duplicate-free) or a *bag*
//! (duplicates possible). A substitute that turns a set-class input into a
//! bag-class output changes multiplicities — the transformation class of
//! bug duplicate-sensitivity-guided testing targets.
//!
//! This module is the [`crate::node::AuditNode`] walker; the per-operator
//! key transfer functions live in [`crate::derive`], shared with the
//! symbolic prover so the two classifiers cannot drift.

use crate::node::AuditNode;
use crate::violation::{LintPass, LintViolation, Severity};
use ruletest_common::ColId;
use ruletest_logical::{JoinKind, Operator};
use ruletest_optimizer::Memo;
use ruletest_storage::Catalog;
use std::collections::BTreeSet;

pub use crate::derive::{class_of, CardClass, KeySets};

/// Output columns of a node, for Distinct's whole-row key.
fn output_cols(node: &AuditNode, memo: &Memo) -> BTreeSet<ColId> {
    match node {
        AuditNode::Group(g) => memo.schema(*g).iter().map(|c| c.id).collect(),
        AuditNode::Op { op, children, .. } => match op {
            Operator::Get { cols, .. } => cols.iter().copied().collect(),
            Operator::Select { .. }
            | Operator::Distinct
            | Operator::Sort { .. }
            | Operator::Top { .. } => output_cols(&children[0], memo),
            Operator::Project { outputs } => outputs.iter().map(|(id, _)| *id).collect(),
            Operator::GbAgg { group_by, aggs } => group_by
                .iter()
                .copied()
                .chain(aggs.iter().map(|a| a.output))
                .collect(),
            Operator::Join { kind, .. } => {
                let mut cols = output_cols(&children[0], memo);
                if kind.emits_both_sides() {
                    cols.extend(output_cols(&children[1], memo));
                }
                cols
            }
            Operator::UnionAll { outputs, .. } => outputs.iter().copied().collect(),
        },
    }
}

/// Computes the candidate keys of `node`.
pub fn analyze(node: &AuditNode, memo: &Memo, catalog: &Catalog) -> KeySets {
    match node {
        // Opaque groups have unknown structure: no keys, bag class.
        AuditNode::Group(_) => vec![],
        AuditNode::Op { op, children, .. } => match op {
            Operator::Get { table, cols } => {
                let Ok(def) = catalog.table(*table) else {
                    return vec![];
                };
                crate::derive::get_keys(def, cols)
            }
            Operator::Select { .. } | Operator::Sort { .. } | Operator::Top { .. } => {
                analyze(&children[0], memo, catalog)
            }
            Operator::Project { outputs } => {
                crate::derive::project_keys(analyze(&children[0], memo, catalog), outputs)
            }
            Operator::GbAgg { group_by, .. } => {
                crate::derive::gbagg_keys(analyze(&children[0], memo, catalog), group_by)
            }
            Operator::Distinct => crate::derive::distinct_keys(
                analyze(&children[0], memo, catalog),
                output_cols(&children[0], memo),
            ),
            Operator::Join { kind, predicate } => {
                let lk = analyze(&children[0], memo, catalog);
                let rk = match kind {
                    // Semi/anti ignore the right side's keys entirely.
                    JoinKind::LeftSemi | JoinKind::LeftAnti => vec![],
                    _ => analyze(&children[1], memo, catalog),
                };
                let lcols = output_cols(&children[0], memo);
                let rcols = output_cols(&children[1], memo);
                crate::derive::join_keys(*kind, predicate, &lk, &rk, &lcols, &rcols)
            }
            // Bag union never has keys.
            Operator::UnionAll { .. } => vec![],
        },
    }
}

/// Flags a substitute that degrades a set-class input to bag class.
pub fn compare(input: &KeySets, substitute: &KeySets, rule: &str) -> Vec<LintViolation> {
    if class_of(input) == CardClass::Set && class_of(substitute) == CardClass::Bag {
        vec![LintViolation::new(
            LintPass::DuplicateSensitivity,
            Severity::Error,
            Some(rule),
            "substitute degrades a duplicate-free (set-class) input to bag class: \
             no candidate key of the input survives the rewrite",
        )]
    } else {
        vec![]
    }
}
