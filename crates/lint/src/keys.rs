//! Duplicate-sensitivity analysis: tracks candidate key sets bottom-up to
//! classify each (sub)plan as a *set* (provably duplicate-free) or a *bag*
//! (duplicates possible). A substitute that turns a set-class input into a
//! bag-class output changes multiplicities — the transformation class of
//! bug duplicate-sensitivity-guided testing targets.
//!
//! Keys are tracked as column-id sets and survive only while all their
//! columns stay in the output. Join transfer knows the one schema-aware
//! refinement the rule catalog relies on: an equi conjunct binding a
//! single-column key of one side leaves the other side's keys valid
//! (each row matches at most one partner), which is what keeps
//! `SemiJoinToInnerOnKey`-style rewrites set-preserving.

use crate::node::AuditNode;
use crate::violation::{LintPass, LintViolation, Severity};
use ruletest_common::ColId;
use ruletest_expr::{conjuncts, try_col_eq_col, Expr};
use ruletest_logical::{JoinKind, Operator};
use ruletest_optimizer::Memo;
use ruletest_storage::Catalog;
use std::collections::BTreeSet;

/// Candidate keys of a (sub)plan output. Empty = no known key = bag class.
pub type KeySets = Vec<BTreeSet<ColId>>;

/// Cardinality class derived from the tracked keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CardClass {
    Set,
    Bag,
}

pub fn class_of(keys: &KeySets) -> CardClass {
    if keys.is_empty() {
        CardClass::Bag
    } else {
        CardClass::Set
    }
}

fn dedup_keys(mut keys: KeySets) -> KeySets {
    keys.sort();
    keys.dedup();
    // Cap to keep the product transfer bounded on deep join corpora.
    keys.truncate(16);
    keys
}

/// Output columns of a node, for Distinct's whole-row key.
fn output_cols(node: &AuditNode, memo: &Memo) -> BTreeSet<ColId> {
    match node {
        AuditNode::Group(g) => memo.schema(*g).iter().map(|c| c.id).collect(),
        AuditNode::Op { op, children, .. } => match op {
            Operator::Get { cols, .. } => cols.iter().copied().collect(),
            Operator::Select { .. }
            | Operator::Distinct
            | Operator::Sort { .. }
            | Operator::Top { .. } => output_cols(&children[0], memo),
            Operator::Project { outputs } => outputs.iter().map(|(id, _)| *id).collect(),
            Operator::GbAgg { group_by, aggs } => group_by
                .iter()
                .copied()
                .chain(aggs.iter().map(|a| a.output))
                .collect(),
            Operator::Join { kind, .. } => {
                let mut cols = output_cols(&children[0], memo);
                if kind.emits_both_sides() {
                    cols.extend(output_cols(&children[1], memo));
                }
                cols
            }
            Operator::UnionAll { outputs, .. } => outputs.iter().copied().collect(),
        },
    }
}

/// Computes the candidate keys of `node`.
pub fn analyze(node: &AuditNode, memo: &Memo, catalog: &Catalog) -> KeySets {
    match node {
        // Opaque groups have unknown structure: no keys, bag class.
        AuditNode::Group(_) => vec![],
        AuditNode::Op { op, children, .. } => match op {
            Operator::Get { table, cols } => {
                let Ok(def) = catalog.table(*table) else {
                    return vec![];
                };
                let visible: BTreeSet<ColId> = cols.iter().copied().collect();
                let mut keys = KeySets::new();
                for ordinals in std::iter::once(&def.primary_key).chain(def.unique_keys.iter()) {
                    let key: BTreeSet<ColId> = ordinals
                        .iter()
                        .filter_map(|&o| cols.get(o).copied())
                        .collect();
                    if key.len() == ordinals.len() && key.is_subset(&visible) {
                        keys.push(key);
                    }
                }
                dedup_keys(keys)
            }
            Operator::Select { .. } | Operator::Sort { .. } | Operator::Top { .. } => {
                analyze(&children[0], memo, catalog)
            }
            Operator::Project { outputs } => {
                let keys = analyze(&children[0], memo, catalog);
                let passthru: std::collections::BTreeMap<_, _> = outputs
                    .iter()
                    .filter_map(|(id, e)| match e {
                        Expr::Col(c) => Some((*c, *id)),
                        _ => None,
                    })
                    .collect();
                dedup_keys(
                    keys.into_iter()
                        .filter_map(|k| {
                            k.iter()
                                .map(|c| passthru.get(c).copied())
                                .collect::<Option<BTreeSet<_>>>()
                        })
                        .collect(),
                )
            }
            Operator::GbAgg { group_by, .. } => {
                let child = analyze(&children[0], memo, catalog);
                let gb: BTreeSet<ColId> = group_by.iter().copied().collect();
                let mut keys = vec![gb.clone()];
                keys.extend(child.into_iter().filter(|k| k.is_subset(&gb)));
                dedup_keys(keys)
            }
            Operator::Distinct => {
                let mut keys = analyze(&children[0], memo, catalog);
                keys.push(output_cols(&children[0], memo));
                dedup_keys(keys)
            }
            Operator::Join { kind, predicate } => {
                let lk = analyze(&children[0], memo, catalog);
                let rk = analyze(&children[1], memo, catalog);
                match kind {
                    // Semi/anti emit each left row at most once.
                    JoinKind::LeftSemi | JoinKind::LeftAnti => lk,
                    JoinKind::Inner
                    | JoinKind::LeftOuter
                    | JoinKind::RightOuter
                    | JoinKind::FullOuter => {
                        let mut keys = KeySets::new();
                        // Pairs (l, r) are unique, so any left-key ∪
                        // right-key combination is a key of the join.
                        for l in &lk {
                            for r in &rk {
                                keys.push(l.union(r).copied().collect());
                            }
                        }
                        // A cross-side equi conjunct binding a single-column
                        // key of one side gives each other-side row at most
                        // one match, keeping the other side's keys valid —
                        // unless this join NULL-pads the other side, which
                        // can make several padded rows agree on those keys.
                        let lcols = output_cols(&children[0], memo);
                        let rcols = output_cols(&children[1], memo);
                        let (pads_left, pads_right) = (
                            kind.preserves_right(),
                            kind.preserves_left() && kind.emits_both_sides(),
                        );
                        let single = |ks: &KeySets, col: &ColId| {
                            ks.iter().any(|k| k.len() == 1 && k.contains(col))
                        };
                        for c in conjuncts(predicate) {
                            if let Some((a, b)) = try_col_eq_col(&c) {
                                let (lcol, rcol) = if lcols.contains(&a) && rcols.contains(&b) {
                                    (a, b)
                                } else if lcols.contains(&b) && rcols.contains(&a) {
                                    (b, a)
                                } else {
                                    continue;
                                };
                                if single(&rk, &rcol) && !pads_left {
                                    keys.extend(lk.iter().cloned());
                                }
                                if single(&lk, &lcol) && !pads_right {
                                    keys.extend(rk.iter().cloned());
                                }
                            }
                        }
                        dedup_keys(keys)
                    }
                }
            }
            // Bag union never has keys.
            Operator::UnionAll { .. } => vec![],
        },
    }
}

/// Flags a substitute that degrades a set-class input to bag class.
pub fn compare(input: &KeySets, substitute: &KeySets, rule: &str) -> Vec<LintViolation> {
    if class_of(input) == CardClass::Set && class_of(substitute) == CardClass::Bag {
        vec![LintViolation::new(
            LintPass::DuplicateSensitivity,
            Severity::Error,
            Some(rule),
            "substitute degrades a duplicate-free (set-class) input to bag class: \
             no candidate key of the input survives the rewrite",
        )]
    } else {
        vec![]
    }
}
