//! Static plan auditor and rule linter (§3.1's necessary-condition
//! contract, checked before any query runs).
//!
//! The dynamic campaign finds rule bugs by executing queries and diffing
//! result multisets. This crate catches a large class of those bugs
//! *statically*: for every registered transformation rule it instantiates
//! a bounded corpus of small logical trees from the rule's exported
//! pattern, applies the rule's substitution in a sandboxed memo, and
//! checks each substitute against the input match on four axes —
//! well-formedness (column binding, predicate typing, outer-join
//! nullability, Union arity), schema equivalence, row provenance
//! (NULL-padding / row-preservation per base leaf), and duplicate
//! sensitivity (set-class vs bag-class outputs). A pattern-necessity
//! auditor separately probes every rule's action against every corpus
//! tree and flags actions that fire where their exported pattern does not
//! match.
//!
//! Two entry points:
//! * [`lint_rules`] — the offline `ruletest lint` audit over a whole
//!   optimizer rule catalog, producing a [`LintReport`].
//! * [`OnlineAuditor`] — a [`SubstituteAuditor`] installed on an
//!   [`Optimizer`] in debug/CI runs, auditing real substitutes as the
//!   explore loop produces them and feeding violations into telemetry.

pub mod audit;
pub mod derive;
pub mod keys;
pub mod node;
pub mod props;
pub mod prove;
pub mod report;
pub mod violation;
pub mod wellformed;

pub use audit::{AuditStats, CorpusTree};
pub use node::{AuditNode, LeafKey};
pub use prove::{ProofViolation, ProveReport, ProveVerdict, RuleProof};
pub use report::LintReport;
pub use violation::{dedup_violations, LintPass, LintViolation, Severity};

use ruletest_optimizer::{Bound, Memo, NewTree, Optimizer, Rule, SubstituteAuditor};
use ruletest_storage::Database;
use std::collections::HashMap;
use std::sync::Mutex;

/// Runs the full static audit over an optimizer's rule catalog.
pub fn lint_rules(opt: &Optimizer) -> ruletest_common::Result<LintReport> {
    let db = opt.database();
    let mut stats = AuditStats::default();
    let mut violations = Vec::new();

    let all_ids: Vec<_> = opt
        .exploration_rule_ids()
        .into_iter()
        .chain(opt.implementation_rule_ids())
        .collect();
    let all_rules: Vec<&Rule> = all_ids.iter().map(|&id| opt.rule(id)).collect();

    // Static pattern satisfiability for every rule, exploration and
    // implementation alike.
    for rule in &all_rules {
        violations.extend(audit::validate_pattern(rule.name, &rule.pattern));
    }

    // Corpus instantiation + substitute audit per exploration rule. The
    // corpora double as the necessity-probe tree pool.
    let mut corpora = Vec::new();
    for &id in &opt.exploration_rule_ids() {
        let rule = opt.rule(id);
        let corpus = audit::build_corpus(db, rule)?;
        stats.corpus_trees += corpus.len();
        for ct in &corpus {
            // Self-check: corpus trees must themselves be well-formed, or
            // the audit would chase bugs in its own inputs.
            violations.extend(wellformed::check_tree(
                &db.catalog,
                &ct.tree,
                &format!("corpus for {}", ct.origin),
            ));
        }
        violations.extend(audit::audit_rule(db, rule, &corpus, &mut stats));
        corpora.extend(corpus);
    }

    violations.extend(audit::necessity_probe(&all_rules, &corpora, &mut stats));

    Ok(LintReport {
        rules_audited: all_rules.len(),
        stats,
        violations: dedup_violations(violations),
    })
}

/// Runs [`lint_rules`] with only the named rule's substitute audit — used
/// to focus a fault investigation. Pattern validation and the necessity
/// probe still cover the full catalog (they are cheap and a fault can
/// perturb either).
pub fn lint_rules_focused(opt: &Optimizer, rule_name: &str) -> ruletest_common::Result<LintReport> {
    let report = lint_rules(opt)?;
    Ok(LintReport {
        rules_audited: report.rules_audited,
        stats: report.stats,
        violations: report
            .violations
            .into_iter()
            .filter(|v| v.rule.as_deref() == Some(rule_name) || v.rule.is_none())
            .collect(),
    })
}

/// Online auditor for debug-mode optimization runs: audits every
/// exploration substitute in place and accumulates the violations.
/// Install with [`Optimizer::set_substitute_auditor`].
#[derive(Default)]
pub struct OnlineAuditor {
    violations: Mutex<Vec<LintViolation>>,
}

impl OnlineAuditor {
    pub fn new() -> Self {
        Self::default()
    }

    /// Drains everything collected so far, deduplicated.
    pub fn take_violations(&self) -> Vec<LintViolation> {
        let mut guard = self.violations.lock().expect("auditor poisoned");
        dedup_violations(std::mem::take(&mut *guard))
    }
}

impl SubstituteAuditor for OnlineAuditor {
    fn audit(
        &self,
        db: &Database,
        memo: &Memo,
        bound: &Bound,
        rule_name: &str,
        substitute: &NewTree,
    ) -> usize {
        // Online matches carry no corpus, so concrete shapes come from the
        // bound input itself: any group the substitute references that the
        // input match covers resolves to its concrete subtree.
        let mut resolve = HashMap::new();
        AuditNode::from_bound(bound, &HashMap::new()).index_by_group(&mut resolve);
        let found = audit::audit_substitute(db, memo, bound, &resolve, rule_name, substitute);
        let n = found.len();
        if n > 0 {
            self.violations
                .lock()
                .expect("auditor poisoned")
                .extend(found);
        }
        n
    }
}

/// Convenience used by tests and the CLI: the exploration-action arity of
/// a rule (explore rules return logical substitutes the auditor can
/// check; implementation rules only participate in pattern validation and
/// the necessity probe).
pub fn is_explorable(rule: &Rule) -> bool {
    rule.action.is_explore()
}
