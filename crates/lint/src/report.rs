//! The lint report: per-pass violation counts, audit coverage stats, and
//! a canonical JSON rendering (reusing the telemetry crate's zero-dep
//! JSON model) for CI artifacts.

use crate::audit::AuditStats;
use crate::violation::{LintPass, LintViolation};
use ruletest_telemetry::Json;

/// Result of one full static lint run over an optimizer's rule catalog.
#[derive(Debug)]
pub struct LintReport {
    pub rules_audited: usize,
    pub stats: AuditStats,
    /// Deduplicated violations, in discovery order.
    pub violations: Vec<LintViolation>,
}

impl LintReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    pub fn count_for(&self, pass: LintPass) -> usize {
        self.violations.iter().filter(|v| v.pass == pass).count()
    }

    /// Rules with at least one violation, sorted and deduplicated.
    pub fn flagged_rules(&self) -> Vec<String> {
        let mut rules: Vec<String> = self
            .violations
            .iter()
            .filter_map(|v| v.rule.clone())
            .collect();
        rules.sort();
        rules.dedup();
        rules
    }

    pub fn to_json(&self) -> Json {
        const PASSES: [LintPass; 5] = [
            LintPass::WellFormed,
            LintPass::SchemaEquivalence,
            LintPass::RowProvenance,
            LintPass::DuplicateSensitivity,
            LintPass::PatternNecessity,
        ];
        let by_pass = PASSES
            .iter()
            .map(|p| (p.name().to_string(), Json::count(self.count_for(*p) as u64)))
            .collect();
        Json::obj(vec![
            ("schema_version", Json::count(1)),
            ("rules_audited", Json::count(self.rules_audited as u64)),
            (
                "coverage",
                Json::obj(vec![
                    ("corpus_trees", Json::count(self.stats.corpus_trees as u64)),
                    (
                        "bindings_audited",
                        Json::count(self.stats.bindings_audited as u64),
                    ),
                    (
                        "substitutes_audited",
                        Json::count(self.stats.substitutes_audited as u64),
                    ),
                    (
                        "necessity_probes",
                        Json::count(self.stats.necessity_probes as u64),
                    ),
                ]),
            ),
            ("clean", Json::Bool(self.is_clean())),
            ("violations_by_pass", Json::Obj(by_pass)),
            (
                "violations",
                Json::Arr(
                    self.violations
                        .iter()
                        .map(|v| {
                            Json::obj(vec![
                                ("pass", Json::str(v.pass.name())),
                                ("severity", Json::str(v.severity.name())),
                                (
                                    "rule",
                                    v.rule.as_deref().map(Json::str).unwrap_or(Json::Null),
                                ),
                                ("detail", Json::str(v.detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Human-readable summary for terminal output.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "lint: {} rules audited, {} corpus trees, {} substitutes checked, {} necessity probes\n",
            self.rules_audited,
            self.stats.corpus_trees,
            self.stats.substitutes_audited,
            self.stats.necessity_probes,
        ));
        if self.is_clean() {
            out.push_str("lint: clean — no violations\n");
        } else {
            out.push_str(&format!("lint: {} violation(s)\n", self.violations.len()));
            for v in &self.violations {
                out.push_str(&format!("  {v}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::violation::Severity;

    fn report(violations: Vec<LintViolation>) -> LintReport {
        LintReport {
            rules_audited: 3,
            stats: AuditStats {
                corpus_trees: 5,
                bindings_audited: 7,
                substitutes_audited: 11,
                necessity_probes: 13,
                firings_matched: 7,
            },
            violations,
        }
    }

    #[test]
    fn clean_report_json_shape() {
        let r = report(vec![]);
        assert!(r.is_clean());
        let j = r.to_json();
        let obj = j.as_obj().unwrap();
        assert_eq!(obj["clean"], Json::Bool(true));
        assert_eq!(obj["rules_audited"].as_u64(), Some(3));
        assert_eq!(obj["violations"].as_arr().unwrap().len(), 0);
        // Canonical round trip through the shared parser.
        let text = j.to_string_pretty();
        assert_eq!(Json::parse(&text).unwrap(), j);
    }

    #[test]
    fn violations_grouped_by_pass() {
        let r = report(vec![
            LintViolation::new(LintPass::RowProvenance, Severity::Error, Some("RuleA"), "x"),
            LintViolation::new(LintPass::RowProvenance, Severity::Error, Some("RuleB"), "y"),
            LintViolation::new(LintPass::WellFormed, Severity::Error, None, "z"),
        ]);
        assert_eq!(r.count_for(LintPass::RowProvenance), 2);
        assert_eq!(r.count_for(LintPass::WellFormed), 1);
        assert_eq!(r.count_for(LintPass::PatternNecessity), 0);
        assert_eq!(
            r.flagged_rules(),
            vec!["RuleA".to_string(), "RuleB".to_string()]
        );
        let text = r.render_text();
        assert!(text.contains("3 violation(s)"));
    }
}
