//! Plan well-formedness passes over a single tree: column-binding
//! resolution and type checking through `derive_schema`/`output_schema`,
//! explicit predicate typing, and outer-join nullability / Union
//! invariants re-asserted on the derived schemas.

use crate::node::AuditNode;
use crate::violation::{LintPass, LintViolation, Severity};
use ruletest_common::Result;
use ruletest_expr::infer_type;
use ruletest_logical::{derive_schema, output_schema, LogicalTree, Operator, Schema};
use ruletest_optimizer::Memo;
use ruletest_storage::Catalog;

/// Checks a concrete logical tree. Returns every violation found; a
/// well-formed tree yields none.
pub fn check_tree(catalog: &Catalog, tree: &LogicalTree, context: &str) -> Vec<LintViolation> {
    let mut out = Vec::new();
    walk(catalog, tree, context, &mut out);
    out
}

fn walk(
    catalog: &Catalog,
    tree: &LogicalTree,
    context: &str,
    out: &mut Vec<LintViolation>,
) -> Option<Schema> {
    let mut child_schemas = Vec::with_capacity(tree.children.len());
    for c in &tree.children {
        child_schemas.push(walk(catalog, c, context, out)?);
    }
    let refs: Vec<&Schema> = child_schemas.iter().collect();
    let schema = match output_schema(catalog, &tree.op, &refs) {
        Ok(s) => s,
        Err(e) => {
            out.push(LintViolation::new(
                LintPass::WellFormed,
                Severity::Error,
                None,
                format!("{context}: {} does not type-check: {e}", tree.op.label()),
            ));
            return None;
        }
    };
    check_node(&tree.op, &refs, &schema, context, out);
    Some(schema)
}

/// Invariants re-asserted on a node whose `output_schema` succeeded —
/// these guard the schema derivation itself (a regression there would
/// otherwise silently weaken every downstream pass).
fn check_node(
    op: &Operator,
    children: &[&Schema],
    schema: &Schema,
    context: &str,
    out: &mut Vec<LintViolation>,
) {
    match op {
        Operator::Select { predicate } => {
            // Predicates must type as booleans over the visible columns.
            let child = children[0];
            let col_type = |id| child.iter().find(|c| c.id == id).map(|c| c.data_type);
            match infer_type(predicate, &col_type) {
                Ok(Some(t)) if t != ruletest_common::DataType::Bool => {
                    out.push(LintViolation::new(
                        LintPass::WellFormed,
                        Severity::Error,
                        None,
                        format!("{context}: Select predicate types as {t:?}, not Bool"),
                    ));
                }
                Ok(_) => {}
                Err(e) => {
                    out.push(LintViolation::new(
                        LintPass::WellFormed,
                        Severity::Error,
                        None,
                        format!("{context}: Select predicate does not type-check: {e}"),
                    ));
                }
            }
        }
        // Outer-join nullability: every column of a null-supplying side
        // must be nullable in the output.
        Operator::Join { kind, .. } if kind.emits_both_sides() => {
            let left_len = children[0].len();
            let nullable_ok = schema.iter().enumerate().all(|(i, c)| {
                let padded = if i < left_len {
                    kind.preserves_right()
                } else {
                    kind.preserves_left()
                };
                !padded || c.nullable
            });
            if !nullable_ok {
                out.push(LintViolation::new(
                    LintPass::WellFormed,
                    Severity::Error,
                    None,
                    format!(
                        "{context}: {kind:?} join output leaves a null-supplied column non-nullable"
                    ),
                ));
            }
        }
        // Arity invariants beyond what output_schema enforces.
        Operator::UnionAll {
            outputs,
            left_cols,
            right_cols,
        } if outputs.len() != left_cols.len() || outputs.len() != right_cols.len() => {
            out.push(LintViolation::new(
                LintPass::WellFormed,
                Severity::Error,
                None,
                format!("{context}: UnionAll side-column maps disagree with output arity"),
            ));
        }
        _ => {}
    }
}

/// Derives the output schema of a substitute tree whose leaves are memo
/// groups — the type-check half of the substitute audit.
pub fn substitute_schema(catalog: &Catalog, memo: &Memo, node: &AuditNode) -> Result<Schema> {
    match node {
        AuditNode::Group(g) => Ok(memo.schema(*g).clone()),
        AuditNode::Op { op, children, .. } => {
            let schemas = children
                .iter()
                .map(|c| substitute_schema(catalog, memo, c))
                .collect::<Result<Vec<_>>>()?;
            let refs: Vec<&Schema> = schemas.iter().collect();
            output_schema(catalog, op, &refs)
        }
    }
}

/// Schema equivalence for the substitute audit: same column-id set with
/// identical types. Order is excluded (commutativity permutes it) and so
/// is nullability — outer-join simplification legitimately narrows it and
/// aggregate splitting legitimately widens it; nullability bugs are caught
/// by the row-provenance pass instead.
pub fn schemas_equivalent(a: &Schema, b: &Schema) -> bool {
    a.len() == b.len()
        && a.iter()
            .all(|c| b.iter().any(|d| d.id == c.id && d.data_type == c.data_type))
}

/// Convenience wrapper: `derive_schema` as a pass (used by tests and the
/// corpus self-check).
pub fn derives(catalog: &Catalog, tree: &LogicalTree) -> Result<Schema> {
    derive_schema(catalog, tree)
}
