//! Hierarchical span profiler: RAII guards, per-thread span stacks, and
//! a sharded path-aggregation table.
//!
//! The profiler answers "where did the campaign's wall time go" with a
//! *deterministic tree shape*: span paths, call counts, and per-rule
//! bind/fire counts are identical at any thread count (they follow the
//! campaign's deterministic work assignment and the invocation cache's
//! first-insertion-wins dedup), while the recorded durations naturally
//! vary run to run. [`ProfileSection::deterministic_json`] exposes
//! exactly the invariant slice; durations live only in the full report.
//!
//! Design constraints that shape the code:
//!
//! * **No span may be live across a `par_map` whose closures open
//!   spans.** Worker threads start with empty span stacks, so a stage
//!   span opened inside the per-item closure is a *root* span on every
//!   worker — the aggregated tree has the same shape whether the pool
//!   ran inline (1 thread) or on N workers. All instrumentation sites in
//!   the workspace follow this rule.
//! * **Optimizer work is buffered, not recorded live.** `compute` fills
//!   a [`ProfileSample`] (per-rule bind/substitute time) and the sample
//!   is flushed only by the invocation-cache *insertion winner*, mirroring
//!   how counters dedup to once per unique `(tree, mask, budgets)` key.
//!   Racing losers' time collapses into the enclosing stage's self time.
//! * **Exact accounting.** A guard's drop adds its wall time to the
//!   parent frame's child accumulator, so for every aggregated row
//!   `child_ns == Σ direct children wall_ns` *exactly* and self time is
//!   `wall_ns - child_ns` with no drift. [`ProfileSection::validate`]
//!   checks this.

use crate::json::Json;
use crate::metrics::MAX_RULES;
use crate::trace::RulePhase;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Campaign stages a span can be attributed to. `Optimize` frames are
/// synthesized by [`Profiler::flush_optimize`]; the rest are opened with
/// RAII guards at the pipeline's stage boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// One query-generation problem (§4 trial loop).
    Generation,
    /// One target's §5.3.1 edge-probe scan.
    Graph,
    /// One correctness validation (optimize + execute + compare).
    Correctness,
    /// One triage divergence re-check (delta-debugging step).
    Triage,
    /// One mutant's detection sweep.
    Mutation,
    /// One computed optimizer invocation (cache misses / uncached calls).
    Optimize,
    /// One physical-plan execution.
    Execution,
    /// Cache/checkpoint persistence work (snapshot open and save).
    Persist,
    /// One rule's symbolic equivalence proof (witness passes + normalize).
    Prove,
}

impl Stage {
    pub const ALL: [Stage; 9] = [
        Stage::Generation,
        Stage::Graph,
        Stage::Correctness,
        Stage::Triage,
        Stage::Mutation,
        Stage::Optimize,
        Stage::Execution,
        Stage::Persist,
        Stage::Prove,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Stage::Generation => "generation",
            Stage::Graph => "graph",
            Stage::Correctness => "correctness",
            Stage::Triage => "triage",
            Stage::Mutation => "mutation",
            Stage::Optimize => "optimize",
            Stage::Execution => "execution",
            Stage::Persist => "persist",
            Stage::Prove => "prove",
        }
    }
}

/// One attribution key in a span path: a campaign stage, or a rule
/// working in a specific optimizer phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKey {
    Stage(Stage),
    Rule { rule: u16, phase: RulePhase },
}

impl SpanKey {
    /// Renders one path segment. Rule indices resolve against the run's
    /// rule table; out-of-table indices print as `rule#N`.
    fn segment(self, rule_names: &[String]) -> String {
        match self {
            SpanKey::Stage(s) => s.name().to_string(),
            SpanKey::Rule { rule, phase } => {
                let name = rule_names
                    .get(rule as usize)
                    .cloned()
                    .unwrap_or_else(|| format!("rule#{rule}"));
                format!("{name}.{}", phase.name())
            }
        }
    }
}

/// A live span on the current thread's stack.
struct Frame {
    key: SpanKey,
    start: Instant,
    /// Wall time already attributed to direct children (closed child
    /// guards + flushed optimizer samples).
    child_ns: u64,
}

thread_local! {
    /// Per-thread span stacks, keyed by profiler identity so tests (and
    /// multiple telemetry handles) never cross wires.
    static STACKS: RefCell<HashMap<usize, Vec<Frame>>> = RefCell::new(HashMap::new());
}

/// Aggregated totals for one distinct span path.
#[derive(Debug, Clone, Copy, Default)]
struct PathStat {
    count: u64,
    wall_ns: u64,
    child_ns: u64,
}

/// Per-(rule, phase) cost cell in the lock-free attribution table.
#[derive(Debug, Default)]
struct RuleCell {
    binds: AtomicU64,
    fires: AtomicU64,
    bind_ns: AtomicU64,
    subst_ns: AtomicU64,
}

const SHARDS: usize = 16;

/// The aggregation sink shared by all clones of one `Telemetry` handle.
///
/// Span-path rows live in thread-id-sharded maps (merged by summation at
/// snapshot time); per-rule costs live in a flat atomic table indexed by
/// `rule * 2 + phase`.
pub struct Profiler {
    shards: Vec<Mutex<HashMap<Vec<SpanKey>, PathStat>>>,
    rules: Box<[RuleCell]>,
}

impl Default for Profiler {
    fn default() -> Self {
        Profiler {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            rules: (0..MAX_RULES * 2).map(|_| RuleCell::default()).collect(),
        }
    }
}

fn phase_index(phase: RulePhase) -> usize {
    match phase {
        RulePhase::Explore => 0,
        RulePhase::Implement => 1,
    }
}

impl Profiler {
    /// Opens a span: pushes a frame on the current thread's stack. The
    /// returned guard closes it on drop; guards are `!Send` and must
    /// drop in LIFO order (RAII scoping guarantees both).
    pub fn enter(profiler: &Arc<Profiler>, key: SpanKey) -> SpanGuard {
        let ptr = Arc::as_ptr(profiler) as usize;
        STACKS.with(|s| {
            s.borrow_mut().entry(ptr).or_default().push(Frame {
                key,
                start: Instant::now(),
                child_ns: 0,
            });
        });
        SpanGuard {
            profiler: Some(Arc::clone(profiler)),
            _not_send: PhantomData,
        }
    }

    fn shard_for_current_thread(&self) -> &Mutex<HashMap<Vec<SpanKey>, PathStat>> {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        &self.shards[(h.finish() % SHARDS as u64) as usize]
    }

    fn record_path(&self, path: &[SpanKey], count: u64, wall_ns: u64, child_ns: u64) {
        let mut map = self
            .shard_for_current_thread()
            .lock()
            .expect("profiler shard poisoned");
        // `Vec<SpanKey>: Borrow<[SpanKey]>` lets updates skip the alloc.
        if let Some(stat) = map.get_mut(path) {
            stat.count += count;
            stat.wall_ns += wall_ns;
            stat.child_ns += child_ns;
        } else {
            map.insert(
                path.to_vec(),
                PathStat {
                    count,
                    wall_ns,
                    child_ns,
                },
            );
        }
    }

    /// Books a finished optimizer invocation under the current thread's
    /// span stack: one `optimize` row (child time = total per-rule time)
    /// plus one row per `(rule, phase)` the invocation touched, and the
    /// flat rule table. The enclosing frame's child accumulator absorbs
    /// the invocation's wall time so stage self/child accounting stays
    /// exact.
    pub fn flush_optimize(self: &Arc<Self>, sample: &ProfileSample) {
        let ptr = Arc::as_ptr(self) as usize;
        let mut path: Vec<SpanKey> = STACKS.with(|s| {
            let mut map = s.borrow_mut();
            match map.get_mut(&ptr) {
                Some(stack) => {
                    if let Some(top) = stack.last_mut() {
                        top.child_ns += sample.elapsed_ns;
                    }
                    stack.iter().map(|f| f.key).collect()
                }
                None => Vec::new(),
            }
        });
        path.push(SpanKey::Stage(Stage::Optimize));
        let rules_ns: u64 = sample.rules.values().map(|a| a.bind_ns + a.subst_ns).sum();
        self.record_path(&path, 1, sample.elapsed_ns, rules_ns);
        for (&(rule, phase), acc) in &sample.rules {
            path.push(SpanKey::Rule { rule, phase });
            self.record_path(&path, acc.binds, acc.bind_ns + acc.subst_ns, 0);
            path.pop();
            let idx = rule as usize * 2 + phase_index(phase);
            if let Some(cell) = self.rules.get(idx) {
                cell.binds.fetch_add(acc.binds, Ordering::Relaxed);
                cell.fires.fetch_add(acc.fires, Ordering::Relaxed);
                cell.bind_ns.fetch_add(acc.bind_ns, Ordering::Relaxed);
                cell.subst_ns.fetch_add(acc.subst_ns, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot: merges the shards into a report section. Paths render
    /// with `rule_names`; rows come out sorted by rendered path string
    /// (parents precede children because a prefix sorts before its
    /// extensions). String order — rather than `SpanKey` order — keeps
    /// the ordering reproducible for sections merged back from a
    /// checkpointed report, where only rendered paths survive.
    pub fn section(&self, rule_names: &[String]) -> ProfileSection {
        let mut merged: BTreeMap<String, PathStat> = BTreeMap::new();
        for shard in &self.shards {
            for (path, stat) in shard.lock().expect("profiler shard poisoned").iter() {
                let rendered = path
                    .iter()
                    .map(|k| k.segment(rule_names))
                    .collect::<Vec<_>>()
                    .join(";");
                let row = merged.entry(rendered).or_default();
                row.count += stat.count;
                row.wall_ns += stat.wall_ns;
                row.child_ns += stat.child_ns;
            }
        }
        let spans = merged
            .into_iter()
            .map(|(path, stat)| SpanRow {
                path,
                count: stat.count,
                wall_ns: stat.wall_ns,
                child_ns: stat.child_ns,
            })
            .collect();
        let mut rules = BTreeMap::new();
        for (idx, cell) in self.rules.iter().enumerate() {
            let binds = cell.binds.load(Ordering::Relaxed);
            let fires = cell.fires.load(Ordering::Relaxed);
            if binds == 0 && fires == 0 {
                continue;
            }
            let rule = (idx / 2) as u16;
            let phase = if idx % 2 == 0 {
                RulePhase::Explore
            } else {
                RulePhase::Implement
            };
            let name = rule_names
                .get(rule as usize)
                .cloned()
                .unwrap_or_else(|| format!("rule#{rule}"));
            rules.insert(
                format!("{name}/{}", phase.name()),
                RuleCostRow {
                    binds,
                    fires,
                    bind_ns: cell.bind_ns.load(Ordering::Relaxed),
                    subst_ns: cell.subst_ns.load(Ordering::Relaxed),
                },
            );
        }
        ProfileSection { spans, rules }
    }
}

/// RAII span guard: closes the span on drop, attributing wall time to
/// the span's path and updating the parent frame's child accumulator.
/// `!Send` — a span belongs to the thread that opened it.
#[must_use = "a span measures the scope holding its guard"]
pub struct SpanGuard {
    profiler: Option<Arc<Profiler>>,
    _not_send: PhantomData<*const ()>,
}

impl SpanGuard {
    /// The disabled-telemetry guard: does nothing on drop.
    pub fn noop() -> SpanGuard {
        SpanGuard {
            profiler: None,
            _not_send: PhantomData,
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(p) = self.profiler.take() else {
            return;
        };
        let ptr = Arc::as_ptr(&p) as usize;
        let (path, wall_ns, child_ns) = STACKS.with(|s| {
            let mut map = s.borrow_mut();
            let stack = map.get_mut(&ptr).expect("span stack missing at guard drop");
            let frame = stack.pop().expect("span stack underflow");
            let wall_ns = frame.start.elapsed().as_nanos() as u64;
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += wall_ns;
            }
            let path: Vec<SpanKey> = stack
                .iter()
                .map(|f| f.key)
                .chain(std::iter::once(frame.key))
                .collect();
            if stack.is_empty() {
                map.remove(&ptr);
            }
            (path, wall_ns, frame.child_ns)
        });
        p.record_path(&path, 1, wall_ns, child_ns);
    }
}

/// Per-(rule, phase) accumulator inside one optimizer invocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct RuleAcc {
    binds: u64,
    fires: u64,
    bind_ns: u64,
    subst_ns: u64,
}

/// Buffered profile of one optimizer invocation. The optimizer fills
/// one per `compute` and hands it back with the result; only the
/// invocation-cache insertion winner flushes it, so aggregated counts
/// stay deterministic under racing duplicate computations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSample {
    /// Whole-invocation wall time, set by the optimizer at the end of
    /// `compute`.
    pub elapsed_ns: u64,
    rules: BTreeMap<(u16, RulePhase), RuleAcc>,
}

impl ProfileSample {
    /// One `match_bindings` call for `rule` in `phase` took `ns`.
    pub fn record_bind(&mut self, rule: u16, phase: RulePhase, ns: u64) {
        let acc = self.rules.entry((rule, phase)).or_default();
        acc.binds += 1;
        acc.bind_ns += ns;
    }

    /// One rule-action application took `ns`; `fired` marks whether it
    /// produced output.
    pub fn record_apply(&mut self, rule: u16, phase: RulePhase, ns: u64, fired: bool) {
        let acc = self.rules.entry((rule, phase)).or_default();
        acc.subst_ns += ns;
        if fired {
            acc.fires += 1;
        }
    }

    /// Serializes the sample for the disk-backed invocation cache, so a
    /// warm hit can flush the exact profile rows the original compute
    /// produced (identical span shape and per-rule bind/fire counts).
    pub fn to_json(&self) -> Json {
        let rules = self
            .rules
            .iter()
            .map(|(&(rule, phase), acc)| {
                Json::obj(vec![
                    ("rule", Json::count(u64::from(rule))),
                    ("phase", Json::str(phase.name())),
                    ("binds", Json::count(acc.binds)),
                    ("fires", Json::count(acc.fires)),
                    ("bind_ns", Json::count(acc.bind_ns)),
                    ("subst_ns", Json::count(acc.subst_ns)),
                ])
            })
            .collect();
        Json::obj(vec![
            ("elapsed_ns", Json::count(self.elapsed_ns)),
            ("rules", Json::Arr(rules)),
        ])
    }

    pub fn from_json(j: &Json) -> Result<ProfileSample, String> {
        fn u64_field(obj: &Json, field: &str) -> Result<u64, String> {
            obj.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("profile sample: missing or invalid '{field}'"))
        }
        let elapsed_ns = u64_field(j, "elapsed_ns")?;
        let mut rules = BTreeMap::new();
        if let Some(arr) = j.get("rules") {
            let arr = arr
                .as_arr()
                .ok_or("profile sample: 'rules' must be an array")?;
            for row in arr {
                let rule = u16::try_from(u64_field(row, "rule")?)
                    .map_err(|_| "profile sample: rule id out of range".to_string())?;
                let phase = row
                    .get("phase")
                    .and_then(Json::as_str)
                    .and_then(RulePhase::from_name)
                    .ok_or("profile sample: missing or invalid 'phase'")?;
                rules.insert(
                    (rule, phase),
                    RuleAcc {
                        binds: u64_field(row, "binds")?,
                        fires: u64_field(row, "fires")?,
                        bind_ns: u64_field(row, "bind_ns")?,
                        subst_ns: u64_field(row, "subst_ns")?,
                    },
                );
            }
        }
        Ok(ProfileSample { elapsed_ns, rules })
    }
}

/// One aggregated span path in the report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRow {
    /// `;`-joined segments, e.g. `correctness;optimize;RuleA.explore`.
    pub path: String,
    pub count: u64,
    pub wall_ns: u64,
    /// Wall time attributed to direct children (exact sum of their
    /// `wall_ns`).
    pub child_ns: u64,
}

impl SpanRow {
    pub fn self_ns(&self) -> u64 {
        self.wall_ns.saturating_sub(self.child_ns)
    }

    /// Path of the enclosing span, `None` for roots.
    pub fn parent(&self) -> Option<&str> {
        self.path.rfind(';').map(|pos| &self.path[..pos])
    }

    /// Final path segment.
    pub fn leaf(&self) -> &str {
        self.path.rsplit(';').next().unwrap_or(&self.path)
    }

    pub fn depth(&self) -> usize {
        self.path.matches(';').count()
    }
}

/// Aggregated per-(rule, phase) optimizer cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleCostRow {
    /// `match_bindings` calls.
    pub binds: u64,
    /// Applications that produced output.
    pub fires: u64,
    /// Time spent matching the rule's pattern.
    pub bind_ns: u64,
    /// Time spent running the rule's action (substitute construction).
    pub subst_ns: u64,
}

impl RuleCostRow {
    pub fn total_ns(&self) -> u64 {
        self.bind_ns + self.subst_ns
    }
}

/// The `profile` section of a [`crate::RunReport`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileSection {
    /// Span rows in path order (parents precede children).
    pub spans: Vec<SpanRow>,
    /// `"{RuleName}/{phase}"` → aggregated optimizer cost.
    pub rules: BTreeMap<String, RuleCostRow>,
}

impl ProfileSection {
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.rules.is_empty()
    }

    /// Total wall time across root spans — the profiled universe.
    pub fn root_wall_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|r| r.parent().is_none())
            .map(|r| r.wall_ns)
            .sum()
    }

    /// Total self time across all rows. Equals [`Self::root_wall_ns`]
    /// exactly when the section validates.
    pub fn total_self_ns(&self) -> u64 {
        self.spans.iter().map(SpanRow::self_ns).sum()
    }

    pub fn to_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("path", Json::str(r.path.clone())),
                    ("count", Json::count(r.count)),
                    ("wall_ns", Json::count(r.wall_ns)),
                    ("child_ns", Json::count(r.child_ns)),
                ])
            })
            .collect();
        let rules = self
            .rules
            .iter()
            .map(|(name, c)| {
                (
                    name.as_str(),
                    Json::obj(vec![
                        ("binds", Json::count(c.binds)),
                        ("fires", Json::count(c.fires)),
                        ("bind_ns", Json::count(c.bind_ns)),
                        ("subst_ns", Json::count(c.subst_ns)),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        Json::obj(vec![
            ("spans", Json::Arr(spans)),
            (
                "rules",
                Json::Obj(rules.into_iter().map(|(k, v)| (k.to_string(), v)).collect()),
            ),
        ])
    }

    /// Parses the section back, reporting failures with a full field
    /// path (`profile.spans[3].wall_ns`) instead of a generic error.
    pub fn from_json(j: &Json) -> Result<ProfileSection, String> {
        fn u64_field(obj: &Json, path: &str, field: &str) -> Result<u64, String> {
            obj.get(field)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("{path}.{field}: expected a non-negative integer"))
        }
        let obj = j
            .as_obj()
            .ok_or_else(|| "profile: expected an object".to_string())?;
        let mut spans = Vec::new();
        if let Some(arr) = obj.get("spans") {
            let arr = arr
                .as_arr()
                .ok_or_else(|| "profile.spans: expected an array".to_string())?;
            for (i, row) in arr.iter().enumerate() {
                let path_str = format!("profile.spans[{i}]");
                let path = row
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{path_str}.path: expected a string"))?;
                if path.is_empty() {
                    return Err(format!("{path_str}.path: empty span path"));
                }
                spans.push(SpanRow {
                    path: path.to_string(),
                    count: u64_field(row, &path_str, "count")?,
                    wall_ns: u64_field(row, &path_str, "wall_ns")?,
                    child_ns: u64_field(row, &path_str, "child_ns")?,
                });
            }
        }
        let mut rules = BTreeMap::new();
        if let Some(r) = obj.get("rules") {
            let map = r
                .as_obj()
                .ok_or_else(|| "profile.rules: expected an object".to_string())?;
            for (name, cost) in map {
                let path_str = format!("profile.rules.{name}");
                rules.insert(
                    name.clone(),
                    RuleCostRow {
                        binds: u64_field(cost, &path_str, "binds")?,
                        fires: u64_field(cost, &path_str, "fires")?,
                        bind_ns: u64_field(cost, &path_str, "bind_ns")?,
                        subst_ns: u64_field(cost, &path_str, "subst_ns")?,
                    },
                );
            }
        }
        Ok(ProfileSection { spans, rules })
    }

    /// The thread-count-invariant slice: span paths and counts plus
    /// per-rule bind/fire counts. Durations are deliberately excluded —
    /// they are real measurements and vary run to run.
    pub fn deterministic_json(&self) -> Json {
        let spans = self
            .spans
            .iter()
            .map(|r| {
                Json::obj(vec![
                    ("path", Json::str(r.path.clone())),
                    ("count", Json::count(r.count)),
                ])
            })
            .collect();
        let rules = self
            .rules
            .iter()
            .map(|(name, c)| {
                (
                    name.clone(),
                    Json::obj(vec![
                        ("binds", Json::count(c.binds)),
                        ("fires", Json::count(c.fires)),
                    ]),
                )
            })
            .collect();
        Json::obj(vec![
            ("spans", Json::Arr(spans)),
            ("rules", Json::Obj(rules)),
        ])
    }

    /// Structural self-check: unique paths, every non-root row's parent
    /// present, `child_ns ≤ wall_ns` per row, and `child_ns` equal to
    /// the exact sum of direct children's `wall_ns`.
    pub fn validate(&self) -> Result<(), String> {
        self.validate_with(true)
    }

    /// [`ProfileSection::validate`] with the timing-containment check
    /// (`child_ns ≤ wall_ns`) optional: a report containing warm-cache
    /// replays attributes the *original* compute's span time under
    /// parents that did almost no wall work in this process, so
    /// containment legitimately fails there while every structural
    /// invariant still holds.
    pub fn validate_with(&self, strict_timing: bool) -> Result<(), String> {
        let mut child_wall: HashMap<&str, u64> = HashMap::new();
        let mut rows: HashMap<&str, &SpanRow> = HashMap::new();
        for row in &self.spans {
            if row.path.is_empty() {
                return Err("profile.spans: empty span path".to_string());
            }
            if row.count == 0 {
                return Err(format!("profile span '{}': zero count", row.path));
            }
            if strict_timing && row.child_ns > row.wall_ns {
                return Err(format!(
                    "profile span '{}': child_ns {} exceeds wall_ns {}",
                    row.path, row.child_ns, row.wall_ns
                ));
            }
            if rows.insert(row.path.as_str(), row).is_some() {
                return Err(format!("profile span '{}': duplicate path", row.path));
            }
        }
        for row in &self.spans {
            if let Some(parent) = row.parent() {
                if !rows.contains_key(parent) {
                    return Err(format!(
                        "profile span '{}': parent '{parent}' missing",
                        row.path
                    ));
                }
                *child_wall.entry(parent).or_default() += row.wall_ns;
            }
        }
        for row in &self.spans {
            let children = child_wall.get(row.path.as_str()).copied().unwrap_or(0);
            if children != row.child_ns {
                return Err(format!(
                    "profile span '{}': child_ns {} != sum of children wall_ns {}",
                    row.path, row.child_ns, children
                ));
            }
        }
        Ok(())
    }

    /// Folded-stack export (`path self_time_us` per line) consumable by
    /// standard flamegraph tooling.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for row in &self.spans {
            out.push_str(&row.path);
            out.push(' ');
            out.push_str(&(row.self_ns() / 1000).to_string());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy() {
        // A few hundred ns of real work so spans get non-zero walls.
        let t = Instant::now();
        while t.elapsed().as_nanos() < 500 {
            std::hint::black_box(0u64);
        }
    }

    #[test]
    fn nested_guards_build_a_tree_with_exact_accounting() {
        let p = Arc::new(Profiler::default());
        for _ in 0..3 {
            let _outer = Profiler::enter(&p, SpanKey::Stage(Stage::Correctness));
            busy();
            {
                let _inner = Profiler::enter(&p, SpanKey::Stage(Stage::Execution));
                busy();
            }
        }
        let sec = p.section(&[]);
        let paths: Vec<&str> = sec.spans.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["correctness", "correctness;execution"]);
        assert_eq!(sec.spans[0].count, 3);
        assert_eq!(sec.spans[1].count, 3);
        // Exact parent/child accounting, checked by validate.
        sec.validate().unwrap();
        assert_eq!(sec.spans[0].child_ns, sec.spans[1].wall_ns);
        assert!(sec.spans[0].wall_ns >= sec.spans[0].child_ns);
        assert_eq!(sec.total_self_ns(), sec.root_wall_ns());
    }

    #[test]
    fn flush_optimize_attributes_rules_under_the_current_stage() {
        let p = Arc::new(Profiler::default());
        {
            let _stage = Profiler::enter(&p, SpanKey::Stage(Stage::Generation));
            let mut s = ProfileSample::default();
            s.record_bind(3, RulePhase::Explore, 40);
            s.record_apply(3, RulePhase::Explore, 60, true);
            s.record_bind(3, RulePhase::Implement, 10);
            s.record_apply(3, RulePhase::Implement, 20, false);
            s.elapsed_ns = 1000;
            p.flush_optimize(&s);
        }
        let names = vec!["A".into(), "B".into(), "C".into(), "D".into()];
        let sec = p.section(&names);
        sec.validate().unwrap();
        let by_path: BTreeMap<&str, &SpanRow> =
            sec.spans.iter().map(|r| (r.path.as_str(), r)).collect();
        let opt = by_path["generation;optimize"];
        assert_eq!((opt.count, opt.wall_ns, opt.child_ns), (1, 1000, 130));
        assert_eq!(by_path["generation;optimize;D.explore"].wall_ns, 100);
        assert_eq!(by_path["generation;optimize;D.implement"].wall_ns, 30);
        // The enclosing stage absorbed the invocation as child time.
        assert_eq!(by_path["generation"].child_ns, 1000);
        let explore = &sec.rules["D/explore"];
        assert_eq!(
            (
                explore.binds,
                explore.fires,
                explore.bind_ns,
                explore.subst_ns
            ),
            (1, 1, 40, 60)
        );
        let implement = &sec.rules["D/implement"];
        assert_eq!((implement.binds, implement.fires), (1, 0));
    }

    #[test]
    fn flush_with_empty_stack_makes_a_root_optimize_row() {
        let p = Arc::new(Profiler::default());
        let mut s = ProfileSample::default();
        s.elapsed_ns = 7;
        p.flush_optimize(&s);
        let sec = p.section(&[]);
        sec.validate().unwrap();
        assert_eq!(sec.spans.len(), 1);
        assert_eq!(sec.spans[0].path, "optimize");
        assert_eq!(sec.spans[0].wall_ns, 7);
    }

    #[test]
    fn span_tree_shape_is_identical_across_thread_counts() {
        fn run(threads: usize) -> Json {
            let p = Arc::new(Profiler::default());
            let work = |p: &Arc<Profiler>| {
                for _ in 0..4 {
                    let _g = Profiler::enter(p, SpanKey::Stage(Stage::Graph));
                    busy();
                    let mut s = ProfileSample::default();
                    s.record_bind(1, RulePhase::Explore, 5);
                    s.elapsed_ns = 10;
                    p.flush_optimize(&s);
                }
            };
            if threads <= 1 {
                for _ in 0..3 {
                    work(&p);
                }
            } else {
                std::thread::scope(|scope| {
                    for _ in 0..3 {
                        let p = Arc::clone(&p);
                        scope.spawn(move || work(&p));
                    }
                });
            }
            p.section(&["R0".into(), "R1".into()]).deterministic_json()
        }
        assert_eq!(
            run(1).to_string_compact(),
            run(3).to_string_compact(),
            "span tree shape must not depend on thread count"
        );
    }

    #[test]
    fn folded_stack_golden() {
        let sec = ProfileSection {
            spans: vec![
                SpanRow {
                    path: "correctness".into(),
                    count: 2,
                    wall_ns: 5_000_000,
                    child_ns: 3_000_000,
                },
                SpanRow {
                    path: "correctness;execution".into(),
                    count: 2,
                    wall_ns: 3_000_000,
                    child_ns: 0,
                },
            ],
            rules: BTreeMap::new(),
        };
        assert_eq!(
            sec.folded(),
            "correctness 2000\ncorrectness;execution 3000\n"
        );
    }

    #[test]
    fn json_round_trip_and_field_path_errors() {
        let p = Arc::new(Profiler::default());
        {
            let _g = Profiler::enter(&p, SpanKey::Stage(Stage::Triage));
            let mut s = ProfileSample::default();
            s.record_bind(0, RulePhase::Explore, 3);
            s.elapsed_ns = 9;
            p.flush_optimize(&s);
        }
        let sec = p.section(&["A".into()]);
        let back = ProfileSection::from_json(&sec.to_json()).unwrap();
        assert_eq!(back, sec);

        let bad = Json::parse(r#"{"spans":[{"path":"triage","count":1,"wall_ns":-1}]}"#).unwrap();
        let err = ProfileSection::from_json(&bad).unwrap_err();
        assert!(err.contains("profile.spans[0].wall_ns"), "{err}");
        let bad = Json::parse(r#"{"spans":[{"count":1}]}"#).unwrap();
        let err = ProfileSection::from_json(&bad).unwrap_err();
        assert!(err.contains("profile.spans[0].path"), "{err}");
        let bad = Json::parse(r#"{"rules":{"A/explore":{"binds":1}}}"#).unwrap();
        let err = ProfileSection::from_json(&bad).unwrap_err();
        assert!(err.contains("profile.rules.A/explore.fires"), "{err}");
    }

    #[test]
    fn validate_rejects_orphans_and_bad_accounting() {
        let orphan = ProfileSection {
            spans: vec![SpanRow {
                path: "generation;optimize".into(),
                count: 1,
                wall_ns: 5,
                child_ns: 0,
            }],
            rules: BTreeMap::new(),
        };
        assert!(orphan.validate().unwrap_err().contains("parent"));

        let inverted = ProfileSection {
            spans: vec![SpanRow {
                path: "generation".into(),
                count: 1,
                wall_ns: 5,
                child_ns: 9,
            }],
            rules: BTreeMap::new(),
        };
        assert!(inverted.validate().unwrap_err().contains("exceeds"));

        let drifted = ProfileSection {
            spans: vec![
                SpanRow {
                    path: "generation".into(),
                    count: 1,
                    wall_ns: 10,
                    child_ns: 4,
                },
                SpanRow {
                    path: "generation;optimize".into(),
                    count: 1,
                    wall_ns: 5,
                    child_ns: 0,
                },
            ],
            rules: BTreeMap::new(),
        };
        assert!(drifted.validate().unwrap_err().contains("sum of children"));
    }

    #[test]
    fn noop_guard_records_nothing() {
        let p = Arc::new(Profiler::default());
        {
            let _g = SpanGuard::noop();
        }
        assert!(p.section(&[]).is_empty());
    }
}
