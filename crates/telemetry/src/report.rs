//! `RunReport`: one JSON document summarizing a whole campaign.
//!
//! The report rolls the metrics registry, the optimizer's invocation-cache
//! statistics, and the worker-pool statistics into a single self-describing
//! document. Fields split into two classes:
//!
//! * **deterministic** — logical counts that are a pure function of the
//!   seed and inputs (rule firings, trials, edge probes, validations).
//!   [`RunReport::deterministic_json`] serializes exactly this subset; the
//!   determinism suite compares it across runs and thread counts.
//! * **environmental** — wall times, pool utilization, cache hit split,
//!   and trace-ring occupancy, which legitimately vary run to run.

use crate::json::Json;
use crate::metrics::{Counter, Hist, HistogramSnapshot, MetricsSnapshot, HIST_BUCKETS};
use crate::span::{ProfileSection, SpanRow};
use std::collections::BTreeMap;

/// Invocation-cache section (mirrors the optimizer's `CacheStats`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSection {
    pub hits: u64,
    pub misses: u64,
    pub evictions: u64,
}

impl CacheSection {
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Worker-pool section (campaign `par_map` totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolSection {
    /// Parallel stages executed.
    pub par_calls: u64,
    /// Items executed across all stages.
    pub tasks: u64,
    /// Workers launched across all stages.
    pub workers: u64,
    /// Items a worker absorbed beyond its even share (work imbalance the
    /// stealing cursor balanced away).
    pub steals: u64,
    /// Total worker time spent inside item closures.
    pub busy_ns: u64,
    /// Total worker time spent outside item closures (claiming, waiting).
    pub idle_ns: u64,
}

impl PoolSection {
    /// Fraction of worker wall time spent doing work.
    pub fn utilization(&self) -> f64 {
        let total = self.busy_ns + self.idle_ns;
        if total == 0 {
            0.0
        } else {
            self.busy_ns as f64 / total as f64
        }
    }
}

/// Trace-ring occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSection {
    pub recorded: u64,
    pub dropped: u64,
}

/// Current report schema version (bump on breaking layout changes).
pub const SCHEMA_VERSION: u64 = 1;

/// Human-scale duration: picks ns/us/ms/s by magnitude.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

/// The aggregated campaign report.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    pub schema: u64,
    /// Per-rule firing counts by rule name: in how many *unique*
    /// optimizations (distinct `(tree, mask, budgets)` keys) the rule
    /// fired. Deduplicated counting is what keeps this identical across
    /// thread counts even when racing workers duplicate a computation.
    pub rule_firings: BTreeMap<String, u64>,
    /// All registry counters by dotted name.
    pub counters: BTreeMap<String, u64>,
    /// All registry histograms by dotted name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    pub cache: CacheSection,
    pub pool: PoolSection,
    pub trace: TraceSection,
    /// Hierarchical span profile (per-stage / per-rule wall attribution).
    pub profile: ProfileSection,
    /// Campaign wall time as measured by the caller (0 when unset).
    pub wall_seconds: f64,
}

impl RunReport {
    /// Builds a report from a metrics snapshot, naming rule indices with
    /// `rule_names` (indices past the table get a `rule#N` placeholder).
    pub fn from_snapshot(snapshot: &MetricsSnapshot, rule_names: &[String]) -> RunReport {
        let rule_firings = snapshot
            .rule_firings
            .iter()
            .enumerate()
            .map(|(i, &count)| {
                let name = rule_names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("rule#{i}"));
                (name, count)
            })
            .collect();
        let counters = Counter::ALL
            .iter()
            .map(|&c| (c.name().to_string(), snapshot.counter(c)))
            .collect();
        let histograms = Hist::ALL
            .iter()
            .map(|&h| (h.name().to_string(), snapshot.histogram(h).clone()))
            .collect();
        RunReport {
            schema: SCHEMA_VERSION,
            rule_firings,
            counters,
            histograms,
            cache: CacheSection::default(),
            pool: PoolSection::default(),
            trace: TraceSection::default(),
            profile: ProfileSection::default(),
            wall_seconds: 0.0,
        }
    }

    pub fn counter(&self, c: Counter) -> u64 {
        self.counters.get(c.name()).copied().unwrap_or(0)
    }

    /// Optimizer invocations computed during the run (the Figure 14 cost
    /// metric).
    pub fn invocations(&self) -> u64 {
        self.counter(Counter::OptInvocations)
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::count(self.schema)),
            ("wall_seconds", Json::num(self.wall_seconds)),
            (
                "rule_firings",
                Json::Obj(
                    self.rule_firings
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::count(v)))
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::count(v)))
                        .collect(),
                ),
            ),
            (
                "histograms",
                Json::Obj(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json()))
                        .collect(),
                ),
            ),
            (
                "cache",
                Json::obj(vec![
                    ("hits", Json::count(self.cache.hits)),
                    ("misses", Json::count(self.cache.misses)),
                    ("evictions", Json::count(self.cache.evictions)),
                    ("hit_ratio", Json::num(self.cache.hit_ratio())),
                ]),
            ),
            (
                "pool",
                Json::obj(vec![
                    ("par_calls", Json::count(self.pool.par_calls)),
                    ("tasks", Json::count(self.pool.tasks)),
                    ("workers", Json::count(self.pool.workers)),
                    ("steals", Json::count(self.pool.steals)),
                    ("busy_ns", Json::count(self.pool.busy_ns)),
                    ("idle_ns", Json::count(self.pool.idle_ns)),
                    ("utilization", Json::num(self.pool.utilization())),
                ]),
            ),
            (
                "trace",
                Json::obj(vec![
                    ("recorded", Json::count(self.trace.recorded)),
                    ("dropped", Json::count(self.trace.dropped)),
                ]),
            ),
            ("profile", self.profile.to_json()),
        ])
    }

    /// Canonical serialization of the deterministic subset only: rule
    /// firings, logical counters, and seed-determined histograms. Two
    /// campaigns with the same seed must produce byte-identical output
    /// here regardless of thread count.
    pub fn deterministic_json(&self) -> String {
        let det_hists: BTreeMap<String, Json> = self
            .histograms
            .iter()
            .filter(|(name, _)| {
                Hist::ALL
                    .iter()
                    .any(|h| h.name() == name.as_str() && h.deterministic())
            })
            .map(|(name, snap)| (name.clone(), snap.to_json()))
            .collect();
        // Counters that track disk-state effects (cold vs warm cache)
        // are environmental and excluded, same as wall-clock histograms.
        let det_counters: BTreeMap<String, Json> = self
            .counters
            .iter()
            .filter(|(name, _)| {
                Counter::ALL
                    .iter()
                    .any(|c| c.name() == name.as_str() && c.deterministic())
            })
            .map(|(name, &v)| (name.clone(), Json::count(v)))
            .collect();
        Json::obj(vec![
            ("schema", Json::count(self.schema)),
            (
                "rule_firings",
                Json::Obj(
                    self.rule_firings
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::count(v)))
                        .collect(),
                ),
            ),
            ("counters", Json::Obj(det_counters)),
            ("histograms", Json::Obj(det_hists)),
            ("profile", self.profile.deterministic_json()),
        ])
        .to_string_compact()
    }

    /// Parses a report previously serialized with
    /// [`RunReport::to_json`].
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let doc = Json::parse(text)?;
        RunReport::from_json_value(&doc)
    }

    /// Parses an already-decoded JSON report (used by `ruletest diff`,
    /// which also accepts bench documents wrapping a report).
    pub fn from_json_value(doc: &Json) -> Result<RunReport, String> {
        let schema = doc
            .get("schema")
            .and_then(Json::as_u64)
            .ok_or("report missing schema")?;
        let u64_map = |key: &str| -> Result<BTreeMap<String, u64>, String> {
            let obj = doc
                .get(key)
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("report missing {key}"))?;
            obj.iter()
                .map(|(k, v)| {
                    v.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("{key}.{k} is not a count"))
                })
                .collect()
        };
        let histograms = doc
            .get("histograms")
            .and_then(Json::as_obj)
            .ok_or("report missing histograms")?
            .iter()
            .map(|(k, v)| HistogramSnapshot::from_json(v).map(|h| (k.clone(), h)))
            .collect::<Result<BTreeMap<_, _>, _>>()?;
        let section = |key: &str, field: &str| -> u64 {
            doc.get(key)
                .and_then(|s| s.get(field))
                .and_then(Json::as_u64)
                .unwrap_or(0)
        };
        Ok(RunReport {
            schema,
            rule_firings: u64_map("rule_firings")?,
            counters: u64_map("counters")?,
            histograms,
            cache: CacheSection {
                hits: section("cache", "hits"),
                misses: section("cache", "misses"),
                evictions: section("cache", "evictions"),
            },
            pool: PoolSection {
                par_calls: section("pool", "par_calls"),
                tasks: section("pool", "tasks"),
                workers: section("pool", "workers"),
                steals: section("pool", "steals"),
                busy_ns: section("pool", "busy_ns"),
                idle_ns: section("pool", "idle_ns"),
            },
            trace: TraceSection {
                recorded: section("trace", "recorded"),
                dropped: section("trace", "dropped"),
            },
            profile: match doc.get("profile") {
                // Absent in pre-profiler reports; tolerated for diffing
                // old baselines.
                None => ProfileSection::default(),
                Some(p) => ProfileSection::from_json(p)?,
            },
            wall_seconds: doc
                .get("wall_seconds")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        })
    }

    /// Merges another report's accumulations into this one, summing
    /// counters, rule firings, histograms, sections, and the profile
    /// tree (span rows by path, rule costs by name). `--resume` absorbs
    /// the checkpointed report snapshot into the resumed process's
    /// report so the combined deterministic slice matches an
    /// uninterrupted run.
    pub fn absorb(&mut self, other: &RunReport) {
        for (name, &v) in &other.rule_firings {
            *self.rule_firings.entry(name.clone()).or_insert(0) += v;
        }
        for (name, &v) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += v;
        }
        for (name, hist) in &other.histograms {
            let slot = self
                .histograms
                .entry(name.clone())
                .or_insert_with(|| HistogramSnapshot {
                    buckets: [0; HIST_BUCKETS],
                    count: 0,
                    sum: 0,
                });
            for (i, &b) in hist.buckets.iter().enumerate() {
                slot.buckets[i] += b;
            }
            slot.count += hist.count;
            slot.sum += hist.sum;
        }
        self.cache.hits += other.cache.hits;
        self.cache.misses += other.cache.misses;
        self.cache.evictions += other.cache.evictions;
        self.pool.par_calls += other.pool.par_calls;
        self.pool.tasks += other.pool.tasks;
        self.pool.workers += other.pool.workers;
        self.pool.steals += other.pool.steals;
        self.pool.busy_ns += other.pool.busy_ns;
        self.pool.idle_ns += other.pool.idle_ns;
        self.trace.recorded += other.trace.recorded;
        self.trace.dropped += other.trace.dropped;
        self.wall_seconds += other.wall_seconds;
        if !other.profile.is_empty() {
            let mut spans: BTreeMap<String, SpanRow> = self
                .profile
                .spans
                .drain(..)
                .map(|r| (r.path.clone(), r))
                .collect();
            for row in &other.profile.spans {
                let slot = spans.entry(row.path.clone()).or_insert_with(|| SpanRow {
                    path: row.path.clone(),
                    count: 0,
                    wall_ns: 0,
                    child_ns: 0,
                });
                slot.count += row.count;
                slot.wall_ns += row.wall_ns;
                slot.child_ns += row.child_ns;
            }
            self.profile.spans = spans.into_values().collect();
            for (name, cost) in &other.profile.rules {
                let slot = self.profile.rules.entry(name.clone()).or_default();
                slot.binds += cost.binds;
                slot.fires += cost.fires;
                slot.bind_ns += cost.bind_ns;
                slot.subst_ns += cost.subst_ns;
            }
        }
    }

    /// Smoke-guard used by CI: errors if the instrumentation silently
    /// regressed (no rule firings, no cache traffic, or no invocations).
    pub fn check(&self) -> Result<(), String> {
        if self.invocations() == 0 {
            return Err("optimizer.invocations is zero — instrumentation lost".to_string());
        }
        if self.rule_firings.values().all(|&v| v == 0) {
            return Err("all per-rule firing counts are zero/absent".to_string());
        }
        if self.cache.hits + self.cache.misses == 0 {
            return Err("invocation cache saw no traffic".to_string());
        }
        if !self.profile.is_empty() {
            // Warm-cache replays carry the original compute's span
            // timings, so timing containment only holds on cold reports.
            let strict_timing = self.counter(Counter::CacheWarmHits) == 0;
            self.profile.validate_with(strict_timing)?;
        }
        Ok(())
    }

    /// Human-readable summary for `ruletest report`.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "run report (schema {})", self.schema);
        if self.wall_seconds > 0.0 {
            let _ = writeln!(out, "  wall time            {:.2}s", self.wall_seconds);
        }
        let _ = writeln!(out, "  optimizer invocations {:>10}", self.invocations());
        let _ = writeln!(
            out,
            "  cache                {:>10} hits / {} misses ({:.1}% hit ratio, {} evictions)",
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_ratio() * 100.0,
            self.cache.evictions
        );
        let _ = writeln!(
            out,
            "  generation           {:>10} trials, {} hits, {} failures",
            self.counter(Counter::GenTrials),
            self.counter(Counter::GenHits),
            self.counter(Counter::GenFailures)
        );
        let _ = writeln!(
            out,
            "  graph probing        {:>10} oracle calls, {} edges pruned",
            self.counter(Counter::OracleCalls),
            self.counter(Counter::EdgesPruned)
        );
        let _ = writeln!(
            out,
            "  correctness          {:>10} validations, {} executions, {} identical, {} expensive, {} bugs",
            self.counter(Counter::Validations),
            self.counter(Counter::Executions),
            self.counter(Counter::SkippedIdentical),
            self.counter(Counter::SkippedExpensive),
            self.counter(Counter::CorrectnessBugs)
        );
        let supervised = self.counter(Counter::SupervisePanics)
            + self.counter(Counter::SuperviseTimeouts)
            + self.counter(Counter::SuperviseBudget);
        if supervised > 0 || self.counter(Counter::ChaosInjected) > 0 {
            let _ = writeln!(
                out,
                "  supervision          {:>10} failures absorbed: {} panics, {} timeouts, {} budget ({} quarantined, {} chaos-injected)",
                supervised,
                self.counter(Counter::SupervisePanics),
                self.counter(Counter::SuperviseTimeouts),
                self.counter(Counter::SuperviseBudget),
                self.counter(Counter::SuperviseQuarantined),
                self.counter(Counter::ChaosInjected)
            );
        }
        let proved = self.counter(Counter::ProveEquivalent)
            + self.counter(Counter::ProveInequivalent)
            + self.counter(Counter::ProveUnknown);
        if proved > 0 {
            let _ = writeln!(
                out,
                "  prover               {:>10} rules: {} equivalent, {} inequivalent, {} unknown",
                proved,
                self.counter(Counter::ProveEquivalent),
                self.counter(Counter::ProveInequivalent),
                self.counter(Counter::ProveUnknown)
            );
        }
        let _ = writeln!(
            out,
            "  pool                 {:>10} tasks over {} workers in {} stages ({} steals, {:.1}% busy)",
            self.pool.tasks,
            self.pool.workers,
            self.pool.par_calls,
            self.pool.steals,
            self.pool.utilization() * 100.0
        );
        if self.trace.recorded > 0 {
            let _ = writeln!(
                out,
                "  trace                {:>10} events recorded, {} dropped",
                self.trace.recorded, self.trace.dropped
            );
            if self.trace.dropped > 0 {
                let _ = writeln!(
                    out,
                    "  WARNING: the trace ring wrapped and overwrote {} events — raise the shard capacity to keep them",
                    self.trace.dropped
                );
            }
        }
        let populated: Vec<(&String, &HistogramSnapshot)> = self
            .histograms
            .iter()
            .filter(|(_, h)| h.count > 0)
            .collect();
        if !populated.is_empty() {
            let _ = writeln!(out, "  histograms");
            for (name, h) in populated {
                let _ = writeln!(
                    out,
                    "    {name:<34} count {:>8}  mean {:>9.1}  p50 {:>9.1}  p95 {:>9.1}  p99 {:>9.1}",
                    h.count,
                    h.mean(),
                    h.percentile(50.0),
                    h.percentile(95.0),
                    h.percentile(99.0)
                );
            }
        }
        if !self.profile.is_empty() {
            let total = self.profile.root_wall_ns();
            let _ = writeln!(
                out,
                "  profile              {:>10} span paths, {} total wall (self-time sum {})",
                self.profile.spans.len(),
                fmt_ns(total),
                fmt_ns(self.profile.total_self_ns())
            );
            let _ = writeln!(
                out,
                "    {:<40} {:>10} {:>10} {:>10}",
                "span", "calls", "wall", "self"
            );
            const MAX_SPAN_ROWS: usize = 40;
            for row in self.profile.spans.iter().take(MAX_SPAN_ROWS) {
                let label = format!("{}{}", "  ".repeat(row.depth()), row.leaf());
                let _ = writeln!(
                    out,
                    "    {label:<40} {:>10} {:>10} {:>10}",
                    row.count,
                    fmt_ns(row.wall_ns),
                    fmt_ns(row.self_ns())
                );
            }
            if self.profile.spans.len() > MAX_SPAN_ROWS {
                let _ = writeln!(
                    out,
                    "    ... {} more span paths",
                    self.profile.spans.len() - MAX_SPAN_ROWS
                );
            }
            if !self.profile.rules.is_empty() {
                let mut costly: Vec<_> = self.profile.rules.iter().collect();
                costly.sort_by(|a, b| b.1.total_ns().cmp(&a.1.total_ns()).then(a.0.cmp(b.0)));
                let _ = writeln!(
                    out,
                    "  rule costs           {:>10} (rule, phase) rows, top {} by time",
                    costly.len(),
                    costly.len().min(15)
                );
                let _ = writeln!(
                    out,
                    "    {:<40} {:>8} {:>8} {:>10} {:>10}",
                    "rule/phase", "binds", "fires", "bind", "subst"
                );
                for (name, c) in costly.iter().take(15) {
                    let _ = writeln!(
                        out,
                        "    {name:<40} {:>8} {:>8} {:>10} {:>10}",
                        c.binds,
                        c.fires,
                        fmt_ns(c.bind_ns),
                        fmt_ns(c.subst_ns)
                    );
                }
            }
        }
        let mut fired: Vec<(&String, &u64)> =
            self.rule_firings.iter().filter(|(_, &v)| v > 0).collect();
        fired.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
        let _ = writeln!(out, "  rules fired          {:>10}", fired.len());
        for (name, count) in fired.iter().take(15) {
            let _ = writeln!(out, "    {name:<34} {count:>8}");
        }
        if fired.len() > 15 {
            let _ = writeln!(out, "    ... {} more", fired.len() - 15);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metrics;

    fn sample_report() -> RunReport {
        let m = Metrics::default();
        m.add(Counter::OptInvocations, 10);
        m.add(Counter::GenTrials, 40);
        m.add(Counter::GenHits, 8);
        for t in [1u64, 2, 3, 5, 8, 13, 4, 4] {
            m.observe(Hist::GenTrialsToHit, t);
        }
        m.observe(Hist::InvocationMicros, 1500);
        m.rule_fired(0);
        m.rule_fired(0);
        m.rule_fired(2);
        let names = vec![
            "RuleA".to_string(),
            "RuleB".to_string(),
            "RuleC".to_string(),
        ];
        let mut r = RunReport::from_snapshot(&m.snapshot(), &names);
        r.cache = CacheSection {
            hits: 30,
            misses: 10,
            evictions: 1,
        };
        r.pool = PoolSection {
            par_calls: 3,
            tasks: 12,
            workers: 6,
            steals: 2,
            busy_ns: 900,
            idle_ns: 100,
        };
        r.trace = TraceSection {
            recorded: 50,
            dropped: 0,
        };
        r.wall_seconds = 1.25;
        r
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let r = sample_report();
        let text = r.to_json().to_string_pretty();
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn firing_names_resolve_and_dedup_counts_survive() {
        let r = sample_report();
        assert_eq!(r.rule_firings.get("RuleA"), Some(&2));
        assert_eq!(r.rule_firings.get("RuleB"), Some(&0));
        assert_eq!(r.rule_firings.get("RuleC"), Some(&1));
        assert_eq!(r.counter(Counter::GenTrials), 40);
        assert!((r.cache.hit_ratio() - 0.75).abs() < 1e-12);
        assert!((r.pool.utilization() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn deterministic_json_excludes_environmental_fields() {
        let mut a = sample_report();
        let mut b = sample_report();
        // Perturb everything environmental: the deterministic view must
        // not move.
        b.wall_seconds = 99.0;
        b.cache.hits = 7;
        b.pool.busy_ns = 1;
        b.trace.recorded = 0;
        b.histograms
            .get_mut(Hist::InvocationMicros.name())
            .unwrap()
            .count += 5;
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        // But a logical count difference must show.
        *a.rule_firings.get_mut("RuleA").unwrap() += 1;
        assert_ne!(a.deterministic_json(), b.deterministic_json());
    }

    #[test]
    fn check_flags_dead_instrumentation() {
        let r = sample_report();
        assert!(r.check().is_ok());
        let mut dead = r.clone();
        for v in dead.rule_firings.values_mut() {
            *v = 0;
        }
        assert!(dead.check().is_err());
        let mut no_cache = r.clone();
        no_cache.cache = CacheSection::default();
        assert!(no_cache.check().is_err());
        let mut no_inv = r;
        no_inv
            .counters
            .insert(Counter::OptInvocations.name().to_string(), 0);
        assert!(no_inv.check().is_err());
    }

    #[test]
    fn summary_mentions_the_load_bearing_numbers() {
        let s = sample_report().summary();
        assert!(s.contains("invocations"));
        assert!(s.contains("RuleA"));
        assert!(s.contains("75.0% hit ratio"));
        // Percentiles of the populated histograms print alongside mean.
        assert!(s.contains("p50"), "{s}");
        assert!(s.contains("p95"), "{s}");
        assert!(s.contains("p99"), "{s}");
    }

    fn profiled_report() -> RunReport {
        use crate::span::{RuleCostRow, SpanRow};
        let mut r = sample_report();
        r.profile = ProfileSection {
            spans: vec![
                SpanRow {
                    path: "correctness".to_string(),
                    count: 4,
                    wall_ns: 9_000_000,
                    child_ns: 6_000_000,
                },
                SpanRow {
                    path: "correctness;execution".to_string(),
                    count: 8,
                    wall_ns: 6_000_000,
                    child_ns: 0,
                },
            ],
            rules: [(
                "RuleA/explore".to_string(),
                RuleCostRow {
                    binds: 12,
                    fires: 3,
                    bind_ns: 500,
                    subst_ns: 700,
                },
            )]
            .into_iter()
            .collect(),
        };
        r
    }

    #[test]
    fn profile_section_survives_the_json_roundtrip() {
        let r = profiled_report();
        let back = RunReport::from_json(&r.to_json().to_string_pretty()).unwrap();
        assert_eq!(back, r);
        // Pre-profiler reports (no "profile" key) still parse.
        let mut legacy = sample_report();
        legacy.profile = ProfileSection::default();
        let json = legacy.to_json();
        let Json::Obj(mut fields) = json else {
            panic!("report JSON is an object")
        };
        fields.remove("profile");
        let back = RunReport::from_json(&Json::Obj(fields).to_string_pretty()).unwrap();
        assert_eq!(back, legacy);
    }

    #[test]
    fn malformed_profile_fails_with_a_field_path() {
        let r = profiled_report();
        let mut text = r.to_json().to_string_pretty();
        text = text.replace("\"wall_ns\": 6000000", "\"wall_ns\": \"fast\"");
        let err = RunReport::from_json(&text).unwrap_err();
        assert!(err.contains("profile.spans[1].wall_ns"), "{err}");
    }

    #[test]
    fn check_validates_the_profile_section() {
        let mut r = profiled_report();
        assert!(r.check().is_ok());
        // Break the parent/child accounting: check must now fail.
        r.profile.spans[0].child_ns = 1;
        let err = r.check().unwrap_err();
        assert!(err.contains("sum of children"), "{err}");
    }

    #[test]
    fn deterministic_json_keeps_span_shape_but_not_durations() {
        let a = profiled_report();
        let mut b = profiled_report();
        b.profile.spans[0].wall_ns += 12_345;
        b.profile.spans[0].child_ns += 12_345;
        let rule = b.profile.rules.get_mut("RuleA/explore").unwrap();
        rule.bind_ns = 1;
        assert_eq!(a.deterministic_json(), b.deterministic_json());
        b.profile.spans[1].count += 1;
        assert_ne!(a.deterministic_json(), b.deterministic_json());
    }

    #[test]
    fn summary_shows_stage_and_rule_profile() {
        let s = profiled_report().summary();
        assert!(s.contains("profile"), "{s}");
        assert!(s.contains("correctness"), "{s}");
        assert!(s.contains("RuleA/explore"), "{s}");
        assert!(s.contains("9.0ms"), "{s}");
    }

    #[test]
    fn summary_warns_about_dropped_trace_events() {
        let mut r = sample_report();
        assert!(!r.summary().contains("WARNING"));
        r.trace.dropped = 17;
        let s = r.summary();
        assert!(s.contains("WARNING"), "{s}");
        assert!(s.contains("17"), "{s}");
    }
}
