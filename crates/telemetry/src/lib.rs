//! Campaign telemetry for the `ruletest` workspace — std-only, zero
//! dependencies, and near-free when disabled.
//!
//! The paper's framework is an *instrumented* optimizer: §3 needs
//! per-query rule traces, and §5 / Figure 14 measures campaigns in
//! optimizer invocations and logical edge counts. This crate is the
//! measurement backbone:
//!
//! * [`Metrics`] — a registry of atomic counters and power-of-two-bucket
//!   histograms ([`Counter`] / [`Hist`]), cheap enough for the hot
//!   optimizer path (one relaxed `fetch_add` per observation);
//! * [`Tracer`] — a lock-sharded ring-buffered structured event tracer
//!   with JSONL export ([`Event`]);
//! * [`RunReport`] — one JSON document aggregating a whole campaign
//!   (per-rule firing counts, trials-to-hit distributions, cache hit
//!   ratio, edge counts, pool utilization, wall time).
//!
//! Everything hangs off a cloneable [`Telemetry`] handle. A *disabled*
//! handle holds no allocation at all — every recording method is a single
//! `Option` branch — so instrumented code paths cost nothing measurable
//! when telemetry is off, which is what keeps the Figure 11–14
//! reproductions and the campaign determinism guarantees unchanged.

pub mod diff;
pub mod json;
pub mod metrics;
pub mod report;
pub mod span;
pub mod trace;

pub use diff::{diff_reports, DiffItem, DiffReport};
pub use json::Json;
pub use metrics::{
    bucket_index, Counter, Hist, Histogram, HistogramSnapshot, Metrics, MetricsSnapshot,
    HIST_BUCKETS, MAX_RULES,
};
pub use report::{CacheSection, PoolSection, RunReport, TraceSection, SCHEMA_VERSION};
pub use span::{ProfileSample, ProfileSection, Profiler, RuleCostRow, SpanGuard, SpanRow, Stage};
pub use trace::{Event, RulePhase, TraceStats, Tracer, DEFAULT_SHARD_CAPACITY};

use std::io;
use std::sync::Arc;

struct Inner {
    metrics: Metrics,
    tracer: Option<Tracer>,
    profiler: Arc<Profiler>,
}

/// Shared telemetry handle. Clones share one registry/tracer; a disabled
/// handle is `None` inside and compiles recording calls down to a branch.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::disabled()
    }
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Telemetry(disabled)"),
            Some(i) => write!(
                f,
                "Telemetry(metrics{})",
                if i.tracer.is_some() { "+tracer" } else { "" }
            ),
        }
    }
}

impl Telemetry {
    /// The no-op handle: records nothing, allocates nothing.
    pub const fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// Metrics registry only (no event tracer, no ring allocation).
    pub fn metrics_only() -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                metrics: Metrics::default(),
                tracer: None,
                profiler: Arc::new(Profiler::default()),
            })),
        }
    }

    /// Metrics registry plus an event tracer retaining up to
    /// `shard_capacity` events per shard (16 shards).
    pub fn with_tracing(shard_capacity: usize) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(Inner {
                metrics: Metrics::default(),
                tracer: Some(Tracer::new(shard_capacity)),
                profiler: Arc::new(Profiler::default()),
            })),
        }
    }

    /// Metrics plus a default-capacity tracer.
    pub fn enabled() -> Telemetry {
        Telemetry::with_tracing(DEFAULT_SHARD_CAPACITY)
    }

    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// True when structured events are being retained (not just metrics).
    #[inline]
    pub fn tracing(&self) -> bool {
        matches!(&self.inner, Some(i) if i.tracer.is_some())
    }

    #[inline]
    pub fn incr(&self, c: Counter) {
        if let Some(i) = &self.inner {
            i.metrics.add(c, 1);
        }
    }

    #[inline]
    pub fn add(&self, c: Counter, v: u64) {
        if let Some(i) = &self.inner {
            i.metrics.add(c, v);
        }
    }

    /// Current counter value (0 when disabled).
    pub fn counter(&self, c: Counter) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.metrics.counter(c))
    }

    #[inline]
    pub fn observe(&self, h: Hist, value: u64) {
        if let Some(i) = &self.inner {
            i.metrics.observe(h, value);
        }
    }

    /// Counts each rule of a unique optimization's rule set as one firing.
    #[inline]
    pub fn record_rule_set<I: IntoIterator<Item = u16>>(&self, rules: I) {
        if let Some(i) = &self.inner {
            for rule in rules {
                i.metrics.rule_fired(rule);
            }
        }
    }

    /// Records a structured event. The closure runs only when a tracer is
    /// attached, so fire sites pay nothing to *build* events when tracing
    /// is off.
    #[inline]
    pub fn event(&self, build: impl FnOnce() -> Event) {
        if let Some(i) = &self.inner {
            if let Some(tracer) = &i.tracer {
                tracer.record(build());
            }
        }
    }

    pub fn trace_stats(&self) -> TraceStats {
        self.inner
            .as_ref()
            .and_then(|i| i.tracer.as_ref())
            .map_or(TraceStats::default(), |t| t.stats())
    }

    /// Writes retained trace events as JSONL (no-op when not tracing).
    pub fn export_trace<W: io::Write>(&self, w: &mut W) -> io::Result<()> {
        if let Some(tracer) = self.inner.as_ref().and_then(|i| i.tracer.as_ref()) {
            tracer.export_jsonl(w)?;
        }
        Ok(())
    }

    /// Point-in-time copy of the registry (empty when disabled).
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.inner
            .as_ref()
            .map_or_else(|| Metrics::default().snapshot(), |i| i.metrics.snapshot())
    }

    /// Opens a hierarchical profiling span attributed to `stage` on the
    /// current thread. The returned RAII guard closes it; disabled
    /// handles hand back an inert guard.
    #[inline]
    pub fn span(&self, stage: Stage) -> SpanGuard {
        match &self.inner {
            Some(i) => Profiler::enter(&i.profiler, span::SpanKey::Stage(stage)),
            None => SpanGuard::noop(),
        }
    }

    /// Opens a per-rule profiling span on the current thread, nested
    /// under whatever stage span is active (the symbolic prover uses
    /// this to attribute proof time rule by rule under `Stage::Prove`).
    #[inline]
    pub fn rule_span(&self, rule: u16) -> SpanGuard {
        match &self.inner {
            Some(i) => Profiler::enter(
                &i.profiler,
                span::SpanKey::Rule {
                    rule,
                    phase: RulePhase::Explore,
                },
            ),
            None => SpanGuard::noop(),
        }
    }

    /// A fresh per-invocation profile buffer, `None` when disabled —
    /// callers thread it through `compute` and hand it back via
    /// [`Telemetry::flush_profile`] only for deduplicated winners.
    #[inline]
    pub fn profile_sample(&self) -> Option<ProfileSample> {
        self.inner.as_ref().map(|_| ProfileSample::default())
    }

    /// Books one optimizer invocation's profile under the current
    /// thread's span stack.
    #[inline]
    pub fn flush_profile(&self, sample: &ProfileSample) {
        if let Some(i) = &self.inner {
            i.profiler.flush_optimize(sample);
        }
    }

    /// Snapshot of the aggregated span/rule-cost profile (empty when
    /// disabled).
    pub fn profile_section(&self, rule_names: &[String]) -> ProfileSection {
        self.inner
            .as_ref()
            .map_or_else(ProfileSection::default, |i| i.profiler.section(rule_names))
    }

    /// Builds the aggregate report from the current registry state,
    /// including the trace and profile sections this handle owns; the
    /// caller fills the cache/pool/wall sections it owns.
    pub fn run_report(&self, rule_names: &[String]) -> RunReport {
        let mut report = RunReport::from_snapshot(&self.metrics_snapshot(), rule_names);
        let stats = self.trace_stats();
        report.trace = TraceSection {
            recorded: stats.recorded,
            dropped: stats.dropped,
        };
        report.profile = self.profile_section(rule_names);
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        assert!(!t.tracing());
        t.incr(Counter::GenTrials);
        t.observe(Hist::GenTrialsToHit, 3);
        t.record_rule_set([1, 2, 3]);
        t.event(|| unreachable!("event closures must not run when disabled"));
        assert_eq!(t.counter(Counter::GenTrials), 0);
        assert_eq!(t.trace_stats(), TraceStats::default());
        let snap = t.metrics_snapshot();
        assert!(snap.rule_firings.is_empty());
        let mut buf = Vec::new();
        t.export_trace(&mut buf).unwrap();
        assert!(buf.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let t = Telemetry::enabled();
        let u = t.clone();
        u.incr(Counter::GenTrials);
        t.add(Counter::GenTrials, 2);
        assert_eq!(t.counter(Counter::GenTrials), 3);
        u.event(|| Event::CacheLookup {
            fingerprint: 9,
            hit: false,
        });
        assert_eq!(t.trace_stats().recorded, 1);
    }

    #[test]
    fn metrics_only_skips_the_tracer() {
        let t = Telemetry::metrics_only();
        assert!(t.is_enabled());
        assert!(!t.tracing());
        t.event(|| unreachable!("no tracer attached"));
        t.incr(Counter::OptInvocations);
        assert_eq!(t.counter(Counter::OptInvocations), 1);
    }

    #[test]
    fn run_report_carries_registry_contents() {
        let t = Telemetry::enabled();
        t.add(Counter::OptInvocations, 4);
        t.record_rule_set([0, 1]);
        t.record_rule_set([0]);
        let names = vec!["A".to_string(), "B".to_string()];
        let r = t.run_report(&names);
        assert_eq!(r.invocations(), 4);
        assert_eq!(r.rule_firings.get("A"), Some(&2));
        assert_eq!(r.rule_firings.get("B"), Some(&1));
    }
}
