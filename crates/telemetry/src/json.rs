//! Minimal JSON value model, serializer, and parser.
//!
//! The workspace builds fully offline with zero external dependencies, so
//! the telemetry crate carries its own JSON support: enough of RFC 8259
//! to write and read back run reports and JSONL trace events. Numbers are
//! `f64` (counters stay exact up to 2^53 — far beyond any campaign);
//! object keys are kept in a `BTreeMap` so serialization is canonical,
//! which is what lets tests compare reports as strings.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Convenience: an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    pub fn num(n: impl Into<f64>) -> Json {
        Json::Num(n.into())
    }

    /// `u64` counters round-trip exactly up to 2^53.
    pub fn count(n: u64) -> Json {
        Json::Num(n as f64)
    }

    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Member lookup on objects (`None` for non-objects / absent keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }

    /// Canonical single-line serialization (sorted keys, no whitespace).
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty serialization with two-space indentation.
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_num(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (trailing whitespace allowed).
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }
}

fn write_num(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no Infinity/NaN; null is the conventional stand-in.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at byte {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|_| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|_| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|_| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                map.insert(key, value);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos).map(Json::Num),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed for telemetry
                        // payloads (rule names are ASCII); map lone
                        // surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is a &str, so this is
                // always a valid boundary walk).
                let start = *pos;
                *pos += 1;
                while *pos < b.len() && (b[*pos] & 0xC0) == 0x80 {
                    *pos += 1;
                }
                out.push_str(std::str::from_utf8(&b[start..*pos]).expect("valid utf8"));
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<f64, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    std::str::from_utf8(&b[start..*pos])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad number at byte {start}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let doc = Json::obj(vec![
            ("a", Json::count(42)),
            (
                "b",
                Json::Arr(vec![Json::Null, Json::Bool(true), Json::num(1.5)]),
            ),
            ("c", Json::str("quote \" backslash \\ newline \n")),
            ("d", Json::Obj(BTreeMap::new())),
        ]);
        let text = doc.to_string_compact();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Canonical: re-serializing the parse is identical.
        assert_eq!(Json::parse(&text).unwrap().to_string_compact(), text);
    }

    #[test]
    fn roundtrip_pretty() {
        let doc = Json::obj(vec![
            (
                "nested",
                Json::obj(vec![("k", Json::Arr(vec![Json::count(1)]))]),
            ),
            ("z", Json::num(0.25)),
        ]);
        assert_eq!(Json::parse(&doc.to_string_pretty()).unwrap(), doc);
    }

    #[test]
    fn large_counters_stay_exact() {
        let n = (1u64 << 53) - 1;
        let text = Json::count(n).to_string_compact();
        assert_eq!(Json::parse(&text).unwrap().as_u64(), Some(n));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"n": 3, "s": "x", "b": false, "a": [1]}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("a").and_then(Json::as_arr).map(|a| a.len()),
            Some(1)
        );
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn unicode_escapes_parse() {
        let doc = Json::parse(r#""café""#).unwrap();
        assert_eq!(doc.as_str(), Some("café"));
    }
}
