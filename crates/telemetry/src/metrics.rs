//! Atomic metrics registry: named counters and fixed-bucket histograms.
//!
//! The registry is a *closed* set of metrics (enums, not string lookup):
//! the hot optimizer path pays one enum-indexed `fetch_add` per
//! observation, no hashing, no locking. Per-rule firing counts live in a
//! fixed atomic array indexed by `RuleId` so the fire site is a single
//! relaxed add too.

use crate::json::Json;
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters tracked by the registry.
///
/// Everything here is a *logical count* — deterministic for a fixed seed
/// and thread count (and, for all campaign-pipeline counters, across
/// thread counts too). Wall-clock quantities never become counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Optimizer invocations actually computed (the §5.3.1 / Figure 14
    /// cost metric; cache hits do not count).
    OptInvocations,
    /// Invocations that hit a search budget.
    OptTruncated,
    /// Exploration-rule fire sites that produced at least one new
    /// expression (raw, per compute — see `RunReport::rule_firings` for
    /// the deduplicated per-unique-optimization counts).
    RuleFiresExplore,
    /// Implementation-rule apply sites that produced candidates.
    RuleFiresImplement,
    /// Generation trials attempted (each one optimizes a candidate tree).
    GenTrials,
    /// Generation problems solved (a query exercising the target found).
    GenHits,
    /// Generation problems exhausted without a hit.
    GenFailures,
    /// Edge-cost probes the §5.3.1 monotonicity bound skipped.
    EdgesPruned,
    /// Edge-cost probes actually computed by the edge oracle.
    OracleCalls,
    /// `(target, query)` correctness validations attempted.
    Validations,
    /// Plans executed against the test database.
    Executions,
    /// Validations skipped because the plans were identical (footnote 1).
    SkippedIdentical,
    /// Validations skipped because execution exceeded the work budget.
    SkippedExpensive,
    /// Validations skipped because the executor refused the masked plan
    /// (`Error::Unsupported`), distinct from budget skips.
    SkippedUnsupported,
    /// Correctness bugs detected.
    CorrectnessBugs,
    /// Bug witnesses fully minimized by triage.
    BugsMinimized,
    /// Accepted shrink steps across all triage minimizations.
    MinimizationSteps,
    /// Findings collapsed into an existing bug signature by triage dedup.
    DuplicatesCollapsed,
    /// Static lint violations flagged by the debug-mode substitute auditor.
    LintViolations,
    /// Mutants killed by the mutation campaign (statically or dynamically,
    /// per their expected verdict).
    MutantsKilled,
    /// Expected-detectable mutants that survived the mutation campaign.
    MutantsSurvived,
    /// Mutants invisible to the static linter but caught by dynamic
    /// differential execution (the lint-escape matrix rows).
    LintEscapes,
    /// Invocation-cache entries written to a disk snapshot.
    /// Environmental: depends on whether `--cache-dir` is set.
    CachePersisted,
    /// Cache probes answered from a warm (disk-loaded) entry.
    /// Environmental: zero on a cold run, nonzero on a warm one.
    CacheWarmHits,
    /// Snapshots discarded because the campaign fingerprint (catalog,
    /// rule catalog, seed, scale) no longer matches. Environmental.
    CacheFingerprintRejected,
    /// Rules proved equivalent by the symbolic prover (normal forms match).
    ProveEquivalent,
    /// Rules the symbolic prover refuted with a symbolic counterexample.
    ProveInequivalent,
    /// Rules outside the prover's decidable fragment (fall back to the
    /// concrete-corpus auditor).
    ProveUnknown,
    /// Optimizer/executor invocations that escaped a panic into the
    /// supervisor sandbox. Environmental: panics can come from injected
    /// chaos or wall-clock-dependent state, so crash counters stay out of
    /// the deterministic fingerprint — `ruletest diff` instead treats any
    /// increase as a hard regression.
    SupervisePanics,
    /// Invocations abandoned at a cooperative deadline check.
    /// Environmental (wall clock).
    SuperviseTimeouts,
    /// Invocations abandoned by a hard memo/work budget under supervision.
    /// Environmental (depends on supervision flags and chaos pressure).
    SuperviseBudget,
    /// Inputs quarantined after a supervised failure (skipped on resume).
    /// Environmental.
    SuperviseQuarantined,
    /// Faults injected by the chaos engine. Environmental: zero unless a
    /// chaos plan is installed.
    ChaosInjected,
}

impl Counter {
    pub const COUNT: usize = 33;

    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::OptInvocations,
        Counter::OptTruncated,
        Counter::RuleFiresExplore,
        Counter::RuleFiresImplement,
        Counter::GenTrials,
        Counter::GenHits,
        Counter::GenFailures,
        Counter::EdgesPruned,
        Counter::OracleCalls,
        Counter::Validations,
        Counter::Executions,
        Counter::SkippedIdentical,
        Counter::SkippedExpensive,
        Counter::SkippedUnsupported,
        Counter::CorrectnessBugs,
        Counter::BugsMinimized,
        Counter::MinimizationSteps,
        Counter::DuplicatesCollapsed,
        Counter::LintViolations,
        Counter::MutantsKilled,
        Counter::MutantsSurvived,
        Counter::LintEscapes,
        Counter::CachePersisted,
        Counter::CacheWarmHits,
        Counter::CacheFingerprintRejected,
        Counter::ProveEquivalent,
        Counter::ProveInequivalent,
        Counter::ProveUnknown,
        Counter::SupervisePanics,
        Counter::SuperviseTimeouts,
        Counter::SuperviseBudget,
        Counter::SuperviseQuarantined,
        Counter::ChaosInjected,
    ];

    /// Stable dotted name used in reports and traces.
    pub fn name(self) -> &'static str {
        match self {
            Counter::OptInvocations => "optimizer.invocations",
            Counter::OptTruncated => "optimizer.truncated",
            Counter::RuleFiresExplore => "rules.explore_fires",
            Counter::RuleFiresImplement => "rules.implement_fires",
            Counter::GenTrials => "gen.trials",
            Counter::GenHits => "gen.hits",
            Counter::GenFailures => "gen.failures",
            Counter::EdgesPruned => "graph.edges_pruned",
            Counter::OracleCalls => "graph.oracle_calls",
            Counter::Validations => "correctness.validations",
            Counter::Executions => "correctness.executions",
            Counter::SkippedIdentical => "correctness.skipped_identical",
            Counter::SkippedExpensive => "correctness.skipped_expensive",
            Counter::SkippedUnsupported => "correctness.skipped_unsupported",
            Counter::CorrectnessBugs => "correctness.bugs",
            Counter::BugsMinimized => "triage.bugs_minimized",
            Counter::MinimizationSteps => "triage.minimization_steps",
            Counter::DuplicatesCollapsed => "triage.duplicates_collapsed",
            Counter::LintViolations => "lint.violations",
            Counter::MutantsKilled => "mutate.killed",
            Counter::MutantsSurvived => "mutate.survived",
            Counter::LintEscapes => "mutate.lint_escapes",
            Counter::CachePersisted => "cache.persisted",
            Counter::CacheWarmHits => "cache.warm_hits",
            Counter::CacheFingerprintRejected => "cache.fingerprint_rejected",
            Counter::ProveEquivalent => "prove.equivalent",
            Counter::ProveInequivalent => "prove.inequivalent",
            Counter::ProveUnknown => "prove.unknown",
            Counter::SupervisePanics => "supervise.panics",
            Counter::SuperviseTimeouts => "supervise.timeouts",
            Counter::SuperviseBudget => "supervise.budget",
            Counter::SuperviseQuarantined => "supervise.quarantined",
            Counter::ChaosInjected => "chaos.injected",
        }
    }

    /// Supervision crash counters: any *increase* in one of these between
    /// a baseline and a candidate run is a regression in `ruletest diff`,
    /// even though (being environmental) they are excluded from the
    /// deterministic fingerprint.
    pub fn crash_counter(self) -> bool {
        matches!(
            self,
            Counter::SupervisePanics
                | Counter::SuperviseTimeouts
                | Counter::SuperviseBudget
                | Counter::SuperviseQuarantined
        )
    }

    /// Whether the count is a pure function of seed + inputs. The cache
    /// persistence counters depend on disk state (cold vs warm start), so
    /// they are excluded from the deterministic report fingerprint, like
    /// wall-clock histograms.
    pub fn deterministic(self) -> bool {
        !matches!(
            self,
            Counter::CachePersisted
                | Counter::CacheWarmHits
                | Counter::CacheFingerprintRejected
                | Counter::SupervisePanics
                | Counter::SuperviseTimeouts
                | Counter::SuperviseBudget
                | Counter::SuperviseQuarantined
                | Counter::ChaosInjected
        )
    }
}

/// Fixed-bucket histograms tracked by the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// Trials needed per solved generation problem (count == `GenHits`).
    GenTrialsToHit,
    /// Memo group count per computed invocation (count == `OptInvocations`).
    MemoGroups,
    /// Memo expression count per computed invocation.
    MemoExprs,
    /// Invocation wall time in microseconds (count == `OptInvocations`).
    /// Wall-clock: excluded from the deterministic report fingerprint.
    InvocationMicros,
}

impl Hist {
    pub const COUNT: usize = 4;

    pub const ALL: [Hist; Hist::COUNT] = [
        Hist::GenTrialsToHit,
        Hist::MemoGroups,
        Hist::MemoExprs,
        Hist::InvocationMicros,
    ];

    pub fn name(self) -> &'static str {
        match self {
            Hist::GenTrialsToHit => "gen.trials_to_hit",
            Hist::MemoGroups => "optimizer.memo_groups",
            Hist::MemoExprs => "optimizer.memo_exprs",
            Hist::InvocationMicros => "optimizer.invocation_micros",
        }
    }

    /// Whether bucket contents are a pure function of seed + inputs.
    pub fn deterministic(self) -> bool {
        !matches!(self, Hist::InvocationMicros)
    }
}

/// Number of power-of-two buckets per histogram: bucket `i` counts values
/// in `[2^i, 2^(i+1))` (bucket 0 also takes 0). 32 buckets cover every
/// campaign quantity (counts, memo sizes, microseconds) with headroom.
pub const HIST_BUCKETS: usize = 32;

/// Lock-free fixed-bucket histogram.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a value: `floor(log2(v))`, clamped to the last bucket.
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (63 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

impl Histogram {
    pub fn observe(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HIST_BUCKETS],
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Percentile estimate (`p` in 0–100), linearly interpolated inside
    /// the covering power-of-two bucket. Bucket `i` spans `[2^i, 2^(i+1))`
    /// (bucket 0 starts at 0), so the estimate is exact at bucket bounds
    /// and at worst off by the bucket width inside one.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = (p / 100.0).clamp(0.0, 1.0) * self.count as f64;
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            if b == 0 {
                continue;
            }
            let before = seen as f64;
            seen += b;
            if seen as f64 >= target {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = if i + 1 >= 64 {
                    u64::MAX as f64
                } else {
                    (1u64 << (i + 1)) as f64
                };
                let frac = ((target - before) / b as f64).clamp(0.0, 1.0);
                return lo + (hi - lo) * frac;
            }
        }
        // Unreachable when count > 0, but stay total.
        0.0
    }

    /// Serialized with trailing empty buckets trimmed.
    pub fn to_json(&self) -> Json {
        let last = self
            .buckets
            .iter()
            .rposition(|&b| b != 0)
            .map_or(0, |i| i + 1);
        Json::obj(vec![
            ("count", Json::count(self.count)),
            ("sum", Json::count(self.sum)),
            (
                "buckets",
                Json::Arr(
                    self.buckets[..last]
                        .iter()
                        .map(|&b| Json::count(b))
                        .collect(),
                ),
            ),
        ])
    }

    pub fn from_json(j: &Json) -> Result<HistogramSnapshot, String> {
        let count = j
            .get("count")
            .and_then(Json::as_u64)
            .ok_or("histogram missing count")?;
        let sum = j
            .get("sum")
            .and_then(Json::as_u64)
            .ok_or("histogram missing sum")?;
        let arr = j
            .get("buckets")
            .and_then(Json::as_arr)
            .ok_or("histogram missing buckets")?;
        if arr.len() > HIST_BUCKETS {
            return Err(format!(
                "histogram has {} buckets (max {HIST_BUCKETS})",
                arr.len()
            ));
        }
        let mut buckets = [0u64; HIST_BUCKETS];
        for (i, b) in arr.iter().enumerate() {
            buckets[i] = b.as_u64().ok_or("non-integer bucket")?;
        }
        Ok(HistogramSnapshot {
            buckets,
            count,
            sum,
        })
    }
}

/// Upper bound on `RuleId` values the per-rule firing array accepts. The
/// catalog has ~54 rules; firings for ids beyond the array (impossible
/// today) are silently dropped rather than panicking a campaign.
pub const MAX_RULES: usize = 512;

/// The registry itself: all counters, histograms, and per-rule firings.
pub struct Metrics {
    counters: [AtomicU64; Counter::COUNT],
    histograms: [Histogram; Hist::COUNT],
    rule_firings: Box<[AtomicU64; MAX_RULES]>,
}

impl Default for Metrics {
    fn default() -> Self {
        Self {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            histograms: std::array::from_fn(|_| Histogram::default()),
            rule_firings: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
        }
    }
}

impl Metrics {
    #[inline]
    pub fn add(&self, c: Counter, v: u64) {
        self.counters[c as usize].fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn observe(&self, h: Hist, value: u64) {
        self.histograms[h as usize].observe(value);
    }

    pub fn histogram(&self, h: Hist) -> HistogramSnapshot {
        self.histograms[h as usize].snapshot()
    }

    /// Counts one firing of `rule` in a unique optimization.
    #[inline]
    pub fn rule_fired(&self, rule: u16) {
        if let Some(slot) = self.rule_firings.get(rule as usize) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Per-rule firing counts, trimmed to the highest rule that fired.
    pub fn rule_firings(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .rule_firings
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect();
        while v.last() == Some(&0) {
            v.pop();
        }
        v
    }

    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: Counter::ALL.map(|c| self.counter(c)),
            histograms: Hist::ALL.map(|h| self.histogram(h)),
            rule_firings: self.rule_firings(),
        }
    }
}

/// A point-in-time copy of the whole registry.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    /// Indexed by `Counter as usize`.
    pub counters: [u64; Counter::COUNT],
    /// Indexed by `Hist as usize`.
    pub histograms: [HistogramSnapshot; Hist::COUNT],
    /// Indexed by `RuleId`, trimmed.
    pub rule_firings: Vec<u64>,
}

impl MetricsSnapshot {
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    pub fn histogram(&self, h: Hist) -> &HistogramSnapshot {
        &self.histograms[h as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = Metrics::default();
        m.add(Counter::GenTrials, 3);
        m.add(Counter::GenTrials, 4);
        m.add(Counter::OracleCalls, 1);
        assert_eq!(m.counter(Counter::GenTrials), 7);
        assert_eq!(m.counter(Counter::OracleCalls), 1);
        assert_eq!(m.counter(Counter::Validations), 0);
    }

    #[test]
    fn histogram_buckets_are_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(1023), 9);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn histogram_bucket_sum_equals_count() {
        let h = Histogram::default();
        for v in [0u64, 1, 1, 5, 200, 1 << 40] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        assert_eq!(snap.sum, 207 + (1 << 40));
        let rt = HistogramSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(rt, snap);
    }

    #[test]
    fn percentiles_interpolate_within_bucket_bounds() {
        let h = Histogram::default();
        // 10 observations of 5 → all in bucket 2, which spans [4, 8).
        for _ in 0..10 {
            h.observe(5);
        }
        let snap = h.snapshot();
        // p50 lands halfway into the bucket: 4 + (8-4)*0.5.
        assert!((snap.percentile(50.0) - 6.0).abs() < 1e-9);
        // p0/p100 pin to the bucket bounds.
        assert!((snap.percentile(0.0) - 4.0).abs() < 1e-9);
        assert!((snap.percentile(100.0) - 8.0).abs() < 1e-9);
        // Monotone in p across a multi-bucket distribution.
        let h = Histogram::default();
        for v in [1u64, 2, 3, 5, 8, 13, 40, 100, 300, 2000] {
            h.observe(v);
        }
        let snap = h.snapshot();
        let (p50, p95, p99) = (
            snap.percentile(50.0),
            snap.percentile(95.0),
            snap.percentile(99.0),
        );
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // p95 of ten values must land in the top bucket's range.
        assert!(p95 >= 1024.0 && p99 <= 4096.0, "{p95} {p99}");
        // Empty histogram: defined, zero.
        assert_eq!(
            HistogramSnapshot::from_json(&Histogram::default().snapshot().to_json())
                .unwrap()
                .percentile(50.0),
            0.0
        );
    }

    #[test]
    fn rule_firings_trim_and_bounds() {
        let m = Metrics::default();
        m.rule_fired(2);
        m.rule_fired(2);
        m.rule_fired(5);
        m.rule_fired(60000); // out of range: dropped, not a panic
        assert_eq!(m.rule_firings(), vec![0, 0, 2, 0, 0, 1]);
    }

    #[test]
    fn counter_names_are_unique_and_enum_indexes_match() {
        let mut names: Vec<_> = Counter::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Counter::COUNT);
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            assert_eq!(*h as usize, i);
        }
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        let m = std::sync::Arc::new(Metrics::default());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        m.add(Counter::GenTrials, 1);
                        m.observe(Hist::GenTrialsToHit, i % 17);
                        m.rule_fired((i % 8) as u16);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.counter(Counter::GenTrials), 4000);
        let snap = m.histogram(Hist::GenTrialsToHit);
        assert_eq!(snap.count, 4000);
        assert_eq!(snap.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(m.rule_firings().iter().sum::<u64>(), 4000);
    }
}
