//! Structured event tracer: lock-sharded ring buffers with JSONL export.
//!
//! Sharding mirrors the optimizer's invocation cache: each shard is a
//! small `Mutex<RingBuffer>`, and a recording thread picks its shard by
//! thread id, so concurrent campaign workers almost never contend on the
//! same lock. Every event gets a global sequence number; export collects
//! all shards and sorts by it, so a single-threaded trace reads in exact
//! causal order (multi-threaded traces interleave, as the work did).
//!
//! The buffers are rings: a campaign that outgrows the capacity drops the
//! *oldest* events per shard and counts the drops — tracing can never
//! abort or slow a run by reallocating without bound.

use crate::json::Json;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io::{self, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Which optimizer phase a rule firing happened in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RulePhase {
    Explore,
    Implement,
}

impl RulePhase {
    pub fn name(self) -> &'static str {
        match self {
            RulePhase::Explore => "explore",
            RulePhase::Implement => "implement",
        }
    }

    pub fn from_name(name: &str) -> Option<RulePhase> {
        match name {
            "explore" => Some(RulePhase::Explore),
            "implement" => Some(RulePhase::Implement),
            _ => None,
        }
    }
}

/// One traced event. Payloads are small and fixed-size; rule and target
/// indices resolve against the run report's rule table.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A computed optimizer invocation (cache misses and uncached calls).
    Invocation {
        /// Hash of the logical tree (correlates invocations on one query).
        fingerprint: u64,
        /// Number of rules disabled by the mask.
        masked_rules: u32,
        groups: u32,
        exprs: u32,
        truncated: bool,
        elapsed_us: u64,
    },
    /// An invocation-cache lookup.
    CacheLookup { fingerprint: u64, hit: bool },
    /// A rule produced output at a fire/apply site.
    RuleFire {
        rule: u16,
        phase: RulePhase,
        produced: u32,
    },
    /// One generation problem finished (or gave up).
    GenOutcome {
        /// First target rule of the generation problem.
        rule: u16,
        trials: u64,
        ops: u32,
        found: bool,
    },
    /// One target's §5.3.1 edge-probe scan finished.
    GraphProbe {
        target: u32,
        scanned: u32,
        pruned: u32,
    },
    /// One `(target, query)` correctness validation finished.
    Validation {
        target: u32,
        query: u32,
        outcome: &'static str,
    },
    /// The debug-mode substitute auditor flagged a rule firing.
    LintViolation { rule: u16 },
    /// The supervisor sandbox absorbed a failed invocation. `kind` is the
    /// failure taxonomy name ("panic" / "timeout" / "budget"); `site` says
    /// where it escaped; `fingerprint` is the quarantined input's stable
    /// fingerprint.
    Supervised {
        kind: &'static str,
        site: String,
        fingerprint: u64,
    },
    /// The chaos engine fired an injected fault at an instrumented site.
    ChaosInjection { site: String, kind: &'static str },
}

impl Event {
    pub fn kind(&self) -> &'static str {
        match self {
            Event::Invocation { .. } => "invocation",
            Event::CacheLookup { .. } => "cache_lookup",
            Event::RuleFire { .. } => "rule_fire",
            Event::GenOutcome { .. } => "gen_outcome",
            Event::GraphProbe { .. } => "graph_probe",
            Event::Validation { .. } => "validation",
            Event::LintViolation { .. } => "lint_violation",
            Event::Supervised { .. } => "supervised",
            Event::ChaosInjection { .. } => "chaos_injection",
        }
    }

    /// JSON object for one JSONL line (sequence number prepended by the
    /// exporter).
    fn payload(&self) -> Vec<(&'static str, Json)> {
        match self {
            Event::Invocation {
                fingerprint,
                masked_rules,
                groups,
                exprs,
                truncated,
                elapsed_us,
            } => vec![
                ("fingerprint", Json::str(format!("{fingerprint:016x}"))),
                ("masked_rules", Json::count(*masked_rules as u64)),
                ("groups", Json::count(*groups as u64)),
                ("exprs", Json::count(*exprs as u64)),
                ("truncated", Json::Bool(*truncated)),
                ("elapsed_us", Json::count(*elapsed_us)),
            ],
            Event::CacheLookup { fingerprint, hit } => vec![
                ("fingerprint", Json::str(format!("{fingerprint:016x}"))),
                ("hit", Json::Bool(*hit)),
            ],
            Event::RuleFire {
                rule,
                phase,
                produced,
            } => vec![
                ("rule", Json::count(*rule as u64)),
                ("phase", Json::str(phase.name())),
                ("produced", Json::count(*produced as u64)),
            ],
            Event::GenOutcome {
                rule,
                trials,
                ops,
                found,
            } => vec![
                ("rule", Json::count(*rule as u64)),
                ("trials", Json::count(*trials)),
                ("ops", Json::count(*ops as u64)),
                ("found", Json::Bool(*found)),
            ],
            Event::GraphProbe {
                target,
                scanned,
                pruned,
            } => vec![
                ("target", Json::count(*target as u64)),
                ("scanned", Json::count(*scanned as u64)),
                ("pruned", Json::count(*pruned as u64)),
            ],
            Event::Validation {
                target,
                query,
                outcome,
            } => vec![
                ("target", Json::count(*target as u64)),
                ("query", Json::count(*query as u64)),
                ("outcome", Json::str(*outcome)),
            ],
            Event::LintViolation { rule } => vec![("rule", Json::count(*rule as u64))],
            Event::Supervised {
                kind,
                site,
                fingerprint,
            } => vec![
                ("kind", Json::str(*kind)),
                ("site", Json::str(site.clone())),
                ("fingerprint", Json::str(format!("{fingerprint:016x}"))),
            ],
            Event::ChaosInjection { site, kind } => vec![
                ("site", Json::str(site.clone())),
                ("kind", Json::str(*kind)),
            ],
        }
    }

    fn to_json(&self, seq: u64) -> Json {
        let mut fields = vec![("seq", Json::count(seq)), ("type", Json::str(self.kind()))];
        fields.extend(self.payload());
        Json::obj(fields)
    }
}

struct Shard {
    /// Ring slots, `(sequence, event)`.
    slots: Vec<(u64, Event)>,
    /// Next write position once the ring is full.
    head: usize,
    dropped: u64,
    capacity: usize,
}

impl Shard {
    fn push(&mut self, seq: u64, event: Event) {
        if self.slots.len() < self.capacity {
            self.slots.push((seq, event));
        } else {
            self.slots[self.head] = (seq, event);
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

/// Tracer totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceStats {
    /// Events recorded (including any later overwritten).
    pub recorded: u64,
    /// Events overwritten by ring wraparound.
    pub dropped: u64,
}

/// The sharded ring-buffer tracer.
pub struct Tracer {
    shards: Vec<Mutex<Shard>>,
    seq: AtomicU64,
}

/// Default events retained per shard (16 shards → 64Ki events total).
pub const DEFAULT_SHARD_CAPACITY: usize = 4096;
const SHARDS: usize = 16;

impl Tracer {
    pub fn new(shard_capacity: usize) -> Self {
        let capacity = shard_capacity.max(1);
        Self {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        slots: Vec::new(),
                        head: 0,
                        dropped: 0,
                        capacity,
                    })
                })
                .collect(),
            seq: AtomicU64::new(0),
        }
    }

    fn shard_for_current_thread(&self) -> &Mutex<Shard> {
        let mut h = DefaultHasher::new();
        std::thread::current().id().hash(&mut h);
        &self.shards[(h.finish() % self.shards.len() as u64) as usize]
    }

    pub fn record(&self, event: Event) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        self.shard_for_current_thread()
            .lock()
            .expect("tracer shard poisoned")
            .push(seq, event);
    }

    pub fn stats(&self) -> TraceStats {
        let dropped = self
            .shards
            .iter()
            .map(|s| s.lock().expect("tracer shard poisoned").dropped)
            .sum();
        TraceStats {
            recorded: self.seq.load(Ordering::Relaxed),
            dropped,
        }
    }

    /// All retained events, sorted by sequence number.
    pub fn collect(&self) -> Vec<(u64, Event)> {
        let mut all: Vec<(u64, Event)> = Vec::new();
        for shard in &self.shards {
            all.extend_from_slice(&shard.lock().expect("tracer shard poisoned").slots);
        }
        all.sort_by_key(|(seq, _)| *seq);
        all
    }

    /// Writes the retained events as JSONL, one event object per line.
    pub fn export_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        for (seq, event) in self.collect() {
            writeln!(w, "{}", event.to_json(seq).to_string_compact())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fire(rule: u16) -> Event {
        Event::RuleFire {
            rule,
            phase: RulePhase::Explore,
            produced: 1,
        }
    }

    #[test]
    fn events_export_in_sequence_order() {
        let t = Tracer::new(64);
        for i in 0..10 {
            t.record(fire(i));
        }
        let got = t.collect();
        assert_eq!(got.len(), 10);
        for (i, (seq, ev)) in got.iter().enumerate() {
            assert_eq!(*seq, i as u64);
            assert_eq!(*ev, fire(i as u16));
        }
        assert_eq!(
            t.stats(),
            TraceStats {
                recorded: 10,
                dropped: 0
            }
        );
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let t = Tracer::new(4);
        // Single thread → single shard → capacity 4.
        for i in 0..10u16 {
            t.record(fire(i));
        }
        let got = t.collect();
        assert_eq!(got.len(), 4);
        assert_eq!(t.stats().dropped, 6);
        assert_eq!(t.stats().recorded, 10);
        // The survivors are the newest four.
        let seqs: Vec<u64> = got.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn jsonl_lines_parse_back() {
        let t = Tracer::new(64);
        t.record(Event::Invocation {
            fingerprint: 0xDEAD_BEEF,
            masked_rules: 2,
            groups: 10,
            exprs: 25,
            truncated: false,
            elapsed_us: 1234,
        });
        t.record(Event::CacheLookup {
            fingerprint: 1,
            hit: true,
        });
        t.record(Event::Validation {
            target: 0,
            query: 3,
            outcome: "clean",
        });
        let mut buf = Vec::new();
        t.export_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for line in &lines {
            let j = Json::parse(line).unwrap();
            assert!(j.get("seq").and_then(Json::as_u64).is_some());
            assert!(j.get("type").and_then(Json::as_str).is_some());
        }
        let inv = Json::parse(lines[0]).unwrap();
        assert_eq!(inv.get("type").and_then(Json::as_str), Some("invocation"));
        assert_eq!(inv.get("groups").and_then(Json::as_u64), Some(10));
        assert_eq!(
            inv.get("fingerprint").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
    }

    #[test]
    fn concurrent_recording_is_lossless_below_capacity() {
        let t = std::sync::Arc::new(Tracer::new(4096));
        let handles: Vec<_> = (0..4)
            .map(|w| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..500u16 {
                        t.record(fire(w * 1000 + i));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = t.stats();
        assert_eq!(stats.recorded, 2000);
        assert_eq!(stats.dropped, 0);
        let got = t.collect();
        assert_eq!(got.len(), 2000);
        // Sequence numbers are unique and sorted.
        for w in got.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }
}
