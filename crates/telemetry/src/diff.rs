//! Run-diff regression detection: compares two [`RunReport`]s so CI can
//! gate on the perf and determinism trajectory (`ruletest diff`).
//!
//! Field classes get different treatment:
//!
//! * **deterministic** fields (counters, per-rule firings, deterministic
//!   histograms, span-tree shape, per-rule bind/fire counts) compare
//!   *exactly* — for a fixed seed they are a pure function of the code,
//!   so any drift is either nondeterminism or an unacknowledged
//!   behavioral change. Removed fields are regressions; added fields are
//!   surfaced as notes (new instrumentation is fine, silently losing it
//!   is not).
//! * **environmental** fields (wall time, per-stage span walls, cache
//!   hit ratio) compare within `threshold_pct`, and timings also get an
//!   absolute 100ms noise floor so micro-runs don't flap.
//! * wall-clock-only noise (`optimizer.invocation_micros`, span
//!   durations below stage roots, per-rule nanoseconds) is ignored.

use crate::json::Json;
use crate::metrics::{Counter, Hist};
use crate::report::RunReport;
use std::collections::BTreeSet;

/// Ignore timing deltas smaller than this (ns) regardless of percentage.
const TIME_FLOOR_NS: u64 = 100_000_000;
const TIME_FLOOR_SECONDS: f64 = 0.1;

/// One compared field that moved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffItem {
    /// Dotted path of the field, e.g. `counters.gen.trials`.
    pub field: String,
    pub baseline: String,
    pub current: String,
    /// Why this is (or is not) a regression.
    pub detail: String,
}

impl DiffItem {
    fn new(
        field: impl Into<String>,
        baseline: impl ToString,
        current: impl ToString,
        detail: impl Into<String>,
    ) -> DiffItem {
        DiffItem {
            field: field.into(),
            baseline: baseline.to_string(),
            current: current.to_string(),
            detail: detail.into(),
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("field", Json::str(self.field.clone())),
            ("baseline", Json::str(self.baseline.clone())),
            ("current", Json::str(self.current.clone())),
            ("detail", Json::str(self.detail.clone())),
        ])
    }
}

/// The outcome of one baseline/current comparison.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiffReport {
    pub threshold_pct: u32,
    /// Gate-failing differences.
    pub regressions: Vec<DiffItem>,
    /// Informational differences (improvements, added fields).
    pub notes: Vec<DiffItem>,
}

impl DiffReport {
    pub fn regressed(&self) -> bool {
        !self.regressions.is_empty()
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("threshold_pct", Json::count(self.threshold_pct as u64)),
            ("regressed", Json::Bool(self.regressed())),
            (
                "regressions",
                Json::Arr(self.regressions.iter().map(DiffItem::to_json).collect()),
            ),
            (
                "notes",
                Json::Arr(self.notes.iter().map(DiffItem::to_json).collect()),
            ),
        ])
    }

    /// Human-readable rendering for the CLI.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run diff: baseline vs current (timing threshold ±{}%, floor {TIME_FLOOR_SECONDS}s)",
            self.threshold_pct
        );
        for item in &self.regressions {
            let _ = writeln!(
                out,
                "  REGRESSION {}: {} -> {} ({})",
                item.field, item.baseline, item.current, item.detail
            );
        }
        for item in &self.notes {
            let _ = writeln!(
                out,
                "  note       {}: {} -> {} ({})",
                item.field, item.baseline, item.current, item.detail
            );
        }
        if self.regressions.is_empty() {
            let _ = writeln!(
                out,
                "  ok: no regressions ({} informational notes)",
                self.notes.len()
            );
        } else {
            let _ = writeln!(
                out,
                "  FAILED: {} regression(s), {} note(s)",
                self.regressions.len(),
                self.notes.len()
            );
        }
        out
    }
}

fn diff_exact_maps(
    out: &mut DiffReport,
    prefix: &str,
    base: impl Iterator<Item = (String, u64)>,
    cur: impl Iterator<Item = (String, u64)>,
) {
    let base: Vec<(String, u64)> = base.collect();
    let cur: Vec<(String, u64)> = cur.collect();
    let cur_lookup: std::collections::BTreeMap<&str, u64> =
        cur.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    let base_keys: BTreeSet<&str> = base.iter().map(|(k, _)| k.as_str()).collect();
    for (name, b) in &base {
        let field = format!("{prefix}.{name}");
        match cur_lookup.get(name.as_str()) {
            None => out.regressions.push(DiffItem::new(
                field,
                b,
                "absent",
                "deterministic field removed",
            )),
            Some(c) if c != b => out.regressions.push(DiffItem::new(
                field,
                b,
                c,
                "deterministic field must match exactly",
            )),
            Some(_) => {}
        }
    }
    for (name, c) in &cur {
        if !base_keys.contains(name.as_str()) {
            out.notes.push(DiffItem::new(
                format!("{prefix}.{name}"),
                "absent",
                c,
                "new field (fine; update the baseline)",
            ));
        }
    }
}

/// `current` must not exceed `base * (1 + pct/100)`, with a floor on the
/// absolute delta so tiny timings can't flap.
fn time_regressed(base_ns: u64, cur_ns: u64, pct: u32, floor_ns: u64) -> bool {
    cur_ns > base_ns.saturating_add(floor_ns)
        && cur_ns as f64 > base_ns as f64 * (1.0 + pct as f64 / 100.0)
}

/// Compares two run reports. Deterministic fields must match exactly;
/// environmental timings and ratios may drift up to `threshold_pct`.
pub fn diff_reports(base: &RunReport, cur: &RunReport, threshold_pct: u32) -> DiffReport {
    let mut out = DiffReport {
        threshold_pct,
        ..DiffReport::default()
    };
    if base.schema != cur.schema {
        out.regressions.push(DiffItem::new(
            "schema",
            base.schema,
            cur.schema,
            "schema version changed — reports are not comparable",
        ));
        return out;
    }

    // Cache-persistence counters depend on disk state (a warm run has
    // nonzero warm_hits by design), so like wall-clock histograms they
    // are excluded from the exact comparison — `ruletest diff` must be
    // able to gate a warm run against a cold baseline.
    let environmental_counter = |name: &str| {
        Counter::ALL
            .iter()
            .any(|c| c.name() == name && !c.deterministic())
    };
    diff_exact_maps(
        &mut out,
        "counters",
        base.counters
            .iter()
            .filter(|(k, _)| !environmental_counter(k))
            .map(|(k, &v)| (k.clone(), v)),
        cur.counters
            .iter()
            .filter(|(k, _)| !environmental_counter(k))
            .map(|(k, &v)| (k.clone(), v)),
    );
    // Crash counters are environmental (so excluded above), but they are
    // not *noise*: a candidate run absorbing more panics/timeouts/budget
    // blowups than its baseline is a robustness regression. Any increase
    // fails the gate; a decrease is an informational improvement.
    for c in Counter::ALL.iter().filter(|c| c.crash_counter()) {
        let (b, v) = (base.counter(*c), cur.counter(*c));
        let field = format!("counters.{}", c.name());
        if v > b {
            out.regressions.push(DiffItem::new(
                field,
                b,
                v,
                "crash counter increased — new supervised failures",
            ));
        } else if v < b {
            out.notes
                .push(DiffItem::new(field, b, v, "crash counter decreased"));
        }
    }
    diff_exact_maps(
        &mut out,
        "rule_firings",
        base.rule_firings.iter().map(|(k, &v)| (k.clone(), v)),
        cur.rule_firings.iter().map(|(k, &v)| (k.clone(), v)),
    );

    // Deterministic histograms compare exactly, bucket by bucket;
    // wall-clock histograms are pure noise and are skipped.
    let environmental = |name: &str| {
        Hist::ALL
            .iter()
            .any(|h| h.name() == name && !h.deterministic())
    };
    let base_hists: BTreeSet<&String> = base.histograms.keys().collect();
    for (name, b) in &base.histograms {
        if environmental(name) {
            continue;
        }
        let field = format!("histograms.{name}");
        match cur.histograms.get(name) {
            None => out.regressions.push(DiffItem::new(
                field,
                format!("count {}", b.count),
                "absent",
                "deterministic histogram removed",
            )),
            Some(c) if c != b => out.regressions.push(DiffItem::new(
                field,
                format!("count {} sum {}", b.count, b.sum),
                format!("count {} sum {}", c.count, c.sum),
                "deterministic histogram must match exactly",
            )),
            Some(_) => {}
        }
    }
    for name in cur.histograms.keys() {
        if !environmental(name) && !base_hists.contains(name) {
            out.notes.push(DiffItem::new(
                format!("histograms.{name}"),
                "absent",
                "present",
                "new histogram (fine; update the baseline)",
            ));
        }
    }

    // Span-tree shape (paths + counts) and per-rule bind/fire counts are
    // deterministic; durations are not compared here. A baseline written
    // before the profiler existed has no profile section at all — that
    // is a vintage gap, not a regression, so the comparison is skipped
    // with a single note instead of flagging every span as "new".
    let baseline_predates_profile = base.profile.is_empty() && !cur.profile.is_empty();
    if baseline_predates_profile {
        out.notes.push(DiffItem::new(
            "profile",
            "absent",
            format!("{} span paths", cur.profile.spans.len()),
            "baseline predates the profile section — span comparison skipped",
        ));
    } else {
        diff_exact_maps(
            &mut out,
            "profile.spans",
            base.profile.spans.iter().map(|r| (r.path.clone(), r.count)),
            cur.profile.spans.iter().map(|r| (r.path.clone(), r.count)),
        );
        diff_exact_maps(
            &mut out,
            "profile.rules",
            base.profile.rules.iter().flat_map(|(k, c)| {
                [
                    (format!("{k}.binds"), c.binds),
                    (format!("{k}.fires"), c.fires),
                ]
            }),
            cur.profile.rules.iter().flat_map(|(k, c)| {
                [
                    (format!("{k}.binds"), c.binds),
                    (format!("{k}.fires"), c.fires),
                ]
            }),
        );
    }

    // Cache hit ratio: a drop of more than threshold_pct percentage
    // points fails the gate (the cache is the campaign's main perf
    // lever). Skipped when either run took warm hits from a persistent
    // snapshot — disk answers displace in-memory hits (a resumed run may
    // skip whole stages), so the ratio no longer measures cache health.
    let warm = base.counter(Counter::CacheWarmHits) > 0 || cur.counter(Counter::CacheWarmHits) > 0;
    let (b_ratio, c_ratio) = (base.cache.hit_ratio(), cur.cache.hit_ratio());
    let ratio_drop_pp = (b_ratio - c_ratio) * 100.0;
    if !warm && ratio_drop_pp > threshold_pct as f64 {
        out.regressions.push(DiffItem::new(
            "cache.hit_ratio",
            format!("{:.1}%", b_ratio * 100.0),
            format!("{:.1}%", c_ratio * 100.0),
            format!("hit ratio dropped {ratio_drop_pp:.1}pp (threshold {threshold_pct}pp)"),
        ));
    }
    if base.cache.evictions != cur.cache.evictions {
        out.notes.push(DiffItem::new(
            "cache.evictions",
            base.cache.evictions,
            cur.cache.evictions,
            "eviction count moved (informational)",
        ));
    }

    // Overall wall time, within threshold + floor.
    if base.wall_seconds > 0.0
        && cur.wall_seconds > base.wall_seconds + TIME_FLOOR_SECONDS
        && cur.wall_seconds > base.wall_seconds * (1.0 + threshold_pct as f64 / 100.0)
    {
        out.regressions.push(DiffItem::new(
            "wall_seconds",
            format!("{:.2}s", base.wall_seconds),
            format!("{:.2}s", cur.wall_seconds),
            format!("run slowed beyond {threshold_pct}%"),
        ));
    }

    // Per-stage wall time: root span rows, within threshold + floor.
    for b_row in base.profile.spans.iter().filter(|r| r.parent().is_none()) {
        let Some(c_row) = cur.profile.spans.iter().find(|r| r.path == b_row.path) else {
            continue; // already a regression via the exact span-shape pass
        };
        if time_regressed(b_row.wall_ns, c_row.wall_ns, threshold_pct, TIME_FLOOR_NS) {
            out.regressions.push(DiffItem::new(
                format!("profile.spans.{}.wall_ns", b_row.path),
                b_row.wall_ns,
                c_row.wall_ns,
                format!("stage slowed beyond {threshold_pct}% (+{TIME_FLOOR_SECONDS}s floor)"),
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Counter, Metrics};
    use crate::report::CacheSection;
    use crate::span::{ProfileSection, SpanRow};

    fn report() -> RunReport {
        let m = Metrics::default();
        m.add(Counter::OptInvocations, 100);
        m.add(Counter::GenTrials, 400);
        m.observe(Hist::GenTrialsToHit, 4);
        m.observe(Hist::InvocationMicros, 1500);
        m.rule_fired(0);
        let names = vec!["RuleA".to_string()];
        let mut r = RunReport::from_snapshot(&m.snapshot(), &names);
        r.cache = CacheSection {
            hits: 90,
            misses: 10,
            evictions: 0,
        };
        r.wall_seconds = 2.0;
        r.profile = ProfileSection {
            spans: vec![
                SpanRow {
                    path: "generation".to_string(),
                    count: 8,
                    wall_ns: 1_000_000_000,
                    child_ns: 400_000_000,
                },
                SpanRow {
                    path: "generation;optimize".to_string(),
                    count: 100,
                    wall_ns: 400_000_000,
                    child_ns: 0,
                },
            ],
            rules: Default::default(),
        };
        r
    }

    #[test]
    fn identical_reports_pass() {
        let d = diff_reports(&report(), &report(), 10);
        assert!(!d.regressed(), "{}", d.render_text());
        assert!(d.notes.is_empty());
        assert!(d.render_text().contains("ok: no regressions"));
    }

    #[test]
    fn counter_drift_is_a_regression_in_both_directions() {
        let base = report();
        let mut cur = report();
        *cur.counters.get_mut(Counter::GenTrials.name()).unwrap() -= 1;
        let d = diff_reports(&base, &cur, 10);
        assert!(d.regressed());
        assert!(d.regressions[0].field.contains("gen.trials"));
    }

    #[test]
    fn removed_counter_regresses_but_added_counter_is_a_note() {
        let base = report();
        let mut cur = report();
        cur.counters.remove(Counter::GenTrials.name());
        cur.counters.insert("new.counter".to_string(), 5);
        let d = diff_reports(&base, &cur, 10);
        assert_eq!(d.regressions.len(), 1);
        assert!(d.regressions[0].detail.contains("removed"));
        assert_eq!(d.notes.len(), 1);
        assert!(d.notes[0].field.contains("new.counter"));
    }

    #[test]
    fn wall_clock_histogram_noise_is_ignored_but_deterministic_ones_gate() {
        let base = report();
        let mut cur = report();
        cur.histograms
            .get_mut(Hist::InvocationMicros.name())
            .unwrap()
            .sum += 999;
        assert!(!diff_reports(&base, &cur, 10).regressed());
        let mut cur = report();
        cur.histograms
            .get_mut(Hist::GenTrialsToHit.name())
            .unwrap()
            .sum += 1;
        assert!(diff_reports(&base, &cur, 10).regressed());
    }

    #[test]
    fn hit_ratio_gates_on_percentage_points() {
        let base = report();
        let mut cur = report();
        cur.cache.hits = 60; // 90% -> 85.7%: inside a 10pp threshold
        assert!(!diff_reports(&base, &cur, 10).regressed());
        cur.cache.hits = 10; // 50%: 40pp drop
        let d = diff_reports(&base, &cur, 10);
        assert!(d.regressed());
        assert!(d.regressions[0].field.contains("hit_ratio"));
    }

    #[test]
    fn hit_ratio_is_not_gated_for_warm_cache_runs() {
        let base = report();
        let mut cur = report();
        cur.cache.hits = 10; // 40pp drop, but the run was disk-warmed:
        cur.counters
            .insert(Counter::CacheWarmHits.name().to_string(), 25);
        let d = diff_reports(&base, &cur, 10);
        assert!(!d.regressed(), "{}", d.render_text());
    }

    #[test]
    fn stage_timing_gates_within_threshold_and_floor() {
        let base = report();
        let mut cur = report();
        // +5% on a 1s stage: inside a 25% threshold.
        cur.profile.spans[0].wall_ns = 1_050_000_000;
        assert!(!diff_reports(&base, &cur, 25).regressed());
        // +60%: beyond it.
        cur.profile.spans[0].wall_ns = 1_600_000_000;
        let d = diff_reports(&base, &cur, 25);
        assert!(d.regressed());
        assert!(d.regressions[0].field.contains("generation"));
        // A huge relative jump under the 100ms floor stays quiet.
        let mut tiny_base = report();
        tiny_base.profile.spans[0].wall_ns = 1_000_000;
        tiny_base.profile.spans[0].child_ns = 0;
        let mut tiny_cur = report();
        tiny_cur.profile.spans[0].wall_ns = 50_000_000;
        tiny_cur.profile.spans[0].child_ns = 0;
        assert!(!diff_reports(&tiny_base, &tiny_cur, 25).regressed());
    }

    #[test]
    fn span_shape_change_is_a_regression() {
        let base = report();
        let mut cur = report();
        cur.profile.spans[1].count += 1;
        let d = diff_reports(&base, &cur, 10);
        assert!(d.regressed());
        assert!(d.regressions[0].field.contains("generation;optimize"));
        let mut cur = report();
        cur.profile.spans.pop();
        assert!(diff_reports(&base, &cur, 10).regressed());
    }

    #[test]
    fn wall_seconds_gates_with_threshold() {
        let base = report();
        let mut cur = report();
        cur.wall_seconds = 2.1; // +5%: fine at 10%
        assert!(!diff_reports(&base, &cur, 10).regressed());
        cur.wall_seconds = 3.0; // +50%
        let d = diff_reports(&base, &cur, 10);
        assert!(d.regressed());
        assert!(d.regressions[0].field.contains("wall_seconds"));
    }

    #[test]
    fn crash_counter_increase_fails_the_gate_but_decrease_is_a_note() {
        let base = report();
        let mut cur = report();
        cur.counters
            .insert(Counter::SupervisePanics.name().to_string(), 2);
        let d = diff_reports(&base, &cur, 10);
        assert!(d.regressed(), "{}", d.render_text());
        assert!(d.regressions[0].field.contains("supervise.panics"));
        assert!(d.regressions[0].detail.contains("crash counter"));
        // Direction matters: fewer crashes than baseline is an improvement.
        let mut noisy_base = report();
        noisy_base
            .counters
            .insert(Counter::SuperviseTimeouts.name().to_string(), 3);
        let d = diff_reports(&noisy_base, &report(), 10);
        assert!(!d.regressed(), "{}", d.render_text());
        assert!(d
            .notes
            .iter()
            .any(|n| n.field.contains("supervise.timeouts")));
        // Chaos injections are environmental but not crash-gated: a chaos
        // run diffed against a clean baseline only fails on real fallout.
        let mut chaotic = report();
        chaotic
            .counters
            .insert(Counter::ChaosInjected.name().to_string(), 50);
        assert!(!diff_reports(&base, &chaotic, 10).regressed());
    }

    #[test]
    fn schema_mismatch_short_circuits() {
        let base = report();
        let mut cur = report();
        cur.schema += 1;
        let d = diff_reports(&base, &cur, 10);
        assert_eq!(d.regressions.len(), 1);
        assert_eq!(d.regressions[0].field, "schema");
    }

    #[test]
    fn json_output_is_machine_readable() {
        let base = report();
        let mut cur = report();
        *cur.counters.get_mut(Counter::GenTrials.name()).unwrap() += 1;
        let d = diff_reports(&base, &cur, 10);
        let j = d.to_json();
        assert_eq!(j.get("regressed").and_then(Json::as_bool), Some(true));
        assert_eq!(j.get("threshold_pct").and_then(Json::as_u64), Some(10));
        let regs = j.get("regressions").and_then(Json::as_arr).unwrap();
        assert_eq!(regs.len(), 1);
        assert!(regs[0]
            .get("field")
            .and_then(Json::as_str)
            .unwrap()
            .contains("gen.trials"));
    }
}
