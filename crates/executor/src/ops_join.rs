//! Join operators: nested loops (all kinds), hash join (all kinds), and
//! sort-merge join (inner).
//!
//! All three implement identical join *semantics* — only the algorithm
//! differs — which is precisely what correctness testing of implementation
//! rules verifies. The shared semantics: a pair matches iff the full ON
//! predicate evaluates to TRUE over the concatenated row; outer kinds pad
//! unmatched preserved rows with NULLs; semi/anti emit the bare left row.

use crate::context::{eval_pred, exec_node, position_map, Ctx};
use ruletest_common::{ColId, Error, Result, Row, Value};
use ruletest_expr::Expr;
use ruletest_logical::JoinKind;
use ruletest_optimizer::{PhysOp, PhysicalPlan};
use std::collections::HashMap;

pub(crate) fn exec(ctx: &mut Ctx, plan: &PhysicalPlan) -> Result<Vec<Row>> {
    let left_rows = exec_node(ctx, &plan.children[0])?;
    let right_rows = exec_node(ctx, &plan.children[1])?;
    // Combined resolver: left columns at their positions, right columns
    // shifted by the left arity.
    let lmap = position_map(&plan.children[0]);
    let rmap = position_map(&plan.children[1]);
    let lwidth = plan.children[0].schema.len();
    let mut combined: HashMap<ColId, usize> = lmap.clone();
    for (c, i) in &rmap {
        combined.insert(*c, i + lwidth);
    }

    match &plan.op {
        PhysOp::NLJoin { kind, predicate } => {
            let right_width = plan.children[1].schema.len();
            nl_join(
                ctx,
                *kind,
                predicate,
                &left_rows,
                &right_rows,
                &combined,
                lwidth,
                right_width,
            )
        }
        PhysOp::HashJoin {
            kind,
            left_keys,
            right_keys,
            residual,
        } => hash_join(
            ctx,
            *kind,
            left_keys,
            right_keys,
            residual,
            &left_rows,
            &right_rows,
            &lmap,
            &rmap,
            &combined,
            lwidth,
        ),
        PhysOp::MergeJoin {
            left_key,
            right_key,
            residual,
        } => merge_join(
            ctx, *left_key, *right_key, residual, left_rows, right_rows, &lmap, &rmap, &combined,
            lwidth,
        ),
        other => Err(Error::internal(format!(
            "join executor got {}",
            other.name()
        ))),
    }
}

fn pad_left(out: &mut Vec<Row>, left: &Row, right_width: usize) {
    let mut row = left.clone();
    row.extend(std::iter::repeat_n(Value::Null, right_width));
    out.push(row);
}

fn pad_right(out: &mut Vec<Row>, left_width: usize, right: &Row) {
    let mut row: Row = std::iter::repeat_n(Value::Null, left_width).collect();
    row.extend(right.iter().cloned());
    out.push(row);
}

/// Post-match bookkeeping shared by NL and hash join: what to emit for a
/// left row given its match count, and (at the end) unmatched right rows.
fn finish_left_row(
    out: &mut Vec<Row>,
    kind: JoinKind,
    left: &Row,
    matches: usize,
    right_width: usize,
) {
    match kind {
        JoinKind::LeftOuter | JoinKind::FullOuter if matches == 0 => {
            pad_left(out, left, right_width)
        }
        JoinKind::LeftAnti if matches == 0 => out.push(left.clone()),
        _ => {}
    }
}

#[allow(clippy::too_many_arguments)]
fn nl_join(
    ctx: &mut Ctx,
    kind: JoinKind,
    predicate: &Expr,
    left_rows: &[Row],
    right_rows: &[Row],
    combined: &HashMap<ColId, usize>,
    lwidth: usize,
    right_width: usize,
) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    let mut right_matched = vec![false; right_rows.len()];
    for left in left_rows {
        ctx.charge(right_rows.len() as u64 + 1)?;
        let mut matches = 0usize;
        for (ri, right) in right_rows.iter().enumerate() {
            let mut full = left.clone();
            full.extend(right.iter().cloned());
            if eval_pred(predicate, combined, &full) {
                matches += 1;
                right_matched[ri] = true;
                match kind {
                    JoinKind::LeftSemi => {
                        out.push(left.clone());
                        break; // semi: one match suffices
                    }
                    JoinKind::LeftAnti => {
                        break; // anti: any match disqualifies
                    }
                    _ => out.push(full),
                }
            }
        }
        finish_left_row(&mut out, kind, left, matches, right_width);
    }
    if kind.preserves_right() {
        for (ri, right) in right_rows.iter().enumerate() {
            if !right_matched[ri] {
                pad_right(&mut out, lwidth, right);
            }
        }
    }
    ctx.charge(out.len() as u64)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn hash_join(
    ctx: &mut Ctx,
    kind: JoinKind,
    left_keys: &[ColId],
    right_keys: &[ColId],
    residual: &Expr,
    left_rows: &[Row],
    right_rows: &[Row],
    lmap: &HashMap<ColId, usize>,
    rmap: &HashMap<ColId, usize>,
    combined: &HashMap<ColId, usize>,
    lwidth: usize,
) -> Result<Vec<Row>> {
    let right_width = rmap.len();
    let key_of = |row: &Row, keys: &[ColId], map: &HashMap<ColId, usize>| -> Option<Vec<Value>> {
        let mut k = Vec::with_capacity(keys.len());
        for c in keys {
            let v = row[map[c]].clone();
            if v.is_null() {
                return None; // SQL equality: NULL keys never match
            }
            k.push(v);
        }
        Some(k)
    };

    // Build side: right.
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (ri, right) in right_rows.iter().enumerate() {
        ctx.charge(1)?;
        if let Some(k) = key_of(right, right_keys, rmap) {
            table.entry(k).or_default().push(ri);
        }
    }

    let mut out = Vec::new();
    let mut right_matched = vec![false; right_rows.len()];
    for left in left_rows {
        ctx.charge(1)?;
        let mut matches = 0usize;
        if let Some(k) = key_of(left, left_keys, lmap) {
            if let Some(candidates) = table.get(&k) {
                for &ri in candidates {
                    ctx.charge(1)?;
                    let right = &right_rows[ri];
                    let mut full = left.clone();
                    full.extend(right.iter().cloned());
                    if residual.is_true_lit() || eval_pred(residual, combined, &full) {
                        matches += 1;
                        right_matched[ri] = true;
                        match kind {
                            JoinKind::LeftSemi => {
                                out.push(left.clone());
                                break;
                            }
                            JoinKind::LeftAnti => break,
                            _ => out.push(full),
                        }
                    }
                }
            }
        }
        finish_left_row(&mut out, kind, left, matches, right_width);
    }
    if kind.preserves_right() {
        for (ri, right) in right_rows.iter().enumerate() {
            if !right_matched[ri] {
                pad_right(&mut out, lwidth, right);
            }
        }
    }
    ctx.charge(out.len() as u64)?;
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
fn merge_join(
    ctx: &mut Ctx,
    left_key: ColId,
    right_key: ColId,
    residual: &Expr,
    left_rows: Vec<Row>,
    right_rows: Vec<Row>,
    lmap: &HashMap<ColId, usize>,
    rmap: &HashMap<ColId, usize>,
    combined: &HashMap<ColId, usize>,
    _lwidth: usize,
) -> Result<Vec<Row>> {
    let li = lmap[&left_key];
    let ri = rmap[&right_key];
    // NULL keys never join (inner): drop them before sorting.
    let mut left: Vec<Row> = left_rows.into_iter().filter(|r| !r[li].is_null()).collect();
    let mut right: Vec<Row> = right_rows
        .into_iter()
        .filter(|r| !r[ri].is_null())
        .collect();
    ctx.charge((left.len() + right.len()) as u64)?;
    left.sort_by(|a, b| a[li].total_cmp(&b[li]));
    right.sort_by(|a, b| a[ri].total_cmp(&b[ri]));

    let mut out = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    while i < left.len() && j < right.len() {
        ctx.charge(1)?;
        match left[i][li].total_cmp(&right[j][ri]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find the equal runs and cross them.
                let key = left[i][li].clone();
                let istart = i;
                while i < left.len() && left[i][li] == key {
                    i += 1;
                }
                let jstart = j;
                while j < right.len() && right[j][ri] == key {
                    j += 1;
                }
                for l in &left[istart..i] {
                    ctx.charge((j - jstart) as u64)?;
                    for r in &right[jstart..j] {
                        let mut full = l.clone();
                        full.extend(r.iter().cloned());
                        if residual.is_true_lit() || eval_pred(residual, combined, &full) {
                            out.push(full);
                        }
                    }
                }
            }
        }
    }
    ctx.charge(out.len() as u64)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::context::execute;
    use crate::context::testkit::*;
    use ruletest_common::multisets_equal;
    use ruletest_common::{ColId, Value};
    use ruletest_expr::Expr;
    use ruletest_logical::JoinKind;
    use ruletest_optimizer::PhysOp;

    fn join_schema() -> Vec<ruletest_logical::ColumnInfo> {
        vec![int_col(0), str_col(1), int_col(2), int_col(3)]
    }

    fn eq_pred() -> Expr {
        Expr::eq(Expr::col(ColId(0)), Expr::col(ColId(2)))
    }

    fn nl(kind: JoinKind) -> ruletest_optimizer::PhysicalPlan {
        let schema = match kind {
            JoinKind::LeftSemi | JoinKind::LeftAnti => vec![int_col(0), str_col(1)],
            _ => join_schema(),
        };
        plan(
            PhysOp::NLJoin {
                kind,
                predicate: eq_pred(),
            },
            vec![scan_t0(), scan_t1()],
            schema,
        )
    }

    fn hash(kind: JoinKind) -> ruletest_optimizer::PhysicalPlan {
        let schema = match kind {
            JoinKind::LeftSemi | JoinKind::LeftAnti => vec![int_col(0), str_col(1)],
            _ => join_schema(),
        };
        plan(
            PhysOp::HashJoin {
                kind,
                left_keys: vec![ColId(0)],
                right_keys: vec![ColId(2)],
                residual: Expr::true_lit(),
            },
            vec![scan_t0(), scan_t1()],
            schema,
        )
    }

    // t0: a=1,2,3  t1: x=1,2,4 — inner matches a∈{1,2}.

    #[test]
    fn inner_join_all_algorithms_agree() {
        let db = tiny_db();
        let nl_rows = execute(&db, &nl(JoinKind::Inner)).unwrap();
        assert_eq!(nl_rows.len(), 2);
        let hash_rows = execute(&db, &hash(JoinKind::Inner)).unwrap();
        assert!(multisets_equal(&nl_rows, &hash_rows));
        let merge = plan(
            PhysOp::MergeJoin {
                left_key: ColId(0),
                right_key: ColId(2),
                residual: Expr::true_lit(),
            },
            vec![scan_t0(), scan_t1()],
            join_schema(),
        );
        let merge_rows = execute(&db, &merge).unwrap();
        assert!(multisets_equal(&nl_rows, &merge_rows));
    }

    #[test]
    fn left_outer_pads_unmatched_left() {
        let db = tiny_db();
        for p in [nl(JoinKind::LeftOuter), hash(JoinKind::LeftOuter)] {
            let rows = execute(&db, &p).unwrap();
            assert_eq!(rows.len(), 3);
            let padded: Vec<_> = rows
                .iter()
                .filter(|r| r[2].is_null() && r[3].is_null())
                .collect();
            assert_eq!(padded.len(), 1);
            assert_eq!(padded[0][0], Value::Int(3));
        }
    }

    #[test]
    fn right_outer_pads_unmatched_right() {
        let db = tiny_db();
        for p in [nl(JoinKind::RightOuter), hash(JoinKind::RightOuter)] {
            let rows = execute(&db, &p).unwrap();
            assert_eq!(rows.len(), 3);
            let padded: Vec<_> = rows.iter().filter(|r| r[0].is_null()).collect();
            assert_eq!(padded.len(), 1);
            assert_eq!(padded[0][2], Value::Int(4));
        }
    }

    #[test]
    fn full_outer_pads_both() {
        let db = tiny_db();
        for p in [nl(JoinKind::FullOuter), hash(JoinKind::FullOuter)] {
            let rows = execute(&db, &p).unwrap();
            assert_eq!(rows.len(), 4, "2 matches + 1 left pad + 1 right pad");
        }
    }

    #[test]
    fn semi_and_anti_partition_left() {
        let db = tiny_db();
        for (semi, anti) in [
            (nl(JoinKind::LeftSemi), nl(JoinKind::LeftAnti)),
            (hash(JoinKind::LeftSemi), hash(JoinKind::LeftAnti)),
        ] {
            let semi_rows = execute(&db, &semi).unwrap();
            let anti_rows = execute(&db, &anti).unwrap();
            assert_eq!(semi_rows.len(), 2);
            assert_eq!(anti_rows.len(), 1);
            assert_eq!(anti_rows[0][0], Value::Int(3));
            assert_eq!(semi_rows[0].len(), 2, "semi emits only left columns");
        }
    }

    #[test]
    fn null_keys_never_match() {
        let db = tiny_db();
        // Join t0.a with t1.y (y has a NULL): NULL never equals anything.
        let pred = Expr::eq(Expr::col(ColId(0)), Expr::col(ColId(3)));
        let p = plan(
            PhysOp::NLJoin {
                kind: JoinKind::Inner,
                predicate: pred,
            },
            vec![scan_t0(), scan_t1()],
            join_schema(),
        );
        let rows = execute(&db, &p).unwrap();
        // y values: 10, NULL, 40 — none equals a∈{1,2,3}.
        assert!(rows.is_empty());

        let ph = plan(
            PhysOp::HashJoin {
                kind: JoinKind::Inner,
                left_keys: vec![ColId(0)],
                right_keys: vec![ColId(3)],
                residual: Expr::true_lit(),
            },
            vec![scan_t0(), scan_t1()],
            join_schema(),
        );
        assert!(execute(&db, &ph).unwrap().is_empty());
    }

    #[test]
    fn residual_predicate_filters_matches() {
        let db = tiny_db();
        // a = x AND y > 5: (1,10) passes, (2,NULL) fails (UNKNOWN).
        let residual = Expr::bin(
            ruletest_expr::BinOp::Gt,
            Expr::col(ColId(3)),
            Expr::lit(5i64),
        );
        let p = plan(
            PhysOp::HashJoin {
                kind: JoinKind::Inner,
                left_keys: vec![ColId(0)],
                right_keys: vec![ColId(2)],
                residual,
            },
            vec![scan_t0(), scan_t1()],
            join_schema(),
        );
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(1));
    }

    #[test]
    fn cross_join_via_true_predicate() {
        let db = tiny_db();
        let p = plan(
            PhysOp::NLJoin {
                kind: JoinKind::Inner,
                predicate: Expr::true_lit(),
            },
            vec![scan_t0(), scan_t1()],
            join_schema(),
        );
        assert_eq!(execute(&db, &p).unwrap().len(), 9);
    }
}
