//! Execution driver, resolution helpers, and the work budget.

use ruletest_common::{ColId, Error, Result, Row, Value};
use ruletest_optimizer::{PhysOp, PhysicalPlan};
use ruletest_storage::Database;
use std::collections::HashMap;

/// Execution limits. Random queries can contain cross products; the budget
/// turns pathological plans into a clean error instead of an effective hang
/// (the test harness treats budget-exceeded queries as "too expensive" and
/// regenerates).
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Cap on total work units (rows produced + join pairs examined).
    pub work_budget: u64,
    /// Cooperative wall-clock deadline, checked at batch boundaries
    /// (every [`BATCH_UNITS`] work units). Unarmed by default.
    pub deadline: ruletest_common::Deadline,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            work_budget: 20_000_000,
            deadline: ruletest_common::Deadline::none(),
        }
    }
}

/// Work units between cooperative deadline checks and chaos probes. Large
/// enough that the hot charge path stays a couple of integer ops, small
/// enough that a stuck operator is abandoned within milliseconds of the
/// deadline passing.
pub const BATCH_UNITS: u64 = 1024;

/// An executed result: rows positionally aligned with the plan's schema.
pub type ResultSet = Vec<Row>;

pub(crate) struct Ctx<'a> {
    pub db: &'a Database,
    pub remaining: u64,
    pub deadline: ruletest_common::Deadline,
    /// Work units charged since the last batch-boundary check.
    since_check: u64,
}

impl Ctx<'_> {
    /// Charges `n` work units, failing when the budget runs out. Every
    /// [`BATCH_UNITS`] charged units this also probes the `exec.batch`
    /// chaos site and checks the cooperative deadline, so a pathological
    /// plan is abandoned with [`Error::Timeout`] instead of hanging.
    pub fn charge(&mut self, n: u64) -> Result<()> {
        if self.remaining < n {
            return Err(Error::budget("execution work budget exceeded"));
        }
        self.remaining -= n;
        self.since_check += n;
        if self.since_check >= BATCH_UNITS {
            self.since_check = 0;
            ruletest_common::chaos::point("exec.batch")?;
            self.deadline.check("executor batch")?;
        }
        Ok(())
    }
}

/// Column-id -> position map for a plan node's output.
pub(crate) fn position_map(plan: &PhysicalPlan) -> HashMap<ColId, usize> {
    plan.schema
        .iter()
        .enumerate()
        .map(|(i, c)| (c.id, i))
        .collect()
}

/// Evaluates an expression against a row resolved through a position map.
pub(crate) fn eval_row(
    expr: &ruletest_expr::Expr,
    map: &HashMap<ColId, usize>,
    row: &Row,
) -> Value {
    ruletest_expr::eval(expr, &mut |c| {
        row[*map
            .get(&c)
            .unwrap_or_else(|| panic!("unresolved column {c}"))]
        .clone()
    })
}

/// Predicate evaluation with SQL filter semantics (UNKNOWN rejects).
pub(crate) fn eval_pred(
    expr: &ruletest_expr::Expr,
    map: &HashMap<ColId, usize>,
    row: &Row,
) -> bool {
    matches!(eval_row(expr, map, row), Value::Bool(true))
}

/// Executes a plan with the default budget.
pub fn execute(db: &Database, plan: &PhysicalPlan) -> Result<ResultSet> {
    execute_with(db, plan, &ExecConfig::default())
}

/// Executes a plan under an explicit budget.
pub fn execute_with(db: &Database, plan: &PhysicalPlan, config: &ExecConfig) -> Result<ResultSet> {
    let mut ctx = Ctx {
        db,
        remaining: config.work_budget,
        // Re-arm per execution: a deadline parsed from the CLI at
        // process start becomes a budget for *this* run, not a fuse
        // that burned down during earlier campaign stages.
        deadline: config.deadline.rearm(),
        since_check: 0,
    };
    let rows = exec_node(&mut ctx, plan)?;
    debug_assert!(
        rows.iter().all(|r| r.len() == plan.schema.len()),
        "executor produced rows not matching the plan schema"
    );
    Ok(rows)
}

/// Executes a plan under an explicit budget inside a [`Stage::Execution`]
/// profiling span, so executor wall time shows up under the enclosing
/// campaign stage in the run report's profile section.
pub fn execute_profiled(
    db: &Database,
    plan: &PhysicalPlan,
    config: &ExecConfig,
    tel: &ruletest_telemetry::Telemetry,
) -> Result<ResultSet> {
    let _span = tel.span(ruletest_telemetry::Stage::Execution);
    execute_with(db, plan, config)
}

pub(crate) fn exec_node(ctx: &mut Ctx, plan: &PhysicalPlan) -> Result<ResultSet> {
    match &plan.op {
        PhysOp::SeqScan { .. } | PhysOp::IndexSeek { .. } => crate::ops_scan::exec(ctx, plan),
        PhysOp::Filter { .. } | PhysOp::Compute { .. } => crate::ops_misc::exec_unary(ctx, plan),
        PhysOp::NLJoin { .. } | PhysOp::HashJoin { .. } | PhysOp::MergeJoin { .. } => {
            crate::ops_join::exec(ctx, plan)
        }
        PhysOp::HashAgg { .. } | PhysOp::StreamAgg { .. } => crate::ops_agg::exec(ctx, plan),
        PhysOp::Concat { .. }
        | PhysOp::HashDistinct
        | PhysOp::SortOp { .. }
        | PhysOp::TopN { .. } => crate::ops_misc::exec_other(ctx, plan),
    }
}

#[cfg(test)]
pub(crate) mod testkit {
    //! Shared fixtures for executor unit tests: a tiny two-table database
    //! and helpers to construct physical plans by hand.

    use super::*;
    use ruletest_common::{DataType, TableId};
    use ruletest_logical::{ColumnInfo, Schema};
    use ruletest_storage::{Catalog, ColumnDef, TableDef};

    /// t0(a INT PK, b STR nullable), t1(x INT PK, y INT nullable)
    pub fn tiny_db() -> Database {
        let mut cat = Catalog::new();
        cat.add_table(TableDef {
            id: TableId(0),
            name: "t0".into(),
            columns: vec![
                ColumnDef::new("a", DataType::Int, false),
                ColumnDef::new("b", DataType::Str, true),
            ],
            primary_key: vec![0],
            unique_keys: vec![],
            foreign_keys: vec![],
        })
        .unwrap();
        cat.add_table(TableDef {
            id: TableId(1),
            name: "t1".into(),
            columns: vec![
                ColumnDef::new("x", DataType::Int, false),
                ColumnDef::new("y", DataType::Int, true),
            ],
            primary_key: vec![0],
            unique_keys: vec![],
            foreign_keys: vec![],
        })
        .unwrap();
        let mut db = Database::new(cat);
        db.load_table(
            TableId(0),
            vec![
                vec![Value::Int(1), Value::Str("one".into())],
                vec![Value::Int(2), Value::Null],
                vec![Value::Int(3), Value::Str("three".into())],
            ],
        )
        .unwrap();
        db.load_table(
            TableId(1),
            vec![
                vec![Value::Int(1), Value::Int(10)],
                vec![Value::Int(2), Value::Null],
                vec![Value::Int(4), Value::Int(40)],
            ],
        )
        .unwrap();
        db
    }

    pub fn int_col(id: u32) -> ColumnInfo {
        ColumnInfo {
            id: ColId(id),
            data_type: DataType::Int,
            nullable: true,
        }
    }

    pub fn str_col(id: u32) -> ColumnInfo {
        ColumnInfo {
            id: ColId(id),
            data_type: DataType::Str,
            nullable: true,
        }
    }

    pub fn plan(op: PhysOp, children: Vec<PhysicalPlan>, schema: Schema) -> PhysicalPlan {
        PhysicalPlan {
            op,
            children,
            schema,
            est_rows: 1.0,
            est_cost: 1.0,
        }
    }

    /// Scan of t0 with column ids 0,1.
    pub fn scan_t0() -> PhysicalPlan {
        plan(
            PhysOp::SeqScan {
                table: TableId(0),
                cols: vec![ColId(0), ColId(1)],
            },
            vec![],
            vec![int_col(0), str_col(1)],
        )
    }

    /// Scan of t1 with column ids 2,3.
    pub fn scan_t1() -> PhysicalPlan {
        plan(
            PhysOp::SeqScan {
                table: TableId(1),
                cols: vec![ColId(2), ColId(3)],
            },
            vec![],
            vec![int_col(2), int_col(3)],
        )
    }
}

#[cfg(test)]
mod tests {
    use super::testkit::*;
    use super::*;

    #[test]
    fn budget_exhaustion_is_a_clean_error() {
        let db = tiny_db();
        let plan = scan_t0();
        let err = execute_with(
            &db,
            &plan,
            &ExecConfig {
                work_budget: 1,
                ..Default::default()
            },
        );
        assert!(matches!(err, Err(Error::Budget(_))));
    }

    #[test]
    fn expired_deadline_abandons_execution_at_a_batch_boundary() {
        let db = tiny_db();
        let deadline = ruletest_common::Deadline::after_ms(1);
        while !deadline.expired() {
            std::thread::yield_now();
        }
        let mut ctx = Ctx {
            db: &db,
            remaining: u64::MAX,
            deadline,
            since_check: 0,
        };
        // Under a full batch no check fires; crossing the boundary does.
        assert!(ctx.charge(BATCH_UNITS - 1).is_ok());
        let err = ctx.charge(BATCH_UNITS);
        assert!(matches!(err, Err(Error::Timeout(_))), "got {err:?}");
    }

    #[test]
    fn chaos_stall_at_the_exec_batch_site_is_a_timeout_error() {
        let db = tiny_db();
        let plan = ruletest_common::chaos::ChaosPlan::parse("exec.batch:stall@1").unwrap();
        ruletest_common::chaos::install(plan);
        let mut ctx = Ctx {
            db: &db,
            remaining: u64::MAX,
            deadline: ruletest_common::Deadline::none(),
            since_check: 0,
        };
        let err = ctx.charge(BATCH_UNITS);
        ruletest_common::chaos::clear();
        match err {
            Err(Error::Timeout(m)) => assert!(m.contains("chaos"), "unexpected message: {m}"),
            other => panic!("expected injected stall, got {other:?}"),
        }
    }

    #[test]
    fn seq_scan_returns_all_rows() {
        let db = tiny_db();
        let rows = execute(&db, &scan_t0()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0][0], Value::Int(1));
    }
}
