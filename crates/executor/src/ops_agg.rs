//! Aggregation operators: hash aggregate and (sort-based) stream aggregate.
//!
//! SQL grouping semantics: NULL group keys compare equal (one NULL group);
//! a *scalar* aggregate (no GROUP BY) emits exactly one row even over empty
//! input; a grouped aggregate over empty input emits nothing.

use crate::context::{exec_node, position_map, Ctx};
use ruletest_common::{Error, Result, Row, Value};
use ruletest_expr::{AggAccumulator, AggCall};
use ruletest_optimizer::{PhysOp, PhysicalPlan};
use std::collections::HashMap;

pub(crate) fn exec(ctx: &mut Ctx, plan: &PhysicalPlan) -> Result<Vec<Row>> {
    let (group_by, aggs, sort_based) = match &plan.op {
        PhysOp::HashAgg { group_by, aggs } => (group_by, aggs, false),
        PhysOp::StreamAgg { group_by, aggs } => (group_by, aggs, true),
        other => {
            return Err(Error::internal(format!(
                "aggregate executor got {}",
                other.name()
            )))
        }
    };
    let mut input = exec_node(ctx, &plan.children[0])?;
    let map = position_map(&plan.children[0]);
    let key_positions: Vec<usize> = group_by.iter().map(|c| map[c]).collect();
    ctx.charge(input.len() as u64 + 1)?;

    if sort_based {
        // Stream aggregation sorts its input by the grouping key first —
        // the cost model charges it for exactly this sort.
        input.sort_by(|a, b| {
            for &p in &key_positions {
                let c = a[p].total_cmp(&b[p]);
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
            std::cmp::Ordering::Equal
        });
    }

    let feed = |accs: &mut Vec<AggAccumulator>, aggs: &[AggCall], row: &Row| {
        for (acc, call) in accs.iter_mut().zip(aggs) {
            let v = match call.arg {
                Some(c) => row[map[&c]].clone(),
                None => Value::Bool(true), // COUNT(*): any non-null marker
            };
            acc.update(call.func, &v);
        }
    };
    let finish = |key: Vec<Value>, accs: Vec<AggAccumulator>| -> Row {
        let mut row = key;
        row.extend(accs.into_iter().map(AggAccumulator::finish));
        row
    };
    let fresh = |aggs: &[AggCall]| -> Vec<AggAccumulator> {
        aggs.iter().map(|a| AggAccumulator::new(a.func)).collect()
    };

    let mut out = Vec::new();
    if group_by.is_empty() {
        // Scalar aggregation: exactly one output row, always.
        let mut accs = fresh(aggs);
        for row in &input {
            feed(&mut accs, aggs, row);
        }
        out.push(finish(vec![], accs));
    } else if sort_based {
        let mut i = 0usize;
        while i < input.len() {
            let start = i;
            let same_group = |a: &Row, b: &Row| {
                key_positions
                    .iter()
                    .all(|&p| a[p].total_cmp(&b[p]) == std::cmp::Ordering::Equal)
            };
            let mut accs = fresh(aggs);
            while i < input.len() && same_group(&input[start], &input[i]) {
                feed(&mut accs, aggs, &input[i]);
                i += 1;
            }
            let key: Vec<Value> = key_positions
                .iter()
                .map(|&p| input[start][p].clone())
                .collect();
            out.push(finish(key, accs));
        }
    } else {
        // Hash aggregation; insertion order preserved for determinism of
        // intermediate traces (final comparison is multiset-based anyway).
        let mut groups: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut states: Vec<(Vec<Value>, Vec<AggAccumulator>)> = Vec::new();
        for row in &input {
            let key: Vec<Value> = key_positions.iter().map(|&p| row[p].clone()).collect();
            let idx = *groups.entry(key.clone()).or_insert_with(|| {
                states.push((key, fresh(aggs)));
                states.len() - 1
            });
            feed(&mut states[idx].1, aggs, row);
        }
        for (key, accs) in states {
            out.push(finish(key, accs));
        }
    }
    ctx.charge(out.len() as u64)?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use crate::context::execute;
    use crate::context::testkit::*;
    use ruletest_common::{multisets_equal, ColId, Value};
    use ruletest_expr::{AggCall, AggFunc};
    use ruletest_optimizer::PhysOp;

    fn agg_plan(
        hash: bool,
        group_by: Vec<ColId>,
        aggs: Vec<AggCall>,
    ) -> ruletest_optimizer::PhysicalPlan {
        let mut schema: Vec<_> = group_by.iter().map(|c| int_col(c.0)).collect();
        schema.extend(aggs.iter().map(|a| int_col(a.output.0)));
        let op = if hash {
            PhysOp::HashAgg { group_by, aggs }
        } else {
            PhysOp::StreamAgg { group_by, aggs }
        };
        plan(op, vec![scan_t1()], schema)
    }

    // t1 rows: (1,10), (2,NULL), (4,40)

    #[test]
    fn scalar_aggregate_over_rows() {
        let db = tiny_db();
        for hash in [true, false] {
            let p = agg_plan(
                hash,
                vec![],
                vec![
                    AggCall::new(AggFunc::CountStar, None, ColId(10)),
                    AggCall::new(AggFunc::Count, Some(ColId(3)), ColId(11)),
                    AggCall::new(AggFunc::Sum, Some(ColId(3)), ColId(12)),
                    AggCall::new(AggFunc::Min, Some(ColId(2)), ColId(13)),
                    AggCall::new(AggFunc::Max, Some(ColId(2)), ColId(14)),
                ],
            );
            let rows = execute(&db, &p).unwrap();
            assert_eq!(
                rows,
                vec![vec![
                    Value::Int(3),
                    Value::Int(2),
                    Value::Int(50),
                    Value::Int(1),
                    Value::Int(4),
                ]]
            );
        }
    }

    #[test]
    fn scalar_aggregate_over_empty_input_emits_one_row() {
        let db = tiny_db();
        // Filter everything out first.
        let filter = plan(
            PhysOp::Filter {
                predicate: ruletest_expr::Expr::lit(false),
            },
            vec![scan_t1()],
            vec![int_col(2), int_col(3)],
        );
        let p = plan(
            PhysOp::HashAgg {
                group_by: vec![],
                aggs: vec![
                    AggCall::new(AggFunc::CountStar, None, ColId(10)),
                    AggCall::new(AggFunc::Sum, Some(ColId(3)), ColId(11)),
                ],
            },
            vec![filter],
            vec![int_col(10), int_col(11)],
        );
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(0), Value::Null]]);
    }

    #[test]
    fn grouped_aggregate_hash_and_stream_agree() {
        let db = tiny_db();
        // Group t1 by y (values 10, NULL, 40): three groups incl. the NULL
        // group.
        let mk = |hash| {
            agg_plan(
                hash,
                vec![ColId(3)],
                vec![AggCall::new(AggFunc::CountStar, None, ColId(10))],
            )
        };
        let h = execute(&db, &mk(true)).unwrap();
        let s = execute(&db, &mk(false)).unwrap();
        assert_eq!(h.len(), 3);
        assert!(multisets_equal(&h, &s));
        assert!(h.iter().any(|r| r[0].is_null() && r[1] == Value::Int(1)));
    }

    #[test]
    fn grouped_aggregate_over_empty_input_emits_nothing() {
        let db = tiny_db();
        let filter = plan(
            PhysOp::Filter {
                predicate: ruletest_expr::Expr::lit(false),
            },
            vec![scan_t1()],
            vec![int_col(2), int_col(3)],
        );
        let p = plan(
            PhysOp::StreamAgg {
                group_by: vec![ColId(2)],
                aggs: vec![AggCall::new(AggFunc::CountStar, None, ColId(10))],
            },
            vec![filter],
            vec![int_col(2), int_col(10)],
        );
        assert!(execute(&db, &p).unwrap().is_empty());
    }
}
