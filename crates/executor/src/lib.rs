//! Physical plan interpreter.
//!
//! Correctness validation (§2.3) requires *executing* `Plan(q)` and
//! `Plan(q, ¬R)` and comparing results. This crate interprets the
//! optimizer's physical plans against the in-memory database with exact SQL
//! semantics (bags, three-valued logic, NULL grouping, null-padded outer
//! joins), guaranteeing that two correct plans for the same query produce
//! the same result multiset.
//!
//! Determinism note: `TopN` breaks ties by comparing the full row with
//! columns ordered by ascending column id — a total, plan-independent
//! order — so top-n results are a function of the input multiset alone.

mod context;
mod ops_agg;
mod ops_join;
mod ops_misc;
mod ops_scan;
pub mod reference;

pub use context::{execute, execute_profiled, execute_with, ExecConfig, ResultSet};
pub use reference::reference_eval;
