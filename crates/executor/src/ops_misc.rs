//! Filter, compute, concat, distinct, sort, and top-n operators.

use crate::context::{eval_pred, eval_row, exec_node, position_map, Ctx};
use ruletest_common::{Error, Result, Row};
use ruletest_optimizer::{PhysOp, PhysicalPlan};

pub(crate) fn exec_unary(ctx: &mut Ctx, plan: &PhysicalPlan) -> Result<Vec<Row>> {
    let input = exec_node(ctx, &plan.children[0])?;
    let map = position_map(&plan.children[0]);
    ctx.charge(input.len() as u64 + 1)?;
    match &plan.op {
        PhysOp::Filter { predicate } => Ok(input
            .into_iter()
            .filter(|row| eval_pred(predicate, &map, row))
            .collect()),
        PhysOp::Compute { outputs } => Ok(input
            .iter()
            .map(|row| {
                outputs
                    .iter()
                    .map(|(_, e)| eval_row(e, &map, row))
                    .collect()
            })
            .collect()),
        other => Err(Error::internal(format!(
            "unary executor got {}",
            other.name()
        ))),
    }
}

pub(crate) fn exec_other(ctx: &mut Ctx, plan: &PhysicalPlan) -> Result<Vec<Row>> {
    match &plan.op {
        PhysOp::Concat {
            left_cols,
            right_cols,
            ..
        } => {
            let left = exec_node(ctx, &plan.children[0])?;
            let right = exec_node(ctx, &plan.children[1])?;
            let lmap = position_map(&plan.children[0]);
            let rmap = position_map(&plan.children[1]);
            ctx.charge((left.len() + right.len()) as u64 + 1)?;
            let lpos: Vec<usize> = left_cols.iter().map(|c| lmap[c]).collect();
            let rpos: Vec<usize> = right_cols.iter().map(|c| rmap[c]).collect();
            let mut out = Vec::with_capacity(left.len() + right.len());
            for row in &left {
                out.push(lpos.iter().map(|&p| row[p].clone()).collect());
            }
            for row in &right {
                out.push(rpos.iter().map(|&p| row[p].clone()).collect());
            }
            Ok(out)
        }
        PhysOp::HashDistinct => {
            let input = exec_node(ctx, &plan.children[0])?;
            ctx.charge(input.len() as u64 + 1)?;
            let mut seen = std::collections::HashSet::new();
            // SQL DISTINCT treats NULLs as equal — Value's Eq does too.
            Ok(input
                .into_iter()
                .filter(|r| seen.insert(r.clone()))
                .collect())
        }
        PhysOp::SortOp { keys } => {
            let mut input = exec_node(ctx, &plan.children[0])?;
            let map = position_map(&plan.children[0]);
            ctx.charge(input.len() as u64 + 1)?;
            let key_pos: Vec<(usize, bool)> =
                keys.iter().map(|k| (map[&k.col], k.descending)).collect();
            input.sort_by(|a, b| {
                for &(p, desc) in &key_pos {
                    let c = a[p].total_cmp(&b[p]);
                    if c != std::cmp::Ordering::Equal {
                        return if desc { c.reverse() } else { c };
                    }
                }
                std::cmp::Ordering::Equal
            });
            Ok(input)
        }
        PhysOp::TopN { n, keys } => {
            let mut input = exec_node(ctx, &plan.children[0])?;
            let map = position_map(&plan.children[0]);
            ctx.charge(input.len() as u64 + 1)?;
            let key_pos: Vec<(usize, bool)> =
                keys.iter().map(|k| (map[&k.col], k.descending)).collect();
            // Tie-break on the full row with columns in ascending id order —
            // a total, *plan-independent* order, so TopN is a deterministic
            // function of the input multiset (see crate docs).
            let mut tie_pos: Vec<(ruletest_common::ColId, usize)> =
                map.iter().map(|(c, p)| (*c, *p)).collect();
            tie_pos.sort_by_key(|(c, _)| *c);
            input.sort_by(|a, b| {
                for &(p, desc) in &key_pos {
                    let c = a[p].total_cmp(&b[p]);
                    if c != std::cmp::Ordering::Equal {
                        return if desc { c.reverse() } else { c };
                    }
                }
                for &(_, p) in &tie_pos {
                    let c = a[p].total_cmp(&b[p]);
                    if c != std::cmp::Ordering::Equal {
                        return c;
                    }
                }
                std::cmp::Ordering::Equal
            });
            input.truncate(*n as usize);
            Ok(input)
        }
        other => Err(Error::internal(format!(
            "misc executor got {}",
            other.name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use crate::context::execute;
    use crate::context::testkit::*;
    use ruletest_common::{ColId, Value};
    use ruletest_expr::{BinOp, Expr};
    use ruletest_logical::SortKey;
    use ruletest_optimizer::PhysOp;

    #[test]
    fn filter_drops_unknown_and_false() {
        let db = tiny_db();
        // b = 'one': TRUE for row 1, UNKNOWN for NULL b, FALSE for 'three'.
        let p = plan(
            PhysOp::Filter {
                predicate: Expr::eq(Expr::col(ColId(1)), Expr::lit("one")),
            },
            vec![scan_t0()],
            vec![int_col(0), str_col(1)],
        );
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][0], Value::Int(1));
    }

    #[test]
    fn compute_evaluates_expressions() {
        let db = tiny_db();
        let p = plan(
            PhysOp::Compute {
                outputs: vec![
                    (
                        ColId(10),
                        Expr::bin(BinOp::Mul, Expr::col(ColId(0)), Expr::lit(2i64)),
                    ),
                    (ColId(11), Expr::is_null(Expr::col(ColId(1)))),
                ],
            },
            vec![scan_t0()],
            vec![int_col(10), int_col(11)],
        );
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows[0], vec![Value::Int(2), Value::Bool(false)]);
        assert_eq!(rows[1], vec![Value::Int(4), Value::Bool(true)]);
    }

    #[test]
    fn concat_remaps_both_sides() {
        let db = tiny_db();
        let p = plan(
            PhysOp::Concat {
                outputs: vec![ColId(20)],
                left_cols: vec![ColId(0)],
                right_cols: vec![ColId(3)],
            },
            vec![scan_t0(), scan_t1()],
            vec![int_col(20)],
        );
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows.len(), 6);
        assert_eq!(rows[0], vec![Value::Int(1)]);
        assert_eq!(rows[4], vec![Value::Null], "right NULL y survives");
    }

    #[test]
    fn distinct_treats_nulls_as_equal() {
        let db = tiny_db();
        let project_b = plan(
            PhysOp::Compute {
                outputs: vec![(ColId(10), Expr::is_null(Expr::col(ColId(1))))],
            },
            vec![scan_t0()],
            vec![int_col(10)],
        );
        let p = plan(PhysOp::HashDistinct, vec![project_b], vec![int_col(10)]);
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows.len(), 2); // true / false
    }

    #[test]
    fn sort_orders_with_nulls_first_and_desc() {
        let db = tiny_db();
        let p = plan(
            PhysOp::SortOp {
                keys: vec![SortKey::asc(ColId(3))],
            },
            vec![scan_t1()],
            vec![int_col(2), int_col(3)],
        );
        let rows = execute(&db, &p).unwrap();
        assert!(rows[0][1].is_null(), "NULLS FIRST ascending");
        assert_eq!(rows[1][1], Value::Int(10));

        let p = plan(
            PhysOp::SortOp {
                keys: vec![SortKey::desc(ColId(3))],
            },
            vec![scan_t1()],
            vec![int_col(2), int_col(3)],
        );
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows[0][1], Value::Int(40));
        assert!(rows[2][1].is_null(), "NULLS LAST descending");
    }

    #[test]
    fn top_n_takes_smallest_under_keys() {
        let db = tiny_db();
        let p = plan(
            PhysOp::TopN {
                n: 2,
                keys: vec![SortKey::desc(ColId(2))],
            },
            vec![scan_t1()],
            vec![int_col(2), int_col(3)],
        );
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::Int(4));
        assert_eq!(rows[1][0], Value::Int(2));
    }

    #[test]
    fn top_n_larger_than_input_keeps_all() {
        let db = tiny_db();
        let p = plan(
            PhysOp::TopN {
                n: 99,
                keys: vec![SortKey::asc(ColId(2))],
            },
            vec![scan_t1()],
            vec![int_col(2), int_col(3)],
        );
        assert_eq!(execute(&db, &p).unwrap().len(), 3);
    }
}
