//! Base-table access operators: sequential scan and primary-key index seek.

use crate::context::{eval_pred, position_map, Ctx};
use ruletest_common::{Error, Result, Row};
use ruletest_optimizer::{PhysOp, PhysicalPlan};

pub(crate) fn exec(ctx: &mut Ctx, plan: &PhysicalPlan) -> Result<Vec<Row>> {
    match &plan.op {
        PhysOp::SeqScan { table, .. } => {
            let t = ctx.db.table(*table)?;
            ctx.charge(t.rows.len() as u64)?;
            Ok(t.rows.clone())
        }
        PhysOp::IndexSeek {
            table,
            key,
            residual,
            ..
        } => {
            let t = ctx.db.table(*table)?;
            let map = position_map(plan);
            let mut out = Vec::new();
            for &off in t.pk_lookup(std::slice::from_ref(key)) {
                ctx.charge(1)?;
                let row = &t.rows[off];
                if eval_pred(residual, &map, row) {
                    out.push(row.clone());
                }
            }
            Ok(out)
        }
        other => Err(Error::internal(format!(
            "scan executor got {}",
            other.name()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use crate::context::execute;
    use crate::context::testkit::*;
    use ruletest_common::{ColId, TableId, Value};
    use ruletest_expr::{BinOp, Expr};
    use ruletest_optimizer::PhysOp;

    #[test]
    fn index_seek_finds_by_key() {
        let db = tiny_db();
        let p = plan(
            PhysOp::IndexSeek {
                table: TableId(0),
                cols: vec![ColId(0), ColId(1)],
                key: Value::Int(2),
                residual: Expr::true_lit(),
            },
            vec![],
            vec![int_col(0), str_col(1)],
        );
        let rows = execute(&db, &p).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(2), Value::Null]]);
    }

    #[test]
    fn index_seek_misses_cleanly() {
        let db = tiny_db();
        let p = plan(
            PhysOp::IndexSeek {
                table: TableId(0),
                cols: vec![ColId(0), ColId(1)],
                key: Value::Int(99),
                residual: Expr::true_lit(),
            },
            vec![],
            vec![int_col(0), str_col(1)],
        );
        assert!(execute(&db, &p).unwrap().is_empty());
    }

    #[test]
    fn index_seek_applies_residual() {
        let db = tiny_db();
        let p = plan(
            PhysOp::IndexSeek {
                table: TableId(0),
                cols: vec![ColId(0), ColId(1)],
                key: Value::Int(2),
                // b IS NULL holds for the row with a=2 -> NOT NULL rejects it
                residual: Expr::bin(BinOp::Eq, Expr::col(ColId(1)), Expr::lit("one")),
            },
            vec![],
            vec![int_col(0), str_col(1)],
        );
        assert!(execute(&db, &p).unwrap().is_empty());
    }
}
