//! A naive reference evaluator for *logical* trees.
//!
//! This is a deliberately independent second implementation of the query
//! semantics: it interprets the logical operators directly (no optimizer,
//! no physical plans, no hash tables — just nested loops and sorts), so it
//! shares no code path with the production pipeline beyond expression
//! evaluation. Tests use it as an oracle: for any query,
//! `optimize + execute` must produce the same multiset as `reference_eval`.

use crate::context::{ExecConfig, ResultSet};
use ruletest_common::{ColId, Error, Result, Row, Value};
use ruletest_expr::AggAccumulator;
use ruletest_logical::{JoinKind, LogicalTree, Operator, SortKey};
use ruletest_storage::Database;
use std::collections::HashMap;

/// Rows tagged with their column ids (schema travels with the data — the
/// simplest correct representation, not the fastest).
#[derive(Debug, Clone)]
struct Rel {
    cols: Vec<ColId>,
    rows: Vec<Row>,
}

impl Rel {
    fn position(&self, c: ColId) -> usize {
        self.cols
            .iter()
            .position(|&x| x == c)
            .unwrap_or_else(|| panic!("reference: unresolved column {c}"))
    }

    fn get(&self, row: &Row, c: ColId) -> Value {
        row[self.position(c)].clone()
    }
}

fn eval(rel: &Rel, row: &Row, e: &ruletest_expr::Expr) -> Value {
    ruletest_expr::eval(e, &mut |c| rel.get(row, c))
}

fn pred(rel: &Rel, row: &Row, e: &ruletest_expr::Expr) -> bool {
    matches!(eval(rel, row, e), Value::Bool(true))
}

/// Evaluates a logical tree directly. The work budget mirrors the real
/// executor's.
pub fn reference_eval(db: &Database, tree: &LogicalTree, config: &ExecConfig) -> Result<ResultSet> {
    let mut budget = config.work_budget;
    let rel = walk(db, tree, &mut budget)?;
    Ok(rel.rows)
}

fn charge(budget: &mut u64, n: u64) -> Result<()> {
    if *budget < n {
        return Err(Error::budget("reference evaluator budget exceeded"));
    }
    *budget -= n;
    Ok(())
}

fn concat_rel(kind: JoinKind, left: &Rel, right: &Rel) -> Vec<ColId> {
    match kind {
        JoinKind::LeftSemi | JoinKind::LeftAnti => left.cols.clone(),
        _ => {
            let mut cols = left.cols.clone();
            cols.extend(right.cols.iter().copied());
            cols
        }
    }
}

fn walk(db: &Database, tree: &LogicalTree, budget: &mut u64) -> Result<Rel> {
    match &tree.op {
        Operator::Get { table, cols } => {
            let t = db.table(*table)?;
            charge(budget, t.rows.len() as u64)?;
            Ok(Rel {
                cols: cols.clone(),
                rows: t.rows.clone(),
            })
        }
        Operator::Select { predicate } => {
            let input = walk(db, &tree.children[0], budget)?;
            charge(budget, input.rows.len() as u64)?;
            let rows = input
                .rows
                .iter()
                .filter(|r| pred(&input, r, predicate))
                .cloned()
                .collect();
            Ok(Rel {
                cols: input.cols.clone(),
                rows,
            })
        }
        Operator::Project { outputs } => {
            let input = walk(db, &tree.children[0], budget)?;
            charge(budget, input.rows.len() as u64)?;
            let rows = input
                .rows
                .iter()
                .map(|r| outputs.iter().map(|(_, e)| eval(&input, r, e)).collect())
                .collect();
            Ok(Rel {
                cols: outputs.iter().map(|(c, _)| *c).collect(),
                rows,
            })
        }
        Operator::Join { kind, predicate } => {
            let left = walk(db, &tree.children[0], budget)?;
            let right = walk(db, &tree.children[1], budget)?;
            charge(
                budget,
                (left.rows.len() as u64 + 1) * (right.rows.len() as u64 + 1),
            )?;
            let cols = concat_rel(*kind, &left, &right);
            let combined = Rel {
                cols: {
                    let mut c = left.cols.clone();
                    c.extend(right.cols.iter().copied());
                    c
                },
                rows: vec![],
            };
            let mut rows: Vec<Row> = Vec::new();
            let mut right_matched = vec![false; right.rows.len()];
            for l in &left.rows {
                let mut matches = 0usize;
                for (ri, r) in right.rows.iter().enumerate() {
                    let mut full = l.clone();
                    full.extend(r.iter().cloned());
                    if pred(&combined, &full, predicate) {
                        matches += 1;
                        right_matched[ri] = true;
                        match kind {
                            JoinKind::LeftSemi => {
                                rows.push(l.clone());
                                break;
                            }
                            JoinKind::LeftAnti => break,
                            _ => rows.push(full),
                        }
                    }
                }
                if matches == 0 {
                    match kind {
                        JoinKind::LeftOuter | JoinKind::FullOuter => {
                            let mut padded = l.clone();
                            padded.extend(std::iter::repeat_n(Value::Null, right.cols.len()));
                            rows.push(padded);
                        }
                        JoinKind::LeftAnti => rows.push(l.clone()),
                        _ => {}
                    }
                }
            }
            if kind.preserves_right() {
                for (ri, r) in right.rows.iter().enumerate() {
                    if !right_matched[ri] {
                        let mut padded: Row =
                            std::iter::repeat_n(Value::Null, left.cols.len()).collect();
                        padded.extend(r.iter().cloned());
                        rows.push(padded);
                    }
                }
            }
            Ok(Rel { cols, rows })
        }
        Operator::GbAgg { group_by, aggs } => {
            let input = walk(db, &tree.children[0], budget)?;
            charge(budget, input.rows.len() as u64 + 1)?;
            let key_pos: Vec<usize> = group_by.iter().map(|&c| input.position(c)).collect();
            let mut groups: Vec<(Vec<Value>, Vec<AggAccumulator>)> = Vec::new();
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            let fresh = || -> Vec<AggAccumulator> {
                aggs.iter().map(|a| AggAccumulator::new(a.func)).collect()
            };
            if group_by.is_empty() {
                groups.push((vec![], fresh()));
            }
            for row in &input.rows {
                let key: Vec<Value> = key_pos.iter().map(|&p| row[p].clone()).collect();
                let gi = if group_by.is_empty() {
                    0
                } else {
                    *index.entry(key.clone()).or_insert_with(|| {
                        groups.push((key.clone(), fresh()));
                        groups.len() - 1
                    })
                };
                for (acc, call) in groups[gi].1.iter_mut().zip(aggs) {
                    let v = match call.arg {
                        Some(c) => input.get(row, c),
                        None => Value::Bool(true),
                    };
                    acc.update(call.func, &v);
                }
            }
            let mut cols = group_by.clone();
            cols.extend(aggs.iter().map(|a| a.output));
            let rows = groups
                .into_iter()
                .map(|(key, accs)| {
                    let mut row = key;
                    row.extend(accs.into_iter().map(AggAccumulator::finish));
                    row
                })
                .collect();
            Ok(Rel { cols, rows })
        }
        Operator::UnionAll {
            outputs,
            left_cols,
            right_cols,
        } => {
            let left = walk(db, &tree.children[0], budget)?;
            let right = walk(db, &tree.children[1], budget)?;
            charge(budget, (left.rows.len() + right.rows.len()) as u64)?;
            let lpos: Vec<usize> = left_cols.iter().map(|&c| left.position(c)).collect();
            let rpos: Vec<usize> = right_cols.iter().map(|&c| right.position(c)).collect();
            let mut rows: Vec<Row> = Vec::new();
            for r in &left.rows {
                rows.push(lpos.iter().map(|&p| r[p].clone()).collect());
            }
            for r in &right.rows {
                rows.push(rpos.iter().map(|&p| r[p].clone()).collect());
            }
            Ok(Rel {
                cols: outputs.clone(),
                rows,
            })
        }
        Operator::Distinct => {
            let input = walk(db, &tree.children[0], budget)?;
            charge(budget, input.rows.len() as u64)?;
            let mut seen = std::collections::HashSet::new();
            let rows = input
                .rows
                .iter()
                .filter(|r| seen.insert((*r).clone()))
                .cloned()
                .collect();
            Ok(Rel {
                cols: input.cols.clone(),
                rows,
            })
        }
        Operator::Sort { keys } => {
            let mut input = walk(db, &tree.children[0], budget)?;
            charge(budget, input.rows.len() as u64)?;
            sort_rows(&mut input, keys, false);
            Ok(input)
        }
        Operator::Top { n, keys } => {
            let mut input = walk(db, &tree.children[0], budget)?;
            charge(budget, input.rows.len() as u64)?;
            sort_rows(&mut input, keys, true);
            input.rows.truncate(*n as usize);
            Ok(input)
        }
    }
}

/// Sorts by keys; for TOP semantics also applies the plan-independent
/// full-row tie-break (columns in ascending id order).
fn sort_rows(rel: &mut Rel, keys: &[SortKey], tie_break: bool) {
    let key_pos: Vec<(usize, bool)> = keys
        .iter()
        .map(|k| (rel.position(k.col), k.descending))
        .collect();
    let mut tie_pos: Vec<(ColId, usize)> =
        rel.cols.iter().enumerate().map(|(p, &c)| (c, p)).collect();
    tie_pos.sort_by_key(|(c, _)| *c);
    rel.rows.sort_by(|a, b| {
        for &(p, desc) in &key_pos {
            let c = a[p].total_cmp(&b[p]);
            if c != std::cmp::Ordering::Equal {
                return if desc { c.reverse() } else { c };
            }
        }
        if tie_break {
            for &(_, p) in &tie_pos {
                let c = a[p].total_cmp(&b[p]);
                if c != std::cmp::Ordering::Equal {
                    return c;
                }
            }
        }
        std::cmp::Ordering::Equal
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::testkit::tiny_db;
    use ruletest_expr::{AggCall, AggFunc, Expr};
    use ruletest_logical::IdGen;

    fn get(db: &Database, name: &str, ids: &mut IdGen) -> LogicalTree {
        LogicalTree::get(db.catalog.table_by_name(name).unwrap(), ids)
    }

    #[test]
    fn reference_scan_and_filter() {
        let db = tiny_db();
        let mut ids = IdGen::new();
        let t = get(&db, "t0", &mut ids);
        let key = t.output_col(0);
        let q = LogicalTree::select(
            t,
            Expr::bin(ruletest_expr::BinOp::Gt, Expr::col(key), Expr::lit(1i64)),
        );
        let rows = reference_eval(&db, &q, &ExecConfig::default()).unwrap();
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn reference_outer_join_pads() {
        let db = tiny_db();
        let mut ids = IdGen::new();
        let l = get(&db, "t0", &mut ids);
        let r = get(&db, "t1", &mut ids);
        let p = Expr::eq(Expr::col(l.output_col(0)), Expr::col(r.output_col(0)));
        let q = LogicalTree::join(JoinKind::FullOuter, l, r, p);
        let rows = reference_eval(&db, &q, &ExecConfig::default()).unwrap();
        assert_eq!(rows.len(), 4, "2 matches + 1 left pad + 1 right pad");
    }

    #[test]
    fn reference_scalar_agg_on_empty_input() {
        let db = tiny_db();
        let mut ids = IdGen::new();
        let t = get(&db, "t0", &mut ids);
        let filtered = LogicalTree::select(t, Expr::lit(false));
        let out = ids.fresh();
        let q = LogicalTree::gbagg(
            filtered,
            vec![],
            vec![AggCall::new(AggFunc::CountStar, None, out)],
        );
        let rows = reference_eval(&db, &q, &ExecConfig::default()).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn reference_budget_is_enforced() {
        let db = tiny_db();
        let mut ids = IdGen::new();
        let t = get(&db, "t0", &mut ids);
        let err = reference_eval(
            &db,
            &t,
            &ExecConfig {
                work_budget: 1,
                ..Default::default()
            },
        );
        assert!(matches!(err, Err(Error::Budget(_))));
    }
}
