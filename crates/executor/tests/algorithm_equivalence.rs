//! Join and aggregation algorithms implement identical semantics: fuzz
//! them against each other on synthetic tables with duplicates and NULLs
//! (heavier-duty than the unit tests; complements the cross-optimizer
//! correctness tests in the workspace root). Runs on the in-repo `check`
//! harness.

use ruletest_common::check::{gen, CheckConfig, Gen};
use ruletest_common::{ensure, forall};
use ruletest_common::{multisets_equal, ColId, DataType, Row, TableId, Value};
use ruletest_executor::{execute, reference_eval, ExecConfig};
use ruletest_expr::{AggCall, AggFunc, Expr};
use ruletest_logical::{ColumnInfo, IdGen, JoinKind, LogicalTree};
use ruletest_optimizer::{PhysOp, PhysicalPlan};
use ruletest_storage::{Catalog, ColumnDef, Database, TableDef};

/// Two tables with heavy key duplication and NULLs.
fn fuzz_db(left: Vec<(Option<i64>, i64)>, right: Vec<(Option<i64>, i64)>) -> Database {
    let mut cat = Catalog::new();
    for (i, name) in ["l", "r"].iter().enumerate() {
        cat.add_table(TableDef {
            id: TableId(i as u32),
            name: name.to_string(),
            columns: vec![
                ColumnDef::new("k", DataType::Int, true),
                ColumnDef::new("v", DataType::Int, false),
            ],
            // The synthetic fuzz rows are not unique; declare a composite
            // "key" of both columns only for catalog completeness.
            primary_key: vec![0, 1],
            unique_keys: vec![],
            foreign_keys: vec![],
        })
        .unwrap();
    }
    let to_rows = |data: Vec<(Option<i64>, i64)>| -> Vec<Row> {
        data.into_iter()
            .map(|(k, v)| vec![k.map(Value::Int).unwrap_or(Value::Null), Value::Int(v)])
            .collect()
    };
    let mut db = Database::new(cat);
    // PK uniqueness is not enforced by load_table; duplicates are fine for
    // this fuzz (the PK index simply maps to multiple offsets).
    db.load_table(TableId(0), to_rows(left)).unwrap();
    db.load_table(TableId(1), to_rows(right)).unwrap();
    db
}

fn scan(table: u32, ids: [u32; 2]) -> PhysicalPlan {
    PhysicalPlan {
        op: PhysOp::SeqScan {
            table: TableId(table),
            cols: vec![ColId(ids[0]), ColId(ids[1])],
        },
        children: vec![],
        schema: ids
            .iter()
            .map(|&i| ColumnInfo {
                id: ColId(i),
                data_type: DataType::Int,
                nullable: true,
            })
            .collect(),
        est_rows: 1.0,
        est_cost: 1.0,
    }
}

fn join_plan(op: PhysOp, kind: JoinKind) -> PhysicalPlan {
    let schema = match kind {
        JoinKind::LeftSemi | JoinKind::LeftAnti => scan(0, [0, 1]).schema,
        _ => {
            let mut s = scan(0, [0, 1]).schema;
            s.extend(scan(1, [2, 3]).schema);
            s
        }
    };
    PhysicalPlan {
        op,
        children: vec![scan(0, [0, 1]), scan(1, [2, 3])],
        schema,
        est_rows: 1.0,
        est_cost: 1.0,
    }
}

/// Rows of `(key, value)` with keys drawn from a tiny domain (3:1
/// non-null) so duplicates and NULL keys are common.
fn kv_gen() -> impl Gen<Value = Vec<(Option<i64>, i64)>> {
    gen::vecs(
        gen::pairs(gen::options(gen::i64s(0..4), 0.75), gen::i64s(0..3)),
        0..14,
    )
}

/// NL join and hash join agree for every join kind, on keys with heavy
/// duplication and NULLs.
#[test]
fn nl_and_hash_join_agree() {
    forall!(CheckConfig::cases(96); left in kv_gen(), right in kv_gen() => {
        let db = fuzz_db(left, right);
        let pred = Expr::eq(Expr::col(ColId(0)), Expr::col(ColId(2)));
        for kind in [
            JoinKind::Inner,
            JoinKind::LeftOuter,
            JoinKind::RightOuter,
            JoinKind::FullOuter,
            JoinKind::LeftSemi,
            JoinKind::LeftAnti,
        ] {
            let nl = join_plan(
                PhysOp::NLJoin {
                    kind,
                    predicate: pred.clone(),
                },
                kind,
            );
            let hash = join_plan(
                PhysOp::HashJoin {
                    kind,
                    left_keys: vec![ColId(0)],
                    right_keys: vec![ColId(2)],
                    residual: Expr::true_lit(),
                },
                kind,
            );
            let a = execute(&db, &nl).unwrap();
            let b = execute(&db, &hash).unwrap();
            ensure!(multisets_equal(&a, &b), "{kind:?}: NL vs hash diverged");
        }
        Ok(())
    });
}

/// Merge join agrees with NL join on inner equi-joins.
#[test]
fn merge_join_agrees() {
    forall!(CheckConfig::cases(96); left in kv_gen(), right in kv_gen() => {
        let db = fuzz_db(left, right);
        let pred = Expr::eq(Expr::col(ColId(0)), Expr::col(ColId(2)));
        let nl = join_plan(
            PhysOp::NLJoin {
                kind: JoinKind::Inner,
                predicate: pred,
            },
            JoinKind::Inner,
        );
        let merge = join_plan(
            PhysOp::MergeJoin {
                left_key: ColId(0),
                right_key: ColId(2),
                residual: Expr::true_lit(),
            },
            JoinKind::Inner,
        );
        let a = execute(&db, &nl).unwrap();
        let b = execute(&db, &merge).unwrap();
        ensure!(multisets_equal(&a, &b));
        Ok(())
    });
}

/// Hash and stream aggregation agree, including the NULL group.
#[test]
fn hash_and_stream_agg_agree() {
    forall!(CheckConfig::cases(96); left in kv_gen() => {
        let db = fuzz_db(left, vec![]);
        let aggs = vec![
            AggCall::new(AggFunc::CountStar, None, ColId(10)),
            AggCall::new(AggFunc::Sum, Some(ColId(1)), ColId(11)),
            AggCall::new(AggFunc::Min, Some(ColId(0)), ColId(12)),
        ];
        let mk = |hash: bool| PhysicalPlan {
            op: if hash {
                PhysOp::HashAgg {
                    group_by: vec![ColId(0)],
                    aggs: aggs.clone(),
                }
            } else {
                PhysOp::StreamAgg {
                    group_by: vec![ColId(0)],
                    aggs: aggs.clone(),
                }
            },
            children: vec![scan(0, [0, 1])],
            schema: [0u32, 10, 11, 12]
                .iter()
                .map(|&i| ColumnInfo {
                    id: ColId(i),
                    data_type: DataType::Int,
                    nullable: true,
                })
                .collect(),
            est_rows: 1.0,
            est_cost: 1.0,
        };
        let a = execute(&db, &mk(true)).unwrap();
        let b = execute(&db, &mk(false)).unwrap();
        ensure!(multisets_equal(&a, &b));
        Ok(())
    });
}

/// The reference evaluator agrees with the physical join operators on the
/// equivalent logical tree.
#[test]
fn reference_agrees_with_physical_joins() {
    forall!(CheckConfig::cases(96); left in kv_gen(), right in kv_gen() => {
        let db = fuzz_db(left, right);
        let mut ids = IdGen::new();
        // Mint the same ids the physical plans use.
        for _ in 0..4 {
            ids.fresh();
        }
        for kind in [JoinKind::Inner, JoinKind::LeftOuter, JoinKind::LeftAnti] {
            let l = LogicalTree::get_with_cols(TableId(0), vec![ColId(0), ColId(1)]);
            let r = LogicalTree::get_with_cols(TableId(1), vec![ColId(2), ColId(3)]);
            let tree = LogicalTree::join(
                kind,
                l,
                r,
                Expr::eq(Expr::col(ColId(0)), Expr::col(ColId(2))),
            );
            let expected = reference_eval(&db, &tree, &ExecConfig::default()).unwrap();
            let plan = join_plan(
                PhysOp::HashJoin {
                    kind,
                    left_keys: vec![ColId(0)],
                    right_keys: vec![ColId(2)],
                    residual: Expr::true_lit(),
                },
                kind,
            );
            let actual = execute(&db, &plan).unwrap();
            ensure!(multisets_equal(&expected, &actual), "{kind:?}");
        }
        Ok(())
    });
}
