//! NULL join-key regression tests: pinned (non-fuzz) cases where every
//! key or a mix of keys is NULL, checked against the reference evaluator
//! and across all three join algorithms. SQL equality treats NULL = NULL
//! as UNKNOWN, so NULL keys must never match — but outer and anti kinds
//! must still *preserve* the NULL-keyed rows. These cases are rare enough
//! under the fuzz generators that they deserve explicit coverage.

use ruletest_common::{multisets_equal, ColId, DataType, Row, TableId, Value};
use ruletest_executor::{execute, reference_eval, ExecConfig};
use ruletest_expr::Expr;
use ruletest_logical::{ColumnInfo, JoinKind, LogicalTree};
use ruletest_optimizer::{PhysOp, PhysicalPlan};
use ruletest_storage::{Catalog, ColumnDef, Database, TableDef};

/// `l(k, v)` and `r(k, v)` loaded with the given `(key, value)` rows.
fn db_with(left: Vec<(Option<i64>, i64)>, right: Vec<(Option<i64>, i64)>) -> Database {
    let mut cat = Catalog::new();
    for (i, name) in ["l", "r"].iter().enumerate() {
        cat.add_table(TableDef {
            id: TableId(i as u32),
            name: name.to_string(),
            columns: vec![
                ColumnDef::new("k", DataType::Int, true),
                ColumnDef::new("v", DataType::Int, false),
            ],
            primary_key: vec![0, 1],
            unique_keys: vec![],
            foreign_keys: vec![],
        })
        .unwrap();
    }
    let to_rows = |data: Vec<(Option<i64>, i64)>| -> Vec<Row> {
        data.into_iter()
            .map(|(k, v)| vec![k.map(Value::Int).unwrap_or(Value::Null), Value::Int(v)])
            .collect()
    };
    let mut db = Database::new(cat);
    db.load_table(TableId(0), to_rows(left)).unwrap();
    db.load_table(TableId(1), to_rows(right)).unwrap();
    db
}

fn scan(table: u32, ids: [u32; 2]) -> PhysicalPlan {
    PhysicalPlan {
        op: PhysOp::SeqScan {
            table: TableId(table),
            cols: vec![ColId(ids[0]), ColId(ids[1])],
        },
        children: vec![],
        schema: ids
            .iter()
            .map(|&i| ColumnInfo {
                id: ColId(i),
                data_type: DataType::Int,
                nullable: true,
            })
            .collect(),
        est_rows: 1.0,
        est_cost: 1.0,
    }
}

fn join_plan(op: PhysOp, kind: JoinKind) -> PhysicalPlan {
    let schema = match kind {
        JoinKind::LeftSemi | JoinKind::LeftAnti => scan(0, [0, 1]).schema,
        _ => {
            let mut s = scan(0, [0, 1]).schema;
            s.extend(scan(1, [2, 3]).schema);
            s
        }
    };
    PhysicalPlan {
        op,
        children: vec![scan(0, [0, 1]), scan(1, [2, 3])],
        schema,
        est_rows: 1.0,
        est_cost: 1.0,
    }
}

fn reference_rows(db: &Database, kind: JoinKind) -> Vec<Row> {
    let l = LogicalTree::get_with_cols(TableId(0), vec![ColId(0), ColId(1)]);
    let r = LogicalTree::get_with_cols(TableId(1), vec![ColId(2), ColId(3)]);
    let tree = LogicalTree::join(
        kind,
        l,
        r,
        Expr::eq(Expr::col(ColId(0)), Expr::col(ColId(2))),
    );
    reference_eval(db, &tree, &ExecConfig::default()).unwrap()
}

/// Runs every algorithm that supports `kind` on the equi-join and checks
/// each against the reference evaluator's result.
fn assert_all_algorithms_match_reference(db: &Database, kind: JoinKind) {
    let expected = reference_rows(db, kind);
    let pred = Expr::eq(Expr::col(ColId(0)), Expr::col(ColId(2)));
    let nl = join_plan(
        PhysOp::NLJoin {
            kind,
            predicate: pred,
        },
        kind,
    );
    let hash = join_plan(
        PhysOp::HashJoin {
            kind,
            left_keys: vec![ColId(0)],
            right_keys: vec![ColId(2)],
            residual: Expr::true_lit(),
        },
        kind,
    );
    for (algo, plan) in [("nl", &nl), ("hash", &hash)] {
        let actual = execute(db, plan).unwrap();
        assert!(
            multisets_equal(&expected, &actual),
            "{kind:?}/{algo}: diverged from reference ({} vs {} rows)",
            expected.len(),
            actual.len()
        );
    }
    if kind == JoinKind::Inner {
        let merge = join_plan(
            PhysOp::MergeJoin {
                left_key: ColId(0),
                right_key: ColId(2),
                residual: Expr::true_lit(),
            },
            kind,
        );
        let actual = execute(db, &merge).unwrap();
        assert!(
            multisets_equal(&expected, &actual),
            "Inner/merge: diverged from reference"
        );
    }
}

const ALL_KINDS: [JoinKind; 6] = [
    JoinKind::Inner,
    JoinKind::LeftOuter,
    JoinKind::RightOuter,
    JoinKind::FullOuter,
    JoinKind::LeftSemi,
    JoinKind::LeftAnti,
];

/// Every key on both sides is NULL: no pair matches, and the preserved
/// sides come back NULL-padded in full.
#[test]
fn all_null_keys_both_sides() {
    let db = db_with(
        vec![(None, 1), (None, 2), (None, 3)],
        vec![(None, 10), (None, 20)],
    );
    for kind in ALL_KINDS {
        assert_all_algorithms_match_reference(&db, kind);
    }
    // Pin the semantics, not just cross-agreement.
    assert!(reference_rows(&db, JoinKind::Inner).is_empty());
    assert_eq!(reference_rows(&db, JoinKind::LeftOuter).len(), 3);
    assert_eq!(reference_rows(&db, JoinKind::RightOuter).len(), 2);
    assert_eq!(reference_rows(&db, JoinKind::FullOuter).len(), 5);
    assert!(reference_rows(&db, JoinKind::LeftSemi).is_empty());
    assert_eq!(reference_rows(&db, JoinKind::LeftAnti).len(), 3);
}

/// One side all-NULL, the other side all non-NULL: still zero matches.
#[test]
fn all_null_keys_one_side() {
    let db = db_with(
        vec![(None, 1), (None, 2)],
        vec![(Some(7), 10), (Some(8), 20)],
    );
    for kind in ALL_KINDS {
        assert_all_algorithms_match_reference(&db, kind);
    }
    assert!(reference_rows(&db, JoinKind::Inner).is_empty());
    assert_eq!(reference_rows(&db, JoinKind::FullOuter).len(), 4);
}

/// NULL and non-NULL keys interleaved on both sides, with duplicate keys:
/// only the non-NULL equal pairs match, NULL-keyed rows are preserved by
/// outer/anti kinds and dropped by inner/semi.
#[test]
fn mixed_null_keys() {
    let db = db_with(
        vec![
            (Some(1), 1),
            (None, 2),
            (Some(2), 3),
            (None, 4),
            (Some(1), 5),
        ],
        vec![(Some(1), 10), (None, 20), (Some(3), 30), (Some(1), 40)],
    );
    for kind in ALL_KINDS {
        assert_all_algorithms_match_reference(&db, kind);
    }
    // Matches: l-keys {1, 1} × r-keys {1, 1} → 4 inner rows.
    assert_eq!(reference_rows(&db, JoinKind::Inner).len(), 4);
    // Left outer: 4 matches + 3 unmatched left rows (two NULL keys, key 2).
    assert_eq!(reference_rows(&db, JoinKind::LeftOuter).len(), 7);
    // Full outer additionally preserves r's NULL key and key 3.
    assert_eq!(reference_rows(&db, JoinKind::FullOuter).len(), 9);
    assert_eq!(reference_rows(&db, JoinKind::LeftSemi).len(), 2);
    assert_eq!(reference_rows(&db, JoinKind::LeftAnti).len(), 3);
    // NULL-keyed left rows survive anti (NULL = anything is UNKNOWN, so
    // they have no match) and their key column stays NULL.
    let anti = reference_rows(&db, JoinKind::LeftAnti);
    assert_eq!(anti.iter().filter(|r| r[0].is_null()).count(), 2);
}

/// Duplicate NULL keys never pair with each other even within one table
/// self-joined shape (l joined to a copy of itself via r).
#[test]
fn null_keys_do_not_match_null_keys() {
    let db = db_with(vec![(None, 1), (None, 2)], vec![(None, 1), (None, 2)]);
    for kind in ALL_KINDS {
        assert_all_algorithms_match_reference(&db, kind);
    }
    assert!(reference_rows(&db, JoinKind::Inner).is_empty());
    assert_eq!(reference_rows(&db, JoinKind::LeftAnti).len(), 2);
}
