//! The third rule-testing dimension (§1): **performance** — "analyze how
//! the transformation rule impacts the performance of a query/workload".
//! The paper scopes this out ("we focus on the first two aspects"); this
//! module implements the natural design over the same two optimizer hooks:
//! for every rule, compare `Cost(q)` against `Cost(q, ¬{r})` across a
//! workload, reporting how often the rule is relevant and how much plan
//! cost it saves.

use crate::framework::Framework;
use ruletest_common::{Result, RuleId};
use ruletest_logical::LogicalTree;
use ruletest_optimizer::OptimizerConfig;

/// Workload-level impact of one rule.
#[derive(Debug, Clone)]
pub struct RuleImpact {
    pub rule: RuleId,
    pub rule_name: &'static str,
    /// Queries in the workload that exercised the rule.
    pub exercised: usize,
    /// Queries whose chosen plan changes when the rule is disabled.
    pub relevant: usize,
    /// Total estimated plan cost across the workload with the rule enabled.
    pub cost_enabled: f64,
    /// Same with the rule disabled.
    pub cost_disabled: f64,
}

impl RuleImpact {
    /// Workload cost inflation factor from disabling the rule.
    pub fn inflation(&self) -> f64 {
        if self.cost_enabled > 0.0 {
            self.cost_disabled / self.cost_enabled
        } else {
            1.0
        }
    }
}

/// Measures the impact of every exploration rule on a workload, sorted by
/// descending cost inflation. `Cost(q)` is computed once per query; each
/// rule adds one `Cost(q, ¬{r})` optimization per query that exercised it
/// (queries that did not exercise the rule cannot change).
pub fn rule_impact(fw: &Framework, workload: &[LogicalTree]) -> Result<Vec<RuleImpact>> {
    let base: Vec<_> = workload
        .iter()
        .map(|q| fw.optimizer.optimize(q))
        .collect::<Result<_>>()?;
    let mut out = Vec::new();
    for rid in fw.optimizer.exploration_rule_ids() {
        let mut impact = RuleImpact {
            rule: rid,
            rule_name: fw.optimizer.rule(rid).name,
            exercised: 0,
            relevant: 0,
            cost_enabled: 0.0,
            cost_disabled: 0.0,
        };
        for (q, b) in workload.iter().zip(&base) {
            impact.cost_enabled += b.cost;
            if !b.rule_set.contains(&rid) {
                impact.cost_disabled += b.cost;
                continue;
            }
            impact.exercised += 1;
            let masked = fw
                .optimizer
                .optimize_with(q, &OptimizerConfig::disabling(&[rid]))?;
            impact.cost_disabled += masked.cost;
            if !b.plan.same_shape(&masked.plan) {
                impact.relevant += 1;
            }
        }
        out.push(impact);
    }
    out.sort_by(by_inflation_desc);
    Ok(out)
}

/// Sort key for impact reports: descending inflation, rule id as the tie
/// break. `total_cmp`, not `partial_cmp().expect(..)`: a NaN inflation
/// (e.g. a NaN cost propagated through the ratio) must sort
/// deterministically instead of panicking a whole campaign.
fn by_inflation_desc(a: &RuleImpact, b: &RuleImpact) -> std::cmp::Ordering {
    b.inflation()
        .total_cmp(&a.inflation())
        .then(a.rule.cmp(&b.rule))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use crate::generate::random::random_tree;
    use ruletest_common::Rng;
    use ruletest_logical::IdGen;

    #[test]
    fn impact_report_covers_all_rules_and_orders_by_inflation() {
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let mut rng = Rng::new(0x1337);
        let workload: Vec<LogicalTree> = (0..12)
            .map(|_| {
                let mut ids = IdGen::new();
                random_tree(&fw.db, &mut rng, &mut ids, 6).tree
            })
            .collect();
        let report = rule_impact(&fw, &workload).unwrap();
        assert_eq!(report.len(), fw.optimizer.exploration_rule_ids().len());
        for w in report.windows(2) {
            assert!(w[0].inflation() >= w[1].inflation() - 1e-12);
        }
        for r in &report {
            assert!(r.relevant <= r.exercised);
            assert!(
                r.cost_disabled >= r.cost_enabled - 1e-6 || r.inflation() >= 0.95,
                "{}: disabling a rule should not make the workload cheaper",
                r.rule_name
            );
        }
        // At least one rule should genuinely matter for a 12-query workload.
        assert!(report.iter().any(|r| r.relevant > 0));
    }

    #[test]
    fn nan_inflation_sorts_deterministically_instead_of_panicking() {
        // Regression: the sort used `partial_cmp().expect("finite costs")`
        // and panicked if any cost was NaN.
        let mk = |rule: u16, cost_enabled: f64, cost_disabled: f64| RuleImpact {
            rule: RuleId(rule),
            rule_name: "r",
            exercised: 1,
            relevant: 1,
            cost_enabled,
            cost_disabled,
        };
        let mut v = vec![mk(0, 1.0, 2.0), mk(1, 1.0, f64::NAN), mk(2, 1.0, 1.5)];
        v.sort_by(super::by_inflation_desc);
        let order: Vec<u16> = v.iter().map(|r| r.rule.0).collect();
        // NaN (descending total_cmp) sorts first; the finite entries keep
        // their descending-inflation order. What matters is: no panic, and
        // the same order every time.
        assert_eq!(order, vec![1, 0, 2]);
        let mut again = vec![mk(2, 1.0, 1.5), mk(1, 1.0, f64::NAN), mk(0, 1.0, 2.0)];
        again.sort_by(super::by_inflation_desc);
        let order2: Vec<u16> = again.iter().map(|r| r.rule.0).collect();
        assert_eq!(order, order2);
    }

    #[test]
    fn empty_workload_is_fine() {
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let report = rule_impact(&fw, &[]).unwrap();
        assert!(report.iter().all(|r| r.exercised == 0));
        assert!(report.iter().all(|r| (r.inflation() - 1.0).abs() < 1e-12));
    }
}
