//! The mutant catalog: buggy variants derived from the real rule set.
//!
//! Two derivation styles:
//! * *wrapped* mutants keep the real rule's substitution and transform
//!   its output (child swaps, join-kind corruption, limit bumps) — the
//!   systematic form, enabled by `RuleAction::ExploreDyn`;
//! * *rewritten* mutants re-implement the substitution with one check
//!   or step deleted (dropped preconditions, dropped conjuncts) — the
//!   bug is inside the logic, so output transformation cannot express
//!   it.
//!
//! Every mutant keeps the real rule's name (so the optimizer override
//! replaces it), pattern, and `mints_fresh_ids` flag; only the
//! substitution differs.

use super::{BugClass, Mutant, Verdict};
use ruletest_expr::{conjoin, conjuncts, AggCall, AggFunc, Expr};
use ruletest_logical::{JoinKind, OpKind, Operator};
use ruletest_optimizer::rule::RuleCtx;
use ruletest_optimizer::{Bound, NewChild, NewTree, PatternTree, Rule, RuleAction};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The real rule, by name, from the production catalog.
fn real(name: &str) -> Rule {
    ruletest_optimizer::rules::exploration_rules()
        .into_iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("mutant targets unknown rule {name}"))
}

/// A rewritten mutant: the real rule's pattern and flags with a
/// replacement substitution.
fn rewritten(
    name: &'static str,
    precondition: &'static str,
    f: fn(&RuleCtx, &Bound) -> Vec<NewTree>,
) -> Rule {
    let r = real(name);
    let mut rule = Rule::explore(r.name, r.pattern, precondition, f);
    rule.mints_fresh_ids = r.mints_fresh_ids;
    rule
}

/// A wrapped mutant: the real rule's substitution with `transform`
/// applied to its output.
fn wrapped(
    name: &'static str,
    precondition: &'static str,
    transform: impl Fn(Vec<NewTree>) -> Vec<NewTree> + Send + Sync + 'static,
) -> Rule {
    let r = real(name);
    let RuleAction::Explore(f) = r.action else {
        panic!("wrapped mutants derive from fn-pointer exploration rules");
    };
    let mut rule = Rule::explore_dyn(
        r.name,
        r.pattern,
        precondition,
        Arc::new(move |ctx: &RuleCtx, b: &Bound| transform(f(ctx, b))),
    );
    rule.mints_fresh_ids = r.mints_fresh_ids;
    rule
}

/// Column ids visible in a memo group's schema.
fn cols_of(ctx: &RuleCtx, g: ruletest_optimizer::GroupId) -> BTreeSet<ruletest_common::ColId> {
    ctx.schema(g).iter().map(|c| c.id).collect()
}

/// Rewrites the kind of the first `Join` operator found on the spine of
/// a substitute (depth-first).
fn corrupt_first_join_kind(tree: &mut NewTree, from: JoinKind, to: JoinKind) -> bool {
    if let Operator::Join { kind, .. } = &mut tree.op {
        if *kind == from {
            *kind = to;
            return true;
        }
    }
    for c in &mut tree.children {
        if let NewChild::Tree(t) = c {
            if corrupt_first_join_kind(t, from, to) {
                return true;
            }
        }
    }
    false
}

// ---------------------------------------------------------------------
// Class 1: dropped preconditions.
// ---------------------------------------------------------------------

/// `OuterJoinSimplify` without the null-rejection analysis: every
/// filtered LOJ/ROJ becomes an inner join.
fn ojs_unconditional(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join { predicate: jp, .. } = &join.op else {
        return vec![];
    };
    vec![NewTree::new(
        Operator::Select {
            predicate: predicate.clone(),
        },
        vec![NewChild::Tree(NewTree::new(
            Operator::Join {
                kind: JoinKind::Inner,
                predicate: jp.clone(),
            },
            vec![
                NewChild::Group(join.children[0].group()),
                NewChild::Group(join.children[1].group()),
            ],
        ))],
    )]
}

/// `SemiJoinToInnerOnKey` without the unique-key check: the inner join
/// duplicates left rows whenever the probe matches more than once.
fn semi_to_inner_no_key_check(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate, .. } = &b.op else {
        return vec![];
    };
    let left_schema = ctx.schema(b.children[0].group());
    let outputs: Vec<_> = left_schema
        .iter()
        .map(|ci| (ci.id, Expr::col(ci.id)))
        .collect();
    vec![NewTree::new(
        Operator::Project { outputs },
        vec![NewChild::Tree(NewTree::new(
            Operator::Join {
                kind: JoinKind::Inner,
                predicate: predicate.clone(),
            },
            vec![
                NewChild::Group(b.children[0].group()),
                NewChild::Group(b.children[1].group()),
            ],
        ))],
    )]
}

/// `TopTopCollapse` without the identical-keys precondition: collapsing
/// differently-keyed Tops keeps the wrong `min(n,m)` rows.
fn top_top_any_keys(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Top { n, keys } = &b.op else {
        return vec![];
    };
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Top { n: m, .. } = &inner.op else {
        return vec![];
    };
    vec![NewTree::new(
        Operator::Top {
            n: (*n).min(*m),
            keys: keys.clone(),
        },
        vec![NewChild::Group(inner.children[0].group())],
    )]
}

/// `JoinLojAssoc` without the predicate-scope check: rotates even when
/// the inner-join predicate references T, leaving it unbound below.
fn join_loj_assoc_no_scope_check(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate: p, .. } = &b.op else {
        return vec![];
    };
    let r = &b.children[0];
    let Some(loj) = b.children[1].nested() else {
        return vec![];
    };
    let Operator::Join { predicate: q, .. } = &loj.op else {
        return vec![];
    };
    let (s, t) = (&loj.children[0], &loj.children[1]);
    vec![NewTree::new(
        Operator::Join {
            kind: JoinKind::LeftOuter,
            predicate: q.clone(),
        },
        vec![
            NewChild::Tree(NewTree::new(
                Operator::Join {
                    kind: JoinKind::Inner,
                    predicate: p.clone(),
                },
                vec![NewChild::Group(r.group()), NewChild::Group(s.group())],
            )),
            NewChild::Group(t.group()),
        ],
    )]
}

/// `AntiJoinToLojFilter` with the probe column taken from the *left*
/// schema — a side confusion: `IS NULL(left col)` tests the preserved
/// side, which is never NULL-padded, so matched and unmatched rows are
/// kept or dropped by their own data instead of by match status.
fn anti_probe_wrong_side(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate, .. } = &b.op else {
        return vec![];
    };
    let Some(probe_col) = ctx
        .schema(b.children[0].group())
        .iter()
        .map(|c| c.id)
        .next()
    else {
        return vec![];
    };
    let left_schema = ctx.schema(b.children[0].group());
    let outputs: Vec<_> = left_schema
        .iter()
        .map(|ci| (ci.id, Expr::col(ci.id)))
        .collect();
    vec![NewTree::new(
        Operator::Project { outputs },
        vec![NewChild::Tree(NewTree::new(
            Operator::Select {
                predicate: Expr::is_null(Expr::col(probe_col)),
            },
            vec![NewChild::Tree(NewTree::new(
                Operator::Join {
                    kind: JoinKind::LeftOuter,
                    predicate: predicate.clone(),
                },
                vec![
                    NewChild::Group(b.children[0].group()),
                    NewChild::Group(b.children[1].group()),
                ],
            ))],
        ))],
    )]
}

// ---------------------------------------------------------------------
// Class 2: predicate misplacement.
// ---------------------------------------------------------------------

/// `SelectPushBelowOuterJoin` pushing conjuncts below the
/// *null-supplying* side of a LOJ.
fn push_below_null_side(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join {
        kind,
        predicate: jp,
    } = &join.op
    else {
        return vec![];
    };
    if *kind != JoinKind::LeftOuter {
        return vec![];
    }
    let right_cols = cols_of(ctx, join.children[1].group());
    let (push, keep): (Vec<Expr>, Vec<Expr>) = conjuncts(predicate)
        .into_iter()
        .partition(|c| ruletest_expr::columns_of(c).is_subset(&right_cols));
    if push.is_empty() {
        return vec![];
    }
    let pushed = NewTree::new(
        Operator::Select {
            predicate: conjoin(push),
        },
        vec![NewChild::Group(join.children[1].group())],
    );
    let new_join = NewTree::new(
        Operator::Join {
            kind: *kind,
            predicate: jp.clone(),
        },
        vec![
            NewChild::Group(join.children[0].group()),
            NewChild::Tree(pushed),
        ],
    );
    vec![if keep.is_empty() {
        new_join
    } else {
        NewTree::new(
            Operator::Select {
                predicate: conjoin(keep),
            },
            vec![NewChild::Tree(new_join)],
        )
    }]
}

/// `SelectIntoInnerJoin` applied to a left outer join: filtered-out rows
/// come back NULL-padded.
fn select_into_outer_join(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join {
        kind,
        predicate: jp,
    } = &join.op
    else {
        return vec![];
    };
    if *kind != JoinKind::LeftOuter {
        return vec![];
    }
    let merged = if jp.is_true_lit() {
        predicate.clone()
    } else {
        Expr::and(predicate.clone(), jp.clone())
    };
    vec![NewTree::new(
        Operator::Join {
            kind: *kind,
            predicate: merged,
        },
        vec![
            NewChild::Group(join.children[0].group()),
            NewChild::Group(join.children[1].group()),
        ],
    )]
}

/// `SelectPushBelowInnerJoin` that pushes the single-side conjuncts
/// correctly but silently drops the residual cross-input conjuncts
/// instead of keeping them above the join. The buggy plan joins
/// *smaller* (filtered) inputs, so the cost model prefers it — the
/// mutation is reachable precisely because it looks like a win.
fn select_push_drops_residual(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join { predicate: jp, .. } = &join.op else {
        return vec![];
    };
    let left_cols = cols_of(ctx, join.children[0].group());
    let right_cols = cols_of(ctx, join.children[1].group());
    let mut to_left = Vec::new();
    let mut to_right = Vec::new();
    let mut dropped = false;
    for c in conjuncts(predicate) {
        let cols = ruletest_expr::columns_of(&c);
        if cols.is_subset(&left_cols) {
            to_left.push(c);
        } else if cols.is_subset(&right_cols) {
            to_right.push(c);
        } else {
            dropped = true;
        }
    }
    // Only fire in the buggy case, where a residual conjunct vanishes.
    if !dropped {
        return vec![];
    }
    let side = |push: Vec<Expr>, g: ruletest_optimizer::GroupId| {
        if push.is_empty() {
            NewChild::Group(g)
        } else {
            NewChild::Tree(NewTree::new(
                Operator::Select {
                    predicate: conjoin(push),
                },
                vec![NewChild::Group(g)],
            ))
        }
    };
    vec![NewTree::new(
        Operator::Join {
            kind: JoinKind::Inner,
            predicate: jp.clone(),
        },
        vec![
            side(to_left, join.children[0].group()),
            side(to_right, join.children[1].group()),
        ],
    )]
}

/// `SelectMerge` joining the two predicates with OR instead of AND.
fn select_merge_or(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate: p } = &b.op else {
        return vec![];
    };
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Select { predicate: q } = &inner.op else {
        return vec![];
    };
    vec![NewTree::new(
        Operator::Select {
            predicate: Expr::or(p.clone(), q.clone()),
        },
        vec![NewChild::Group(inner.children[0].group())],
    )]
}

/// `SelectPushBelowGbAgg` pushing *every* conjunct below the aggregate,
/// including those over aggregate outputs (unbound below).
fn select_push_below_gbagg_all(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(agg) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::GbAgg { group_by, aggs } = &agg.op else {
        return vec![];
    };
    vec![NewTree::new(
        Operator::GbAgg {
            group_by: group_by.clone(),
            aggs: aggs.clone(),
        },
        vec![NewChild::Tree(NewTree::new(
            Operator::Select {
                predicate: predicate.clone(),
            },
            vec![NewChild::Group(agg.children[0].group())],
        ))],
    )]
}

// ---------------------------------------------------------------------
// Class 3: set/bag duplicate sensitivity.
// ---------------------------------------------------------------------

/// `DistinctPushBelowUnionAll` that drops the outer Distinct — the
/// classic UNION-as-UNION-ALL bug: cross-branch duplicates survive.
fn distinct_union_no_outer(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    if !matches!(b.op, Operator::Distinct) {
        return vec![];
    }
    let Some(union) = b.children[0].nested() else {
        return vec![];
    };
    if !matches!(union.op, Operator::UnionAll { .. }) {
        return vec![];
    }
    vec![NewTree::new(
        union.op.clone(),
        vec![
            NewChild::Tree(NewTree::new(
                Operator::Distinct,
                vec![NewChild::Group(union.children[0].group())],
            )),
            NewChild::Tree(NewTree::new(
                Operator::Distinct,
                vec![NewChild::Group(union.children[1].group())],
            )),
        ],
    )]
}

/// `DistinctToGbAgg` grouping by only the first column: collapses rows
/// that agree on it, and the output loses every other column.
fn distinct_to_gbagg_first_col(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    if !matches!(b.op, Operator::Distinct) {
        return vec![];
    }
    let Some(first) = ctx
        .schema(b.children[0].group())
        .iter()
        .map(|c| c.id)
        .next()
    else {
        return vec![];
    };
    vec![NewTree::new(
        Operator::GbAgg {
            group_by: vec![first],
            aggs: vec![],
        },
        vec![NewChild::Group(b.children[0].group())],
    )]
}

/// `UnionAllCommute` emitting the left child twice: one branch's rows
/// doubled, the other's dropped.
fn union_commute_left_twice(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::UnionAll {
        outputs, left_cols, ..
    } = &b.op
    else {
        return vec![];
    };
    vec![NewTree::new(
        Operator::UnionAll {
            outputs: outputs.clone(),
            left_cols: left_cols.clone(),
            right_cols: left_cols.clone(),
        },
        vec![
            NewChild::Group(b.children[0].group()),
            NewChild::Group(b.children[0].group()),
        ],
    )]
}

// ---------------------------------------------------------------------
// Class 4: operand swaps and join-kind corruption.
// ---------------------------------------------------------------------

/// `RojCommute` that rewrites the kind but forgets to swap the
/// children: `A ROJ B` becomes `A LOJ B` (preserved side flips).
fn roj_commute_no_swap(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate, .. } = &b.op else {
        return vec![];
    };
    vec![NewTree::new(
        Operator::Join {
            kind: JoinKind::LeftOuter,
            predicate: predicate.clone(),
        },
        vec![
            NewChild::Group(b.children[0].group()),
            NewChild::Group(b.children[1].group()),
        ],
    )]
}

// ---------------------------------------------------------------------
// Class 5: aggregate/TopN boundary bugs.
// ---------------------------------------------------------------------

/// `TopTopCollapse` taking `max(n, m)` instead of `min`.
fn top_top_max(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Top { n, keys } = &b.op else {
        return vec![];
    };
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Top {
        n: m,
        keys: inner_keys,
    } = &inner.op
    else {
        return vec![];
    };
    if keys != inner_keys {
        return vec![];
    }
    vec![NewTree::new(
        Operator::Top {
            n: (*n).max(*m),
            keys: keys.clone(),
        },
        vec![NewChild::Group(inner.children[0].group())],
    )]
}

/// `GbAggEliminateOnKey` without the no-COUNT precondition: when each
/// group is a single row, the real rule rewrites `SUM/MIN/MAX(x)` to
/// `x` but refuses `COUNT(x)` (whose value is 0 or 1, depending on
/// NULLness, never `x`). The mutant treats COUNT like the others — a
/// classic aggregate boundary bug at the NULL edge. The elimination
/// replaces an aggregate with a projection, so the cost model takes it.
fn gbagg_eliminate_count_unchecked(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::GbAgg { group_by, aggs } = &b.op else {
        return vec![];
    };
    let Some(get) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Get { table, cols } = &get.op else {
        return vec![];
    };
    let Ok(def) = ctx.db.catalog.table(*table) else {
        return vec![];
    };
    let ordinals: Vec<usize> = group_by
        .iter()
        .filter_map(|g| cols.iter().position(|c| c == g))
        .collect();
    if ordinals.len() != group_by.len() || !def.ordinals_cover_key(&ordinals) {
        return vec![];
    }
    let covering_non_null = {
        let check = |key: &[usize]| {
            key.iter().all(|k| ordinals.contains(k))
                && key.iter().all(|&k| !def.columns[k].nullable)
        };
        check(&def.primary_key) || def.unique_keys.iter().any(|k| check(k))
    };
    if !covering_non_null {
        return vec![];
    }
    // BUG: the no-COUNT guard is gone; COUNT(x) becomes x.
    let mut outputs: Vec<(ruletest_common::ColId, Expr)> =
        group_by.iter().map(|&g| (g, Expr::col(g))).collect();
    for a in aggs {
        let e = match a.func {
            AggFunc::CountStar => Expr::lit(1i64),
            _ => Expr::col(a.arg.expect("non-star aggregates have arguments")),
        };
        outputs.push((a.output, e));
    }
    vec![NewTree::new(
        Operator::Project { outputs },
        vec![NewChild::Group(b.children[0].group())],
    )]
}

/// Eager aggregation whose partial grouping key forgets the
/// join-predicate columns: side rows that differ on the join key are
/// collapsed before joining.
fn eager_push_drops_join_cols(ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::GbAgg { group_by, aggs } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join { kind, predicate } = &join.op else {
        return vec![];
    };
    if *kind != JoinKind::Inner {
        return vec![];
    }
    let side_cols = cols_of(ctx, join.children[0].group());
    if !aggs
        .iter()
        .all(|a| a.arg.is_none_or(|c| side_cols.contains(&c)))
    {
        return vec![];
    }
    if group_by.is_empty() {
        return vec![];
    }
    // BUG: the partial key keeps only the grouping columns of this side;
    // the join-predicate columns are missing.
    let partial_keys: BTreeSet<_> = group_by
        .iter()
        .copied()
        .filter(|c| side_cols.contains(c))
        .collect();
    let mut ids = ctx.ids.borrow_mut();
    let locals: Vec<AggCall> = aggs
        .iter()
        .map(|a| AggCall::new(a.func, a.arg, ids.fresh()))
        .collect();
    let globals: Vec<AggCall> = aggs
        .iter()
        .zip(&locals)
        .map(|(orig, local)| {
            AggCall::new(orig.func.combining_func(), Some(local.output), orig.output)
        })
        .collect();
    let partial = NewTree::new(
        Operator::GbAgg {
            group_by: partial_keys.into_iter().collect(),
            aggs: locals,
        },
        vec![NewChild::Group(join.children[0].group())],
    );
    vec![NewTree::new(
        Operator::GbAgg {
            group_by: group_by.clone(),
            aggs: globals,
        },
        vec![NewChild::Tree(NewTree::new(
            Operator::Join {
                kind: JoinKind::Inner,
                predicate: predicate.clone(),
            },
            vec![
                NewChild::Tree(partial),
                NewChild::Group(join.children[1].group()),
            ],
        ))],
    )]
}

// ---------------------------------------------------------------------
// Class 6: cost-only / benign mutants (false-positive controls).
// ---------------------------------------------------------------------

/// `InnerJoinCommute` whose substitution never fires: plan choice
/// shrinks, results cannot change.
fn commute_suppressed(_ctx: &RuleCtx, _b: &Bound) -> Vec<NewTree> {
    vec![]
}

/// `SortCollapse` keeping the *inner* sort's keys. Wrong order — but
/// the §2.3 oracle compares result multisets, and ORDER BY is
/// presentation-only, so this must not be reported as a bug.
fn sort_collapse_keeps_inner(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    if !matches!(b.op, Operator::Sort { .. }) {
        return vec![];
    }
    let Some(inner) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Sort { keys: inner_keys } = &inner.op else {
        return vec![];
    };
    vec![NewTree::new(
        Operator::Sort {
            keys: inner_keys.clone(),
        },
        vec![NewChild::Group(inner.children[0].group())],
    )]
}

/// `InnerJoinCommute` with the merged predicate's conjuncts reordered —
/// a different expression (and plan), identical semantics.
fn commute_pred_reordered(_ctx: &RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Join { predicate, .. } = &b.op else {
        return vec![];
    };
    let mut parts = conjuncts(predicate);
    parts.reverse();
    vec![NewTree::new(
        Operator::Join {
            kind: JoinKind::Inner,
            predicate: conjoin(parts),
        },
        vec![
            NewChild::Group(b.children[1].group()),
            NewChild::Group(b.children[0].group()),
        ],
    )]
}

// ---------------------------------------------------------------------
// Wrapped-mutant builders.
// ---------------------------------------------------------------------

fn b_loj_commute_keeps_kind() -> Rule {
    // Children swap (correct) but the kind stays LeftOuter instead of
    // flipping to RightOuter: the preserved side flips.
    wrapped(
        "LojCommute",
        "BUGGY: kind not flipped with the children",
        |trees| {
            trees
                .into_iter()
                .map(|mut t| {
                    if let Operator::Join { kind, .. } = &mut t.op {
                        *kind = JoinKind::LeftOuter;
                    }
                    t
                })
                .collect()
        },
    )
}

fn b_foj_commute_to_loj() -> Rule {
    wrapped(
        "FojCommute",
        "BUGGY: full outer demoted to left outer",
        |trees| {
            trees
                .into_iter()
                .map(|mut t| {
                    if let Operator::Join { kind, .. } = &mut t.op {
                        *kind = JoinKind::LeftOuter;
                    }
                    t
                })
                .collect()
        },
    )
}

fn b_push_inner_to_loj() -> Rule {
    // The rebuilt join comes back LeftOuter: unmatched left rows are
    // resurrected NULL-padded.
    wrapped(
        "SelectPushBelowInnerJoin",
        "BUGGY: rebuilt join kind corrupted to left outer",
        |trees| {
            trees
                .into_iter()
                .map(|mut t| {
                    corrupt_first_join_kind(&mut t, JoinKind::Inner, JoinKind::LeftOuter);
                    t
                })
                .collect()
        },
    )
}

fn b_top_top_off_by_one() -> Rule {
    wrapped(
        "TopTopCollapse",
        "BUGGY: collapsed limit is min(n, m) + 1",
        |trees| {
            trees
                .into_iter()
                .map(|mut t| {
                    if let Operator::Top { n, .. } = &mut t.op {
                        *n += 1;
                    }
                    t
                })
                .collect()
        },
    )
}

fn b_commute_duplicated() -> Rule {
    // Emits the commuted tree twice; the memo deduplicates, so the plan
    // space (and every result) is unchanged.
    wrapped(
        "InnerJoinCommute",
        "BUGGY(benign): substitute emitted twice",
        |trees| {
            let mut out = trees.clone();
            out.extend(trees);
            out
        },
    )
}

// ---------------------------------------------------------------------
// Rewritten-mutant builders.
// ---------------------------------------------------------------------

fn b_ojs_unconditional() -> Rule {
    rewritten(
        "OuterJoinSimplify",
        "BUGGY: no null-rejection check",
        ojs_unconditional,
    )
}
fn b_semi_no_key() -> Rule {
    rewritten(
        "SemiJoinToInnerOnKey",
        "BUGGY: no unique-key check on the probe side",
        semi_to_inner_no_key_check,
    )
}
fn b_top_top_any_keys() -> Rule {
    rewritten(
        "TopTopCollapse",
        "BUGGY: collapses Tops with different sort keys",
        top_top_any_keys,
    )
}
fn b_join_loj_no_scope() -> Rule {
    rewritten(
        "JoinLojAssoc",
        "BUGGY: no predicate-scope check before rotating",
        join_loj_assoc_no_scope_check,
    )
}
fn b_anti_probe_any() -> Rule {
    rewritten(
        "AntiJoinToLojFilter",
        "BUGGY: probe column taken from the preserved side",
        anti_probe_wrong_side,
    )
}
fn b_push_null_side() -> Rule {
    rewritten(
        "SelectPushBelowOuterJoin",
        "BUGGY: pushes below the null-supplying side",
        push_below_null_side,
    )
}
fn b_select_into_oj() -> Rule {
    // The real rule's pattern only matches inner joins; the bug is that
    // the sabotaged implementation *widened* it to left outer joins, so
    // the mutant must carry the widened pattern too.
    Rule::explore(
        "SelectIntoInnerJoin",
        PatternTree::kind(
            OpKind::Select,
            vec![PatternTree::join(
                vec![JoinKind::LeftOuter],
                PatternTree::Any,
                PatternTree::Any,
            )],
        ),
        "BUGGY: merges the filter into an outer join's ON clause",
        select_into_outer_join,
    )
}
fn b_push_drops_residual() -> Rule {
    rewritten(
        "SelectPushBelowInnerJoin",
        "BUGGY: residual cross-input conjuncts dropped during pushdown",
        select_push_drops_residual,
    )
}
fn b_merge_or() -> Rule {
    rewritten(
        "SelectMerge",
        "BUGGY: merges stacked filters with OR",
        select_merge_or,
    )
}
fn b_gbagg_push_all() -> Rule {
    rewritten(
        "SelectPushBelowGbAgg",
        "BUGGY: pushes aggregate-output conjuncts below the aggregate",
        select_push_below_gbagg_all,
    )
}
fn b_distinct_union_no_outer() -> Rule {
    rewritten(
        "DistinctPushBelowUnionAll",
        "BUGGY: outer Distinct dropped (UNION as UNION ALL)",
        distinct_union_no_outer,
    )
}
fn b_distinct_first_col() -> Rule {
    rewritten(
        "DistinctToGbAgg",
        "BUGGY: groups by the first column only",
        distinct_to_gbagg_first_col,
    )
}
fn b_union_left_twice() -> Rule {
    rewritten(
        "UnionAllCommute",
        "BUGGY: emits the left child on both sides",
        union_commute_left_twice,
    )
}
fn b_roj_no_swap() -> Rule {
    rewritten(
        "RojCommute",
        "BUGGY: kind rewritten without swapping the children",
        roj_commute_no_swap,
    )
}
fn b_top_top_max() -> Rule {
    rewritten(
        "TopTopCollapse",
        "BUGGY: keeps max(n, m) rows instead of min",
        top_top_max,
    )
}
fn b_eliminate_count() -> Rule {
    rewritten(
        "GbAggEliminateOnKey",
        "BUGGY: COUNT survives key-based elimination as an identity",
        gbagg_eliminate_count_unchecked,
    )
}
fn b_eager_drops_join_cols() -> Rule {
    rewritten(
        "EagerGbAggPushBelowJoinLeft",
        "BUGGY: partial grouping key omits the join-predicate columns",
        eager_push_drops_join_cols,
    )
}
fn b_commute_suppressed() -> Rule {
    rewritten(
        "InnerJoinCommute",
        "BUGGY(benign): substitution never fires",
        commute_suppressed,
    )
}
fn b_sort_keeps_inner() -> Rule {
    rewritten(
        "SortCollapse",
        "BUGGY(benign): inner sort keys win (order is presentation-only)",
        sort_collapse_keeps_inner,
    )
}
fn b_commute_reordered() -> Rule {
    rewritten(
        "InnerJoinCommute",
        "BUGGY(benign): conjuncts reordered in the commuted predicate",
        commute_pred_reordered,
    )
}

/// The catalog, in stable declaration order (grouped by class).
static CATALOG: &[Mutant] = &[
    // -- dropped preconditions ----------------------------------------
    Mutant {
        id: "OuterJoinSimplifyUnconditional",
        class: BugClass::DroppedPrecondition,
        rule_name: "OuterJoinSimplify",
        expected: Verdict::DetectableStatic,
        note: "null-rejection check deleted; every filtered outer join becomes inner",
        build: b_ojs_unconditional,
    },
    Mutant {
        id: "TopTopKeysCheckDropped",
        class: BugClass::DroppedPrecondition,
        rule_name: "TopTopCollapse",
        expected: Verdict::DetectableDynamic,
        note: "identical-keys precondition deleted; collapses differently-ordered Tops",
        build: b_top_top_any_keys,
    },
    Mutant {
        id: "JoinLojAssocScopeDropped",
        class: BugClass::DroppedPrecondition,
        rule_name: "JoinLojAssoc",
        expected: Verdict::DetectableDynamic,
        note: "predicate-scope check deleted; rotation leaves columns unbound at runtime",
        build: b_join_loj_no_scope,
    },
    Mutant {
        id: "AntiJoinProbeCheckDropped",
        class: BugClass::DroppedPrecondition,
        rule_name: "AntiJoinToLojFilter",
        expected: Verdict::DetectableDynamic,
        note: "probe column tested on the preserved side, which is never NULL-padded",
        build: b_anti_probe_any,
    },
    // -- predicate misplacement ---------------------------------------
    Mutant {
        id: "PushBelowNullSupplyingSide",
        class: BugClass::PredicateMisplacement,
        rule_name: "SelectPushBelowOuterJoin",
        expected: Verdict::DetectableStatic,
        note: "conjuncts pushed below the null-supplying side of a LOJ",
        build: b_push_null_side,
    },
    Mutant {
        id: "SelectMergedIntoOuterJoin",
        class: BugClass::PredicateMisplacement,
        rule_name: "SelectIntoInnerJoin",
        expected: Verdict::DetectableStatic,
        note: "filter merged into a left outer join's ON clause",
        build: b_select_into_oj,
    },
    Mutant {
        id: "SelectPushDropsResidualConjuncts",
        class: BugClass::PredicateMisplacement,
        rule_name: "SelectPushBelowInnerJoin",
        expected: Verdict::DetectableDynamic,
        note: "pushdown drops the residual cross-input conjuncts",
        build: b_push_drops_residual,
    },
    Mutant {
        id: "SelectMergeWithOr",
        class: BugClass::PredicateMisplacement,
        rule_name: "SelectMerge",
        expected: Verdict::DetectableDynamic,
        note: "stacked filters merged with OR instead of AND",
        build: b_merge_or,
    },
    Mutant {
        id: "SelectPushBelowGbAggUnchecked",
        class: BugClass::PredicateMisplacement,
        rule_name: "SelectPushBelowGbAgg",
        expected: Verdict::DetectableStatic,
        note: "aggregate-output conjuncts pushed below the aggregate (unbound)",
        build: b_gbagg_push_all,
    },
    // -- duplicate sensitivity ----------------------------------------
    Mutant {
        id: "SemiJoinKeyCheckDropped",
        class: BugClass::DuplicateSensitivity,
        rule_name: "SemiJoinToInnerOnKey",
        expected: Verdict::DetectableDynamic,
        note: "unique-key precondition deleted; inner join duplicates left rows",
        build: b_semi_no_key,
    },
    Mutant {
        id: "DistinctPushDropsOuter",
        class: BugClass::DuplicateSensitivity,
        rule_name: "DistinctPushBelowUnionAll",
        expected: Verdict::DetectableStatic,
        note: "outer Distinct dropped; cross-branch duplicates survive",
        build: b_distinct_union_no_outer,
    },
    Mutant {
        id: "DistinctGroupsFirstColumnOnly",
        class: BugClass::DuplicateSensitivity,
        rule_name: "DistinctToGbAgg",
        expected: Verdict::DetectableStatic,
        note: "grouping key shrunk to the first column; schema and rows both wrong",
        build: b_distinct_first_col,
    },
    Mutant {
        id: "UnionAllCommuteLeftTwice",
        class: BugClass::DuplicateSensitivity,
        rule_name: "UnionAllCommute",
        expected: Verdict::DetectableDynamic,
        note: "left branch unioned with itself; right branch's rows vanish",
        build: b_union_left_twice,
    },
    // -- operand corruption -------------------------------------------
    Mutant {
        id: "LojCommuteKeepsKind",
        class: BugClass::OperandCorruption,
        rule_name: "LojCommute",
        expected: Verdict::DetectableStatic,
        note: "children swapped but the kind stays LeftOuter",
        build: b_loj_commute_keeps_kind,
    },
    Mutant {
        id: "RojCommuteForgetsSwap",
        class: BugClass::OperandCorruption,
        rule_name: "RojCommute",
        expected: Verdict::DetectableStatic,
        note: "kind rewritten to LeftOuter without swapping the children",
        build: b_roj_no_swap,
    },
    Mutant {
        id: "FojCommuteDemotedToLoj",
        class: BugClass::OperandCorruption,
        rule_name: "FojCommute",
        expected: Verdict::DetectableStatic,
        note: "full outer commuted into a left outer",
        build: b_foj_commute_to_loj,
    },
    Mutant {
        id: "PushBelowJoinCorruptsKind",
        class: BugClass::OperandCorruption,
        rule_name: "SelectPushBelowInnerJoin",
        expected: Verdict::DetectableStatic,
        note: "rebuilt inner join comes back as a left outer join",
        build: b_push_inner_to_loj,
    },
    // -- aggregate/TopN boundary --------------------------------------
    Mutant {
        id: "TopTopCollapseOffByOne",
        class: BugClass::BoundaryBug,
        rule_name: "TopTopCollapse",
        expected: Verdict::DetectableDynamic,
        note: "collapsed limit is min(n, m) + 1",
        build: b_top_top_off_by_one,
    },
    Mutant {
        id: "TopTopCollapseTakesMax",
        class: BugClass::BoundaryBug,
        rule_name: "TopTopCollapse",
        expected: Verdict::DetectableDynamic,
        note: "collapsed limit is max(n, m)",
        build: b_top_top_max,
    },
    Mutant {
        id: "GbAggEliminateMiscountsNulls",
        class: BugClass::BoundaryBug,
        rule_name: "GbAggEliminateOnKey",
        expected: Verdict::DetectableDynamic,
        note: "COUNT(x) eliminated to x instead of 0/1 on single-row groups",
        build: b_eliminate_count,
    },
    Mutant {
        id: "EagerAggDropsJoinColumns",
        class: BugClass::BoundaryBug,
        rule_name: "EagerGbAggPushBelowJoinLeft",
        expected: Verdict::DetectableStatic,
        note: "partial grouping key omits the join-predicate columns",
        build: b_eager_drops_join_cols,
    },
    // -- cost-only / benign -------------------------------------------
    Mutant {
        id: "InnerJoinCommuteSuppressed",
        class: BugClass::CostOnly,
        rule_name: "InnerJoinCommute",
        expected: Verdict::Benign,
        note: "rule never fires; the search space shrinks, results cannot change",
        build: b_commute_suppressed,
    },
    Mutant {
        id: "SortCollapseKeepsInnerKeys",
        class: BugClass::CostOnly,
        rule_name: "SortCollapse",
        expected: Verdict::Benign,
        note: "wrong sort keys win; order is presentation-only under the multiset oracle",
        build: b_sort_keeps_inner,
    },
    Mutant {
        id: "InnerJoinCommuteDuplicated",
        class: BugClass::CostOnly,
        rule_name: "InnerJoinCommute",
        expected: Verdict::Benign,
        note: "substitute emitted twice; the memo deduplicates it",
        build: b_commute_duplicated,
    },
    Mutant {
        id: "InnerJoinCommuteReordersConjuncts",
        class: BugClass::CostOnly,
        rule_name: "InnerJoinCommute",
        expected: Verdict::Benign,
        note: "conjunct order flipped in the commuted predicate; same semantics",
        build: b_commute_reordered,
    },
];

pub(super) fn all() -> &'static [Mutant] {
    CATALOG
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Anti-regression: every mutant's rule differs from the real rule
    /// on at least one axis the engine relies on (same name, same
    /// pattern, different action is not checkable directly — but the
    /// mints flag and kind must match the original, or the override
    /// would change scheduling rather than semantics).
    #[test]
    fn mutants_preserve_rule_registration_metadata() {
        for m in Mutant::all() {
            let real = real(m.rule_name);
            let mutated = m.rule();
            assert_eq!(mutated.kind, real.kind, "{}", m.id);
            assert_eq!(
                mutated.mints_fresh_ids, real.mints_fresh_ids,
                "{}: mints_fresh_ids flag lost",
                m.id
            );
        }
    }

    #[test]
    fn wrapped_mutants_transform_real_output() {
        // LojCommuteKeepsKind must produce a LeftOuter root where the
        // real rule produces RightOuter — spot-check the wrapper plumbing
        // via the rule action on a synthetic bound match. Building a
        // full memo here is overkill; the campaign tests cover firing.
        let rule = b_loj_commute_keeps_kind();
        assert!(rule.action.is_explore());
        assert_eq!(rule.name, "LojCommute");
    }
}
