//! Rule mutation: systematic derivation of buggy rule variants from the
//! real catalog, to *measure* the framework's fault-detection power.
//!
//! The paper's claim (§2.3, §6) is that `Plan(q)` vs `Plan(q, ¬{r})`
//! differential execution finds incorrectly implemented rules. The
//! hand-written [`crate::faults::Fault`] catalog holds three such bugs,
//! all in one class — and the static linter catches all three, so the
//! dynamic pipeline's unique contribution was unmeasured. This module
//! derives a few dozen buggy variants ([`Mutant`]) across six bug
//! classes ([`BugClass`]) from the real rules, runs the full
//! generation → differential-execution pipeline plus the static linter
//! against each, and reports per-class detection rates and the
//! *lint-escape matrix*: mutants invisible to every static pass but
//! killed dynamically — the measured justification for executing
//! queries at all.
//!
//! Each mutant carries an expected verdict:
//! * [`Verdict::DetectableDynamic`] — the differential oracle must kill
//!   it (these are the lint-escape candidates);
//! * [`Verdict::DetectableStatic`] — the rule linter must flag it;
//! * [`Verdict::Benign`] — the mutant changes plan choice but not
//!   results; the oracle must *not* report a bug (false-positive
//!   control).

mod campaign;
mod catalog;
pub mod crossval;
mod detect;
mod report;

pub use campaign::{run_mutation_campaign, MutantOutcome, MutationConfig};
pub use crossval::{crossval_prove, CrossValReport, CrossValRow};
pub use detect::{detect_with_methodology, Detection, DynamicKill, KillKind, MutationBudget};
pub use report::{ClassStats, MutationReport};

use ruletest_common::{Error, Result};
use ruletest_optimizer::{Optimizer, Rule};
use ruletest_storage::Database;
use std::sync::Arc;

/// The six seeded bug classes (taxonomy after QPG's seeded logic bugs
/// and the set/bag + predicate-placement classes of duplicate-
/// sensitivity-guided transformation testing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BugClass {
    /// A precondition check deleted from the substitute (null-rejection,
    /// key/uniqueness, column-scope checks).
    DroppedPrecondition,
    /// A predicate moved to the wrong place (wrong join side, wrong
    /// clause, dropped conjuncts).
    PredicateMisplacement,
    /// Set/bag confusion: dropped dedup, wrong duplicate multiplicity.
    DuplicateSensitivity,
    /// Operand swaps and join-kind corruption in the substitute.
    OperandCorruption,
    /// Aggregate/TopN boundary bugs: off-by-one limits, wrong combining
    /// function, wrong partial grouping key.
    BoundaryBug,
    /// Plan-only mutants: they change which plan wins (or which plans
    /// exist) but never change results. The oracle must stay silent.
    CostOnly,
}

impl BugClass {
    pub const ALL: [BugClass; 6] = [
        BugClass::DroppedPrecondition,
        BugClass::PredicateMisplacement,
        BugClass::DuplicateSensitivity,
        BugClass::OperandCorruption,
        BugClass::BoundaryBug,
        BugClass::CostOnly,
    ];

    /// Stable name used in CLI flags and `MUTATION_REPORT.json`.
    pub fn name(self) -> &'static str {
        match self {
            BugClass::DroppedPrecondition => "dropped-precondition",
            BugClass::PredicateMisplacement => "predicate-misplacement",
            BugClass::DuplicateSensitivity => "duplicate-sensitivity",
            BugClass::OperandCorruption => "operand-corruption",
            BugClass::BoundaryBug => "boundary-bug",
            BugClass::CostOnly => "cost-only",
        }
    }

    /// Inverse of [`BugClass::name`]; fails with the offending name and
    /// the known classes.
    pub fn from_name(name: &str) -> Result<BugClass> {
        BugClass::ALL
            .into_iter()
            .find(|c| c.name() == name)
            .ok_or_else(|| {
                Error::unsupported(format!(
                    "unknown bug class '{name}' (known: {})",
                    BugClass::ALL.map(|c| c.name()).join(", ")
                ))
            })
    }
}

impl std::fmt::Display for BugClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What the methodology is expected to do with a mutant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Killed by dynamic differential execution; the static linter is
    /// blind to it (a lint-escape row).
    DetectableDynamic,
    /// Flagged by the static rule linter (dynamic execution may or may
    /// not also kill it).
    DetectableStatic,
    /// Not a correctness bug: the dynamic oracle must report nothing.
    Benign,
}

impl Verdict {
    pub fn name(self) -> &'static str {
        match self {
            Verdict::DetectableDynamic => "detectable-dynamic",
            Verdict::DetectableStatic => "detectable-static",
            Verdict::Benign => "benign",
        }
    }
}

/// One derived buggy rule variant.
pub struct Mutant {
    /// Stable id used in CLI flags, reports, and repro bundles.
    pub id: &'static str,
    pub class: BugClass,
    /// Name of the real rule this mutant replaces.
    pub rule_name: &'static str,
    pub expected: Verdict,
    /// One-line statement of the seeded bug.
    pub note: &'static str,
    /// Builds the sabotaged rule (same name as the real rule, so
    /// [`Optimizer::new_with_overrides`] swaps it in).
    pub(crate) build: fn() -> Rule,
}

impl Mutant {
    /// The full mutant catalog, in declaration order (stable: reports
    /// and stratified samples index into this order).
    pub fn all() -> &'static [Mutant] {
        catalog::all()
    }

    /// Looks a mutant up by id; fails with the offending name (CLI
    /// boundary contract — see `Error::Unsupported`).
    pub fn by_id(id: &str) -> Result<&'static Mutant> {
        Mutant::all().iter().find(|m| m.id == id).ok_or_else(|| {
            Error::unsupported(format!(
                "unknown mutant '{id}' (see `ruletest mutate --list`)"
            ))
        })
    }

    /// The sabotaged rule.
    pub fn rule(&self) -> Rule {
        (self.build)()
    }
}

impl std::fmt::Debug for Mutant {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutant")
            .field("id", &self.id)
            .field("class", &self.class)
            .field("rule", &self.rule_name)
            .field("expected", &self.expected)
            .finish()
    }
}

/// An optimizer over `db` with `mutant` injected in place of the real
/// rule.
pub fn mutant_optimizer(db: Arc<Database>, mutant: &Mutant) -> Optimizer {
    Optimizer::new_with_overrides(db, vec![mutant.rule()])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_large_and_covers_every_class() {
        let all = Mutant::all();
        assert!(all.len() >= 18, "only {} mutants", all.len());
        for class in BugClass::ALL {
            assert!(
                all.iter().any(|m| m.class == class),
                "no mutant in class {class}"
            );
        }
        // Stable unique ids.
        let mut ids: Vec<_> = all.iter().map(|m| m.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), all.len(), "duplicate mutant ids");
    }

    #[test]
    fn every_mutant_names_a_real_rule() {
        let names: Vec<_> = ruletest_optimizer::rules::exploration_rules()
            .into_iter()
            .map(|r| r.name)
            .collect();
        for m in Mutant::all() {
            assert!(
                names.contains(&m.rule_name),
                "{}: rule {} not in catalog",
                m.id,
                m.rule_name
            );
            // The sabotaged rule must keep the real rule's name so the
            // override mechanism replaces rather than adds.
            assert_eq!(m.rule().name, m.rule_name, "{}", m.id);
        }
    }

    #[test]
    fn unknown_ids_fail_with_the_offending_name() {
        let err = Mutant::by_id("NoSuchMutant").unwrap_err();
        assert!(err.to_string().contains("NoSuchMutant"), "{err}");
        let err = BugClass::from_name("no-such-class").unwrap_err();
        assert!(err.to_string().contains("no-such-class"), "{err}");
        assert!(err.to_string().contains("boundary-bug"), "{err}");
    }
}
