//! `MUTATION_REPORT.json`: per-mutant rows, per-class detection rates,
//! and the lint-escape matrix.
//!
//! The report is fully deterministic — catalog order, no wall-clock —
//! so the same seed produces byte-identical JSON at any thread count.

use super::campaign::MutantOutcome;
use super::detect::MutationBudget;
use super::{BugClass, Verdict};
use ruletest_telemetry::Json;

/// Aggregates for one bug class.
#[derive(Debug, Clone, Copy)]
pub struct ClassStats {
    pub class: BugClass,
    /// Mutants in this class that the run selected.
    pub total: usize,
    /// Expected-detectable mutants killed (static or dynamic).
    pub killed: usize,
    /// Expected-detectable mutants that escaped both layers.
    pub survived: usize,
    /// Benign mutants correctly reported as non-bugs.
    pub benign_ok: usize,
    /// Benign mutants wrongly reported as bugs.
    pub false_positives: usize,
    /// Mean cumulative generation trials over this class's dynamic
    /// kills (the paper's efficiency metric), if any landed.
    pub mean_trials_to_kill: Option<f64>,
}

impl ClassStats {
    /// Killed fraction over expected-detectable mutants (1.0 when the
    /// class holds only benign controls).
    pub fn detection_rate(&self) -> f64 {
        let detectable = self.killed + self.survived;
        if detectable == 0 {
            1.0
        } else {
            self.killed as f64 / detectable as f64
        }
    }
}

/// The full campaign result.
#[derive(Debug)]
pub struct MutationReport {
    pub outcomes: Vec<MutantOutcome>,
    pub budget: MutationBudget,
}

impl MutationReport {
    pub(super) fn from_outcomes(outcomes: Vec<MutantOutcome>, budget: &MutationBudget) -> Self {
        MutationReport {
            outcomes,
            budget: *budget,
        }
    }

    /// Per-class aggregates, in [`BugClass::ALL`] order, classes with no
    /// selected mutants omitted.
    pub fn class_stats(&self) -> Vec<ClassStats> {
        BugClass::ALL
            .into_iter()
            .filter_map(|class| {
                let of_class: Vec<_> = self
                    .outcomes
                    .iter()
                    .filter(|o| o.mutant.class == class)
                    .collect();
                if of_class.is_empty() {
                    return None;
                }
                let mut s = ClassStats {
                    class,
                    total: of_class.len(),
                    killed: 0,
                    survived: 0,
                    benign_ok: 0,
                    false_positives: 0,
                    mean_trials_to_kill: None,
                };
                let mut trials = Vec::new();
                for o in &of_class {
                    if o.mutant.expected == Verdict::Benign {
                        if o.passes_expectation() {
                            s.benign_ok += 1;
                        } else {
                            s.false_positives += 1;
                        }
                    } else if o.killed() {
                        s.killed += 1;
                    } else {
                        s.survived += 1;
                    }
                    if let Some(k) = o.dynamic() {
                        trials.push(k.trials as f64);
                    }
                }
                if !trials.is_empty() {
                    s.mean_trials_to_kill = Some(trials.iter().sum::<f64>() / trials.len() as f64);
                }
                Some(s)
            })
            .collect()
    }

    /// The lint-escape matrix: ids of mutants the static linter missed
    /// but dynamic differential execution killed.
    pub fn lint_escapes(&self) -> Vec<&'static str> {
        self.outcomes
            .iter()
            .filter(|o| o.lint_escape())
            .map(|o| o.mutant.id)
            .collect()
    }

    /// Outcomes violating their mutant's expected verdict.
    pub fn failures(&self) -> Vec<&MutantOutcome> {
        self.outcomes
            .iter()
            .filter(|o| !o.passes_expectation())
            .collect()
    }

    /// Exit semantics: any expected-detectable mutant surviving (or any
    /// benign mutant reported as a bug) fails the run.
    pub fn failed(&self) -> bool {
        !self.failures().is_empty()
    }

    /// Deterministic JSON (no wall-clock, catalog order).
    pub fn to_json(&self) -> Json {
        let mutants = self
            .outcomes
            .iter()
            .map(|o| {
                let (seed, trials, kind) = match o.dynamic() {
                    Some(k) => (
                        Json::count(k.seed),
                        Json::count(k.trials),
                        Json::str(k.kind.name()),
                    ),
                    None => (Json::Null, Json::Null, Json::Null),
                };
                Json::obj(vec![
                    ("id", Json::str(o.mutant.id)),
                    ("class", Json::str(o.mutant.class.name())),
                    ("rule", Json::str(o.mutant.rule_name)),
                    ("note", Json::str(o.mutant.note)),
                    ("expected", Json::str(o.mutant.expected.name())),
                    ("static_caught", Json::Bool(o.static_caught)),
                    ("dynamic_caught", Json::Bool(o.dynamic().is_some())),
                    ("fired", Json::Bool(o.detection.fired)),
                    ("plans_diverged", Json::Bool(o.detection.plans_diverged)),
                    ("kill_seed", seed),
                    ("kill_trials", trials),
                    ("kill_kind", kind),
                    ("pass", Json::Bool(o.passes_expectation())),
                ])
            })
            .collect();
        let classes = self
            .class_stats()
            .iter()
            .map(|s| {
                let mean = match s.mean_trials_to_kill {
                    Some(m) => Json::num(m),
                    None => Json::Null,
                };
                Json::obj(vec![
                    ("class", Json::str(s.class.name())),
                    ("total", Json::count(s.total as u64)),
                    ("killed", Json::count(s.killed as u64)),
                    ("survived", Json::count(s.survived as u64)),
                    ("benign_ok", Json::count(s.benign_ok as u64)),
                    ("false_positives", Json::count(s.false_positives as u64)),
                    ("detection_rate", Json::num(s.detection_rate())),
                    ("mean_trials_to_kill", mean),
                ])
            })
            .collect();
        let (killed, survived) = self.kill_counts();
        let kill_kinds = self.kill_kind_counts();
        Json::obj(vec![
            (
                "budget",
                Json::obj(vec![
                    ("seeds", Json::count(self.budget.seeds)),
                    ("max_trials", Json::count(self.budget.max_trials as u64)),
                    ("pad_ops", Json::count(self.budget.pad_ops as u64)),
                    (
                        "exec_deadline_ms",
                        Json::count(self.budget.exec_deadline_ms),
                    ),
                ]),
            ),
            ("mutants", Json::Arr(mutants)),
            ("classes", Json::Arr(classes)),
            (
                "lint_escapes",
                Json::Arr(
                    self.lint_escapes()
                        .iter()
                        .map(|&id| Json::str(id))
                        .collect(),
                ),
            ),
            (
                "summary",
                Json::obj(vec![
                    ("total", Json::count(self.outcomes.len() as u64)),
                    ("killed", Json::count(killed)),
                    ("survived", Json::count(survived)),
                    (
                        "kill_kinds",
                        Json::obj(vec![
                            ("diff", Json::count(kill_kinds.0)),
                            ("crash", Json::count(kill_kinds.1)),
                            ("hang", Json::count(kill_kinds.2)),
                        ]),
                    ),
                    (
                        "lint_escapes",
                        Json::count(self.lint_escapes().len() as u64),
                    ),
                    ("failures", Json::count(self.failures().len() as u64)),
                    ("pass", Json::Bool(!self.failed())),
                ]),
            ),
        ])
    }

    /// `(diff, crash, hang)` counts over the dynamic kills.
    fn kill_kind_counts(&self) -> (u64, u64, u64) {
        let mut counts = (0, 0, 0);
        for k in self.outcomes.iter().filter_map(|o| o.dynamic()) {
            match k.kind {
                super::detect::KillKind::Diff => counts.0 += 1,
                super::detect::KillKind::Crash => counts.1 += 1,
                super::detect::KillKind::Hang => counts.2 += 1,
            }
        }
        counts
    }

    fn kill_counts(&self) -> (u64, u64) {
        let mut killed = 0;
        let mut survived = 0;
        for o in &self.outcomes {
            if o.mutant.expected == Verdict::Benign {
                continue;
            }
            if o.killed() {
                killed += 1;
            } else {
                survived += 1;
            }
        }
        (killed, survived)
    }

    /// Human-readable summary for the CLI.
    pub fn render_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<38} {:<24} {:<19} {:>6} {:>7} {:>5}",
            "mutant", "class", "expected", "lint", "dyn", "pass"
        );
        for o in &self.outcomes {
            let dynamic = match o.dynamic() {
                // Marker: `!` = differential crash, `~` = hang, none = diff.
                Some(k) => {
                    let marker = match k.kind {
                        super::detect::KillKind::Diff => "",
                        super::detect::KillKind::Crash => "!",
                        super::detect::KillKind::Hang => "~",
                    };
                    format!("s{}{}", k.seed, marker)
                }
                None if o.detection.fired => "-".to_string(),
                None => "never".to_string(),
            };
            let _ = writeln!(
                out,
                "{:<38} {:<24} {:<19} {:>6} {:>7} {:>5}",
                o.mutant.id,
                o.mutant.class.name(),
                o.mutant.expected.name(),
                if o.static_caught { "flag" } else { "-" },
                dynamic,
                if o.passes_expectation() { "ok" } else { "FAIL" },
            );
        }
        let _ = writeln!(out);
        for s in self.class_stats() {
            let mean = s
                .mean_trials_to_kill
                .map(|m| format!("{m:.1}"))
                .unwrap_or_else(|| "-".into());
            let _ = writeln!(
                out,
                "{:<24} detection {:>3}/{:<3} ({:.0}%)  benign {}/{} ok  mean-trials {}",
                s.class.name(),
                s.killed,
                s.killed + s.survived,
                s.detection_rate() * 100.0,
                s.benign_ok,
                s.benign_ok + s.false_positives,
                mean,
            );
        }
        let escapes = self.lint_escapes();
        let _ = writeln!(
            out,
            "\nlint escapes (dynamic-only kills): {}",
            if escapes.is_empty() {
                "none".to_string()
            } else {
                escapes.join(", ")
            }
        );
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.failed() { "FAIL" } else { "PASS" }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::super::campaign::MutantOutcome;
    use super::super::detect::{Detection, DynamicKill, KillKind, MutationBudget};
    use super::super::Mutant;
    use super::MutationReport;

    fn outcome(mutant: &'static Mutant, kind: KillKind) -> MutantOutcome {
        MutantOutcome {
            mutant,
            static_caught: false,
            detection: Detection {
                fired: true,
                plans_diverged: true,
                dynamic: Some(DynamicKill {
                    seed: 7,
                    trials: 3,
                    kind,
                }),
            },
        }
    }

    #[test]
    fn report_renders_kill_kinds_in_json_and_text() {
        let mutants = Mutant::all();
        let outcomes = vec![
            outcome(&mutants[0], KillKind::Diff),
            outcome(&mutants[1], KillKind::Crash),
            outcome(&mutants[2], KillKind::Hang),
        ];
        let report = MutationReport::from_outcomes(outcomes, &MutationBudget::default());

        let json = report.to_json().to_string_compact();
        assert!(json.contains("\"kill_kind\":\"diff\""), "{json}");
        assert!(json.contains("\"kill_kind\":\"crash\""), "{json}");
        assert!(json.contains("\"kill_kind\":\"hang\""), "{json}");
        let kinds = report.to_json();
        let kinds = kinds.get("summary").and_then(|s| s.get("kill_kinds"));
        let count = |k: &str| kinds.and_then(|v| v.get(k)).and_then(|v| v.as_u64());
        assert_eq!(count("diff"), Some(1), "{json}");
        assert_eq!(count("crash"), Some(1), "{json}");
        assert_eq!(count("hang"), Some(1), "{json}");
        assert!(json.contains("\"exec_deadline_ms\":0"), "{json}");

        let text = report.render_text();
        assert!(text.contains("s7 "), "diff kill unmarked: {text}");
        assert!(text.contains("s7!"), "crash marker missing: {text}");
        assert!(text.contains("s7~"), "hang marker missing: {text}");
    }
}
