//! Cross-validation of the symbolic prover against the mutant corpus.
//!
//! The prover's verdicts are only trustworthy if they agree with ground
//! truth, and the mutant catalog *is* ground truth: every mutant is a
//! hand-seeded bug (or a hand-verified benign variant) in a known rule.
//! This module injects each mutant into an optimizer over the symbolic
//! database, runs the prover focused on the sabotaged rule, and tabulates
//! the outcome per bug class:
//!
//! * a correctness mutant verdicted `Inequivalent` is a **static kill** —
//!   the prover found the bug without executing a single query;
//! * `Unknown` is an honest escape — the dynamic campaign remains
//!   responsible for it;
//! * `Equivalent` on a correctness mutant would be a prover
//!   **unsoundness** (it "proved" a buggy rewrite correct), and
//!   `Inequivalent` on a cost-only mutant a **false alarm** — the
//!   cross-validation tests pin both at zero.

use crate::mutate::{mutant_optimizer, BugClass, Mutant, Verdict};
use ruletest_common::Result;
use ruletest_lint::prove::{self, ProveVerdict};
use ruletest_telemetry::Telemetry;
use std::sync::Arc;

/// One mutant's cross-validation outcome.
#[derive(Debug, Clone)]
pub struct CrossValRow {
    pub mutant: &'static str,
    pub class: BugClass,
    pub rule: &'static str,
    /// What the dynamic methodology expects of this mutant.
    pub expected: Verdict,
    /// What the symbolic prover concluded about the sabotaged rule.
    pub proved: ProveVerdict,
    pub reason: Option<String>,
}

/// Prover-vs-corpus agreement table.
#[derive(Debug, Clone)]
pub struct CrossValReport {
    pub rows: Vec<CrossValRow>,
}

impl CrossValReport {
    /// `(static kills, mutants)` for one bug class.
    pub fn class_kills(&self, class: BugClass) -> (usize, usize) {
        let rows = self.rows.iter().filter(|r| r.class == class);
        let total = rows.clone().count();
        let kills = rows
            .filter(|r| r.proved == ProveVerdict::Inequivalent)
            .count();
        (kills, total)
    }

    /// Correctness mutants the prover "proved" equivalent — must be empty.
    pub fn unsound(&self) -> Vec<&CrossValRow> {
        self.rows
            .iter()
            .filter(|r| r.class != BugClass::CostOnly && r.proved == ProveVerdict::Equivalent)
            .collect()
    }

    /// Cost-only mutants the prover flagged inequivalent — must be empty.
    pub fn false_alarms(&self) -> Vec<&CrossValRow> {
        self.rows
            .iter()
            .filter(|r| r.class == BugClass::CostOnly && r.proved == ProveVerdict::Inequivalent)
            .collect()
    }

    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str("prover vs mutant corpus\n");
        for class in BugClass::ALL {
            let (kills, total) = self.class_kills(class);
            out.push_str(&format!(
                "  {:<24} {kills}/{total} static kills\n",
                class.name()
            ));
        }
        for r in &self.rows {
            out.push_str(&format!(
                "  {:<34} {:<24} {}\n",
                r.mutant,
                r.class.name(),
                r.proved
            ));
        }
        out
    }
}

/// Runs the prover against every mutant in the catalog, one injected
/// optimizer per mutant over the symbolic database.
pub fn crossval_prove() -> Result<CrossValReport> {
    let db = Arc::new(prove::symbolic_database());
    let mut rows = Vec::new();
    for m in Mutant::all() {
        let opt = mutant_optimizer(db.clone(), m);
        let report = prove::prove_rules_focused(&opt, m.rule_name, &Telemetry::disabled())?;
        let proof = report
            .rules
            .iter()
            .find(|r| r.rule == m.rule_name)
            .expect("focused report contains the focused rule");
        rows.push(CrossValRow {
            mutant: m.id,
            class: m.class,
            rule: m.rule_name,
            expected: m.expected,
            proved: proof.verdict,
            reason: proof.reason.clone(),
        });
    }
    Ok(CrossValReport { rows })
}
