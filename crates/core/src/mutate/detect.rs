//! The dynamic detection harness: the §2.3 methodology packaged as a
//! reusable function.
//!
//! For a (possibly sabotaged) optimizer and a target rule, sweep seeds:
//! generate a query where the rule fires (pattern strategy), optimize
//! it twice — once normally, once with the rule masked — and execute
//! both plans. A result-multiset mismatch is a *kill*. This is the
//! exact loop the hand-written fault tests used inline; both the fault
//! tests and the mutation campaign now share it.

use crate::framework::Framework;
use crate::generate::pattern::instantiate_pattern;
use crate::generate::{GenConfig, Strategy};
use ruletest_common::{multisets_equal, Rng};
use ruletest_executor::{execute_profiled, ExecConfig};
use ruletest_logical::IdGen;
use ruletest_optimizer::{Optimizer, OptimizerConfig};
use std::sync::Arc;

/// Effort bounds for one mutant's detection sweep. Deliberately modest:
/// real bugs fall in the first handful of seeds, and the budget is paid
/// in full by every *surviving* mutant (benign controls, static-only
/// mutants whose dynamic effect needs data the generator never hits).
#[derive(Debug, Clone, Copy)]
pub struct MutationBudget {
    /// Seeds to sweep (`0..seeds`).
    pub seeds: u64,
    /// Generation trials per seed before giving up on it.
    pub max_trials: usize,
    /// Extra random operators stacked on the instantiated pattern.
    pub pad_ops: usize,
    /// Cooperative wall-clock deadline per mutant-plan execution, in
    /// milliseconds (0 = unarmed). With a deadline armed, a mutant whose
    /// plan loops or degenerates into pathological work is killed as
    /// [`KillKind::Hang`] instead of stalling the whole campaign.
    pub exec_deadline_ms: u64,
}

impl Default for MutationBudget {
    fn default() -> Self {
        MutationBudget {
            seeds: 48,
            max_trials: 20,
            pad_ops: 0,
            exec_deadline_ms: 0,
        }
    }
}

/// How a dynamic kill landed. The masked plan uses only unmutated rules,
/// so any asymmetric failure implicates the mutant — but *how* it failed
/// matters for the fault-detection-power analysis: a wrong answer, a
/// crash, and a hang are different bug classes with different production
/// blast radii.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillKind {
    /// Both plans executed; the result multisets differ.
    Diff,
    /// One plan executed and the other failed outright (e.g. an unbound
    /// column reference surfacing at runtime, or a plan-time error).
    Crash,
    /// One plan executed and the other exceeded its cooperative deadline
    /// — the runaway-mutant signature (`Error::Timeout`).
    Hang,
}

impl KillKind {
    /// Stable name used in `MUTATION_REPORT.json` and the text report.
    pub fn name(self) -> &'static str {
        match self {
            KillKind::Diff => "diff",
            KillKind::Crash => "crash",
            KillKind::Hang => "hang",
        }
    }
}

/// A successful dynamic detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DynamicKill {
    /// The seed whose query exposed the bug.
    pub seed: u64,
    /// Cumulative generation trials spent up to and including the kill
    /// (failed seeds charge their full `max_trials`) — the paper's
    /// trials-to-detection efficiency metric applied to mutants.
    pub trials: u64,
    /// How the kill landed (result diff / differential crash / hang).
    pub kind: KillKind,
}

impl DynamicKill {
    /// True when the kill was any kind of differential failure rather
    /// than a result diff (crash *or* hang).
    pub fn crashed(&self) -> bool {
        self.kind != KillKind::Diff
    }
}

/// Classifies an asymmetric execution failure: a cooperative-deadline
/// expiry is a hang, anything else a crash.
fn failure_kind(e: &ruletest_common::Error) -> KillKind {
    match e {
        ruletest_common::Error::Timeout(_) => KillKind::Hang,
        _ => KillKind::Crash,
    }
}

/// What the dynamic sweep observed for one mutant.
#[derive(Debug, Clone, Copy, Default)]
pub struct Detection {
    /// The target rule fired in at least one generated query.
    pub fired: bool,
    /// `Plan(q)` vs `Plan(q, ¬rule)` differed in shape at least once.
    pub plans_diverged: bool,
    /// The differential oracle found a result mismatch.
    pub dynamic: Option<DynamicKill>,
}

/// Runs the generation → differential-execution methodology against
/// `rule_name` on `opt` (normally a [`super::mutant_optimizer`]).
///
/// Returns as soon as a kill lands; otherwise exhausts the budget and
/// reports what was observed (`fired` / `plans_diverged` distinguish "the
/// mutant never executed" from "it executed and the results still
/// matched" — the difference between a vacuous and a meaningful
/// survival).
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timeouts_classify_as_hangs_and_everything_else_as_crashes() {
        use ruletest_common::Error;
        assert_eq!(failure_kind(&Error::timeout("deadline")), KillKind::Hang);
        assert_eq!(failure_kind(&Error::internal("boom")), KillKind::Crash);
        assert_eq!(failure_kind(&Error::unsupported("nope")), KillKind::Crash);
        assert_eq!(failure_kind(&Error::budget("rows")), KillKind::Crash);
    }

    #[test]
    fn kill_kind_names_are_stable_and_crashed_covers_both_failures() {
        assert_eq!(KillKind::Diff.name(), "diff");
        assert_eq!(KillKind::Crash.name(), "crash");
        assert_eq!(KillKind::Hang.name(), "hang");
        for (kind, crashed) in [
            (KillKind::Diff, false),
            (KillKind::Crash, true),
            (KillKind::Hang, true),
        ] {
            let kill = DynamicKill {
                seed: 1,
                trials: 1,
                kind,
            };
            assert_eq!(kill.crashed(), crashed, "{}", kind.name());
        }
    }
}

pub fn detect_with_methodology(
    opt: &Arc<Optimizer>,
    rule_name: &str,
    budget: &MutationBudget,
) -> ruletest_common::Result<Detection> {
    let rule = opt.rule_id(rule_name).ok_or_else(|| {
        ruletest_common::Error::unsupported(format!("unknown rule '{rule_name}'"))
    })?;
    // One span per mutant sweep, attributed through the optimizer's
    // telemetry (attached by the campaign). The internal framework below
    // keeps disabled telemetry, so no nested generation spans appear —
    // all optimize flushes land under this mutation span.
    let tel = opt.telemetry().clone();
    let _span = tel.span(ruletest_telemetry::Stage::Mutation);
    let db = opt.database();
    let fw = Framework::with_optimizer(opt.clone());
    let mut det = Detection::default();
    let mut trials = 0u64;
    for seed in 0..budget.seeds {
        let cfg = GenConfig {
            seed,
            max_trials: budget.max_trials,
            pad_ops: budget.pad_ops,
            ..Default::default()
        };
        // Stage 1: the paper's differential-execution oracle on a query
        // where the (mutated) rule fires.
        if let Ok(out) = fw.find_query_for_rule(rule, Strategy::Pattern, &cfg) {
            trials += out.trials as u64;
            det.fired = true;
            let base = opt.optimize(&out.query)?;
            let masked = opt.optimize_with(&out.query, &OptimizerConfig::disabling(&[rule]))?;
            if !base.plan.same_shape(&masked.plan) {
                det.plans_diverged = true;
                let exec = ExecConfig {
                    deadline: ruletest_common::Deadline::after_ms(budget.exec_deadline_ms),
                    ..ExecConfig::default()
                };
                match (
                    execute_profiled(db, &base.plan, &exec, &tel),
                    execute_profiled(db, &masked.plan, &exec, &tel),
                ) {
                    (Ok(a), Ok(b)) => {
                        if !multisets_equal(&a, &b) {
                            det.dynamic = Some(DynamicKill {
                                seed,
                                trials,
                                kind: KillKind::Diff,
                            });
                            return Ok(det);
                        }
                    }
                    (Ok(_), Err(e)) | (Err(e), Ok(_)) => {
                        det.dynamic = Some(DynamicKill {
                            seed,
                            trials,
                            kind: failure_kind(&e),
                        });
                        return Ok(det);
                    }
                    (Err(_), Err(_)) => {}
                }
            }
        } else {
            trials += budget.max_trials as u64;
        }
        // Stage 2: the plan-time crash probe. Generation optimizes each
        // candidate and discards the ones that error — which silently
        // hides mutants whose substitute makes *optimization itself* blow
        // up (e.g. an unbound column failing schema derivation). Replay
        // this seed's candidates: if the mutant-enabled optimizer errors
        // on a pattern-matching query the masked optimizer handles fine,
        // the mutant is implicated — a plan-time differential crash.
        let pattern = opt.rule_pattern(rule).clone();
        let mut rng = Rng::new(seed);
        for _ in 0..budget.max_trials {
            let mut ids = IdGen::new();
            let Some(built) = instantiate_pattern(db, &mut rng, &mut ids, &pattern) else {
                continue;
            };
            if let Err(e) = opt.optimize(&built.tree) {
                if opt
                    .optimize_with(&built.tree, &OptimizerConfig::disabling(&[rule]))
                    .is_ok()
                {
                    det.fired = true;
                    det.plans_diverged = true;
                    det.dynamic = Some(DynamicKill {
                        seed,
                        trials,
                        kind: failure_kind(&e),
                    });
                    return Ok(det);
                }
            }
        }
    }
    Ok(det)
}
