//! The mutation campaign: every selected mutant through the static
//! linter *and* the dynamic differential-execution pipeline.
//!
//! Each mutant gets its own optimizer (the sabotaged rule swapped in
//! for the real one via `Optimizer::new_with_overrides`), a focused
//! static lint pass, and a [`detect_with_methodology`] sweep. Mutants
//! run in parallel via the deterministic `par_map` pool; outcomes come
//! back in catalog order and telemetry is merged afterwards, so the
//! report is byte-identical at any thread count.

use super::detect::{detect_with_methodology, Detection, DynamicKill, MutationBudget};
use super::report::MutationReport;
use super::{mutant_optimizer, BugClass, Mutant, Verdict};
use ruletest_common::{par_map, Result};
use ruletest_storage::Database;
use ruletest_telemetry::{Counter, Telemetry};
use std::sync::Arc;

/// Selection and effort knobs for one campaign run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MutationConfig {
    /// Restrict to one bug class (`--class`).
    pub class: Option<BugClass>,
    /// Stratified sample: keep at most this many mutants *per class*, in
    /// declaration order (`--sample`). Guarantees every class stays
    /// represented, which is what a smoke run wants.
    pub sample: Option<usize>,
    /// Worker threads (0 = sequential).
    pub threads: usize,
    pub budget: MutationBudget,
}

impl MutationConfig {
    /// The mutants this configuration selects, in catalog order.
    pub fn select(&self) -> Vec<&'static Mutant> {
        let mut per_class = [0usize; BugClass::ALL.len()];
        Mutant::all()
            .iter()
            .filter(|m| self.class.is_none_or(|c| m.class == c))
            .filter(|m| {
                let Some(n) = self.sample else { return true };
                // A class absent from `BugClass::ALL` has no stratum to
                // count against; exclude the mutant instead of panicking.
                let Some(slot) = BugClass::ALL.iter().position(|&c| c == m.class) else {
                    return false;
                };
                per_class[slot] += 1;
                per_class[slot] <= n
            })
            .collect()
    }
}

/// What the campaign observed for one mutant.
#[derive(Debug)]
pub struct MutantOutcome {
    pub mutant: &'static Mutant,
    /// The static rule linter flagged the sabotaged rule.
    pub static_caught: bool,
    /// The dynamic sweep's observations.
    pub detection: Detection,
}

impl MutantOutcome {
    pub fn dynamic(&self) -> Option<DynamicKill> {
        self.detection.dynamic
    }

    /// Detected at all, by either layer.
    pub fn killed(&self) -> bool {
        self.static_caught || self.detection.dynamic.is_some()
    }

    /// A lint-escape row: invisible to the static linter, killed by
    /// dynamic differential execution — the measured justification for
    /// running queries at all.
    pub fn lint_escape(&self) -> bool {
        self.detection.dynamic.is_some() && !self.static_caught
    }

    /// Did the methodology do what the mutant's verdict demands?
    pub fn passes_expectation(&self) -> bool {
        match self.mutant.expected {
            Verdict::DetectableDynamic => self.detection.dynamic.is_some(),
            Verdict::DetectableStatic => self.static_caught,
            // A benign mutant reported as a bug by either layer is a
            // false positive.
            Verdict::Benign => self.detection.dynamic.is_none() && !self.static_caught,
        }
    }
}

/// Runs the campaign over `cfg.select()` and assembles the report.
///
/// Telemetry counters (`mutate.killed`, `mutate.survived`,
/// `mutate.lint_escapes`) are incremented in catalog order after the
/// parallel phase completes, keeping metric output deterministic.
pub fn run_mutation_campaign(
    db: &Arc<Database>,
    cfg: &MutationConfig,
    tel: &Telemetry,
) -> Result<MutationReport> {
    let selected = cfg.select();
    let budget = cfg.budget;
    let outcomes: Vec<Result<MutantOutcome>> =
        par_map(cfg.threads, &selected, move |_idx, m: &&'static Mutant| {
            run_one(db.clone(), m, &budget, tel)
        });
    let outcomes: Vec<MutantOutcome> = outcomes.into_iter().collect::<Result<_>>()?;
    for o in &outcomes {
        if o.mutant.expected != Verdict::Benign {
            tel.incr(if o.killed() {
                Counter::MutantsKilled
            } else {
                Counter::MutantsSurvived
            });
        }
        if o.lint_escape() {
            tel.incr(Counter::LintEscapes);
        }
    }
    Ok(MutationReport::from_outcomes(outcomes, &budget))
}

fn run_one(
    db: Arc<Database>,
    mutant: &'static Mutant,
    budget: &MutationBudget,
    tel: &Telemetry,
) -> Result<MutantOutcome> {
    let opt = Arc::new(mutant_optimizer(db, mutant));
    // Attach the campaign telemetry so the detection sweep's spans and
    // per-rule optimize costs are attributed under `mutation`.
    if tel.is_enabled() {
        opt.attach_telemetry(tel.clone());
    }
    let lint = ruletest_lint::lint_rules_focused(&opt, mutant.rule_name)?;
    let static_caught = lint.flagged_rules().iter().any(|r| r == mutant.rule_name);
    let detection = detect_with_methodology(&opt, mutant.rule_name, budget)?;
    Ok(MutantOutcome {
        mutant,
        static_caught,
        detection,
    })
}
