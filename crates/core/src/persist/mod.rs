//! Campaign checkpoint/resume: stage-boundary persistence for the audit
//! pipeline.
//!
//! The optimizer-level snapshot store (`ruletest_optimizer::persist`)
//! answers *invocation* probes across processes; this module persists
//! *campaign progress* — the generated test suite and the bipartite graph
//! — so a campaign killed mid-flight resumes at its last completed stage
//! instead of restarting. Both layers are guarded by the same campaign
//! fingerprint (catalog, rule catalog, seed, scale), so neither can ever
//! serve state produced under a different configuration.
//!
//! The checkpoint protocol keeps the resumed report byte-identical to an
//! uninterrupted run on the deterministic slice:
//!
//! 1. Entering stage *k*, the snapshot store's boundary stamp is set to
//!    *k*: invocation entries recorded during the stage are tagged with
//!    it.
//! 2. At the boundary after stage *k*, the invocation cache is saved
//!    (inside a [`Stage::Persist`] span), the cumulative [`RunReport`] is
//!    snapshotted (it includes that span), and the stage file is written
//!    via atomic rename.
//! 3. A kill mid-stage therefore discards the partial stage from *both*
//!    the report (the base is the previous boundary's snapshot) and the
//!    disk cache (saves only happen at boundaries) — the resumed process
//!    recomputes the whole stage, warm-started by entries the boundary
//!    saves did persist.
//!
//! On `--resume`, disk entries whose boundary stamp is covered by the
//! loaded checkpoint (`boundary <= counted_through`) are already counted
//! in the base report and replay silently; later entries replay their
//! telemetry exactly as a cold compute would.

use crate::framework::Framework;
use crate::generate::{GenConfig, Strategy};
use crate::suite::{
    build_graph, generate_suite, singleton_targets, BipartiteGraph, RuleTarget, SuiteQuery,
    TestSuite,
};
use ruletest_common::{Error, Result, RuleId};
use ruletest_optimizer::persist::{tree_from_json, tree_to_json};
use ruletest_optimizer::SnapshotStore;
use ruletest_telemetry::{Json, RunReport, Stage};
use std::collections::{BTreeSet, HashMap};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Checkpoint layout version; a mismatch invalidates the checkpoint the
/// same way a fingerprint mismatch does.
pub const CHECKPOINT_FORMAT: u64 = 1;

/// Stage names (also the checkpoint file names).
pub const STAGE_SUITE: &str = "suite";
pub const STAGE_GRAPH: &str = "graph";

/// Boundary stamps for the snapshot store: which completed stage an
/// invocation-cache entry belongs to. The final save after the execute
/// stage uses [`BOUNDARY_EXECUTE`] and writes no stage file — compression
/// is pure arithmetic and execution results are never checkpointed.
pub const BOUNDARY_SUITE: u64 = 1;
pub const BOUNDARY_GRAPH: u64 = 2;
pub const BOUNDARY_EXECUTE: u64 = 3;

fn io_err(what: &str, e: io::Error) -> Error {
    Error::unsupported(format!("{what}: {e}"))
}

fn malformed(what: &str) -> Error {
    Error::unsupported(format!("campaign checkpoint: malformed {what}"))
}

/// Atomic write: temp sibling + rename, same contract as the optimizer
/// snapshot files — a kill mid-write leaves the previous file intact.
fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------
// Parameters and fingerprinting.

/// The audit-campaign parameters that, together with the campaign
/// fingerprint, identify a checkpoint. Two runs with the same fingerprint
/// but different parameters (a different seed, `k`, target count, or
/// generation budget) must not consume each other's checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignParams {
    /// Number of (singleton) rule targets.
    pub rules: usize,
    /// Queries per target.
    pub k: usize,
    /// Generation seed.
    pub seed: u64,
    /// Padding operators above each instantiated pattern.
    pub pad_ops: usize,
    /// Generation trial budget per problem.
    pub max_trials: usize,
}

impl CampaignParams {
    /// The generation configuration these parameters induce.
    pub fn gen_config(&self) -> GenConfig {
        GenConfig {
            seed: self.seed,
            pad_ops: self.pad_ops,
            max_trials: self.max_trials,
            ..GenConfig::default()
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rules", Json::count(self.rules as u64)),
            ("k", Json::count(self.k as u64)),
            ("seed", Json::count(self.seed)),
            ("pad_ops", Json::count(self.pad_ops as u64)),
            ("max_trials", Json::count(self.max_trials as u64)),
        ])
    }
}

// ---------------------------------------------------------------------
// Suite / graph serialization. Floats are hex bit patterns for the same
// reason as in the optimizer snapshot: costs must survive bit-exactly.

fn f64_hex(f: f64) -> Json {
    Json::str(format!("{:016x}", f.to_bits()))
}

fn f64_unhex(j: &Json, what: &str) -> Result<f64> {
    j.as_str()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .map(f64::from_bits)
        .ok_or_else(|| malformed(what))
}

fn usize_from(j: &Json, what: &str) -> Result<usize> {
    j.as_u64()
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| malformed(what))
}

fn rule_id_from(j: &Json, what: &str) -> Result<RuleId> {
    j.as_u64()
        .and_then(|v| u16::try_from(v).ok())
        .map(RuleId)
        .ok_or_else(|| malformed(what))
}

fn target_to_json(t: &RuleTarget) -> Json {
    match t {
        RuleTarget::Single(r) => Json::obj(vec![("s", Json::count(u64::from(r.0)))]),
        RuleTarget::Pair(a, b) => Json::obj(vec![(
            "p",
            Json::Arr(vec![
                Json::count(u64::from(a.0)),
                Json::count(u64::from(b.0)),
            ]),
        )]),
    }
}

fn target_from_json(j: &Json) -> Result<RuleTarget> {
    if let Some(s) = j.get("s") {
        return Ok(RuleTarget::Single(rule_id_from(s, "target")?));
    }
    if let Some([a, b]) = j.get("p").and_then(Json::as_arr) {
        return Ok(RuleTarget::Pair(
            rule_id_from(a, "target")?,
            rule_id_from(b, "target")?,
        ));
    }
    Err(malformed("target"))
}

fn targets_to_json(targets: &[RuleTarget]) -> Json {
    Json::Arr(targets.iter().map(target_to_json).collect())
}

fn targets_from_json(j: &Json, what: &str) -> Result<Vec<RuleTarget>> {
    j.as_arr()
        .ok_or_else(|| malformed(what))?
        .iter()
        .map(target_from_json)
        .collect()
}

fn get<'a>(j: &'a Json, field: &str) -> Result<&'a Json> {
    j.get(field).ok_or_else(|| malformed(field))
}

/// Serializes a generated test suite for the `suite` checkpoint.
pub fn suite_to_json(suite: &TestSuite) -> Json {
    let queries = suite
        .queries
        .iter()
        .map(|q| {
            Json::obj(vec![
                ("tree", tree_to_json(&q.tree)),
                ("sql", Json::str(q.sql.clone())),
                (
                    "rule_set",
                    Json::Arr(
                        q.rule_set
                            .iter()
                            .map(|r| Json::count(u64::from(r.0)))
                            .collect(),
                    ),
                ),
                ("cost", f64_hex(q.cost)),
                ("generated_for", Json::count(q.generated_for as u64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("targets", targets_to_json(&suite.targets)),
        ("k", Json::count(suite.k as u64)),
        ("seed", Json::count(suite.seed)),
        ("queries", Json::Arr(queries)),
    ])
}

/// Inverse of [`suite_to_json`].
pub fn suite_from_json(j: &Json) -> Result<TestSuite> {
    let queries = get(j, "queries")?
        .as_arr()
        .ok_or_else(|| malformed("queries"))?
        .iter()
        .map(|q| {
            let rule_set: BTreeSet<RuleId> = get(q, "rule_set")?
                .as_arr()
                .ok_or_else(|| malformed("rule_set"))?
                .iter()
                .map(|r| rule_id_from(r, "rule_set"))
                .collect::<Result<_>>()?;
            Ok(SuiteQuery {
                tree: tree_from_json(get(q, "tree")?).map_err(Error::unsupported)?,
                sql: get(q, "sql")?
                    .as_str()
                    .ok_or_else(|| malformed("sql"))?
                    .to_string(),
                rule_set,
                cost: f64_unhex(get(q, "cost")?, "cost")?,
                generated_for: usize_from(get(q, "generated_for")?, "generated_for")?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(TestSuite {
        targets: targets_from_json(get(j, "targets")?, "targets")?,
        k: usize_from(get(j, "k")?, "k")?,
        queries,
        seed: get(j, "seed")?.as_u64().ok_or_else(|| malformed("seed"))?,
    })
}

/// Serializes a bipartite graph for the `graph` checkpoint. Edges are
/// written sorted by `(target, query)` so the checkpoint bytes are
/// deterministic.
pub fn graph_to_json(graph: &BipartiteGraph) -> Json {
    let mut edges: Vec<(&(usize, usize), &f64)> = graph.edges.iter().collect();
    edges.sort_by_key(|(k, _)| **k);
    Json::obj(vec![
        ("targets", targets_to_json(&graph.targets)),
        ("k", Json::count(graph.k as u64)),
        (
            "node_cost",
            Json::Arr(graph.node_cost.iter().map(|&c| f64_hex(c)).collect()),
        ),
        (
            "adjacency",
            Json::Arr(
                graph
                    .adjacency
                    .iter()
                    .map(|adj| Json::Arr(adj.iter().map(|&q| Json::count(q as u64)).collect()))
                    .collect(),
            ),
        ),
        (
            "edges",
            Json::Arr(
                edges
                    .into_iter()
                    .map(|(&(t, q), &c)| {
                        Json::obj(vec![
                            ("t", Json::count(t as u64)),
                            ("q", Json::count(q as u64)),
                            ("c", f64_hex(c)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "generated_for",
            Json::Arr(
                graph
                    .generated_for
                    .iter()
                    .map(|&g| Json::count(g as u64))
                    .collect(),
            ),
        ),
        ("optimizer_calls", Json::count(graph.optimizer_calls)),
    ])
}

/// Inverse of [`graph_to_json`].
pub fn graph_from_json(j: &Json) -> Result<BipartiteGraph> {
    let node_cost = get(j, "node_cost")?
        .as_arr()
        .ok_or_else(|| malformed("node_cost"))?
        .iter()
        .map(|c| f64_unhex(c, "node_cost"))
        .collect::<Result<Vec<_>>>()?;
    let adjacency = get(j, "adjacency")?
        .as_arr()
        .ok_or_else(|| malformed("adjacency"))?
        .iter()
        .map(|adj| {
            adj.as_arr()
                .ok_or_else(|| malformed("adjacency"))?
                .iter()
                .map(|q| usize_from(q, "adjacency"))
                .collect::<Result<Vec<_>>>()
        })
        .collect::<Result<Vec<_>>>()?;
    let edges = get(j, "edges")?
        .as_arr()
        .ok_or_else(|| malformed("edges"))?
        .iter()
        .map(|e| {
            Ok((
                (
                    usize_from(get(e, "t")?, "edge target")?,
                    usize_from(get(e, "q")?, "edge query")?,
                ),
                f64_unhex(get(e, "c")?, "edge cost")?,
            ))
        })
        .collect::<Result<HashMap<_, _>>>()?;
    let generated_for = get(j, "generated_for")?
        .as_arr()
        .ok_or_else(|| malformed("generated_for"))?
        .iter()
        .map(|g| usize_from(g, "generated_for"))
        .collect::<Result<Vec<_>>>()?;
    Ok(BipartiteGraph {
        targets: targets_from_json(get(j, "targets")?, "targets")?,
        k: usize_from(get(j, "k")?, "k")?,
        node_cost,
        adjacency,
        edges,
        generated_for,
        optimizer_calls: get(j, "optimizer_calls")?
            .as_u64()
            .ok_or_else(|| malformed("optimizer_calls"))?,
    })
}

// ---------------------------------------------------------------------
// The checkpoint store.

/// Stage-boundary checkpoint files under `<cache-dir>/checkpoint/`. Each
/// stage file carries the format version, campaign fingerprint, campaign
/// parameters, the boundary stamp, the stage payload, and the cumulative
/// run-report snapshot at that boundary.
pub struct CampaignStore {
    dir: PathBuf,
    fingerprint: String,
    params: String,
    metrics: bool,
}

impl CampaignStore {
    /// Opens (creating if needed) the checkpoint directory for a campaign
    /// identified by `fingerprint` and `params`. `metrics` records whether
    /// telemetry is observing the campaign — it is part of the checkpoint
    /// identity, because a metrics-enabled resume merging the empty base
    /// report of an unobserved original would claim zero invocations for
    /// stages that very much ran (and trip `report --check`). Switching
    /// telemetry on or off between runs recomputes instead.
    pub fn open(
        cache_dir: &Path,
        fingerprint: u64,
        params: &CampaignParams,
        metrics: bool,
    ) -> io::Result<Self> {
        let dir = cache_dir.join("checkpoint");
        fs::create_dir_all(&dir)?;
        Ok(CampaignStore {
            dir,
            fingerprint: format!("{fingerprint:016x}"),
            params: params.to_json().to_string_compact(),
            metrics,
        })
    }

    fn stage_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("stage-{name}.json"))
    }

    /// Writes the checkpoint for one completed stage atomically.
    pub fn save_stage(
        &self,
        name: &str,
        boundary: u64,
        payload: Json,
        report: &RunReport,
    ) -> io::Result<()> {
        let params = Json::parse(&self.params).expect("params round-trip");
        let doc = Json::obj(vec![
            ("format", Json::count(CHECKPOINT_FORMAT)),
            ("fingerprint", Json::str(self.fingerprint.clone())),
            ("params", params),
            ("metrics", Json::Bool(self.metrics)),
            ("boundary", Json::count(boundary)),
            ("payload", payload),
            ("report", report.to_json()),
        ]);
        write_atomic(&self.stage_path(name), doc.to_string_compact().as_bytes())
    }

    /// Loads a stage checkpoint, or `None` when it is absent, unreadable,
    /// or was written by a different format version, fingerprint, or
    /// parameter set — a stale checkpoint silently falls back to
    /// recomputation, never to an error.
    pub fn load_stage(&self, name: &str) -> Option<(u64, Json, RunReport)> {
        let text = fs::read_to_string(self.stage_path(name)).ok()?;
        let doc = Json::parse(&text).ok()?;
        if doc.get("format")?.as_u64()? != CHECKPOINT_FORMAT {
            return None;
        }
        if doc.get("fingerprint")?.as_str()? != self.fingerprint {
            return None;
        }
        if doc.get("params")?.to_string_compact() != self.params {
            return None;
        }
        if doc.get("metrics")?.as_bool()? != self.metrics {
            return None;
        }
        let boundary = doc.get("boundary")?.as_u64()?;
        let report = RunReport::from_json_value(doc.get("report")?).ok()?;
        Some((boundary, doc.get("payload")?.clone(), report))
    }

    /// Removes all stage files (a fresh non-resume run must not leave a
    /// previous campaign's checkpoints behind for a later `--resume`).
    pub fn clear(&self) -> io::Result<()> {
        for stage in [STAGE_SUITE, STAGE_GRAPH] {
            match fs::remove_file(self.stage_path(stage)) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The checkpointed campaign driver.

/// The suite and graph an audit campaign runs its compression and
/// correctness stages over, plus which stages came from checkpoints.
pub struct CampaignRun {
    pub suite: TestSuite,
    pub graph: BipartiteGraph,
    /// Stage names answered from a checkpoint instead of recomputed.
    pub resumed: Vec<&'static str>,
}

/// Runs the generation and graph stages of an audit campaign with
/// optional persistence (`cache_dir`) and resume.
///
/// With a cache dir, the optimizer's snapshot store is attached (warm
/// invocation entries answer probes without recomputing) and each
/// completed stage is checkpointed; with `resume`, valid checkpoints are
/// loaded instead of recomputed and their report snapshot becomes the
/// framework's base report. Returns `None` when `stop_after` names the
/// last completed stage — the test hook simulating a `kill -9` at a
/// stage boundary (a kill mid-stage is equivalent to a kill at the
/// previous boundary: neither the report nor the disk cache retains
/// partial-stage state).
///
/// On return, the snapshot store's boundary is set to
/// [`BOUNDARY_EXECUTE`]; the caller runs compression/execution and
/// finishes with [`final_persist`].
pub fn run_checkpointed_campaign(
    fw: &Framework,
    params: &CampaignParams,
    cache_dir: Option<&Path>,
    resume: bool,
    stop_after: Option<&str>,
) -> Result<Option<CampaignRun>> {
    let fingerprint = fw.campaign_fingerprint();
    let cstore = match cache_dir {
        Some(dir) => Some(
            CampaignStore::open(dir, fingerprint, params, fw.telemetry.is_enabled())
                .map_err(|e| io_err("opening checkpoint dir", e))?,
        ),
        None => None,
    };
    // Load usable checkpoints before opening the snapshot store: the warm
    // store must know which boundary the base report already covers. A
    // graph checkpoint is only usable together with the suite it was
    // derived from.
    let (suite_ck, graph_ck) = match (&cstore, resume) {
        (Some(cs), true) => {
            let suite_ck = cs.load_stage(STAGE_SUITE);
            let graph_ck = if suite_ck.is_some() {
                cs.load_stage(STAGE_GRAPH)
            } else {
                None
            };
            (suite_ck, graph_ck)
        }
        _ => (None, None),
    };
    if let (Some(cs), false) = (&cstore, resume) {
        cs.clear()
            .map_err(|e| io_err("clearing stale checkpoints", e))?;
    }
    let counted_through = graph_ck
        .as_ref()
        .or(suite_ck.as_ref())
        .map(|(boundary, _, _)| *boundary);
    let store = match cache_dir {
        Some(dir) => {
            let s = Arc::new(
                SnapshotStore::open(dir, fingerprint, counted_through)
                    .map_err(|e| io_err("opening cache snapshot", e))?,
            );
            fw.optimizer.attach_snapshot_store(Arc::clone(&s));
            Some(s)
        }
        None => None,
    };
    let mut resumed = Vec::new();
    if suite_ck.is_some() {
        resumed.push(STAGE_SUITE);
    }
    if graph_ck.is_some() {
        resumed.push(STAGE_GRAPH);
    }
    // The newest checkpoint's report snapshot is cumulative through its
    // boundary — it becomes the base the resumed process builds on.
    if let Some((_, _, report)) = graph_ck.as_ref().or(suite_ck.as_ref()) {
        fw.set_report_base(report.clone());
    }

    // Stage 1: suite generation.
    let suite = match &suite_ck {
        Some((_, payload, _)) => suite_from_json(payload)?,
        None => {
            if let Some(s) = &store {
                s.set_boundary(BOUNDARY_SUITE);
            }
            let suite = generate_suite(
                fw,
                singleton_targets(fw, params.rules),
                params.k,
                Strategy::Pattern,
                &params.gen_config(),
            )?;
            checkpoint(
                fw,
                &cstore,
                STAGE_SUITE,
                BOUNDARY_SUITE,
                suite_to_json(&suite),
            )?;
            suite
        }
    };
    if stop_after == Some(STAGE_SUITE) {
        return Ok(None);
    }

    // Stage 2: bipartite graph.
    let graph = match &graph_ck {
        Some((_, payload, _)) => graph_from_json(payload)?,
        None => {
            if let Some(s) = &store {
                s.set_boundary(BOUNDARY_GRAPH);
            }
            let graph = build_graph(fw, &suite)?;
            checkpoint(
                fw,
                &cstore,
                STAGE_GRAPH,
                BOUNDARY_GRAPH,
                graph_to_json(&graph),
            )?;
            graph
        }
    };
    if stop_after == Some(STAGE_GRAPH) {
        return Ok(None);
    }
    // Compression is pure arithmetic (always recomputed); execution
    // entries recorded from here on belong to the final boundary.
    if let Some(s) = &store {
        s.set_boundary(BOUNDARY_EXECUTE);
    }
    Ok(Some(CampaignRun {
        suite,
        graph,
        resumed,
    }))
}

/// One stage boundary: persist the invocation cache (inside the persist
/// span — the span count is part of the deterministic slice and must be
/// identical for cold, warm, and resumed runs), then snapshot the
/// cumulative report (which includes that span), then write the stage
/// file.
fn checkpoint(
    fw: &Framework,
    cstore: &Option<CampaignStore>,
    name: &str,
    boundary: u64,
    payload: Json,
) -> Result<()> {
    let Some(cs) = cstore else {
        return Ok(());
    };
    {
        let _span = fw.telemetry.span(Stage::Persist);
        fw.optimizer
            .persist_cache()
            .map_err(|e| io_err("persisting invocation cache", e))?;
    }
    let report = fw.run_report();
    cs.save_stage(name, boundary, payload, &report)
        .map_err(|e| io_err("writing stage checkpoint", e))
}

/// The final invocation-cache save after the execute stage. No stage file
/// follows it: a completed campaign's checkpoints stay at the graph
/// boundary, and the boundary stamps on the execute-stage entries tell a
/// later resume they were never counted in any checkpointed report.
pub fn final_persist(fw: &Framework) -> Result<u64> {
    if fw.optimizer.snapshot_store().is_none() {
        return Ok(0);
    }
    let _span = fw.telemetry.span(Stage::Persist);
    fw.optimizer
        .persist_cache()
        .map_err(|e| io_err("persisting invocation cache", e))
}
