//! Campaign checkpoint/resume: stage-boundary persistence for the audit
//! pipeline.
//!
//! The optimizer-level snapshot store (`ruletest_optimizer::persist`)
//! answers *invocation* probes across processes; this module persists
//! *campaign progress* — the generated test suite and the bipartite graph
//! — so a campaign killed mid-flight resumes at its last completed stage
//! instead of restarting. Both layers are guarded by the same campaign
//! fingerprint (catalog, rule catalog, seed, scale), so neither can ever
//! serve state produced under a different configuration.
//!
//! The checkpoint protocol keeps the resumed report byte-identical to an
//! uninterrupted run on the deterministic slice:
//!
//! 1. Entering stage *k*, the snapshot store's boundary stamp is set to
//!    *k*: invocation entries recorded during the stage are tagged with
//!    it.
//! 2. At the boundary after stage *k*, the invocation cache is saved
//!    (inside a [`Stage::Persist`] span), the cumulative [`RunReport`] is
//!    snapshotted (it includes that span), and the stage file is written
//!    via atomic rename.
//! 3. A kill mid-stage therefore discards the partial stage from *both*
//!    the report (the base is the previous boundary's snapshot) and the
//!    disk cache (saves only happen at boundaries) — the resumed process
//!    recomputes the whole stage, warm-started by entries the boundary
//!    saves did persist.
//!
//! On `--resume`, disk entries whose boundary stamp is covered by the
//! loaded checkpoint (`boundary <= counted_through`) are already counted
//! in the base report and replay silently; later entries replay their
//! telemetry exactly as a cold compute would.

use crate::framework::Framework;
use crate::generate::{GenConfig, Strategy};
use crate::suite::{
    build_graph, generate_suite, singleton_targets, BipartiteGraph, RuleTarget, SuiteQuery,
    TestSuite,
};
use crate::supervise::{build_graph_supervised, generate_suite_supervised, Quarantine};
use ruletest_common::{Error, Result, RuleId};
use ruletest_optimizer::persist::{tree_from_json, tree_to_json};
use ruletest_optimizer::SnapshotStore;
use ruletest_telemetry::{Json, RunReport, Stage};
use std::collections::{BTreeSet, HashMap};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Checkpoint layout version; a mismatch invalidates the checkpoint the
/// same way a fingerprint mismatch does.
pub const CHECKPOINT_FORMAT: u64 = 1;

/// Stage names (also the checkpoint file names).
pub const STAGE_SUITE: &str = "suite";
pub const STAGE_GRAPH: &str = "graph";

/// Boundary stamps for the snapshot store: which completed stage an
/// invocation-cache entry belongs to. The final save after the execute
/// stage uses [`BOUNDARY_EXECUTE`] and writes no stage file — compression
/// is pure arithmetic and execution results are never checkpointed.
pub const BOUNDARY_SUITE: u64 = 1;
pub const BOUNDARY_GRAPH: u64 = 2;
pub const BOUNDARY_EXECUTE: u64 = 3;

fn io_err(what: &str, e: io::Error) -> Error {
    Error::unsupported(format!("{what}: {e}"))
}

fn malformed(what: &str) -> Error {
    Error::unsupported(format!("campaign checkpoint: malformed {what}"))
}

/// Atomic write: temp sibling + rename, same contract as the optimizer
/// snapshot files — a kill mid-write leaves the previous file intact.
fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

// ---------------------------------------------------------------------
// Parameters and fingerprinting.

/// The audit-campaign parameters that, together with the campaign
/// fingerprint, identify a checkpoint. Two runs with the same fingerprint
/// but different parameters (a different seed, `k`, target count, or
/// generation budget) must not consume each other's checkpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignParams {
    /// Number of (singleton) rule targets.
    pub rules: usize,
    /// Queries per target.
    pub k: usize,
    /// Generation seed.
    pub seed: u64,
    /// Padding operators above each instantiated pattern.
    pub pad_ops: usize,
    /// Generation trial budget per problem.
    pub max_trials: usize,
}

impl CampaignParams {
    /// The generation configuration these parameters induce.
    pub fn gen_config(&self) -> GenConfig {
        GenConfig {
            seed: self.seed,
            pad_ops: self.pad_ops,
            max_trials: self.max_trials,
            ..GenConfig::default()
        }
    }

    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("rules", Json::count(self.rules as u64)),
            ("k", Json::count(self.k as u64)),
            ("seed", Json::count(self.seed)),
            ("pad_ops", Json::count(self.pad_ops as u64)),
            ("max_trials", Json::count(self.max_trials as u64)),
        ])
    }
}

// ---------------------------------------------------------------------
// Suite / graph serialization. Floats are hex bit patterns for the same
// reason as in the optimizer snapshot: costs must survive bit-exactly.

fn f64_hex(f: f64) -> Json {
    Json::str(format!("{:016x}", f.to_bits()))
}

fn f64_unhex(j: &Json, what: &str) -> Result<f64> {
    j.as_str()
        .and_then(|s| u64::from_str_radix(s, 16).ok())
        .map(f64::from_bits)
        .ok_or_else(|| malformed(what))
}

fn usize_from(j: &Json, what: &str) -> Result<usize> {
    j.as_u64()
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| malformed(what))
}

fn rule_id_from(j: &Json, what: &str) -> Result<RuleId> {
    j.as_u64()
        .and_then(|v| u16::try_from(v).ok())
        .map(RuleId)
        .ok_or_else(|| malformed(what))
}

fn target_to_json(t: &RuleTarget) -> Json {
    match t {
        RuleTarget::Single(r) => Json::obj(vec![("s", Json::count(u64::from(r.0)))]),
        RuleTarget::Pair(a, b) => Json::obj(vec![(
            "p",
            Json::Arr(vec![
                Json::count(u64::from(a.0)),
                Json::count(u64::from(b.0)),
            ]),
        )]),
    }
}

fn target_from_json(j: &Json) -> Result<RuleTarget> {
    if let Some(s) = j.get("s") {
        return Ok(RuleTarget::Single(rule_id_from(s, "target")?));
    }
    if let Some([a, b]) = j.get("p").and_then(Json::as_arr) {
        return Ok(RuleTarget::Pair(
            rule_id_from(a, "target")?,
            rule_id_from(b, "target")?,
        ));
    }
    Err(malformed("target"))
}

fn targets_to_json(targets: &[RuleTarget]) -> Json {
    Json::Arr(targets.iter().map(target_to_json).collect())
}

fn targets_from_json(j: &Json, what: &str) -> Result<Vec<RuleTarget>> {
    j.as_arr()
        .ok_or_else(|| malformed(what))?
        .iter()
        .map(target_from_json)
        .collect()
}

fn get<'a>(j: &'a Json, field: &str) -> Result<&'a Json> {
    j.get(field).ok_or_else(|| malformed(field))
}

/// Serializes a generated test suite for the `suite` checkpoint.
pub fn suite_to_json(suite: &TestSuite) -> Json {
    let queries = suite
        .queries
        .iter()
        .map(|q| {
            Json::obj(vec![
                ("tree", tree_to_json(&q.tree)),
                ("sql", Json::str(q.sql.clone())),
                (
                    "rule_set",
                    Json::Arr(
                        q.rule_set
                            .iter()
                            .map(|r| Json::count(u64::from(r.0)))
                            .collect(),
                    ),
                ),
                ("cost", f64_hex(q.cost)),
                ("generated_for", Json::count(q.generated_for as u64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("targets", targets_to_json(&suite.targets)),
        ("k", Json::count(suite.k as u64)),
        ("seed", Json::count(suite.seed)),
        ("queries", Json::Arr(queries)),
    ])
}

/// Inverse of [`suite_to_json`].
pub fn suite_from_json(j: &Json) -> Result<TestSuite> {
    let queries = get(j, "queries")?
        .as_arr()
        .ok_or_else(|| malformed("queries"))?
        .iter()
        .map(|q| {
            let rule_set: BTreeSet<RuleId> = get(q, "rule_set")?
                .as_arr()
                .ok_or_else(|| malformed("rule_set"))?
                .iter()
                .map(|r| rule_id_from(r, "rule_set"))
                .collect::<Result<_>>()?;
            Ok(SuiteQuery {
                tree: tree_from_json(get(q, "tree")?).map_err(Error::unsupported)?,
                sql: get(q, "sql")?
                    .as_str()
                    .ok_or_else(|| malformed("sql"))?
                    .to_string(),
                rule_set,
                cost: f64_unhex(get(q, "cost")?, "cost")?,
                generated_for: usize_from(get(q, "generated_for")?, "generated_for")?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(TestSuite {
        targets: targets_from_json(get(j, "targets")?, "targets")?,
        k: usize_from(get(j, "k")?, "k")?,
        queries,
        seed: get(j, "seed")?.as_u64().ok_or_else(|| malformed("seed"))?,
    })
}

/// Serializes a bipartite graph for the `graph` checkpoint. Edges are
/// written sorted by `(target, query)` so the checkpoint bytes are
/// deterministic.
pub fn graph_to_json(graph: &BipartiteGraph) -> Json {
    let mut edges: Vec<(&(usize, usize), &f64)> = graph.edges.iter().collect();
    edges.sort_by_key(|(k, _)| **k);
    Json::obj(vec![
        ("targets", targets_to_json(&graph.targets)),
        ("k", Json::count(graph.k as u64)),
        (
            "node_cost",
            Json::Arr(graph.node_cost.iter().map(|&c| f64_hex(c)).collect()),
        ),
        (
            "adjacency",
            Json::Arr(
                graph
                    .adjacency
                    .iter()
                    .map(|adj| Json::Arr(adj.iter().map(|&q| Json::count(q as u64)).collect()))
                    .collect(),
            ),
        ),
        (
            "edges",
            Json::Arr(
                edges
                    .into_iter()
                    .map(|(&(t, q), &c)| {
                        Json::obj(vec![
                            ("t", Json::count(t as u64)),
                            ("q", Json::count(q as u64)),
                            ("c", f64_hex(c)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "generated_for",
            Json::Arr(
                graph
                    .generated_for
                    .iter()
                    .map(|&g| Json::count(g as u64))
                    .collect(),
            ),
        ),
        ("optimizer_calls", Json::count(graph.optimizer_calls)),
    ])
}

/// Inverse of [`graph_to_json`].
pub fn graph_from_json(j: &Json) -> Result<BipartiteGraph> {
    let node_cost = get(j, "node_cost")?
        .as_arr()
        .ok_or_else(|| malformed("node_cost"))?
        .iter()
        .map(|c| f64_unhex(c, "node_cost"))
        .collect::<Result<Vec<_>>>()?;
    let adjacency = get(j, "adjacency")?
        .as_arr()
        .ok_or_else(|| malformed("adjacency"))?
        .iter()
        .map(|adj| {
            adj.as_arr()
                .ok_or_else(|| malformed("adjacency"))?
                .iter()
                .map(|q| usize_from(q, "adjacency"))
                .collect::<Result<Vec<_>>>()
        })
        .collect::<Result<Vec<_>>>()?;
    let edges = get(j, "edges")?
        .as_arr()
        .ok_or_else(|| malformed("edges"))?
        .iter()
        .map(|e| {
            Ok((
                (
                    usize_from(get(e, "t")?, "edge target")?,
                    usize_from(get(e, "q")?, "edge query")?,
                ),
                f64_unhex(get(e, "c")?, "edge cost")?,
            ))
        })
        .collect::<Result<HashMap<_, _>>>()?;
    let generated_for = get(j, "generated_for")?
        .as_arr()
        .ok_or_else(|| malformed("generated_for"))?
        .iter()
        .map(|g| usize_from(g, "generated_for"))
        .collect::<Result<Vec<_>>>()?;
    Ok(BipartiteGraph {
        targets: targets_from_json(get(j, "targets")?, "targets")?,
        k: usize_from(get(j, "k")?, "k")?,
        node_cost,
        adjacency,
        edges,
        generated_for,
        optimizer_calls: get(j, "optimizer_calls")?
            .as_u64()
            .ok_or_else(|| malformed("optimizer_calls"))?,
    })
}

// ---------------------------------------------------------------------
// The checkpoint store.

/// Stage-boundary checkpoint files under `<cache-dir>/checkpoint/`. Each
/// stage file carries the format version, campaign fingerprint, campaign
/// parameters, the boundary stamp, the stage payload, and the cumulative
/// run-report snapshot at that boundary.
pub struct CampaignStore {
    dir: PathBuf,
    fingerprint: String,
    params: String,
    metrics: bool,
}

impl CampaignStore {
    /// Opens (creating if needed) the checkpoint directory for a campaign
    /// identified by `fingerprint` and `params`. `metrics` records whether
    /// telemetry is observing the campaign — it is part of the checkpoint
    /// identity, because a metrics-enabled resume merging the empty base
    /// report of an unobserved original would claim zero invocations for
    /// stages that very much ran (and trip `report --check`). Switching
    /// telemetry on or off between runs recomputes instead.
    pub fn open(
        cache_dir: &Path,
        fingerprint: u64,
        params: &CampaignParams,
        metrics: bool,
    ) -> io::Result<Self> {
        let dir = cache_dir.join("checkpoint");
        fs::create_dir_all(&dir)?;
        Ok(CampaignStore {
            dir,
            fingerprint: format!("{fingerprint:016x}"),
            params: params.to_json().to_string_compact(),
            metrics,
        })
    }

    fn stage_path(&self, name: &str) -> PathBuf {
        self.dir.join(format!("stage-{name}.json"))
    }

    /// Writes the checkpoint for one completed stage atomically.
    pub fn save_stage(
        &self,
        name: &str,
        boundary: u64,
        payload: Json,
        report: &RunReport,
    ) -> io::Result<()> {
        let params = Json::parse(&self.params).expect("params round-trip");
        let doc = Json::obj(vec![
            ("format", Json::count(CHECKPOINT_FORMAT)),
            ("fingerprint", Json::str(self.fingerprint.clone())),
            ("params", params),
            ("metrics", Json::Bool(self.metrics)),
            ("boundary", Json::count(boundary)),
            ("payload", payload),
            ("report", report.to_json()),
        ]);
        write_atomic(&self.stage_path(name), doc.to_string_compact().as_bytes())
    }

    /// Loads a stage checkpoint, or `None` when it is absent, unreadable,
    /// or was written by a different format version, fingerprint, or
    /// parameter set — a stale checkpoint silently falls back to
    /// recomputation, never to an error. A file that exists but does not
    /// parse (truncated by a crash mid-write of a non-atomic editor, disk
    /// corruption) is *warned about* before the cold-start fallback, so
    /// the operator learns the resume was partial.
    pub fn load_stage(&self, name: &str) -> Option<(u64, Json, RunReport)> {
        let text = fs::read_to_string(self.stage_path(name)).ok()?;
        let doc = match Json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!(
                    "warning: campaign checkpoint stage-{name}.json is corrupted ({e}); recomputing the stage"
                );
                return None;
            }
        };
        if doc.get("format")?.as_u64()? != CHECKPOINT_FORMAT {
            return None;
        }
        if doc.get("fingerprint")?.as_str()? != self.fingerprint {
            return None;
        }
        if doc.get("params")?.to_string_compact() != self.params {
            return None;
        }
        if doc.get("metrics")?.as_bool()? != self.metrics {
            return None;
        }
        let boundary = doc.get("boundary")?.as_u64()?;
        let report = RunReport::from_json_value(doc.get("report")?).ok()?;
        Some((boundary, doc.get("payload")?.clone(), report))
    }

    fn quarantine_path(&self) -> PathBuf {
        self.dir.join("quarantine.json")
    }

    /// Persists the campaign's quarantine atomically, guarded by the same
    /// format/fingerprint/params identity as the stage files (quarantine
    /// fingerprints are only meaningful for the campaign that wrote them).
    /// Telemetry on/off is deliberately *not* part of the identity: the
    /// quarantine records poisoned inputs, not counted work.
    pub fn save_quarantine(&self, quarantine: &Quarantine) -> io::Result<()> {
        let params = Json::parse(&self.params).expect("params round-trip");
        let doc = Json::obj(vec![
            ("format", Json::count(CHECKPOINT_FORMAT)),
            ("fingerprint", Json::str(self.fingerprint.clone())),
            ("params", params),
            ("quarantine", quarantine.to_json()),
        ]);
        write_atomic(&self.quarantine_path(), doc.to_string_compact().as_bytes())
    }

    /// Loads the persisted quarantine; absent, unreadable, or mismatched
    /// files yield an empty quarantine (same soft-fail contract as
    /// [`CampaignStore::load_stage`], with the same corruption warning).
    pub fn load_quarantine(&self) -> Quarantine {
        let Ok(text) = fs::read_to_string(self.quarantine_path()) else {
            return Quarantine::new();
        };
        let doc = match Json::parse(&text) {
            Ok(doc) => doc,
            Err(e) => {
                eprintln!(
                    "warning: campaign quarantine.json is corrupted ({e}); starting with an empty quarantine"
                );
                return Quarantine::new();
            }
        };
        let valid = doc.get("format").and_then(Json::as_u64) == Some(CHECKPOINT_FORMAT)
            && doc.get("fingerprint").and_then(Json::as_str) == Some(self.fingerprint.as_str())
            && doc
                .get("params")
                .map(|p| p.to_string_compact() == self.params)
                .unwrap_or(false);
        if !valid {
            return Quarantine::new();
        }
        doc.get("quarantine")
            .and_then(|q| Quarantine::from_json(q).ok())
            .unwrap_or_default()
    }

    /// Removes all stage files and the quarantine (a fresh non-resume run
    /// must not leave a previous campaign's checkpoints behind for a
    /// later `--resume`).
    pub fn clear(&self) -> io::Result<()> {
        for path in [
            self.stage_path(STAGE_SUITE),
            self.stage_path(STAGE_GRAPH),
            self.quarantine_path(),
        ] {
            match fs::remove_file(&path) {
                Ok(()) => {}
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The checkpointed campaign driver.

/// The suite and graph an audit campaign runs its compression and
/// correctness stages over, plus which stages came from checkpoints.
pub struct CampaignRun {
    pub suite: TestSuite,
    pub graph: BipartiteGraph,
    /// Stage names answered from a checkpoint instead of recomputed.
    pub resumed: Vec<&'static str>,
    /// The checkpoint store, when one is attached — the caller uses it to
    /// persist the final quarantine after the execute stage.
    pub store: Option<CampaignStore>,
}

/// Runs the generation and graph stages of an audit campaign with
/// optional persistence (`cache_dir`) and resume.
///
/// With a cache dir, the optimizer's snapshot store is attached (warm
/// invocation entries answer probes without recomputing) and each
/// completed stage is checkpointed; with `resume`, valid checkpoints are
/// loaded instead of recomputed and their report snapshot becomes the
/// framework's base report. Returns `None` when `stop_after` names the
/// last completed stage — the test hook simulating a `kill -9` at a
/// stage boundary (a kill mid-stage is equivalent to a kill at the
/// previous boundary: neither the report nor the disk cache retains
/// partial-stage state).
///
/// On return, the snapshot store's boundary is set to
/// [`BOUNDARY_EXECUTE`]; the caller runs compression/execution and
/// finishes with [`final_persist`].
pub fn run_checkpointed_campaign(
    fw: &Framework,
    params: &CampaignParams,
    cache_dir: Option<&Path>,
    resume: bool,
    stop_after: Option<&str>,
) -> Result<Option<CampaignRun>> {
    campaign_impl(fw, params, cache_dir, resume, stop_after, None)
}

/// Supervised variant of [`run_checkpointed_campaign`]: the generation
/// and graph stages run under the panic sandbox, absorbed failures land
/// in `quarantine` (which is persisted in the checkpoint dir at every
/// stage boundary and merged back on `--resume`, so a resumed campaign
/// skips known-poisoned inputs instead of re-crashing on them), and
/// quarantined targets shrink the suite instead of aborting the run.
pub fn run_checkpointed_campaign_supervised(
    fw: &Framework,
    params: &CampaignParams,
    cache_dir: Option<&Path>,
    resume: bool,
    stop_after: Option<&str>,
    quarantine: &mut Quarantine,
) -> Result<Option<CampaignRun>> {
    campaign_impl(fw, params, cache_dir, resume, stop_after, Some(quarantine))
}

fn campaign_impl(
    fw: &Framework,
    params: &CampaignParams,
    cache_dir: Option<&Path>,
    resume: bool,
    stop_after: Option<&str>,
    mut supervised: Option<&mut Quarantine>,
) -> Result<Option<CampaignRun>> {
    let fingerprint = fw.campaign_fingerprint();
    let cstore = match cache_dir {
        Some(dir) => Some(
            CampaignStore::open(dir, fingerprint, params, fw.telemetry.is_enabled())
                .map_err(|e| io_err("opening checkpoint dir", e))?,
        ),
        None => None,
    };
    // Load usable checkpoints before opening the snapshot store: the warm
    // store must know which boundary the base report already covers. A
    // graph checkpoint is only usable together with the suite it was
    // derived from.
    let (suite_ck, graph_ck) = match (&cstore, resume) {
        (Some(cs), true) => {
            let suite_ck = cs.load_stage(STAGE_SUITE);
            let graph_ck = if suite_ck.is_some() {
                cs.load_stage(STAGE_GRAPH)
            } else {
                None
            };
            (suite_ck, graph_ck)
        }
        _ => (None, None),
    };
    if let (Some(cs), false) = (&cstore, resume) {
        cs.clear()
            .map_err(|e| io_err("clearing stale checkpoints", e))?;
    }
    // A supervised resume inherits the persisted quarantine: inputs that
    // crashed the previous run are skipped, not retried.
    if let (Some(cs), true, Some(q)) = (&cstore, resume, supervised.as_deref_mut()) {
        q.merge(cs.load_quarantine());
    }
    let counted_through = graph_ck
        .as_ref()
        .or(suite_ck.as_ref())
        .map(|(boundary, _, _)| *boundary);
    let store = match cache_dir {
        Some(dir) => {
            let s = Arc::new(
                SnapshotStore::open(dir, fingerprint, counted_through)
                    .map_err(|e| io_err("opening cache snapshot", e))?,
            );
            fw.optimizer.attach_snapshot_store(Arc::clone(&s));
            Some(s)
        }
        None => None,
    };
    let mut resumed = Vec::new();
    if suite_ck.is_some() {
        resumed.push(STAGE_SUITE);
    }
    if graph_ck.is_some() {
        resumed.push(STAGE_GRAPH);
    }
    // The newest checkpoint's report snapshot is cumulative through its
    // boundary — it becomes the base the resumed process builds on.
    if let Some((_, _, report)) = graph_ck.as_ref().or(suite_ck.as_ref()) {
        fw.set_report_base(report.clone());
    }

    // Stage 1: suite generation.
    let suite = match &suite_ck {
        Some((_, payload, _)) => suite_from_json(payload)?,
        None => {
            if let Some(s) = &store {
                s.set_boundary(BOUNDARY_SUITE);
            }
            let targets = singleton_targets(fw, params.rules);
            let suite = match supervised.as_deref_mut() {
                Some(q) => generate_suite_supervised(
                    fw,
                    targets,
                    params.k,
                    Strategy::Pattern,
                    &params.gen_config(),
                    q,
                )?,
                None => generate_suite(
                    fw,
                    targets,
                    params.k,
                    Strategy::Pattern,
                    &params.gen_config(),
                )?,
            };
            checkpoint(
                fw,
                &cstore,
                STAGE_SUITE,
                BOUNDARY_SUITE,
                suite_to_json(&suite),
            )?;
            save_quarantine(&cstore, supervised.as_deref())?;
            suite
        }
    };
    if stop_after == Some(STAGE_SUITE) {
        return Ok(None);
    }

    // Stage 2: bipartite graph. A supervised graph stage may shrink the
    // suite (quarantined targets drop with their queries), so its
    // checkpoint payload carries the shrunk suite alongside the graph —
    // the two must stay consistent on resume.
    let (suite, graph) = match &graph_ck {
        Some((_, payload, _)) => match payload.get("graph") {
            Some(g) => (
                suite_from_json(payload.get("suite").ok_or_else(|| malformed("suite"))?)?,
                graph_from_json(g)?,
            ),
            None => (suite, graph_from_json(payload)?),
        },
        None => {
            if let Some(s) = &store {
                s.set_boundary(BOUNDARY_GRAPH);
            }
            match supervised.as_deref_mut() {
                Some(q) => {
                    let (suite, graph) = build_graph_supervised(fw, &suite, q)?;
                    checkpoint(
                        fw,
                        &cstore,
                        STAGE_GRAPH,
                        BOUNDARY_GRAPH,
                        Json::obj(vec![
                            ("suite", suite_to_json(&suite)),
                            ("graph", graph_to_json(&graph)),
                        ]),
                    )?;
                    save_quarantine(&cstore, supervised.as_deref())?;
                    (suite, graph)
                }
                None => {
                    let graph = build_graph(fw, &suite)?;
                    checkpoint(
                        fw,
                        &cstore,
                        STAGE_GRAPH,
                        BOUNDARY_GRAPH,
                        graph_to_json(&graph),
                    )?;
                    (suite, graph)
                }
            }
        }
    };
    if stop_after == Some(STAGE_GRAPH) {
        return Ok(None);
    }
    // Compression is pure arithmetic (always recomputed); execution
    // entries recorded from here on belong to the final boundary.
    if let Some(s) = &store {
        s.set_boundary(BOUNDARY_EXECUTE);
    }
    Ok(Some(CampaignRun {
        suite,
        graph,
        resumed,
        store: cstore,
    }))
}

/// Persists the quarantine at a stage boundary (supervised runs only).
fn save_quarantine(cstore: &Option<CampaignStore>, quarantine: Option<&Quarantine>) -> Result<()> {
    if let (Some(cs), Some(q)) = (cstore, quarantine) {
        cs.save_quarantine(q)
            .map_err(|e| io_err("writing quarantine", e))?;
    }
    Ok(())
}

/// One stage boundary: persist the invocation cache (inside the persist
/// span — the span count is part of the deterministic slice and must be
/// identical for cold, warm, and resumed runs), then snapshot the
/// cumulative report (which includes that span), then write the stage
/// file.
fn checkpoint(
    fw: &Framework,
    cstore: &Option<CampaignStore>,
    name: &str,
    boundary: u64,
    payload: Json,
) -> Result<()> {
    let Some(cs) = cstore else {
        return Ok(());
    };
    {
        let _span = fw.telemetry.span(Stage::Persist);
        fw.optimizer
            .persist_cache()
            .map_err(|e| io_err("persisting invocation cache", e))?;
    }
    let report = fw.run_report();
    cs.save_stage(name, boundary, payload, &report)
        .map_err(|e| io_err("writing stage checkpoint", e))
}

/// The final invocation-cache save after the execute stage. No stage file
/// follows it: a completed campaign's checkpoints stay at the graph
/// boundary, and the boundary stamps on the execute-stage entries tell a
/// later resume they were never counted in any checkpointed report.
pub fn final_persist(fw: &Framework) -> Result<u64> {
    if fw.optimizer.snapshot_store().is_none() {
        return Ok(0);
    }
    let _span = fw.telemetry.span(Stage::Persist);
    fw.optimizer
        .persist_cache()
        .map_err(|e| io_err("persisting invocation cache", e))
}
