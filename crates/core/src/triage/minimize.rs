//! Delta-debugging minimizer for bug witnesses.
//!
//! Greedy first-improvement descent over a shrink lattice: each round
//! enumerates candidate reductions of the current witness (biggest wins
//! first), accepts the first candidate on which `Plan(q)` and
//! `Plan(q, ¬R)` still disagree on executed results, and restarts from
//! it. Divergence checks go through `optimize_cached` /
//! `optimize_with_cached`, so re-checks of already-optimized trees are
//! invocation-cache hits and minimization stays cheap.
//!
//! The lattice has three kinds of edges:
//! - **operator drop**: replace any node by one of its children (removes
//!   the node and, for binary nodes, the whole sibling subtree);
//! - **conjunct shrink**: drop one conjunct from a `Select` or `Join`
//!   predicate, or relax a join predicate to `TRUE`;
//! - **scale reduction**: rebuild the test database at a smaller scale
//!   factor and re-confirm divergence there.
//!
//! Candidates are validated with `derive_schema` (and must render back to
//! SQL) before any optimizer work is spent on them, and pruned when no
//! masked rule's pattern matches anywhere in them: pattern presence is
//! the §3.1 necessary condition for the rule to fire as written, so a
//! pattern-free candidate cannot diverge. (Rule *sequences* can recreate
//! a pattern mid-exploration, so the prune may skip a shrink — it never
//! accepts a wrong one.)
//!
//! After the descent converges, the result is **certified**: the accepted
//! shrink trajectory is re-checked end to end and the final witness is
//! re-proven 1-minimal (no single further shrink preserves the
//! divergence). Every optimizer invocation in that pass re-hits the
//! invocation cache — certification costs executions, not optimizations.

use super::TriageConfig;
use crate::framework::{DbProfile, Framework};
use ruletest_common::{diff_multisets, Result, RuleId};
use ruletest_executor::{execute_profiled, ExecConfig};
use ruletest_expr::{conjoin, conjuncts, Expr};
use ruletest_logical::{derive_schema, LogicalTree, Operator};
use ruletest_optimizer::{Optimizer, OptimizerConfig, PhysicalPlan};
use ruletest_sql::to_sql;
use ruletest_storage::{tpch_database, TpchConfig};
use std::sync::Arc;

/// The minimizer's output.
pub struct Minimized {
    /// The shrunk witness (still diverging).
    pub tree: LogicalTree,
    /// Accepted shrink steps (operator drops + conjunct shrinks + scale
    /// reductions).
    pub steps: usize,
    /// Scale factor divergence was last confirmed at.
    pub scale: usize,
    /// Rule ids of the mask, valid for [`Minimized::framework`]'s
    /// optimizer (they are re-resolved by name when the scale reduction
    /// rebuilds the optimizer).
    pub rules: Vec<RuleId>,
    /// The certification pass confirmed the whole accepted trajectory
    /// still diverges and the final witness is 1-minimal.
    pub certified: bool,
    /// Present when a scale reduction succeeded: a framework over the
    /// smaller database (with the same fault injected).
    reduced: Option<Framework>,
}

impl Minimized {
    /// The framework the minimized witness diverges under: the rebuilt
    /// reduced-scale one if scale reduction succeeded, else the original.
    pub fn framework<'a>(&'a self, original: &'a Framework) -> &'a Framework {
        self.reduced.as_ref().unwrap_or(original)
    }
}

/// Everything a confirmed divergence yields.
pub(crate) struct Divergence {
    pub base_plan: PhysicalPlan,
    pub masked_plan: PhysicalPlan,
    /// Total multiplicity of rows the masked plan lost.
    pub missing: u64,
    /// Total multiplicity of rows the masked plan invented.
    pub extra: u64,
    pub diff_summary: String,
}

/// Checks whether `Plan(q)` vs `Plan(q, ¬rules)` still disagree on
/// executed results over `fw`'s database. Any failure along the way
/// (optimizer error, refused or over-budget execution) counts as "no" —
/// for a shrink *candidate* that simply rejects the candidate.
pub(crate) fn divergence(
    fw: &Framework,
    tree: &LogicalTree,
    rules: &[RuleId],
    exec: &ExecConfig,
) -> Option<Divergence> {
    let _span = fw.telemetry.span(ruletest_telemetry::Stage::Triage);
    let base = fw.optimizer.optimize_cached(tree).ok()?;
    let masked = fw
        .optimizer
        .optimize_with_cached(tree, &OptimizerConfig::disabling(rules))
        .ok()?;
    if base.plan.same_shape(&masked.plan) {
        return None;
    }
    let expected = execute_profiled(&fw.db, &base.plan, exec, &fw.telemetry).ok()?;
    let actual = execute_profiled(&fw.db, &masked.plan, exec, &fw.telemetry).ok()?;
    let diff = diff_multisets(&expected, &actual);
    if diff.is_empty() {
        return None;
    }
    let missing = diff.only_left.iter().map(|(_, n)| *n as u64).sum();
    let extra = diff.only_right.iter().map(|(_, n)| *n as u64).sum();
    Some(Divergence {
        base_plan: base.plan.clone(),
        masked_plan: masked.plan.clone(),
        missing,
        extra,
        diff_summary: diff.summary(),
    })
}

/// Minimizes one diverging witness. `tree` must diverge under `fw` with
/// `rules` masked (it came out of detection, so it does).
pub fn minimize(
    fw: &Framework,
    tree: &LogicalTree,
    rules: &[RuleId],
    cfg: &TriageConfig,
) -> Result<Minimized> {
    let patterns: Vec<_> = rules
        .iter()
        .map(|&r| fw.optimizer.rule_pattern(r))
        .collect();
    // Worth optimizing: schema-valid, renders to SQL, and some masked
    // rule's pattern is present (necessary for the rule to fire).
    let worth_testing = |cand: &LogicalTree| {
        is_valid(fw, cand) && patterns.iter().any(|p| p.matches_anywhere(cand))
    };
    let mut cur = tree.clone();
    let mut steps = 0usize;
    let mut trajectory = vec![tree.clone()];
    'outer: while steps < cfg.max_steps {
        for cand in candidates(&cur) {
            if !worth_testing(&cand) {
                continue;
            }
            if divergence(fw, &cand, rules, &cfg.exec).is_some() {
                cur = cand;
                trajectory.push(cur.clone());
                steps += 1;
                continue 'outer;
            }
        }
        break; // fixpoint: no candidate preserves the divergence
    }
    // Certification: re-check the accepted trajectory end to end and
    // re-prove 1-minimality. All optimizer lookups here were just
    // computed by the descent, so this is served from the invocation
    // cache.
    let mut certified = trajectory
        .iter()
        .all(|t| divergence(fw, t, rules, &cfg.exec).is_some());
    if steps < cfg.max_steps {
        certified &= !candidates(&cur)
            .into_iter()
            .any(|c| worth_testing(&c) && divergence(fw, &c, rules, &cfg.exec).is_some());
    }
    // Data reduction: try to confirm the shrunk witness over a smaller
    // database. Only meaningful when the campaign ran at scale > 1.
    let mut out = Minimized {
        tree: cur,
        steps,
        scale: fw.db_profile.scale,
        rules: rules.to_vec(),
        certified,
        reduced: None,
    };
    if out.scale > 1 && steps < cfg.max_steps {
        let mask_names: Vec<String> = rules
            .iter()
            .map(|&r| fw.optimizer.rule(r).name.to_string())
            .collect();
        for scale in [1, out.scale / 2] {
            if scale >= out.scale {
                continue;
            }
            let Some((small_fw, small_rules)) = rebuild_at_scale(fw, cfg, &mask_names, scale)
            else {
                continue;
            };
            if divergence(&small_fw, &out.tree, &small_rules, &cfg.exec).is_some() {
                out.scale = scale;
                out.rules = small_rules;
                out.reduced = Some(small_fw);
                out.steps += 1;
                break;
            }
        }
    }
    Ok(out)
}

/// A framework over a freshly generated database at `scale`, with the
/// configured fault injected (or a clean optimizer), and the rule mask
/// re-resolved by name.
fn rebuild_at_scale(
    fw: &Framework,
    cfg: &TriageConfig,
    mask_names: &[String],
    scale: usize,
) -> Option<(Framework, Vec<RuleId>)> {
    let db_seed = fw.db_profile.db_seed;
    let db = Arc::new(tpch_database(&TpchConfig::scaled(db_seed, scale)).ok()?);
    let optimizer = Arc::new(match cfg.fault {
        Some(fault) => crate::faults::buggy_optimizer(db, fault),
        None => Optimizer::new(db),
    });
    let rules: Option<Vec<RuleId>> = mask_names.iter().map(|n| optimizer.rule_id(n)).collect();
    let small = Framework::with_optimizer(optimizer).with_db_profile(DbProfile { db_seed, scale });
    Some((small, rules?))
}

/// A candidate is worth optimizing only if it is schema-valid and renders
/// back to SQL (the surviving witness must round-trip through a bundle).
pub(crate) fn is_valid(fw: &Framework, cand: &LogicalTree) -> bool {
    derive_schema(&fw.db.catalog, cand).is_ok() && to_sql(&fw.db.catalog, cand).is_ok()
}

/// The shrink lattice below `tree`, biggest wins first: operator drops in
/// pre-order (dropping near the root removes the most), then conjunct
/// shrinks.
pub(crate) fn candidates(tree: &LogicalTree) -> Vec<LogicalTree> {
    let mut out = Vec::new();
    let paths = tree.paths();
    for path in &paths {
        let node = tree.at(path).expect("path from paths()");
        for child in &node.children {
            if let Some(cand) = tree.replace_at(path, child) {
                out.push(cand);
            }
        }
    }
    for path in &paths {
        let node = tree.at(path).expect("path from paths()");
        match &node.op {
            Operator::Select { predicate } => {
                shrink_predicate(tree, path, node, predicate, false, &mut out);
            }
            Operator::Join { kind, predicate } => {
                let relaxed = LogicalTree::new(
                    Operator::Join {
                        kind: *kind,
                        predicate: Expr::true_lit(),
                    },
                    node.children.clone(),
                );
                shrink_predicate(tree, path, node, predicate, true, &mut out);
                if !predicate.is_true_lit() {
                    if let Some(cand) = tree.replace_at(path, &relaxed) {
                        out.push(cand);
                    }
                }
            }
            _ => {}
        }
    }
    out
}

/// Candidates that drop one conjunct of `predicate` at `path`.
fn shrink_predicate(
    tree: &LogicalTree,
    path: &[usize],
    node: &LogicalTree,
    predicate: &Expr,
    is_join: bool,
    out: &mut Vec<LogicalTree>,
) {
    let parts = conjuncts(predicate);
    if parts.len() < 2 {
        return;
    }
    for drop in 0..parts.len() {
        let kept: Vec<Expr> = parts
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop)
            .map(|(_, c)| c.clone())
            .collect();
        let op = if is_join {
            let Operator::Join { kind, .. } = &node.op else {
                unreachable!("shrink_predicate(is_join) on non-join");
            };
            Operator::Join {
                kind: *kind,
                predicate: conjoin(kept),
            }
        } else {
            Operator::Select {
                predicate: conjoin(kept),
            }
        };
        if let Some(cand) = tree.replace_at(path, &LogicalTree::new(op, node.children.clone())) {
            out.push(cand);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use ruletest_expr::Expr;
    use ruletest_logical::{IdGen, JoinKind};

    #[test]
    fn candidates_shrink_strictly_and_stay_enumerable() {
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let cat = &fw.db.catalog;
        let mut ids = IdGen::new();
        let l = LogicalTree::get(cat.table_by_name("region").unwrap(), &mut ids);
        let r = LogicalTree::get(cat.table_by_name("nation").unwrap(), &mut ids);
        let pred = Expr::eq(Expr::col(l.output_col(0)), Expr::col(r.output_col(2)));
        let join = LogicalTree::join(JoinKind::LeftOuter, l, r, pred);
        let filter = Expr::and(
            Expr::not(Expr::is_null(Expr::col(join.children[1].output_col(0)))),
            Expr::not(Expr::is_null(Expr::col(join.children[0].output_col(1)))),
        );
        let tree = LogicalTree::select(join, filter);
        let cands = candidates(&tree);
        assert!(!cands.is_empty());
        for c in &cands {
            // Every candidate is strictly simpler: fewer operators, or the
            // same operators with a shorter/relaxed predicate.
            assert!(c.op_count() <= tree.op_count());
        }
        // At least one candidate drops an operator.
        assert!(cands.iter().any(|c| c.op_count() < tree.op_count()));
        // And the conjunct shrink produced same-shape candidates.
        assert!(cands.iter().any(|c| c.op_count() == tree.op_count()));
    }
}
