//! Bug signatures: normalizing findings so duplicates collapse.
//!
//! One optimizer fault typically surfaces through many generated queries;
//! reporting each witness separately floods the report with near-identical
//! findings (the duplicate-sensitivity problem). A signature abstracts a
//! *minimized* finding to what actually characterizes the fault:
//!
//! - the **masked rule set** (which rule(s) the divergence implicates),
//! - the **shape of the plan diff**: per-operator-class count deltas
//!   between `Plan(q)` and `Plan(q, ¬R)`,
//! - the **diff cardinality class**: whether the masked plan *loses* rows,
//!   *invents* rows, or both.
//!
//! Both plan classes and the cardinality class are deliberately coarse.
//! Join kinds are **not** distinguished: one injected outer-join fault
//! shows up as an `INNER`↔`LEFT OUTER` swap through one witness and a
//! `LEFT OUTER`↔`RIGHT OUTER` swap through another (commuted inputs), and
//! those are the same bug. Likewise the diff *direction* is stable across
//! witnesses of one fault while the diff *count* scales with witness size.

use ruletest_optimizer::{PhysOp, PhysicalPlan};
use std::collections::BTreeMap;

/// Normalized identity of a bug; findings with equal signatures are
/// duplicates of one underlying fault.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BugSignature {
    /// Sorted names of the masked rules.
    pub rules: Vec<String>,
    /// Canonical rendering of the plan-shape delta, e.g. `"Filter:+1"`
    /// (masked minus base, per operator class, zero deltas omitted).
    pub plan_delta: String,
    /// `"missing"` (masked plan loses rows), `"extra"` (masked plan
    /// invents rows), or `"mixed"`.
    pub diff_class: String,
}

impl BugSignature {
    /// Derives the signature of a minimized finding. `missing` / `extra`
    /// are the total multiplicities of rows the masked plan lost /
    /// invented relative to the base plan.
    pub fn derive(
        rule_mask: &[String],
        base: &PhysicalPlan,
        masked: &PhysicalPlan,
        missing: u64,
        extra: u64,
    ) -> BugSignature {
        let mut rules = rule_mask.to_vec();
        rules.sort();
        BugSignature {
            rules,
            plan_delta: plan_delta(base, masked),
            diff_class: diff_class(missing, extra).to_string(),
        }
    }

    /// One-line rendering, used as the bundle's `signature` field.
    pub fn key(&self) -> String {
        format!(
            "rules=[{}] delta=[{}] diff={}",
            self.rules.join("+"),
            self.plan_delta,
            self.diff_class
        )
    }
}

/// Operator class of one physical node. Coarser than the operator itself
/// (all scans are "Scan", all join and aggregation strategies are "Join"
/// and "Agg") so the signature captures *semantic* plan changes, not
/// implementation or input-order choices.
fn op_class(op: &PhysOp) -> &'static str {
    match op {
        PhysOp::SeqScan { .. } | PhysOp::IndexSeek { .. } => "Scan",
        PhysOp::Filter { .. } => "Filter",
        PhysOp::Compute { .. } => "Compute",
        PhysOp::NLJoin { .. } | PhysOp::HashJoin { .. } | PhysOp::MergeJoin { .. } => "Join",
        PhysOp::HashAgg { .. } | PhysOp::StreamAgg { .. } => "Agg",
        PhysOp::Concat { .. } => "Union",
        PhysOp::HashDistinct => "Distinct",
        PhysOp::SortOp { .. } => "Sort",
        PhysOp::TopN { .. } => "Top",
    }
}

fn count_classes(plan: &PhysicalPlan, into: &mut BTreeMap<&'static str, i64>, sign: i64) {
    *into.entry(op_class(&plan.op)).or_insert(0) += sign;
    for c in &plan.children {
        count_classes(c, into, sign);
    }
}

/// Per-class node-count delta (`masked` minus `base`), rendered
/// canonically: classes sorted, zero deltas omitted, `+`/`-` explicit.
fn plan_delta(base: &PhysicalPlan, masked: &PhysicalPlan) -> String {
    let mut deltas: BTreeMap<&'static str, i64> = BTreeMap::new();
    count_classes(base, &mut deltas, -1);
    count_classes(masked, &mut deltas, 1);
    deltas
        .into_iter()
        .filter(|(_, d)| *d != 0)
        .map(|(class, d)| format!("{class}:{d:+}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Which direction the masked plan's results deviate in.
fn diff_class(missing: u64, extra: u64) -> &'static str {
    match (missing > 0, extra > 0) {
        (true, false) => "missing",
        (false, true) => "extra",
        (true, true) => "mixed",
        (false, false) => "empty",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruletest_common::{ColId, TableId};
    use ruletest_logical::JoinKind;

    fn leaf(op: PhysOp) -> PhysicalPlan {
        PhysicalPlan {
            op,
            children: vec![],
            schema: vec![],
            est_rows: 1.0,
            est_cost: 1.0,
        }
    }

    fn scan(t: u32) -> PhysicalPlan {
        leaf(PhysOp::SeqScan {
            table: TableId(t),
            cols: vec![ColId(0)],
        })
    }

    fn join(kind: JoinKind, l: PhysicalPlan, r: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan {
            op: PhysOp::NLJoin {
                kind,
                predicate: ruletest_expr::Expr::true_lit(),
            },
            children: vec![l, r],
            schema: vec![],
            est_rows: 1.0,
            est_cost: 1.0,
        }
    }

    fn filter(input: PhysicalPlan) -> PhysicalPlan {
        PhysicalPlan {
            op: PhysOp::Filter {
                predicate: ruletest_expr::Expr::true_lit(),
            },
            children: vec![input],
            schema: vec![],
            est_rows: 1.0,
            est_cost: 1.0,
        }
    }

    #[test]
    fn join_kind_swaps_do_not_split_signatures() {
        // One outer-join fault, two witnesses: INNER↔LEFT in one,
        // LEFT↔RIGHT in the other. Same bug, same (empty) delta.
        let a_base = join(JoinKind::Inner, scan(0), scan(1));
        let a_masked = join(JoinKind::LeftOuter, scan(0), scan(1));
        let b_base = join(JoinKind::RightOuter, scan(0), scan(1));
        let b_masked = join(JoinKind::LeftOuter, scan(0), scan(1));
        assert_eq!(plan_delta(&a_base, &a_masked), "");
        assert_eq!(
            plan_delta(&a_base, &a_masked),
            plan_delta(&b_base, &b_masked)
        );
        // A structural change is the delta.
        let c_masked = filter(join(JoinKind::Inner, scan(0), scan(1)));
        assert_eq!(plan_delta(&a_base, &c_masked), "Filter:+1");
    }

    #[test]
    fn diff_class_captures_direction_not_count() {
        assert_eq!(diff_class(1, 0), "missing");
        assert_eq!(diff_class(250, 0), "missing");
        assert_eq!(diff_class(0, 3), "extra");
        assert_eq!(diff_class(2, 2), "mixed");
        assert_eq!(diff_class(0, 0), "empty");
    }

    #[test]
    fn signatures_normalize_rule_order() {
        let base = join(JoinKind::Inner, scan(0), scan(1));
        let masked = filter(join(JoinKind::LeftOuter, scan(0), scan(1)));
        let a = BugSignature::derive(&["B".to_string(), "A".to_string()], &base, &masked, 5, 0);
        let b = BugSignature::derive(&["A".to_string(), "B".to_string()], &base, &masked, 7, 0);
        assert_eq!(a, b);
        assert_eq!(a.key(), "rules=[A+B] delta=[Filter:+1] diff=missing");
    }
}
