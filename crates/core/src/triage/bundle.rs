//! Repro bundles: self-contained, deterministic bug reproductions.
//!
//! A bundle records everything a fresh process needs to re-derive the
//! divergence: the database generator seed and scale, the fault to
//! inject (if the run used one), the masked rule names, and the
//! minimized SQL. [`replay`] rebuilds the database and optimizer from
//! those fields alone, re-parses the SQL (the dialect round-trips
//! exactly), re-optimizes both ways, re-executes, and re-diffs — the
//! diff summary must come out byte-identical to the recorded one.
//!
//! Bundles serialize one-per-line as JSONL so campaign artifacts can be
//! concatenated, grepped, and replayed individually.

use crate::faults::{buggy_optimizer, Fault};
use ruletest_common::{diff_multisets, Error, Result, RuleId};
use ruletest_executor::{execute_with, ExecConfig};
use ruletest_optimizer::{Optimizer, OptimizerConfig};
use ruletest_sql::parse_sql;
use ruletest_storage::{tpch_database, TpchConfig};
use ruletest_telemetry::Json;
use std::io::{BufRead, Write};
use std::sync::Arc;

/// Bump when the bundle schema changes incompatibly.
pub const BUNDLE_VERSION: u64 = 1;

/// One serialized bug repro.
#[derive(Debug, Clone, PartialEq)]
pub struct ReproBundle {
    pub version: u64,
    /// Human-readable target label (rule name or "A+B" pair).
    pub target_label: String,
    /// Names of the rules masked in `Plan(q, ¬R)`.
    pub rule_mask: Vec<String>,
    /// Name of the injected [`Fault`], when the run was fault-injected.
    pub fault: Option<String>,
    /// Suite generation seed (provenance; not needed to replay).
    pub seed: u64,
    /// Test-database generator seed.
    pub db_seed: u64,
    /// Test-database scale factor.
    pub scale: u64,
    /// Minimized witness SQL.
    pub sql: String,
    /// Logical operator count of the minimized witness.
    pub ops: u64,
    /// The bug's signature key (dedup identity).
    pub signature: String,
    /// Raw findings that collapsed into this signature.
    pub duplicates: u64,
    /// Recorded result diff — replay must reproduce this byte-for-byte.
    pub diff_summary: String,
    /// `Plan(q)` pretty-print at detection time.
    pub base_plan: String,
    /// `Plan(q, ¬R)` pretty-print at detection time.
    pub masked_plan: String,
}

impl ReproBundle {
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("version", Json::count(self.version)),
            ("target", Json::str(self.target_label.clone())),
            (
                "rule_mask",
                Json::Arr(self.rule_mask.iter().map(Json::str).collect()),
            ),
        ];
        if let Some(f) = &self.fault {
            fields.push(("fault", Json::str(f.clone())));
        }
        fields.extend([
            ("seed", Json::count(self.seed)),
            ("db_seed", Json::count(self.db_seed)),
            ("scale", Json::count(self.scale)),
            ("sql", Json::str(self.sql.clone())),
            ("ops", Json::count(self.ops)),
            ("signature", Json::str(self.signature.clone())),
            ("duplicates", Json::count(self.duplicates)),
            ("diff_summary", Json::str(self.diff_summary.clone())),
            ("base_plan", Json::str(self.base_plan.clone())),
            ("masked_plan", Json::str(self.masked_plan.clone())),
        ]);
        Json::obj(fields)
    }

    pub fn from_json(j: &Json) -> std::result::Result<ReproBundle, String> {
        let str_field = |name: &str| -> std::result::Result<String, String> {
            j.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("bundle missing string field '{name}'"))
        };
        let num_field = |name: &str| -> std::result::Result<u64, String> {
            j.get(name)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("bundle missing numeric field '{name}'"))
        };
        let version = num_field("version")?;
        if version != BUNDLE_VERSION {
            return Err(format!(
                "bundle version {version} unsupported (expected {BUNDLE_VERSION})"
            ));
        }
        let rule_mask = j
            .get("rule_mask")
            .and_then(Json::as_arr)
            .ok_or("bundle missing rule_mask")?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| "non-string rule name".to_string())
            })
            .collect::<std::result::Result<Vec<_>, _>>()?;
        Ok(ReproBundle {
            version,
            target_label: str_field("target")?,
            rule_mask,
            fault: j.get("fault").and_then(Json::as_str).map(str::to_string),
            seed: num_field("seed")?,
            db_seed: num_field("db_seed")?,
            scale: num_field("scale")?,
            sql: str_field("sql")?,
            ops: num_field("ops")?,
            signature: str_field("signature")?,
            duplicates: num_field("duplicates")?,
            diff_summary: str_field("diff_summary")?,
            base_plan: str_field("base_plan")?,
            masked_plan: str_field("masked_plan")?,
        })
    }
}

/// Writes bundles as JSONL, one per line.
pub fn write_bundles<W: Write>(w: &mut W, bundles: &[ReproBundle]) -> std::io::Result<()> {
    for b in bundles {
        writeln!(w, "{}", b.to_json().to_string_compact())?;
    }
    Ok(())
}

/// Reads a JSONL bundle stream (blank lines ignored).
pub fn read_bundles<R: BufRead>(r: R) -> std::result::Result<Vec<ReproBundle>, String> {
    let mut out = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(&line).map_err(|e| format!("line {}: {e}", i + 1))?;
        out.push(ReproBundle::from_json(&j).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// What replaying a bundle produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayOutcome {
    /// The two plans disagreed on executed results.
    pub diverged: bool,
    /// The re-derived diff summary.
    pub diff_summary: String,
    /// `diverged` *and* the diff summary matches the recorded one
    /// byte-for-byte — the deterministic-repro guarantee.
    pub confirmed: bool,
}

/// Re-executes a bundle from scratch: fresh database (same generator seed
/// and scale), fresh optimizer (same fault), re-parsed SQL. No state from
/// the detecting process is consulted.
pub fn replay(bundle: &ReproBundle) -> Result<ReplayOutcome> {
    let db = Arc::new(tpch_database(&TpchConfig::scaled(
        bundle.db_seed,
        bundle.scale as usize,
    ))?);
    let optimizer = match &bundle.fault {
        Some(name) => {
            let fault = Fault::from_name(name)?;
            buggy_optimizer(db.clone(), fault)
        }
        None => Optimizer::new(db.clone()),
    };
    let rules: Vec<RuleId> = bundle
        .rule_mask
        .iter()
        .map(|n| {
            optimizer
                .rule_id(n)
                .ok_or_else(|| Error::invalid(format!("unknown rule '{n}' in bundle")))
        })
        .collect::<Result<_>>()?;
    let tree = parse_sql(&db.catalog, &bundle.sql)?;
    let base = optimizer.optimize(&tree)?;
    let masked = optimizer.optimize_with(&tree, &OptimizerConfig::disabling(&rules))?;
    if base.plan.same_shape(&masked.plan) {
        return Ok(ReplayOutcome {
            diverged: false,
            diff_summary: "plans identical".to_string(),
            confirmed: false,
        });
    }
    let exec = ExecConfig::default();
    let expected = execute_with(&db, &base.plan, &exec)?;
    let actual = execute_with(&db, &masked.plan, &exec)?;
    let diff = diff_multisets(&expected, &actual);
    let diverged = !diff.is_empty();
    let diff_summary = diff.summary();
    let confirmed = diverged && diff_summary == bundle.diff_summary;
    Ok(ReplayOutcome {
        diverged,
        diff_summary,
        confirmed,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReproBundle {
        ReproBundle {
            version: BUNDLE_VERSION,
            target_label: "SelectIntoInnerJoin".to_string(),
            rule_mask: vec!["SelectIntoInnerJoin".to_string()],
            fault: Some("SelectMergedIntoOuterJoin".to_string()),
            seed: 3,
            db_seed: 0xC0FFEE,
            scale: 1,
            sql: "SELECT 1".to_string(),
            ops: 3,
            signature: "rules=[SelectIntoInnerJoin] delta=[..] diff=1e0".to_string(),
            duplicates: 2,
            diff_summary: "results differ: ...".to_string(),
            base_plan: "Filter\n  NLJoin\n".to_string(),
            masked_plan: "NLJoin\n".to_string(),
        }
    }

    #[test]
    fn bundles_round_trip_through_jsonl() {
        let mut no_fault = sample();
        no_fault.fault = None;
        let bundles = vec![sample(), no_fault];
        let mut buf = Vec::new();
        write_bundles(&mut buf, &bundles).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = read_bundles(&buf[..]).unwrap();
        assert_eq!(back, bundles);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut b = sample();
        b.version = 99;
        let mut buf = Vec::new();
        write_bundles(&mut buf, &[b]).unwrap();
        let err = read_bundles(&buf[..]).unwrap_err();
        assert!(err.contains("version"), "{err}");
    }

    #[test]
    fn unknown_fault_name_fails_replay_cleanly() {
        let mut b = sample();
        b.fault = Some("NoSuchFault".to_string());
        assert!(replay(&b).is_err());
    }
}
