//! Bug triage (post-detection processing of [`CorrectnessReport::bugs`]).
//!
//! Detection alone leaves findings nearly undebuggable: a raw witness is a
//! padded generated query, one optimizer fault floods the report with
//! near-identical findings, and the SQL alone is not a repro (result diffs
//! depend on the generated database). Triage fixes all three, in the style
//! of QPG-like reducers and duplicate-signature normalization:
//!
//! 1. **Minimize** each failing logical tree with delta debugging
//!    ([`minimize`]) — drop operators, shrink predicate conjuncts, reduce
//!    the data scale — re-checking after every step that `Plan(q)` and
//!    `Plan(q, ¬R)` still disagree on executed results.
//! 2. **Deduplicate** by bug signature ([`signature`]): (masked rule set,
//!    shape of the plan diff, diff cardinality class). The smallest
//!    witness per signature survives.
//! 3. **Bundle** each survivor as a self-contained JSONL repro
//!    ([`bundle`]) that replays deterministically in a fresh process.

pub mod bundle;
pub mod minimize;
pub mod signature;

use crate::correctness::{BugReport, CorrectnessReport};
use crate::faults::Fault;
use crate::framework::Framework;
use crate::suite::TestSuite;
use ruletest_common::{Error, Result, RuleId};
use ruletest_executor::ExecConfig;
use ruletest_sql::to_sql;
use ruletest_telemetry::Counter;

pub use bundle::{read_bundles, replay, write_bundles, ReplayOutcome, ReproBundle};
pub use minimize::{minimize, Minimized};
pub use signature::BugSignature;

/// Triage parameters.
#[derive(Debug, Clone)]
pub struct TriageConfig {
    /// Budget for the divergence re-checks during minimization.
    pub exec: ExecConfig,
    /// Cap on accepted shrink steps per bug.
    pub max_steps: usize,
    /// The fault injected into the framework's optimizer, if any —
    /// recorded in repro bundles so replay can rebuild the same optimizer.
    pub fault: Option<Fault>,
}

impl Default for TriageConfig {
    fn default() -> Self {
        Self {
            exec: ExecConfig::default(),
            max_steps: 64,
            fault: None,
        }
    }
}

/// One deduplicated, minimized bug.
#[derive(Debug, Clone)]
pub struct TriagedBug {
    /// The original detection record of the surviving (smallest) witness.
    pub report: BugReport,
    /// Minimized witness, still diverging.
    pub minimized_sql: String,
    /// Logical operator count of the minimized witness.
    pub ops: usize,
    /// Scale factor the divergence was confirmed at (≤ the detection
    /// scale; triage tries to shrink the data too).
    pub scale: usize,
    /// Signature of the finding as detected, before minimization.
    /// Usually equal to [`TriagedBug::signature`]; a difference means
    /// minimization stripped structure that was incidental to the bug.
    pub raw_signature: BugSignature,
    pub signature: BugSignature,
    /// Raw findings collapsed into this signature (0 = unique).
    pub duplicates: usize,
    /// Accepted shrink steps spent on the surviving witness.
    pub steps: usize,
    /// The minimizer's certification pass confirmed the shrink
    /// trajectory and the witness's 1-minimality.
    pub certified: bool,
    /// `Plan(q)` (the full optimizer's plan) at the minimized witness.
    pub base_plan: String,
    /// `Plan(q, ¬R)` at the minimized witness.
    pub masked_plan: String,
    /// Result diff at the minimized witness.
    pub diff_summary: String,
}

/// The triage outcome: one entry per distinct bug signature.
#[derive(Debug, Clone, Default)]
pub struct TriageReport {
    /// Raw findings processed.
    pub raw_bugs: usize,
    /// Deduplicated bugs, in order of first appearance.
    pub bugs: Vec<TriagedBug>,
    /// Total accepted shrink steps.
    pub steps_total: usize,
    /// Raw findings collapsed into an existing signature.
    pub duplicates_collapsed: usize,
}

/// Post-processes a correctness report: minimize every finding, collapse
/// duplicates by signature, keep the smallest witness each. Sequential on
/// purpose — findings are few and the telemetry counters must accumulate
/// in deterministic order.
pub fn triage_report(
    fw: &Framework,
    suite: &TestSuite,
    report: &CorrectnessReport,
    cfg: &TriageConfig,
) -> Result<TriageReport> {
    let mut out = TriageReport {
        raw_bugs: report.bugs.len(),
        ..TriageReport::default()
    };
    for bug in &report.bugs {
        let triaged = triage_one(fw, suite, bug, cfg)?;
        fw.telemetry.incr(Counter::BugsMinimized);
        fw.telemetry
            .add(Counter::MinimizationSteps, triaged.steps as u64);
        out.steps_total += triaged.steps;
        match out
            .bugs
            .iter_mut()
            .find(|b| b.signature == triaged.signature)
        {
            Some(existing) => {
                existing.duplicates += 1;
                out.duplicates_collapsed += 1;
                fw.telemetry.incr(Counter::DuplicatesCollapsed);
                // Keep the smallest witness (ties break on SQL text so the
                // survivor is independent of finding order).
                if (triaged.ops, &triaged.minimized_sql) < (existing.ops, &existing.minimized_sql) {
                    let dups = existing.duplicates;
                    *existing = triaged;
                    existing.duplicates = dups;
                }
            }
            None => out.bugs.push(triaged),
        }
    }
    Ok(out)
}

/// Converts the surviving bugs to self-contained repro bundles. Each
/// bundle is self-checked before it is emitted: its SQL (the only query
/// payload a replaying process gets) must reproduce the recorded result
/// diff in-process. The check is cheap — the optimizations it needs are
/// invocation-cache hits.
pub fn to_bundles(
    fw: &Framework,
    report: &TriageReport,
    cfg: &TriageConfig,
) -> Result<Vec<ReproBundle>> {
    let mut out = Vec::new();
    for b in &report.bugs {
        let bundle = ReproBundle {
            version: bundle::BUNDLE_VERSION,
            target_label: b.report.target_label.clone(),
            rule_mask: b.report.rule_mask.clone(),
            fault: cfg.fault.map(|f| f.name().to_string()),
            seed: b.report.seed,
            db_seed: fw.db_profile.db_seed,
            scale: b.scale as u64,
            sql: b.minimized_sql.clone(),
            ops: b.ops as u64,
            signature: b.signature.key(),
            duplicates: b.duplicates as u64,
            diff_summary: b.diff_summary.clone(),
            base_plan: b.base_plan.clone(),
            masked_plan: b.masked_plan.clone(),
        };
        // The witness's scale can be below the campaign's after a scale
        // reduction; then this framework is the wrong database and only
        // `replay` (which rebuilds it) can check the bundle.
        if b.scale == fw.db_profile.scale {
            let tree = ruletest_sql::parse_sql(&fw.db.catalog, &bundle.sql)?;
            let rules: Vec<RuleId> = b.report.target.rules();
            let div = minimize::divergence(fw, &tree, &rules, &cfg.exec)
                .ok_or_else(|| Error::internal("bundle SQL does not reproduce its divergence"))?;
            if div.diff_summary != bundle.diff_summary {
                return Err(Error::internal(
                    "bundle SQL reproduces a different result diff than recorded",
                ));
            }
        }
        out.push(bundle);
    }
    Ok(out)
}

/// Minimizes one finding and derives its signature and final artifacts.
fn triage_one(
    fw: &Framework,
    suite: &TestSuite,
    bug: &BugReport,
    cfg: &TriageConfig,
) -> Result<TriagedBug> {
    let tree = &suite.queries[bug.query].tree;
    let rules: Vec<RuleId> = bug.target.rules();
    // Signature of the finding as detected (cache-warm: the campaign
    // just optimized this tree both ways). Also re-confirms the finding
    // before any minimization effort is spent on it.
    let raw = minimize::divergence(fw, tree, &rules, &cfg.exec)
        .ok_or_else(|| Error::internal("reported finding does not reproduce"))?;
    let raw_signature = BugSignature::derive(
        &bug.rule_mask,
        &raw.base_plan,
        &raw.masked_plan,
        raw.missing,
        raw.extra,
    );
    let min = minimize(fw, tree, &rules, cfg)?;
    // Re-derive the final artifacts from the minimized witness. Both
    // optimizations were just computed by the minimizer's last accepted
    // check, so these are invocation-cache hits.
    let div = minimize::divergence(min.framework(fw), &min.tree, &min.rules, &cfg.exec)
        .ok_or_else(|| Error::internal("minimized witness no longer diverges — minimizer bug"))?;
    let minimized_sql = to_sql(&min.framework(fw).db.catalog, &min.tree)?;
    // Round-trip guard: bundles carry only the SQL, so the rendered
    // witness must parse back to a tree that still diverges.
    let reparsed = ruletest_sql::parse_sql(&min.framework(fw).db.catalog, &minimized_sql)?;
    if minimize::divergence(min.framework(fw), &reparsed, &min.rules, &cfg.exec).is_none() {
        return Err(Error::internal(
            "minimized SQL does not round-trip to a diverging query",
        ));
    }
    let signature = BugSignature::derive(
        &bug.rule_mask,
        &div.base_plan,
        &div.masked_plan,
        div.missing,
        div.extra,
    );
    Ok(TriagedBug {
        report: bug.clone(),
        minimized_sql,
        ops: min.tree.op_count(),
        scale: min.scale,
        raw_signature,
        signature,
        duplicates: 0,
        steps: min.steps,
        certified: min.certified,
        base_plan: div.base_plan.explain(),
        masked_plan: div.masked_plan.explain(),
        diff_summary: div.diff_summary,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{topk, Instance};
    use crate::faults::buggy_optimizer;
    use crate::framework::FrameworkConfig;
    use crate::generate::{GenConfig, Strategy};
    use crate::suite::{build_graph, generate_suite, singleton_targets};
    use ruletest_executor::ExecConfig;
    use std::sync::Arc;

    #[test]
    fn clean_optimizer_triage_is_empty() {
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let targets = singleton_targets(&fw, 3);
        let suite =
            generate_suite(&fw, targets, 2, Strategy::Pattern, &GenConfig::default()).unwrap();
        let graph = build_graph(&fw, &suite).unwrap();
        let inst = Instance::from_graph(&graph);
        let sol = topk(&inst).unwrap();
        let report =
            crate::correctness::execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default())
                .unwrap();
        assert!(report.passed());
        let triaged = triage_report(&fw, &suite, &report, &TriageConfig::default()).unwrap();
        assert_eq!(triaged.raw_bugs, 0);
        assert!(triaged.bugs.is_empty());
    }

    #[test]
    fn duplicate_findings_collapse_to_one_signature() {
        // Inject one fault, find a bug via generation, then hand the
        // *same* finding to triage twice: the second must collapse.
        let fault = crate::faults::Fault::SelectMergedIntoOuterJoin;
        let db = Arc::new(
            ruletest_storage::tpch_database(&ruletest_storage::TpchConfig::default()).unwrap(),
        );
        let opt = Arc::new(buggy_optimizer(db, fault));
        let fw = Framework::with_optimizer(opt);
        let rule = fw.optimizer.rule_id(fault.rule_name()).unwrap();
        let targets = vec![crate::suite::RuleTarget::Single(rule)];
        let mut found = None;
        for seed in [3u64, 11, 19, 27, 40, 55, 63, 71] {
            let cfg = GenConfig {
                seed,
                max_trials: 100,
                pad_ops: 1,
                ..GenConfig::default()
            };
            let Ok(suite) = generate_suite(&fw, targets.clone(), 2, Strategy::Pattern, &cfg) else {
                continue;
            };
            let graph = build_graph(&fw, &suite).unwrap();
            let inst = Instance::from_graph(&graph);
            let sol = topk(&inst).unwrap();
            let report = crate::correctness::execute_solution(
                &fw,
                &suite,
                &inst,
                &sol,
                &ExecConfig::default(),
            )
            .unwrap();
            if !report.bugs.is_empty() {
                found = Some((suite, report));
                break;
            }
        }
        let (suite, mut report) = found.expect("fault not detected by any seed");
        // Duplicate every finding.
        let bugs = report.bugs.clone();
        report.bugs.extend(bugs);
        let cfg = TriageConfig {
            fault: Some(fault),
            ..TriageConfig::default()
        };
        let triaged = triage_report(&fw, &suite, &report, &cfg).unwrap();
        assert_eq!(triaged.raw_bugs, report.bugs.len());
        assert_eq!(
            triaged.bugs.len(),
            1,
            "expected one signature, got {:?}",
            triaged
                .bugs
                .iter()
                .map(|b| b.signature.key())
                .collect::<Vec<_>>()
        );
        assert!(triaged.duplicates_collapsed >= report.bugs.len() / 2);
        let bug = &triaged.bugs[0];
        assert!(bug.ops <= 8, "witness too large: {} ops", bug.ops);
        assert!(bug.diff_summary.starts_with("results differ"));
    }
}
