//! Fault injection: deliberately incorrect rule implementations.
//!
//! The framework's purpose is to *find* correctness bugs (§2.3: "it is
//! possible to find test cases where the rule has not been correctly
//! implemented"). The sabotaged rules themselves now live in the
//! [`crate::mutate`] catalog; [`Fault`] is a thin, stable shim over
//! three canonical mutants, kept because CLI flags (`--fault F`) and
//! repro bundles name faults by these exact strings.

use crate::mutate::{mutant_optimizer, Mutant};
use ruletest_common::{Error, Result};
use ruletest_optimizer::{Optimizer, Rule};
use ruletest_storage::Database;
use std::sync::Arc;

/// Which sabotage to inject. Each variant is an alias for the mutation
/// catalog entry of the same id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// `OuterJoinSimplify` without the null-rejection precondition:
    /// converts every filtered LOJ/ROJ into an inner join.
    OuterJoinSimplifyUnconditional,
    /// `SelectPushBelowOuterJoin` that pushes conjuncts below the
    /// *null-supplying* side (filtering before the join resurrects
    /// unmatched rows as NULL padding).
    PushBelowNullSupplyingSide,
    /// `SelectIntoInnerJoin` applied to *outer* joins: merging filter
    /// conjuncts into a left outer join's ON clause resurrects rows the
    /// filter should have dropped (they come back NULL-padded).
    SelectMergedIntoOuterJoin,
}

impl Fault {
    /// All injectable faults, in declaration order.
    pub const ALL: [Fault; 3] = [
        Fault::OuterJoinSimplifyUnconditional,
        Fault::PushBelowNullSupplyingSide,
        Fault::SelectMergedIntoOuterJoin,
    ];

    /// Stable name used in CLI flags and repro bundles. Identical to the
    /// backing mutant's id.
    pub fn name(self) -> &'static str {
        match self {
            Fault::OuterJoinSimplifyUnconditional => "OuterJoinSimplifyUnconditional",
            Fault::PushBelowNullSupplyingSide => "PushBelowNullSupplyingSide",
            Fault::SelectMergedIntoOuterJoin => "SelectMergedIntoOuterJoin",
        }
    }

    /// Inverse of [`Fault::name`] — parses CLI flags and repro bundles.
    /// Fails with the offending name and the known faults.
    pub fn from_name(name: &str) -> Result<Fault> {
        Fault::ALL
            .into_iter()
            .find(|f| f.name() == name)
            .ok_or_else(|| {
                Error::unsupported(format!(
                    "unknown fault '{name}' (known: {})",
                    Fault::ALL.map(|f| f.name()).join(", ")
                ))
            })
    }

    /// The backing catalog entry.
    pub fn mutant(self) -> &'static Mutant {
        Mutant::by_id(self.name()).expect("canonical fault mutants are in the catalog")
    }

    /// Name of the rule the fault replaces.
    pub fn rule_name(self) -> &'static str {
        self.mutant().rule_name
    }

    /// The sabotaged rule.
    pub fn rule(self) -> Rule {
        self.mutant().rule()
    }
}

/// An optimizer over `db` with `fault` injected in place of the correct
/// rule.
pub fn buggy_optimizer(db: Arc<Database>, fault: Fault) -> Optimizer {
    mutant_optimizer(db, fault.mutant())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutate::{detect_with_methodology, MutationBudget};
    use ruletest_storage::{tpch_database, TpchConfig};

    /// For each fault: find a query where the buggy rule fires, then show
    /// Plan(q) and Plan(q, ¬rule) disagree on executed results — the §2.3
    /// methodology detecting the bug, via the shared detection harness.
    #[test]
    fn every_fault_is_detectable_by_the_methodology() {
        let db = Arc::new(tpch_database(&TpchConfig::default()).unwrap());
        for fault in Fault::ALL {
            let opt = Arc::new(buggy_optimizer(db.clone(), fault));
            let det = detect_with_methodology(&opt, fault.rule_name(), &MutationBudget::default())
                .unwrap();
            assert!(
                det.dynamic.is_some(),
                "fault {fault:?} was never detected (fired={}, diverged={})",
                det.fired,
                det.plans_diverged
            );
        }
    }

    #[test]
    fn fault_names_round_trip_and_bad_names_fail_loudly() {
        for fault in Fault::ALL {
            assert_eq!(Fault::from_name(fault.name()).unwrap(), fault);
            // The shim must stay aligned with the catalog: same id, same
            // target rule.
            assert_eq!(fault.mutant().id, fault.name());
            assert_eq!(fault.rule().name, fault.rule_name());
        }
        let err = Fault::from_name("NoSuchFault").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("NoSuchFault"), "{msg}");
        assert!(msg.contains("OuterJoinSimplifyUnconditional"), "{msg}");
    }
}
