//! Fault injection: deliberately incorrect rule implementations.
//!
//! The framework's purpose is to *find* correctness bugs (§2.3: "it is
//! possible to find test cases where the rule has not been correctly
//! implemented"). These sabotaged rules reproduce classic optimizer bug
//! classes; injecting one via [`buggy_optimizer`] and running the
//! correctness pipeline must surface a [`crate::BugReport`].

use ruletest_expr::{conjoin, Expr};
use ruletest_logical::{JoinKind, OpKind, Operator};
use ruletest_optimizer::{Bound, NewChild, NewTree, Optimizer, PatternTree, Rule};
use ruletest_storage::Database;
use std::sync::Arc;

/// Which sabotage to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// `OuterJoinSimplify` without the null-rejection precondition:
    /// converts every filtered LOJ/ROJ into an inner join.
    OuterJoinSimplifyUnconditional,
    /// `SelectPushBelowOuterJoin` that pushes conjuncts below the
    /// *null-supplying* side (filtering before the join resurrects
    /// unmatched rows as NULL padding).
    PushBelowNullSupplyingSide,
    /// `SelectIntoInnerJoin` applied to *outer* joins: merging filter
    /// conjuncts into a left outer join's ON clause resurrects rows the
    /// filter should have dropped (they come back NULL-padded).
    SelectMergedIntoOuterJoin,
}

impl Fault {
    /// All injectable faults, in declaration order.
    pub const ALL: [Fault; 3] = [
        Fault::OuterJoinSimplifyUnconditional,
        Fault::PushBelowNullSupplyingSide,
        Fault::SelectMergedIntoOuterJoin,
    ];

    /// Stable name used in CLI flags and repro bundles.
    pub fn name(self) -> &'static str {
        match self {
            Fault::OuterJoinSimplifyUnconditional => "OuterJoinSimplifyUnconditional",
            Fault::PushBelowNullSupplyingSide => "PushBelowNullSupplyingSide",
            Fault::SelectMergedIntoOuterJoin => "SelectMergedIntoOuterJoin",
        }
    }

    /// Inverse of [`Fault::name`] — parses CLI flags and repro bundles.
    pub fn from_name(name: &str) -> Option<Fault> {
        Fault::ALL.into_iter().find(|f| f.name() == name)
    }

    /// Name of the rule the fault replaces.
    pub fn rule_name(self) -> &'static str {
        match self {
            Fault::OuterJoinSimplifyUnconditional => "OuterJoinSimplify",
            Fault::PushBelowNullSupplyingSide => "SelectPushBelowOuterJoin",
            Fault::SelectMergedIntoOuterJoin => "SelectIntoInnerJoin",
        }
    }

    /// The sabotaged rule.
    pub fn rule(self) -> Rule {
        match self {
            Fault::OuterJoinSimplifyUnconditional => Rule::explore(
                "OuterJoinSimplify",
                PatternTree::kind(
                    OpKind::Select,
                    vec![PatternTree::join(
                        vec![JoinKind::LeftOuter, JoinKind::RightOuter],
                        PatternTree::Any,
                        PatternTree::Any,
                    )],
                ),
                "BUGGY: no null-rejection check",
                buggy_outer_simplify,
            ),
            Fault::PushBelowNullSupplyingSide => Rule::explore(
                "SelectPushBelowOuterJoin",
                PatternTree::kind(
                    OpKind::Select,
                    vec![PatternTree::join(
                        vec![JoinKind::LeftOuter],
                        PatternTree::Any,
                        PatternTree::Any,
                    )],
                ),
                "BUGGY: pushes below the null-supplying side",
                buggy_push_below_null_side,
            ),
            Fault::SelectMergedIntoOuterJoin => Rule::explore(
                "SelectIntoInnerJoin",
                PatternTree::kind(
                    OpKind::Select,
                    vec![PatternTree::join(
                        vec![JoinKind::LeftOuter],
                        PatternTree::Any,
                        PatternTree::Any,
                    )],
                ),
                "BUGGY: merges the filter into an outer join's ON clause",
                buggy_select_into_outer_join,
            ),
        }
    }
}

/// An optimizer over `db` with `fault` injected in place of the correct
/// rule.
pub fn buggy_optimizer(db: Arc<Database>, fault: Fault) -> Optimizer {
    Optimizer::new_with_overrides(db, vec![fault.rule()])
}

fn buggy_outer_simplify(_ctx: &ruletest_optimizer::rule::RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join { predicate: jp, .. } = &join.op else {
        return vec![];
    };
    // BUG: no null-rejection analysis at all.
    vec![NewTree::new(
        Operator::Select {
            predicate: predicate.clone(),
        },
        vec![NewChild::Tree(NewTree::new(
            Operator::Join {
                kind: JoinKind::Inner,
                predicate: jp.clone(),
            },
            vec![
                NewChild::Group(join.children[0].group()),
                NewChild::Group(join.children[1].group()),
            ],
        ))],
    )]
}

fn buggy_push_below_null_side(ctx: &ruletest_optimizer::rule::RuleCtx, b: &Bound) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join {
        kind,
        predicate: jp,
    } = &join.op
    else {
        return vec![];
    };
    // BUG: partitions conjuncts onto the RIGHT (null-supplying) side of a
    // left outer join.
    let right_cols: std::collections::BTreeSet<_> = ctx
        .schema(join.children[1].group())
        .iter()
        .map(|c| c.id)
        .collect();
    let (push, keep): (Vec<Expr>, Vec<Expr>) = ruletest_expr::conjuncts(predicate)
        .into_iter()
        .partition(|c| ruletest_expr::columns_of(c).is_subset(&right_cols));
    if push.is_empty() {
        return vec![];
    }
    let pushed = NewTree::new(
        Operator::Select {
            predicate: conjoin(push),
        },
        vec![NewChild::Group(join.children[1].group())],
    );
    let new_join = NewTree::new(
        Operator::Join {
            kind: *kind,
            predicate: jp.clone(),
        },
        vec![
            NewChild::Group(join.children[0].group()),
            NewChild::Tree(pushed),
        ],
    );
    vec![if keep.is_empty() {
        new_join
    } else {
        NewTree::new(
            Operator::Select {
                predicate: conjoin(keep),
            },
            vec![NewChild::Tree(new_join)],
        )
    }]
}

fn buggy_select_into_outer_join(
    _ctx: &ruletest_optimizer::rule::RuleCtx,
    b: &Bound,
) -> Vec<NewTree> {
    let Operator::Select { predicate } = &b.op else {
        return vec![];
    };
    let Some(join) = b.children[0].nested() else {
        return vec![];
    };
    let Operator::Join {
        kind,
        predicate: jp,
    } = &join.op
    else {
        return vec![];
    };
    // BUG: valid for inner joins only; for a LEFT OUTER JOIN, rows failing
    // the filter come back NULL-padded instead of being dropped.
    let merged = if jp.is_true_lit() {
        predicate.clone()
    } else {
        Expr::and(predicate.clone(), jp.clone())
    };
    vec![NewTree::new(
        Operator::Join {
            kind: *kind,
            predicate: merged,
        },
        vec![
            NewChild::Group(join.children[0].group()),
            NewChild::Group(join.children[1].group()),
        ],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::Framework;
    use ruletest_common::multisets_equal;
    use ruletest_executor::execute;
    use ruletest_optimizer::OptimizerConfig;
    use ruletest_storage::{tpch_database, TpchConfig};

    /// For each fault: find a query where the buggy rule fires, then show
    /// Plan(q) and Plan(q, ¬rule) disagree on executed results — the §2.3
    /// methodology detecting the bug.
    #[test]
    fn every_fault_is_detectable_by_the_methodology() {
        let db = Arc::new(tpch_database(&TpchConfig::default()).unwrap());
        for fault in [
            Fault::OuterJoinSimplifyUnconditional,
            Fault::PushBelowNullSupplyingSide,
            Fault::SelectMergedIntoOuterJoin,
        ] {
            let opt = Arc::new(buggy_optimizer(db.clone(), fault));
            let fw = Framework::with_optimizer(opt.clone());
            let rule = opt.rule_id(fault.rule_name()).unwrap();
            let mut detected = false;
            for seed in 0..200u64 {
                let cfg = crate::generate::GenConfig {
                    seed,
                    max_trials: 20,
                    ..Default::default()
                };
                let Ok(out) =
                    fw.find_query_for_rule(rule, crate::generate::Strategy::Pattern, &cfg)
                else {
                    continue;
                };
                let base = opt.optimize(&out.query).unwrap();
                let masked = opt
                    .optimize_with(&out.query, &OptimizerConfig::disabling(&[rule]))
                    .unwrap();
                if base.plan.same_shape(&masked.plan) {
                    continue;
                }
                let (Ok(a), Ok(b)) = (execute(&db, &base.plan), execute(&db, &masked.plan)) else {
                    continue;
                };
                if !multisets_equal(&a, &b) {
                    detected = true;
                    break;
                }
            }
            assert!(detected, "fault {fault:?} was never detected");
        }
    }
}
