//! Campaign-level supervision: quarantine, supervised stage drivers, and
//! crash repro bundles.
//!
//! `ruletest_common::supervise` provides the mechanism (panic sandbox,
//! deadlines, the [`Failure`] taxonomy); this module provides the policy.
//! Each campaign stage gets a supervised twin that fans the same work out
//! through `par_map_supervised`, catches per-item failures instead of
//! letting them abort the campaign, and records every poisoned input in a
//! [`Quarantine`] keyed by a *stable fingerprint* of `(site, input)`. The
//! quarantine persists in campaign checkpoints, so a `--resume` skips
//! known-poisoned inputs instead of re-hitting the crash; crash inputs
//! that carry SQL are fed to the triage minimizer's shrink lattice and
//! emitted as [`ReproBundle`]s.
//!
//! **Determinism contract:** on a clean run (no failures, empty
//! quarantine) every supervised driver performs exactly the same
//! optimizer/executor calls, opens the same telemetry spans, and bumps
//! the same counters as its unsupervised twin — the deterministic report
//! slice is byte-identical with supervision on or off, at any thread
//! count. All supervision counters are environmental (excluded from the
//! deterministic slice), so absorbed faults never perturb it either.

use crate::framework::Framework;
use crate::generate::{GenConfig, Strategy};
use crate::suite::{queries_for_target, BipartiteGraph, RuleTarget, TestSuite};
use crate::triage::{bundle::BUNDLE_VERSION, minimize, ReproBundle, TriageConfig};
use ruletest_common::{par_map_supervised, sandbox, Error, Failure, Result, RuleId};
use ruletest_executor::execute_with;
use ruletest_logical::LogicalTree;
use ruletest_optimizer::OptimizerConfig;
use ruletest_telemetry::{Counter, Event, Json, Stage};
use std::collections::{BTreeSet, HashMap};

/// Supervision site labels (stable: they feed quarantine fingerprints).
pub const SITE_SUITE: &str = "suite.generate";
pub const SITE_GRAPH: &str = "graph.edges";
pub const SITE_EXEC_BASE: &str = "exec.base";
pub const SITE_EXEC_PAIR: &str = "exec.pair";

/// FNV-1a 64 over the `(site, input)` identity of a supervised work item.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Stable fingerprint of a supervised input: a pure function of the site
/// label and the input's identity string (target label, SQL text, ...),
/// never of run state like indices or thread ids — so the same poisoned
/// input maps to the same quarantine entry across runs and resumes.
pub fn fingerprint_u64(site: &str, input: &str) -> u64 {
    fnv1a(format!("{site}\u{1f}{input}").as_bytes())
}

/// [`fingerprint_u64`] rendered as the 16-hex-digit key quarantine files
/// use.
pub fn input_fingerprint(site: &str, input: &str) -> String {
    format!("{:016x}", fingerprint_u64(site, input))
}

/// One quarantined input: enough to skip it on resume and to attempt a
/// crash repro later.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// [`input_fingerprint`] of `(site, input)` — the dedup/skip key.
    pub fingerprint: String,
    /// Failure kind tag (`panic` / `timeout` / `budget`).
    pub kind: String,
    /// Supervision site (`suite.generate`, `graph.edges`, `exec.base`,
    /// `exec.pair`).
    pub site: String,
    /// Failure message (panic payload, deadline description, ...).
    pub message: String,
    /// Human-readable input identity (target label or query label).
    pub label: String,
    /// The poisoned query's SQL, when the input has one — the crash
    /// minimizer's starting witness.
    pub sql: Option<String>,
    /// Rule names masked when the failure happened (empty for base
    /// executions and suite generation).
    pub rule_mask: Vec<String>,
}

/// The set of inputs a campaign must not touch again. Ordered by first
/// insertion; deduplicated by fingerprint.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Quarantine {
    entries: Vec<QuarantineEntry>,
}

impl Quarantine {
    pub fn new() -> Self {
        Quarantine::default()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn entries(&self) -> &[QuarantineEntry] {
        &self.entries
    }

    /// True when `(site, input)` is already quarantined.
    pub fn contains_input(&self, site: &str, input: &str) -> bool {
        let fp = input_fingerprint(site, input);
        self.entries.iter().any(|e| e.fingerprint == fp)
    }

    /// Inserts an entry; returns `true` when it is new (false = already
    /// quarantined under the same fingerprint).
    pub fn add(&mut self, entry: QuarantineEntry) -> bool {
        if self
            .entries
            .iter()
            .any(|e| e.fingerprint == entry.fingerprint)
        {
            return false;
        }
        self.entries.push(entry);
        true
    }

    /// Merges another quarantine (e.g. one loaded from a checkpoint) into
    /// this one, first-insertion order preserved.
    pub fn merge(&mut self, other: Quarantine) {
        for e in other.entries {
            self.add(e);
        }
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![(
            "entries",
            Json::Arr(
                self.entries
                    .iter()
                    .map(|e| {
                        let mut fields = vec![
                            ("fingerprint", Json::str(e.fingerprint.clone())),
                            ("kind", Json::str(e.kind.clone())),
                            ("site", Json::str(e.site.clone())),
                            ("message", Json::str(e.message.clone())),
                            ("label", Json::str(e.label.clone())),
                        ];
                        if let Some(sql) = &e.sql {
                            fields.push(("sql", Json::str(sql.clone())));
                        }
                        fields.push((
                            "rule_mask",
                            Json::Arr(e.rule_mask.iter().map(Json::str).collect()),
                        ));
                        Json::obj(fields)
                    })
                    .collect(),
            ),
        )])
    }

    pub fn from_json(j: &Json) -> Result<Quarantine> {
        let malformed = |what: &str| Error::unsupported(format!("quarantine: malformed {what}"));
        let str_field = |e: &Json, name: &str| -> Result<String> {
            e.get(name)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| malformed(name))
        };
        let mut out = Quarantine::new();
        for e in j
            .get("entries")
            .and_then(Json::as_arr)
            .ok_or_else(|| malformed("entries"))?
        {
            let rule_mask = e
                .get("rule_mask")
                .and_then(Json::as_arr)
                .ok_or_else(|| malformed("rule_mask"))?
                .iter()
                .map(|r| {
                    r.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| malformed("rule_mask"))
                })
                .collect::<Result<Vec<_>>>()?;
            out.add(QuarantineEntry {
                fingerprint: str_field(e, "fingerprint")?,
                kind: str_field(e, "kind")?,
                site: str_field(e, "site")?,
                message: str_field(e, "message")?,
                label: str_field(e, "label")?,
                sql: e.get("sql").and_then(Json::as_str).map(str::to_string),
                rule_mask,
            });
        }
        Ok(out)
    }
}

fn failure_counter(kind: &str) -> Counter {
    match kind {
        "panic" => Counter::SupervisePanics,
        "timeout" => Counter::SuperviseTimeouts,
        _ => Counter::SuperviseBudget,
    }
}

/// Records one absorbed failure: bumps the per-kind supervision counter,
/// emits the `supervised` event, and quarantines the input (bumping the
/// quarantine counter only for *new* entries — a resume re-absorbing a
/// known input is not a new quarantine).
pub(crate) fn absorb(
    fw: &Framework,
    quarantine: &mut Quarantine,
    site: &str,
    label: &str,
    sql: Option<String>,
    rule_mask: Vec<String>,
    failure: &Failure,
) {
    let fp = fingerprint_u64(site, label);
    fw.telemetry.incr(failure_counter(failure.kind()));
    let site_owned = site.to_string();
    let kind = failure.kind();
    fw.telemetry.event(|| Event::Supervised {
        kind,
        site: site_owned.clone(),
        fingerprint: fp,
    });
    let new = quarantine.add(QuarantineEntry {
        fingerprint: format!("{fp:016x}"),
        kind: kind.to_string(),
        site: site.to_string(),
        message: failure.message().to_string(),
        label: label.to_string(),
        sql,
        rule_mask,
    });
    if new {
        fw.telemetry.incr(Counter::SuperviseQuarantined);
    }
}

// ---------------------------------------------------------------------
// Supervised stage drivers.

/// Supervised twin of [`crate::suite::generate_suite`]: per-target
/// panics, timeouts, and budget exhaustions are quarantined and the
/// target dropped; already-quarantined targets are skipped without
/// touching the optimizer. Ordinary generation errors (an unfillable
/// target) propagate exactly as in the unsupervised builder. Each target
/// keeps its *original* index as the seed-stream key, so the queries of
/// surviving targets are byte-identical to an unsupervised run.
pub fn generate_suite_supervised(
    fw: &Framework,
    targets: Vec<RuleTarget>,
    k: usize,
    strategy: Strategy,
    cfg: &GenConfig,
    quarantine: &mut Quarantine,
) -> Result<TestSuite> {
    let labeled: Vec<(usize, RuleTarget, String)> = targets
        .into_iter()
        .enumerate()
        .map(|(ti, t)| {
            let label = t.label(&fw.optimizer);
            (ti, t, label)
        })
        .collect();
    let pending: Vec<&(usize, RuleTarget, String)> = labeled
        .iter()
        .filter(|(_, _, label)| !quarantine.contains_input(SITE_SUITE, label))
        .collect();
    let results = par_map_supervised(fw.parallelism.threads, &pending, SITE_SUITE, |_, item| {
        let (ti, target, _) = **item;
        queries_for_target(fw, target, ti, k, strategy, cfg)
    });
    let mut kept = Vec::new();
    let mut queries = Vec::new();
    for (item, result) in pending.into_iter().zip(results) {
        let (_, target, ref label) = *item;
        let mask = || {
            target
                .rules()
                .iter()
                .map(|&r| fw.optimizer.rule(r).name.to_string())
                .collect()
        };
        match result {
            Ok(Ok(mini)) => {
                let slot = kept.len();
                kept.push(target);
                queries.extend(mini.into_iter().map(|mut q| {
                    q.generated_for = slot;
                    q
                }));
            }
            Ok(Err(e)) => match Failure::from_error(&e) {
                Some(failure) => absorb(fw, quarantine, SITE_SUITE, label, None, mask(), &failure),
                // An unfillable target is a generation outcome, not a
                // crash: same abort semantics as the strict builder.
                None => return Err(e),
            },
            Err(failure) => absorb(fw, quarantine, SITE_SUITE, label, None, mask(), &failure),
        }
    }
    Ok(TestSuite {
        targets: kept,
        k,
        queries,
        seed: cfg.seed,
    })
}

/// Drops the targets at `drop` (sorted set of indices) from `suite`,
/// discarding their dedicated queries and retagging the survivors.
/// Returns the shrunk suite plus the query remap (`old -> Some(new)`).
fn drop_targets(suite: &TestSuite, drop: &BTreeSet<usize>) -> (TestSuite, Vec<Option<usize>>) {
    let mut target_remap: Vec<Option<usize>> = Vec::with_capacity(suite.targets.len());
    let mut targets = Vec::new();
    for (t, &target) in suite.targets.iter().enumerate() {
        if drop.contains(&t) {
            target_remap.push(None);
        } else {
            target_remap.push(Some(targets.len()));
            targets.push(target);
        }
    }
    let mut query_remap: Vec<Option<usize>> = Vec::with_capacity(suite.queries.len());
    let mut queries = Vec::new();
    for q in &suite.queries {
        match target_remap[q.generated_for] {
            Some(nt) => {
                query_remap.push(Some(queries.len()));
                let mut q = q.clone();
                q.generated_for = nt;
                queries.push(q);
            }
            None => query_remap.push(None),
        }
    }
    (
        TestSuite {
            targets,
            k: suite.k,
            queries,
            seed: suite.seed,
        },
        query_remap,
    )
}

/// Supervised twin of [`crate::suite::build_graph`]: edge costs are
/// computed per target inside the sandbox; a target whose edge
/// computation fails is quarantined and dropped *together with its
/// dedicated queries* (the suite shrinks), rather than aborting the
/// campaign. Returns the (possibly shrunk) suite the graph indexes.
///
/// Clean path: one `par_map_supervised` pass with the same per-target
/// spans, oracle-call counters, and edge costs as the eager builder —
/// the deterministic slice is byte-identical.
pub fn build_graph_supervised(
    fw: &Framework,
    suite: &TestSuite,
    quarantine: &mut Quarantine,
) -> Result<(TestSuite, BipartiteGraph)> {
    let labels: Vec<String> = suite
        .targets
        .iter()
        .map(|t| t.label(&fw.optimizer))
        .collect();
    let pre_drop: BTreeSet<usize> = (0..suite.targets.len())
        .filter(|&t| quarantine.contains_input(SITE_GRAPH, &labels[t]))
        .collect();
    let (base, _) = drop_targets(suite, &pre_drop);
    let base_labels: Vec<String> = base
        .targets
        .iter()
        .map(|t| t.label(&fw.optimizer))
        .collect();

    let adjacency: Vec<Vec<usize>> = (0..base.targets.len()).map(|t| base.covering(t)).collect();
    let indexed: Vec<usize> = (0..base.targets.len()).collect();
    let results = par_map_supervised(fw.parallelism.threads, &indexed, SITE_GRAPH, |_, &t| {
        // Same leaf-closure span as the unsupervised builder: the span
        // tree stays identical at any thread count, supervised or not.
        let _span = fw.telemetry.span(Stage::Graph);
        let rules = base.targets[t].rules();
        let mut edges = Vec::with_capacity(adjacency[t].len());
        for &q in &adjacency[t] {
            let res = fw
                .optimizer
                .optimize_with_cached(&base.queries[q].tree, &OptimizerConfig::disabling(&rules))?;
            fw.telemetry.incr(Counter::OracleCalls);
            edges.push((q, res.cost));
        }
        Ok(edges)
    });

    let mut failed: BTreeSet<usize> = BTreeSet::new();
    let mut per_target: Vec<Option<Vec<(usize, f64)>>> = Vec::with_capacity(results.len());
    for (t, result) in results.into_iter().enumerate() {
        let mask: Vec<String> = base.targets[t]
            .rules()
            .iter()
            .map(|&r| fw.optimizer.rule(r).name.to_string())
            .collect();
        match result {
            Ok(Ok(edges)) => per_target.push(Some(edges)),
            Ok(Err(e)) => match Failure::from_error(&e) {
                Some(failure) => {
                    absorb(
                        fw,
                        quarantine,
                        SITE_GRAPH,
                        &base_labels[t],
                        None,
                        mask,
                        &failure,
                    );
                    failed.insert(t);
                    per_target.push(None);
                }
                None => return Err(e),
            },
            Err(failure) => {
                absorb(
                    fw,
                    quarantine,
                    SITE_GRAPH,
                    &base_labels[t],
                    None,
                    mask,
                    &failure,
                );
                failed.insert(t);
                per_target.push(None);
            }
        }
    }

    if failed.is_empty() {
        // Fast path (and the clean-run determinism path): `base` is the
        // graph's suite; assemble the graph directly from the per-target
        // edge lists.
        let mut edges: HashMap<(usize, usize), f64> = HashMap::new();
        for (t, list) in per_target.iter().enumerate() {
            for &(q, c) in list.as_ref().expect("no failed targets") {
                edges.insert((t, q), c);
            }
        }
        let optimizer_calls = edges.len() as u64;
        let graph = BipartiteGraph {
            targets: base.targets.clone(),
            k: base.k,
            node_cost: base.queries.iter().map(|q| q.cost).collect(),
            adjacency,
            edges,
            generated_for: base.queries.iter().map(|q| q.generated_for).collect(),
            optimizer_calls,
        };
        return Ok((base, graph));
    }

    // Some targets failed: shrink the suite again and remap the edge
    // lists of the survivors onto the new indices.
    let (final_suite, query_remap) = drop_targets(&base, &failed);
    let adjacency: Vec<Vec<usize>> = (0..final_suite.targets.len())
        .map(|t| final_suite.covering(t))
        .collect();
    let mut edges: HashMap<(usize, usize), f64> = HashMap::new();
    let mut nt = 0usize;
    for list in &per_target {
        let Some(list) = list else {
            continue; // dropped target
        };
        for &(q, c) in list {
            if let Some(nq) = query_remap[q] {
                edges.insert((nt, nq), c);
            }
        }
        nt += 1;
    }
    let optimizer_calls = edges.len() as u64;
    let graph = BipartiteGraph {
        targets: final_suite.targets.clone(),
        k: final_suite.k,
        node_cost: final_suite.queries.iter().map(|q| q.cost).collect(),
        adjacency,
        edges,
        generated_for: final_suite
            .queries
            .iter()
            .map(|q| q.generated_for)
            .collect(),
        optimizer_calls,
    };
    Ok((final_suite, graph))
}

// ---------------------------------------------------------------------
// Crash repro bundles.

/// Probes whether `tree` still fails (panic / timeout / budget) when
/// optimized both ways and executed. Returns the failure when it does.
fn crash_probe(
    fw: &Framework,
    tree: &LogicalTree,
    rules: &[RuleId],
    cfg: &TriageConfig,
) -> Option<Failure> {
    let outcome = sandbox("crash.probe", || {
        let base = fw.optimizer.optimize_cached(tree)?;
        let masked = fw
            .optimizer
            .optimize_with_cached(tree, &OptimizerConfig::disabling(rules))?;
        execute_with(&fw.db, &base.plan, &cfg.exec)?;
        execute_with(&fw.db, &masked.plan, &cfg.exec)?;
        Ok(())
    });
    outcome.err()
}

/// Converts quarantined crash inputs that carry SQL into repro bundles,
/// shrinking each witness through the triage minimizer's candidate
/// lattice while the failure (same kind) still reproduces. Entries whose
/// failure no longer reproduces (e.g. an exhausted chaos injection cap)
/// are bundled unshrunk — the bundle still records the witness, site,
/// and failure message.
///
/// Unlike result-diff bundles, crash bundles are *not* self-checked
/// against a recorded divergence: their `signature` is
/// `crash:<kind>:<site>` and their `diff_summary` is the failure
/// message; `base_plan`/`masked_plan` stay empty (the plans may not be
/// derivable from a crashing input).
pub fn crash_bundles(
    fw: &Framework,
    suite_seed: u64,
    quarantine: &Quarantine,
    cfg: &TriageConfig,
) -> Vec<ReproBundle> {
    let mut out = Vec::new();
    let mut total_steps = 0u64;
    for entry in quarantine.entries() {
        let Some(sql) = &entry.sql else {
            continue;
        };
        let Ok(mut tree) = ruletest_sql::parse_sql(&fw.db.catalog, sql) else {
            continue;
        };
        let rules: Vec<RuleId> = entry
            .rule_mask
            .iter()
            .filter_map(|n| fw.optimizer.rule_id(n))
            .collect();
        let mut steps = 0usize;
        if rules.len() == entry.rule_mask.len()
            && crash_probe(fw, &tree, &rules, cfg).is_some_and(|f| f.kind() == entry.kind)
        {
            // Greedy first-improvement descent, accepting any candidate
            // on which the same failure kind still reproduces.
            'shrink: while steps < cfg.max_steps {
                for cand in minimize::candidates(&tree) {
                    if !minimize::is_valid(fw, &cand) {
                        continue;
                    }
                    if crash_probe(fw, &cand, &rules, cfg).is_some_and(|f| f.kind() == entry.kind) {
                        tree = cand;
                        steps += 1;
                        continue 'shrink;
                    }
                }
                break;
            }
        }
        let final_sql = ruletest_sql::to_sql(&fw.db.catalog, &tree).unwrap_or_else(|_| sql.clone());
        total_steps += steps as u64;
        out.push(ReproBundle {
            version: BUNDLE_VERSION,
            target_label: entry.label.clone(),
            rule_mask: entry.rule_mask.clone(),
            fault: cfg.fault.map(|f| f.name().to_string()),
            seed: suite_seed,
            db_seed: fw.db_profile.db_seed,
            scale: fw.db_profile.scale as u64,
            sql: final_sql,
            ops: tree.op_count() as u64,
            signature: format!("crash:{}:{}", entry.kind, entry.site),
            duplicates: 0,
            diff_summary: format!("{} at {}: {}", entry.kind, entry.site, entry.message),
            base_plan: String::new(),
            masked_plan: String::new(),
        });
    }
    if !out.is_empty() {
        fw.telemetry.add(Counter::BugsMinimized, out.len() as u64);
        fw.telemetry.add(Counter::MinimizationSteps, total_steps);
    }
    out
}

/// Renders a one-line quarantine summary for campaign output.
pub fn quarantine_summary(q: &Quarantine) -> String {
    if q.is_empty() {
        return "quarantine: empty".to_string();
    }
    let mut by_kind: Vec<(String, usize)> = Vec::new();
    for e in q.entries() {
        match by_kind.iter_mut().find(|(k, _)| *k == e.kind) {
            Some((_, n)) => *n += 1,
            None => by_kind.push((e.kind.clone(), 1)),
        }
    }
    let detail: Vec<String> = by_kind
        .into_iter()
        .map(|(k, n)| format!("{n} {k}"))
        .collect();
    format!("quarantine: {} entries ({})", q.len(), detail.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;

    #[test]
    fn fingerprints_are_stable_and_site_scoped() {
        let a = input_fingerprint("suite.generate", "InnerJoinCommute");
        let b = input_fingerprint("suite.generate", "InnerJoinCommute");
        let c = input_fingerprint("graph.edges", "InnerJoinCommute");
        assert_eq!(a, b);
        assert_ne!(
            a, c,
            "the same input at a different site is a different entry"
        );
        assert_eq!(a.len(), 16);
    }

    #[test]
    fn quarantine_dedups_by_fingerprint_and_round_trips_json() {
        let mut q = Quarantine::new();
        let entry = QuarantineEntry {
            fingerprint: input_fingerprint(SITE_EXEC_PAIR, "A|SELECT 1"),
            kind: "panic".to_string(),
            site: SITE_EXEC_PAIR.to_string(),
            message: "chaos: injected panic at memo.insert (hit 3)".to_string(),
            label: "A|SELECT 1".to_string(),
            sql: Some("SELECT 1".to_string()),
            rule_mask: vec!["InnerJoinCommute".to_string()],
        };
        assert!(q.add(entry.clone()));
        assert!(!q.add(entry.clone()), "same fingerprint must dedup");
        assert!(q.add(QuarantineEntry {
            fingerprint: input_fingerprint(SITE_SUITE, "B"),
            kind: "timeout".to_string(),
            site: SITE_SUITE.to_string(),
            message: "deadline".to_string(),
            label: "B".to_string(),
            sql: None,
            rule_mask: vec![],
        }));
        assert_eq!(q.len(), 2);
        assert!(q.contains_input(SITE_EXEC_PAIR, "A|SELECT 1"));
        assert!(!q.contains_input(SITE_EXEC_PAIR, "A|SELECT 2"));

        let round = Quarantine::from_json(&q.to_json()).unwrap();
        assert_eq!(round, q);
        // The optional sql field round-trips both present and absent.
        assert_eq!(round.entries()[0].sql.as_deref(), Some("SELECT 1"));
        assert_eq!(round.entries()[1].sql, None);
    }

    #[test]
    fn merge_preserves_first_insertion_and_dedups() {
        let mk = |site: &str, label: &str| QuarantineEntry {
            fingerprint: input_fingerprint(site, label),
            kind: "budget".to_string(),
            site: site.to_string(),
            message: "m".to_string(),
            label: label.to_string(),
            sql: None,
            rule_mask: vec![],
        };
        let mut a = Quarantine::new();
        a.add(mk(SITE_SUITE, "x"));
        let mut b = Quarantine::new();
        b.add(mk(SITE_SUITE, "x"));
        b.add(mk(SITE_GRAPH, "y"));
        a.merge(b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.entries()[0].label, "x");
        assert_eq!(a.entries()[1].label, "y");
    }

    #[test]
    fn quarantine_summary_groups_by_kind() {
        let mut q = Quarantine::new();
        assert_eq!(quarantine_summary(&q), "quarantine: empty");
        for (site, label, kind) in [
            (SITE_SUITE, "a", "panic"),
            (SITE_SUITE, "b", "panic"),
            (SITE_GRAPH, "c", "timeout"),
        ] {
            q.add(QuarantineEntry {
                fingerprint: input_fingerprint(site, label),
                kind: kind.to_string(),
                site: site.to_string(),
                message: String::new(),
                label: label.to_string(),
                sql: None,
                rule_mask: vec![],
            });
        }
        assert_eq!(
            quarantine_summary(&q),
            "quarantine: 3 entries (2 panic, 1 timeout)"
        );
    }

    #[test]
    fn supervised_generation_matches_strict_generation_on_the_clean_path() {
        use crate::suite::{generate_suite, singleton_targets};
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let targets = singleton_targets(&fw, 4);
        let strict = generate_suite(
            &fw,
            targets.clone(),
            2,
            Strategy::Pattern,
            &GenConfig::default(),
        )
        .unwrap();
        let mut q = Quarantine::new();
        let supervised = generate_suite_supervised(
            &fw,
            targets,
            2,
            Strategy::Pattern,
            &GenConfig::default(),
            &mut q,
        )
        .unwrap();
        assert!(q.is_empty());
        assert_eq!(supervised.targets, strict.targets);
        assert_eq!(supervised.queries.len(), strict.queries.len());
        for (a, b) in supervised.queries.iter().zip(&strict.queries) {
            assert_eq!(a.sql, b.sql);
            assert_eq!(a.cost, b.cost);
            assert_eq!(a.generated_for, b.generated_for);
        }
    }

    #[test]
    fn supervised_graph_matches_eager_graph_on_the_clean_path() {
        use crate::suite::{build_graph, generate_suite, singleton_targets};
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let targets = singleton_targets(&fw, 4);
        let suite =
            generate_suite(&fw, targets, 2, Strategy::Pattern, &GenConfig::default()).unwrap();
        let eager = build_graph(&fw, &suite).unwrap();
        let mut q = Quarantine::new();
        let (sup_suite, sup) = build_graph_supervised(&fw, &suite, &mut q).unwrap();
        assert!(q.is_empty());
        assert_eq!(sup_suite.targets, suite.targets);
        assert_eq!(sup.adjacency, eager.adjacency);
        assert_eq!(sup.edges, eager.edges);
        assert_eq!(sup.node_cost, eager.node_cost);
        assert_eq!(sup.generated_for, eager.generated_for);
        assert_eq!(sup.optimizer_calls, eager.optimizer_calls);
    }

    #[test]
    fn quarantined_targets_are_skipped_and_dropped() {
        use crate::suite::{generate_suite, singleton_targets};
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let targets = singleton_targets(&fw, 4);
        let labels: Vec<String> = targets.iter().map(|t| t.label(&fw.optimizer)).collect();
        // Pre-poison the second target at the generation site.
        let mut q = Quarantine::new();
        q.add(QuarantineEntry {
            fingerprint: input_fingerprint(SITE_SUITE, &labels[1]),
            kind: "panic".to_string(),
            site: SITE_SUITE.to_string(),
            message: "previously crashed".to_string(),
            label: labels[1].clone(),
            sql: None,
            rule_mask: vec![],
        });
        let suite = generate_suite_supervised(
            &fw,
            targets.clone(),
            2,
            Strategy::Pattern,
            &GenConfig::default(),
            &mut q,
        )
        .unwrap();
        assert_eq!(suite.targets.len(), 3, "poisoned target dropped");
        assert!(!suite.targets.contains(&targets[1]));
        // The surviving targets' queries are identical to the strict
        // build's (original-index seed streams survive the drop).
        let strict = generate_suite(
            &fw,
            targets.clone(),
            2,
            Strategy::Pattern,
            &GenConfig::default(),
        )
        .unwrap();
        let strict_sql: Vec<&String> = strict
            .queries
            .iter()
            .filter(|sq| sq.generated_for != 1)
            .map(|sq| &sq.sql)
            .collect();
        let sup_sql: Vec<&String> = suite.queries.iter().map(|sq| &sq.sql).collect();
        assert_eq!(sup_sql, strict_sql);

        // Graph stage: pre-poison one more target at the graph site.
        q.add(QuarantineEntry {
            fingerprint: input_fingerprint(SITE_GRAPH, &labels[2]),
            kind: "timeout".to_string(),
            site: SITE_GRAPH.to_string(),
            message: "previously hung".to_string(),
            label: labels[2].clone(),
            sql: None,
            rule_mask: vec![],
        });
        let (g_suite, graph) = build_graph_supervised(&fw, &suite, &mut q).unwrap();
        assert_eq!(g_suite.targets.len(), 2);
        assert!(!g_suite.targets.contains(&targets[2]));
        assert_eq!(graph.targets, g_suite.targets);
        // Every adjacency pair has an edge (eager invariant preserved
        // across the shrink/remap).
        for (t, adj) in graph.adjacency.iter().enumerate() {
            for &qi in adj {
                assert!(
                    graph.edges.contains_key(&(t, qi)),
                    "missing edge ({t},{qi})"
                );
            }
        }
        assert_eq!(graph.optimizer_calls, graph.edges.len() as u64);
    }
}
