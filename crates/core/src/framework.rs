//! The framework facade (Figure 2): test database + instrumented optimizer
//! + query generation entry points.

use crate::generate::pairs::compose_patterns;
use crate::generate::pattern::{instantiate_pattern, pad_above};
use crate::generate::random::random_tree;
use crate::generate::{GenConfig, GenOutcome, Strategy};
use ruletest_common::{par_map, poolstats, Error, Parallelism, Result, Rng, RuleId};
use ruletest_logical::{IdGen, LogicalTree};
use ruletest_optimizer::{Optimizer, PatternTree};
use ruletest_sql::to_sql;
use ruletest_storage::{tpch_database, Database, TpchConfig};
use ruletest_telemetry::{
    CacheSection, Counter, Event, Hist, PoolSection, RunReport, Stage, Telemetry,
};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Framework construction parameters.
#[derive(Debug, Clone, Default)]
pub struct FrameworkConfig {
    /// The fixed test database (§2.3 assumes one is given).
    pub db: TpchConfig,
    /// Worker threads + master seed for the parallel campaign stages
    /// (suite generation, graph construction, correctness execution).
    /// Results are byte-identical at any thread count.
    pub parallelism: Parallelism,
    /// Campaign telemetry (disabled by default — recording sites become
    /// near-no-ops and results stay byte-identical to an uninstrumented
    /// build).
    pub telemetry: Telemetry,
}

/// How the test database was generated — recorded so bug reports carry a
/// full repro (the result diff depends on the data, not just the SQL).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DbProfile {
    /// Seed the TPC-H (or other) generator ran with.
    pub db_seed: u64,
    /// Integer scale factor relative to the default table sizes.
    pub scale: usize,
}

impl Default for DbProfile {
    fn default() -> Self {
        DbProfile {
            db_seed: TpchConfig::default().seed,
            scale: 1,
        }
    }
}

/// The rule-testing framework: owns the test database and the instrumented
/// optimizer, and exposes the generation/compression/correctness pipeline.
pub struct Framework {
    pub db: Arc<Database>,
    pub optimizer: Arc<Optimizer>,
    /// Campaign parallelism; see [`FrameworkConfig::parallelism`].
    pub parallelism: Parallelism,
    /// Campaign telemetry; see [`FrameworkConfig::telemetry`].
    pub telemetry: Telemetry,
    /// Provenance of `db`; see [`DbProfile`].
    pub db_profile: DbProfile,
    /// Checkpointed report absorbed on `--resume`: the report snapshot the
    /// interrupted campaign saved at its last completed stage boundary.
    /// [`Framework::run_report`] merges it in so a resumed campaign's
    /// aggregate report equals an uninterrupted run's.
    report_base: Mutex<Option<RunReport>>,
}

impl Framework {
    /// Builds the framework over a freshly generated TPC-H test database.
    pub fn new(config: &FrameworkConfig) -> Result<Framework> {
        let db = Arc::new(tpch_database(&config.db)?);
        let optimizer = Arc::new(Optimizer::new(db.clone()));
        Ok(Framework {
            db,
            optimizer,
            parallelism: config.parallelism,
            telemetry: Telemetry::disabled(),
            db_profile: DbProfile {
                db_seed: config.db.seed,
                scale: config.db.scale_factor(),
            },
            report_base: Mutex::new(None),
        }
        .with_telemetry(config.telemetry.clone()))
    }

    /// Builds the framework around an existing (possibly fault-injected)
    /// optimizer.
    pub fn with_optimizer(optimizer: Arc<Optimizer>) -> Framework {
        Framework {
            db: optimizer.database().clone(),
            optimizer,
            parallelism: Parallelism::default(),
            telemetry: Telemetry::disabled(),
            db_profile: DbProfile::default(),
            report_base: Mutex::new(None),
        }
    }

    /// Builds the framework over an arbitrary test database — the paper's
    /// techniques "can be invoked against any database" (§2.3); see the
    /// star-schema run in `tests/other_schema.rs`.
    pub fn over_database(db: Arc<Database>) -> Framework {
        let optimizer = Arc::new(Optimizer::new(db.clone()));
        Framework {
            db,
            optimizer,
            parallelism: Parallelism::default(),
            telemetry: Telemetry::disabled(),
            db_profile: DbProfile::default(),
            report_base: Mutex::new(None),
        }
    }

    /// Replaces the parallelism configuration (builder style).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Framework {
        self.parallelism = parallelism;
        self
    }

    /// Records the database provenance (builder style) — needed by the
    /// `with_optimizer`/`over_database` constructors, which receive a
    /// ready-made database and cannot infer how it was generated.
    pub fn with_db_profile(mut self, profile: DbProfile) -> Framework {
        self.db_profile = profile;
        self
    }

    /// Installs campaign telemetry (builder style): the handle is shared
    /// with the optimizer, and worker-pool statistics collection is turned
    /// on when the handle is enabled.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Framework {
        if telemetry.is_enabled() {
            self.optimizer.attach_telemetry(telemetry.clone());
            poolstats::enable();
        }
        self.telemetry = telemetry;
        self
    }

    /// Rule names indexed by `RuleId`, for report labeling.
    pub fn rule_names(&self) -> Vec<String> {
        (0..self.optimizer.num_rules())
            .map(|i| self.optimizer.rule(RuleId(i as u16)).name.to_string())
            .collect()
    }

    /// The content fingerprint guarding this campaign's persistent cache
    /// and checkpoints: schema catalog, rule catalog, database seed and
    /// scale. A run whose fingerprint differs must never consume another
    /// run's cached entries or checkpoints.
    pub fn campaign_fingerprint(&self) -> u64 {
        ruletest_optimizer::campaign_fingerprint(
            &self.db.catalog,
            (0..self.optimizer.num_rules()).map(|i| self.optimizer.rule(RuleId(i as u16))),
            self.db_profile.db_seed,
            self.db_profile.scale as u64,
        )
    }

    /// Installs the checkpointed report snapshot a `--resume` run starts
    /// from; subsequent [`Framework::run_report`] calls absorb it.
    pub fn set_report_base(&self, base: RunReport) {
        *self.report_base.lock().expect("report base poisoned") = Some(base);
    }

    /// Rolls the campaign so far into one aggregate [`RunReport`]: the
    /// telemetry registry plus the cache, pool, and trace sections this
    /// framework owns, merged over any checkpointed base report installed
    /// by `--resume`. `wall_seconds` is left 0 for the caller to fill.
    pub fn run_report(&self) -> RunReport {
        let mut report = self.telemetry.run_report(&self.rule_names());
        let cs = self.optimizer.cache_stats();
        report.cache = CacheSection {
            hits: cs.hits,
            misses: cs.misses,
            evictions: cs.evictions,
        };
        let ps = poolstats::snapshot();
        report.pool = PoolSection {
            par_calls: ps.par_calls,
            tasks: ps.tasks,
            workers: ps.workers,
            steals: ps.steals,
            busy_ns: ps.busy_ns,
            idle_ns: ps.idle_ns,
        };
        if let Some(base) = self
            .report_base
            .lock()
            .expect("report base poisoned")
            .as_ref()
        {
            let mut merged = base.clone();
            merged.absorb(&report);
            return merged;
        }
        report
    }

    /// Generates a SQL query that exercises `rule` (§3.1). The efficiency
    /// metric is [`GenOutcome::trials`].
    pub fn find_query_for_rule(
        &self,
        rule: RuleId,
        strategy: Strategy,
        cfg: &GenConfig,
    ) -> Result<GenOutcome> {
        self.find_query_for_rules(&[rule], strategy, cfg)
    }

    /// Generates a SQL query that exercises both rules of a pair (§3.2).
    pub fn find_query_for_pair(
        &self,
        pair: (RuleId, RuleId),
        strategy: Strategy,
        cfg: &GenConfig,
    ) -> Result<GenOutcome> {
        self.find_query_for_rules(&[pair.0, pair.1], strategy, cfg)
    }

    /// Generates a SQL query whose optimization exercises every rule in
    /// `targets`.
    pub fn find_query_for_rules(
        &self,
        targets: &[RuleId],
        strategy: Strategy,
        cfg: &GenConfig,
    ) -> Result<GenOutcome> {
        // One span per generation problem: this method runs inside the
        // worker-pool leaf closure, so the span tree's shape is independent
        // of the thread count.
        let _span = self.telemetry.span(Stage::Generation);
        let start = Instant::now();
        if targets.is_empty() {
            return Err(Error::unsupported(
                "generation needs at least one target rule",
            ));
        }
        let mut rng = Rng::new(cfg.seed);
        // PATTERN: the candidate composite patterns, smallest first.
        let candidates: Vec<PatternTree> = match (strategy, targets) {
            (Strategy::Random, _) => vec![],
            (Strategy::Pattern, [single]) => vec![self.optimizer.rule_pattern(*single).clone()],
            (Strategy::Pattern, [a, b]) => {
                // Rule dependencies (§3) mean one rule's pattern alone often
                // suffices for a pair — its firing exposes the other rule's
                // pattern during exploration — and such queries are smaller
                // than any composite. Try the individual patterns first,
                // then the composites.
                let mut cands = vec![
                    self.optimizer.rule_pattern(*a).clone(),
                    self.optimizer.rule_pattern(*b).clone(),
                ];
                cands.extend(compose_patterns(
                    self.optimizer.rule_pattern(*a),
                    self.optimizer.rule_pattern(*b),
                ));
                cands
            }
            (Strategy::Pattern, many) => {
                // Fold composition left-to-right for larger sets (§7).
                let mut acc = vec![self.optimizer.rule_pattern(many[0]).clone()];
                for r in &many[1..] {
                    let mut next = Vec::new();
                    for a in &acc {
                        next.extend(compose_patterns(a, self.optimizer.rule_pattern(*r)));
                    }
                    next.sort_by_key(PatternTree::concrete_ops);
                    next.truncate(8);
                    acc = next;
                }
                acc
            }
        };
        // Composition can come up empty for incompatible pattern shapes;
        // without this guard the round-robin `% candidates.len()` below
        // divides by zero.
        if matches!(strategy, Strategy::Pattern) && candidates.is_empty() {
            return Err(Error::unsupported(format!(
                "no composite pattern candidates for {:?}",
                targets
            )));
        }

        let tel = &self.telemetry;
        for trial in 1..=cfg.max_trials {
            tel.incr(Counter::GenTrials);
            let mut ids = IdGen::new();
            let built = match strategy {
                Strategy::Random => Some(random_tree(&self.db, &mut rng, &mut ids, cfg.target_ops)),
                Strategy::Pattern => {
                    // Sweep candidates round-robin, smallest first.
                    let pattern = &candidates[(trial - 1) % candidates.len()];
                    instantiate_pattern(&self.db, &mut rng, &mut ids, pattern)
                        .map(|b| pad_above(&self.db, &mut rng, &mut ids, b, cfg.pad_ops))
                }
            };
            let Some(built) = built else {
                continue; // counted as a trial: an instantiation attempt failed
            };
            let Ok(res) = self.optimizer.optimize_cached(&built.tree) else {
                continue;
            };
            if targets.iter().all(|t| res.rule_set.contains(t)) {
                let sql = to_sql(&self.db.catalog, &built.tree)?;
                let ops = built.tree.op_count();
                tel.incr(Counter::GenHits);
                tel.observe(Hist::GenTrialsToHit, trial as u64);
                tel.event(|| Event::GenOutcome {
                    rule: targets[0].0,
                    trials: trial as u64,
                    ops: ops as u32,
                    found: true,
                });
                return Ok(GenOutcome {
                    query: built.tree,
                    sql,
                    trials: trial,
                    elapsed: start.elapsed(),
                    ops,
                });
            }
        }
        tel.incr(Counter::GenFailures);
        tel.event(|| Event::GenOutcome {
            rule: targets[0].0,
            trials: cfg.max_trials as u64,
            ops: 0,
            found: false,
        });
        Err(Error::unsupported(format!(
            "no query exercising {:?} found in {} trials ({})",
            targets
                .iter()
                .map(|t| self.optimizer.rule(*t).name)
                .collect::<Vec<_>>(),
            cfg.max_trials,
            strategy.name()
        )))
    }

    /// Per-rule generation fanned out across the worker pool: one
    /// generation problem per target rule, each with an independent RNG
    /// stream derived from `(cfg.seed, rule index)` so the output is
    /// byte-identical at any thread count. Results come back in rule
    /// order; per-rule failures stay per-rule instead of aborting the
    /// whole campaign.
    pub fn find_queries_for_rules(
        &self,
        rules: &[RuleId],
        strategy: Strategy,
        cfg: &GenConfig,
    ) -> Vec<Result<GenOutcome>> {
        par_map(self.parallelism.threads, rules, |i, rule| {
            let sub = GenConfig {
                seed: cfg.seed.wrapping_add((i as u64) << 32),
                ..cfg.clone()
            };
            self.find_query_for_rule(*rule, strategy, &sub)
        })
    }

    /// Convenience: optimize a tree with all rules enabled.
    pub fn optimize(&self, tree: &LogicalTree) -> Result<ruletest_optimizer::OptimizeResult> {
        self.optimizer.optimize(tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn framework() -> Framework {
        Framework::new(&FrameworkConfig::default()).unwrap()
    }

    #[test]
    fn pattern_generation_finds_join_commute_quickly() {
        let fw = framework();
        let rule = fw.optimizer.rule_id("InnerJoinCommute").unwrap();
        let out = fw
            .find_query_for_rule(rule, Strategy::Pattern, &GenConfig::default())
            .unwrap();
        assert!(out.trials <= 3, "took {} trials", out.trials);
        assert!(out.sql.contains("JOIN") || out.sql.contains("WHERE"));
    }

    #[test]
    fn random_generation_eventually_finds_common_rules() {
        let fw = framework();
        let rule = fw.optimizer.rule_id("SelectPushBelowInnerJoin").unwrap();
        let out = fw
            .find_query_for_rule(rule, Strategy::Random, &GenConfig::default())
            .unwrap();
        assert!(out.trials >= 1);
    }

    #[test]
    fn pattern_beats_random_on_a_rare_rule() {
        let fw = framework();
        let rule = fw.optimizer.rule_id("AntiJoinToLojFilter").unwrap();
        let cfg = GenConfig {
            max_trials: 2000,
            ..GenConfig::default()
        };
        let pat = fw
            .find_query_for_rule(rule, Strategy::Pattern, &cfg)
            .unwrap();
        let rnd = fw
            .find_query_for_rule(rule, Strategy::Random, &cfg)
            .unwrap();
        assert!(
            pat.trials < rnd.trials,
            "pattern {} vs random {}",
            pat.trials,
            rnd.trials
        );
    }

    #[test]
    fn pair_generation_via_composition() {
        let fw = framework();
        let a = fw.optimizer.rule_id("InnerJoinCommute").unwrap();
        let b = fw.optimizer.rule_id("SelectMerge").unwrap();
        let out = fw
            .find_query_for_pair((a, b), Strategy::Pattern, &GenConfig::default())
            .unwrap();
        let res = fw.optimize(&out.query).unwrap();
        assert!(res.rule_set.contains(&a) && res.rule_set.contains(&b));
    }

    #[test]
    fn padded_queries_are_bigger() {
        let fw = framework();
        let rule = fw.optimizer.rule_id("SelectMerge").unwrap();
        let small = fw
            .find_query_for_rule(rule, Strategy::Pattern, &GenConfig::default())
            .unwrap();
        let cfg = GenConfig {
            pad_ops: 6,
            seed: 7,
            ..GenConfig::default()
        };
        let big = fw
            .find_query_for_rule(rule, Strategy::Pattern, &cfg)
            .unwrap();
        assert!(big.ops > small.ops);
    }

    #[test]
    fn empty_target_list_is_a_clean_error() {
        // Regression: an empty composite-candidate list used to reach the
        // round-robin `trial % candidates.len()` and panic with a
        // mod-by-zero instead of reporting an unsupported request.
        let fw = framework();
        for strategy in [Strategy::Pattern, Strategy::Random] {
            let r = fw.find_query_for_rules(&[], strategy, &GenConfig::default());
            assert!(matches!(r, Err(Error::Unsupported(_))), "{strategy:?}");
        }
    }

    #[test]
    fn exhaustion_is_a_clean_error() {
        let fw = framework();
        let rule = fw.optimizer.rule_id("AntiJoinToLojFilter").unwrap();
        let cfg = GenConfig {
            max_trials: 1,
            seed: 3,
            ..GenConfig::default()
        };
        // One random trial essentially never hits the anti-join rule.
        let r = fw.find_query_for_rule(rule, Strategy::Random, &cfg);
        assert!(matches!(r, Err(Error::Unsupported(_))));
    }
}
