//! **The testing framework of the paper** (Figure 2): pattern-based query
//! generation for rule coverage (§3), test suite generation and the
//! bipartite-graph formulation of test suite compression (§4), compression
//! algorithms (§5), and correctness-validation execution (§2.3) — built on
//! the rule-based optimizer, executor, SQL, and storage substrates of the
//! sibling crates.

pub mod compress;
pub mod correctness;
pub mod faults;
pub mod framework;
pub mod generate;
pub mod mutate;
pub mod perf;
pub mod persist;
pub mod suite;
pub mod supervise;
pub mod triage;

pub use compress::{Instance, Solution};
pub use correctness::{execute_solution_supervised, BugReport, CorrectnessReport};
pub use framework::{DbProfile, Framework, FrameworkConfig};
pub use generate::{GenConfig, GenOutcome, Strategy};
pub use mutate::{
    detect_with_methodology, mutant_optimizer, run_mutation_campaign, BugClass, Detection,
    DynamicKill, KillKind, Mutant, MutantOutcome, MutationBudget, MutationConfig, MutationReport,
    Verdict,
};
pub use perf::{rule_impact, RuleImpact};
pub use persist::{
    final_persist, run_checkpointed_campaign, run_checkpointed_campaign_supervised, CampaignParams,
    CampaignRun, CampaignStore,
};
pub use suite::{
    build_graph, build_graph_pruned, generate_suite, generate_suite_lenient, pair_targets,
    singleton_targets, BipartiteGraph, RuleTarget, SuiteQuery, TestSuite,
};
pub use supervise::{
    build_graph_supervised, crash_bundles, generate_suite_supervised, input_fingerprint,
    quarantine_summary, Quarantine, QuarantineEntry,
};
pub use triage::{
    read_bundles, replay, to_bundles, triage_report, write_bundles, BugSignature, ReplayOutcome,
    ReproBundle, TriageConfig, TriageReport, TriagedBug,
};
