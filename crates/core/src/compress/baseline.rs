//! The BASELINE method (§2.3): every target executes exactly the k queries
//! that were generated for it — no sharing, no cost-based choice.

use super::{Instance, Solution};
use ruletest_common::{Error, Result};

/// Assigns each target its dedicated queries.
pub fn baseline(inst: &Instance) -> Result<Solution> {
    let mut assignment = vec![Vec::new(); inst.num_targets()];
    for (q, &t) in inst.generated_for.iter().enumerate() {
        if t < assignment.len() && assignment[t].len() < inst.k {
            assignment[t].push(q);
        }
    }
    for (t, qs) in assignment.iter().enumerate() {
        if qs.len() != inst.k {
            return Err(Error::invalid(format!(
                "target {t} has only {} dedicated queries, expected {}",
                qs.len(),
                inst.k
            )));
        }
    }
    let sol = Solution { assignment };
    sol.validate(inst)?;
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::example_1;

    #[test]
    fn baseline_uses_dedicated_queries() {
        let inst = example_1();
        let sol = baseline(&inst).unwrap();
        assert_eq!(sol.assignment, vec![vec![0], vec![1]]);
        assert_eq!(sol.total_cost(&inst), 500.0);
    }

    #[test]
    fn baseline_fails_without_enough_dedicated_queries() {
        let mut inst = example_1();
        inst.k = 2;
        assert!(baseline(&inst).is_err());
    }
}
