//! Exact branch-and-bound solver for small compression instances.
//!
//! The problem is NP-Hard (Appendix A), so this is exponential — it exists
//! to measure the *empirical* approximation quality of SMC and TOPK against
//! the true optimum on instances small enough to enumerate.

use super::{Instance, Solution};
use std::collections::BTreeSet;

/// Size guard: estimated search-tree size beyond which we refuse.
const MAX_NODES: f64 = 5_000_000.0;

fn combinations(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut c = 1.0f64;
    for i in 0..k {
        c = c * (n - i) as f64 / (i + 1) as f64;
    }
    c
}

/// Finds the optimal solution by enumeration with cost-based pruning, or
/// `None` when the instance is too large (or infeasible).
pub fn exact(inst: &Instance) -> Option<Solution> {
    let mut size = 1.0f64;
    for adj in &inst.adjacency {
        size *= combinations(adj.len(), inst.k).max(1.0);
        if size > MAX_NODES {
            return None;
        }
    }
    let mut best: Option<(f64, Vec<Vec<usize>>)> = None;
    let mut partial: Vec<Vec<usize>> = Vec::new();
    let mut used: BTreeSet<usize> = BTreeSet::new();
    search(inst, 0, 0.0, &mut partial, &mut used, &mut best);
    best.map(|(_, assignment)| Solution { assignment })
}

fn search(
    inst: &Instance,
    t: usize,
    cost_so_far: f64,
    partial: &mut Vec<Vec<usize>>,
    used: &mut BTreeSet<usize>,
    best: &mut Option<(f64, Vec<Vec<usize>>)>,
) {
    if let Some((b, _)) = best {
        if cost_so_far >= *b {
            return; // prune
        }
    }
    if t == inst.num_targets() {
        match best {
            Some((b, _)) if cost_so_far >= *b => {}
            _ => *best = Some((cost_so_far, partial.clone())),
        }
        return;
    }
    // Enumerate k-subsets of adjacency[t].
    let adj = &inst.adjacency[t];
    if adj.len() < inst.k {
        return; // infeasible branch
    }
    let mut subset: Vec<usize> = Vec::with_capacity(inst.k);
    enumerate_subsets(
        inst,
        t,
        adj,
        0,
        &mut subset,
        cost_so_far,
        partial,
        used,
        best,
    );
}

#[allow(clippy::too_many_arguments)]
fn enumerate_subsets(
    inst: &Instance,
    t: usize,
    adj: &[usize],
    start: usize,
    subset: &mut Vec<usize>,
    cost_so_far: f64,
    partial: &mut Vec<Vec<usize>>,
    used: &mut BTreeSet<usize>,
    best: &mut Option<(f64, Vec<Vec<usize>>)>,
) {
    if subset.len() == inst.k {
        // Cost delta of this subset: edges plus node costs of newly used
        // queries.
        let mut delta = 0.0;
        let mut newly: Vec<usize> = Vec::new();
        for &q in subset.iter() {
            delta += inst.edge(t, q);
            if !used.contains(&q) && !newly.contains(&q) {
                delta += inst.node_cost[q];
                newly.push(q);
            }
        }
        if !delta.is_finite() {
            return;
        }
        for &q in &newly {
            used.insert(q);
        }
        partial.push(subset.clone());
        search(inst, t + 1, cost_so_far + delta, partial, used, best);
        partial.pop();
        for &q in &newly {
            used.remove(&q);
        }
        return;
    }
    let need = inst.k - subset.len();
    if adj.len() - start < need {
        return;
    }
    for i in start..adj.len() {
        subset.push(adj[i]);
        enumerate_subsets(
            inst,
            t,
            adj,
            i + 1,
            subset,
            cost_so_far,
            partial,
            used,
            best,
        );
        subset.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{example_1, smc, topk};
    use std::collections::HashMap;

    #[test]
    fn exact_matches_the_papers_optimum_on_example_1() {
        let inst = example_1();
        let sol = exact(&inst).unwrap();
        sol.validate(&inst).unwrap();
        assert_eq!(sol.total_cost(&inst), 340.0);
    }

    #[test]
    fn heuristics_never_beat_exact() {
        let inst = example_1();
        let opt = exact(&inst).unwrap().total_cost(&inst);
        assert!(smc(&inst).unwrap().total_cost(&inst) >= opt);
        assert!(topk(&inst).unwrap().total_cost(&inst) >= opt);
    }

    #[test]
    fn topk_respects_its_factor_two_bound_vs_exact() {
        // A slightly larger instance with sharing opportunities.
        let inst = Instance {
            k: 2,
            node_cost: vec![10.0, 20.0, 15.0, 12.0, 30.0],
            adjacency: vec![vec![0, 1, 2, 4], vec![1, 2, 3, 4], vec![0, 2, 3, 4]],
            edge_cost: HashMap::from([
                ((0, 0), 15.0),
                ((0, 1), 25.0),
                ((0, 2), 21.0),
                ((0, 4), 33.0),
                ((1, 1), 22.0),
                ((1, 2), 18.0),
                ((1, 3), 14.0),
                ((1, 4), 31.0),
                ((2, 0), 13.0),
                ((2, 2), 19.0),
                ((2, 3), 16.0),
                ((2, 4), 36.0),
            ]),
            generated_for: vec![0, 0, 1, 1, 2],
        };
        let opt = exact(&inst).unwrap().total_cost(&inst);
        let tk = topk(&inst).unwrap().total_cost(&inst);
        assert!(tk >= opt - 1e-9);
        assert!(tk <= 2.0 * opt + 1e-9, "topk {tk} vs 2·opt {}", 2.0 * opt);
    }

    #[test]
    fn oversized_instances_return_none() {
        // 40 targets each with 40 coverers at k=8 explodes combinatorially.
        let adj: Vec<usize> = (0..40).collect();
        let inst = Instance {
            k: 8,
            node_cost: vec![1.0; 40],
            adjacency: vec![adj; 40],
            edge_cost: HashMap::new(),
            generated_for: (0..40).map(|i| i % 40).collect(),
        };
        assert!(exact(&inst).is_none());
    }

    #[test]
    fn infeasible_instance_returns_none() {
        let inst = Instance {
            k: 2,
            node_cost: vec![1.0],
            adjacency: vec![vec![0]],
            edge_cost: HashMap::from([((0, 0), 1.0)]),
            generated_for: vec![0],
        };
        assert!(exact(&inst).is_none());
    }
}
