//! Test suite compression (§4, §5).
//!
//! Given the bipartite graph, find a minimum-cost subgraph in which every
//! rule target keeps degree `k` (§4.1). The problem is NP-Hard (reduction
//! from Set Cover, Appendix A); implemented here:
//!
//! * [`baseline`] — the uncompressed §2.3 method,
//! * [`smc`] — the SetMultiCover greedy of Figure 5,
//! * [`topk`] — the factor-2 TopKIndependent algorithm of Figure 6,
//! * [`exact`] — brute force for small instances (measures real
//!   approximation ratios),
//! * [`matching`] — the §7 no-sharing variant, solved exactly as a
//!   min-cost assignment.

pub mod baseline;
pub mod exact;
pub mod matching;
pub mod reduction;
pub mod smc;
pub mod topk;

use crate::suite::BipartiteGraph;
use ruletest_common::{Error, Result};
use std::collections::{BTreeSet, HashMap};

pub use baseline::baseline;
pub use exact::exact;
pub use matching::matching;
pub use smc::smc;
pub use topk::topk;

/// An abstract compression instance (decoupled from suites so the
/// algorithms can be unit-tested on hand-built graphs like §4.1's
/// Example 1).
#[derive(Debug, Clone)]
pub struct Instance {
    /// Test suite size (queries per target).
    pub k: usize,
    /// `Cost(q)` per query node.
    pub node_cost: Vec<f64>,
    /// Feasible queries per target.
    pub adjacency: Vec<Vec<usize>>,
    /// `(target, query) -> Cost(q, ¬R)`.
    pub edge_cost: HashMap<(usize, usize), f64>,
    /// Which target each query was generated for.
    pub generated_for: Vec<usize>,
}

impl Instance {
    pub fn from_graph(g: &BipartiteGraph) -> Instance {
        Instance {
            k: g.k,
            node_cost: g.node_cost.clone(),
            adjacency: g.adjacency.clone(),
            edge_cost: g.edges.clone(),
            generated_for: g.generated_for.clone(),
        }
    }

    pub fn num_targets(&self) -> usize {
        self.adjacency.len()
    }

    pub fn num_queries(&self) -> usize {
        self.node_cost.len()
    }

    /// Edge cost, infinite when the edge was never materialized (pruned
    /// builds omit provably useless edges).
    pub fn edge(&self, t: usize, q: usize) -> f64 {
        self.edge_cost
            .get(&(t, q))
            .copied()
            .unwrap_or(f64::INFINITY)
    }
}

/// A compressed suite: per target, the k queries validating it.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    pub assignment: Vec<Vec<usize>>,
}

impl Solution {
    /// Total execution cost (§4.1): each distinct query's plan executes
    /// once (node cost), plus one disabled-plan execution per edge.
    pub fn total_cost(&self, inst: &Instance) -> f64 {
        let mut distinct: BTreeSet<usize> = BTreeSet::new();
        let mut cost = 0.0;
        for (t, qs) in self.assignment.iter().enumerate() {
            for &q in qs {
                distinct.insert(q);
                cost += inst.edge(t, q);
            }
        }
        cost + distinct.iter().map(|&q| inst.node_cost[q]).sum::<f64>()
    }

    /// Checks the validity invariants of §4.1: every target has exactly k
    /// distinct queries, each actually covering it.
    pub fn validate(&self, inst: &Instance) -> Result<()> {
        if self.assignment.len() != inst.num_targets() {
            return Err(Error::invalid("assignment arity mismatch"));
        }
        for (t, qs) in self.assignment.iter().enumerate() {
            if qs.len() != inst.k {
                return Err(Error::invalid(format!(
                    "target {t} has {} queries, expected {}",
                    qs.len(),
                    inst.k
                )));
            }
            let distinct: BTreeSet<usize> = qs.iter().copied().collect();
            if distinct.len() != inst.k {
                return Err(Error::invalid(format!("target {t} repeats a query")));
            }
            for &q in qs {
                if !inst.adjacency[t].contains(&q) {
                    return Err(Error::invalid(format!(
                        "query {q} does not cover target {t}"
                    )));
                }
            }
        }
        Ok(())
    }

    /// Queries used anywhere in the solution.
    pub fn used_queries(&self) -> BTreeSet<usize> {
        self.assignment.iter().flatten().copied().collect()
    }
}

/// §4.1 Example 1 as an instance (used by several unit tests — the paper
/// works the numbers out explicitly, so we assert them).
#[cfg(test)]
pub(crate) fn example_1() -> Instance {
    // r1 covered by {q1, q2}; r2 covered by {q2}. Costs per the paper.
    Instance {
        k: 1,
        node_cost: vec![100.0, 100.0],
        adjacency: vec![vec![0, 1], vec![1]],
        edge_cost: HashMap::from([((0, 0), 180.0), ((0, 1), 120.0), ((1, 1), 120.0)]),
        generated_for: vec![0, 1],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn example_1_costs_match_the_paper() {
        let inst = example_1();
        // BASELINE: (100+180) + (100+120) = 500.
        let baseline = Solution {
            assignment: vec![vec![0], vec![1]],
        };
        baseline.validate(&inst).unwrap();
        assert_eq!(baseline.total_cost(&inst), 500.0);
        // Sharing q2: (100+120) + 120 = 340.
        let shared = Solution {
            assignment: vec![vec![1], vec![1]],
        };
        shared.validate(&inst).unwrap();
        assert_eq!(shared.total_cost(&inst), 340.0);
    }

    #[test]
    fn validation_rejects_bad_solutions() {
        let inst = example_1();
        let wrong_arity = Solution {
            assignment: vec![vec![0]],
        };
        assert!(wrong_arity.validate(&inst).is_err());
        let uncovering = Solution {
            assignment: vec![vec![0], vec![0]],
        };
        assert!(uncovering.validate(&inst).is_err());
        let mut inst2 = inst.clone();
        inst2.k = 2;
        let repeats = Solution {
            assignment: vec![vec![0, 0], vec![1, 1]],
        };
        assert!(repeats.validate(&inst2).is_err());
    }

    #[test]
    fn missing_edges_cost_infinity() {
        let inst = example_1();
        assert!(inst.edge(1, 0).is_infinite());
        assert_eq!(inst.edge(0, 1), 120.0);
    }
}
