//! The §7 no-sharing variant of test-suite compression.
//!
//! "A stronger invariant is one that still preserves all the distinct
//! queries in the original test suite (i.e. there is no sharing of queries
//! across rules)... the problem then is to find the least-cost mapping of
//! queries to rules such that each query in the original test suite is
//! mapped to exactly one rule. We can show that this problem reduces to
//! bipartite matching and thus can be solved efficiently."
//!
//! Each target contributes `k` slots; every query is assigned to exactly
//! one slot; the assignment cost is `Cost(q) + Cost(q, ¬target)`. Solved
//! exactly with the Hungarian algorithm (potentials formulation, O(n³)).

use super::{Instance, Solution};
use ruletest_common::{Error, Result};

const INF: f64 = 1e18;

/// Solves the no-sharing variant exactly. Requires exactly `k` queries per
/// target in total (the shape `generate_suite` produces).
pub fn matching(inst: &Instance) -> Result<Solution> {
    let slots = inst.num_targets() * inst.k;
    let nq = inst.num_queries();
    if slots != nq {
        return Err(Error::invalid(format!(
            "no-sharing variant needs |queries| == k·|targets| ({nq} vs {slots})"
        )));
    }
    // cost[slot][query]; slot s belongs to target s / k.
    let cost: Vec<Vec<f64>> = (0..slots)
        .map(|s| {
            let t = s / inst.k;
            (0..nq)
                .map(|q| {
                    let e = inst.edge(t, q);
                    if e.is_finite() {
                        inst.node_cost[q] + e
                    } else {
                        INF
                    }
                })
                .collect()
        })
        .collect();

    let assignment = hungarian(&cost)?;
    let mut per_target = vec![Vec::new(); inst.num_targets()];
    for (s, q) in assignment.into_iter().enumerate() {
        per_target[s / inst.k].push(q);
    }
    let sol = Solution {
        assignment: per_target,
    };
    sol.validate(inst)?;
    Ok(sol)
}

/// Hungarian algorithm with potentials: minimum-cost perfect assignment of
/// n rows to n columns. Returns `row -> column`.
fn hungarian(cost: &[Vec<f64>]) -> Result<Vec<usize>> {
    let n = cost.len();
    if n == 0 {
        return Ok(vec![]);
    }
    // 1-indexed internals, following the classic formulation.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut way = vec![0usize; n + 1];
    let mut p = vec![0usize; n + 1]; // p[j] = row matched to column j

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            if delta >= INF / 2.0 {
                return Err(Error::invalid(
                    "no feasible perfect assignment (a query covers no target slot)",
                ));
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut row_to_col = vec![usize::MAX; n];
    for j in 1..=n {
        if p[j] != 0 {
            row_to_col[p[j] - 1] = j - 1;
        }
    }
    if row_to_col.contains(&usize::MAX) {
        return Err(Error::internal("incomplete assignment"));
    }
    Ok(row_to_col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn hungarian_solves_a_known_assignment() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = hungarian(&cost).unwrap();
        let total: f64 = a.iter().enumerate().map(|(r, &c)| cost[r][c]).sum();
        assert_eq!(total, 5.0); // 1 + 2 + 2
    }

    #[test]
    fn matching_assigns_every_query_exactly_once() {
        // 2 targets, k=1, 2 queries, both cover both targets.
        let inst = Instance {
            k: 1,
            node_cost: vec![100.0, 100.0],
            adjacency: vec![vec![0, 1], vec![0, 1]],
            edge_cost: HashMap::from([
                ((0, 0), 180.0),
                ((0, 1), 120.0),
                ((1, 0), 150.0),
                ((1, 1), 120.0),
            ]),
            generated_for: vec![0, 1],
        };
        let sol = matching(&inst).unwrap();
        let used = sol.used_queries();
        assert_eq!(used.len(), 2, "no sharing allowed");
        // Optimal split: q1->r0 via (100+120), q0->r1 via (100+150) = 470
        // (vs q0->r0, q1->r1 = 100+180+100+120 = 500).
        assert_eq!(sol.total_cost(&inst), 470.0);
    }

    #[test]
    fn matching_requires_square_shape() {
        let inst = Instance {
            k: 2,
            node_cost: vec![1.0],
            adjacency: vec![vec![0]],
            edge_cost: HashMap::new(),
            generated_for: vec![0],
        };
        assert!(matching(&inst).is_err());
    }

    #[test]
    fn infeasible_coverage_is_detected() {
        // Query 1 covers nothing.
        let inst = Instance {
            k: 1,
            node_cost: vec![1.0, 1.0],
            adjacency: vec![vec![0], vec![0]],
            edge_cost: HashMap::from([((0, 0), 2.0), ((1, 0), 2.0)]),
            generated_for: vec![0, 1],
        };
        assert!(matching(&inst).is_err());
    }

    #[test]
    fn no_sharing_costs_at_least_as_much_as_shared_optimum() {
        use crate::compress::exact;
        let inst = Instance {
            k: 1,
            node_cost: vec![100.0, 100.0],
            adjacency: vec![vec![0, 1], vec![0, 1]],
            edge_cost: HashMap::from([
                ((0, 0), 180.0),
                ((0, 1), 120.0),
                ((1, 0), 150.0),
                ((1, 1), 120.0),
            ]),
            generated_for: vec![0, 1],
        };
        let shared_opt = exact(&inst).unwrap().total_cost(&inst);
        let unshared = matching(&inst).unwrap().total_cost(&inst);
        assert!(unshared >= shared_opt - 1e-9);
    }
}
