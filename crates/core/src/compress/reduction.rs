//! The Appendix A hardness reduction, as executable documentation.
//!
//! The paper proves Test Suite Compression NP-Hard by mapping an arbitrary
//! Set Cover instance `(U, S)` to a simplified TSC instance (S-TSC): unit
//! node and edge weights, k = 1, one rule per element of `U`, and — for
//! each subset `s ∈ S` — one query whose `RuleSet` is exactly `s` (the
//! paper constructs it as a UNION of per-rule queries). Any S-TSC solution
//! has exactly `|R|` edges, so minimizing its cost is minimizing the
//! number of distinct queries picked — i.e. Set Cover.

use super::{exact, Instance};
use std::collections::HashMap;

/// Builds the S-TSC instance for a Set Cover input: `universe` elements
/// `0..universe`, and `sets[j]` the elements covered by set `j`.
pub fn set_cover_to_stsc(universe: usize, sets: &[Vec<usize>]) -> Instance {
    let mut adjacency = vec![Vec::new(); universe];
    let mut edge_cost = HashMap::new();
    for (q, covered) in sets.iter().enumerate() {
        for &e in covered {
            adjacency[e].push(q);
            edge_cost.insert((e, q), 1.0);
        }
    }
    Instance {
        k: 1,
        node_cost: vec![1.0; sets.len()],
        adjacency,
        edge_cost,
        // Dedicated-query bookkeeping is irrelevant for the reduction;
        // point everything at target 0.
        generated_for: vec![0; sets.len()],
    }
}

/// Optimal number of sets for a (small) Set Cover instance, through the
/// S-TSC reduction: total optimal cost minus the `|R|` unit edges.
pub fn set_cover_optimum_via_stsc(universe: usize, sets: &[Vec<usize>]) -> Option<usize> {
    let inst = set_cover_to_stsc(universe, sets);
    let sol = exact(&inst)?;
    let cost = sol.total_cost(&inst);
    Some((cost - universe as f64).round() as usize)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_matches_known_set_cover_optima() {
        // U = {0,1,2,3}; sets {0,1}, {2,3}, {1,2}, {3}: optimum is 2
        // ({0,1} + {2,3}).
        let sets = vec![vec![0, 1], vec![2, 3], vec![1, 2], vec![3]];
        assert_eq!(set_cover_optimum_via_stsc(4, &sets), Some(2));

        // A single covering set.
        let sets = vec![vec![0, 1, 2], vec![0], vec![1]];
        assert_eq!(set_cover_optimum_via_stsc(3, &sets), Some(1));

        // Forced to take all three singletons.
        let sets = vec![vec![0], vec![1], vec![2]];
        assert_eq!(set_cover_optimum_via_stsc(3, &sets), Some(3));
    }

    #[test]
    fn every_stsc_solution_has_exactly_r_edges() {
        // The structural observation the proof rests on: with k = 1, any
        // valid solution assigns exactly one query per rule, so the edge
        // count is |R| regardless of which queries are picked.
        let sets = vec![vec![0, 1], vec![1, 2], vec![0, 2]];
        let inst = set_cover_to_stsc(3, &sets);
        let sol = exact(&inst).unwrap();
        let edges: usize = sol.assignment.iter().map(Vec::len).sum();
        assert_eq!(edges, 3);
    }

    #[test]
    fn uncoverable_instances_are_infeasible() {
        // Element 2 is covered by no set.
        let sets = vec![vec![0], vec![1]];
        assert_eq!(set_cover_optimum_via_stsc(3, &sets), None);
    }
}
