//! The TopKIndependent algorithm (Figure 6, §5.2): for every target,
//! independently pick the k queries with the cheapest *edge* costs. Ignores
//! the sharing benefit of node costs, but is a factor-2 approximation of
//! the optimum (proved in §5.2 from `Cost(q) <= Cost(q, ¬R)`), which is why
//! it is robust where the SetMultiCover greedy degrades.

use super::{Instance, Solution};
use ruletest_common::{Error, Result};

/// Runs TopKIndependent.
pub fn topk(inst: &Instance) -> Result<Solution> {
    let mut assignment = Vec::with_capacity(inst.num_targets());
    for (t, adj) in inst.adjacency.iter().enumerate() {
        if adj.len() < inst.k {
            return Err(Error::invalid(format!(
                "target {t} has only {} covering queries, needs {}",
                adj.len(),
                inst.k
            )));
        }
        let mut by_edge: Vec<usize> = adj.clone();
        // NaN-safe: a poisoned edge cost sorts last (after +inf) and is
        // then rejected by the materialized-edge check below.
        by_edge.sort_by(|&a, &b| inst.edge(t, a).total_cmp(&inst.edge(t, b)).then(a.cmp(&b)));
        by_edge.truncate(inst.k);
        if by_edge.iter().any(|&q| !inst.edge(t, q).is_finite()) {
            return Err(Error::invalid(format!(
                "target {t}: fewer than k materialized edges (pruned graph too aggressive?)"
            )));
        }
        assignment.push(by_edge);
    }
    let sol = Solution { assignment };
    sol.validate(inst)?;
    Ok(sol)
}

/// The §5.2 bounds: `MinCost <= OPT <= solution <= MaxCost <= 2·MinCost`.
/// Returns (lower bound, the solution's upper-bound expression) for
/// diagnostics and tests.
pub fn bounds(inst: &Instance, sol: &Solution) -> (f64, f64) {
    let mut min_cost = 0.0;
    let mut max_cost = 0.0;
    for (t, qs) in sol.assignment.iter().enumerate() {
        for &q in qs {
            let e = inst.edge(t, q);
            min_cost += e;
            max_cost += e + inst.node_cost[q];
        }
    }
    (min_cost, max_cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::example_1;
    use std::collections::HashMap;

    #[test]
    fn topk_finds_the_optimal_solution_on_example_1() {
        // Both rules' cheapest edge is q2 (120 < 180), so TopKIndependent
        // also lands on the 340-cost solution.
        let inst = example_1();
        let sol = topk(&inst).unwrap();
        assert_eq!(sol.assignment, vec![vec![1], vec![1]]);
        assert_eq!(sol.total_cost(&inst), 340.0);
    }

    #[test]
    fn topk_avoids_catastrophic_edges() {
        // The instance where SMC fails: TOPK picks the dedicated queries
        // with cheap edges.
        let inst = Instance {
            k: 1,
            node_cost: vec![10.0, 11.0, 11.0],
            adjacency: vec![vec![0, 1], vec![0, 2]],
            edge_cost: HashMap::from([
                ((0, 0), 10_000.0),
                ((1, 0), 10_000.0),
                ((0, 1), 12.0),
                ((1, 2), 12.0),
            ]),
            generated_for: vec![0, 0, 1],
        };
        let sol = topk(&inst).unwrap();
        assert_eq!(sol.assignment, vec![vec![1], vec![2]]);
        assert!(sol.total_cost(&inst) < 100.0);
    }

    #[test]
    fn factor_two_bound_holds_by_construction() {
        let inst = example_1();
        let sol = topk(&inst).unwrap();
        let (lo, hi) = bounds(&inst, &sol);
        let actual = sol.total_cost(&inst);
        assert!(lo <= actual + 1e-9);
        assert!(actual <= hi + 1e-9);
        assert!(
            hi <= 2.0 * lo + 1e-9,
            "Cost(q) <= Cost(q,¬R) gives hi <= 2·lo"
        );
    }

    #[test]
    fn topk_needs_k_coverers() {
        let inst = Instance {
            k: 3,
            node_cost: vec![1.0, 1.0],
            adjacency: vec![vec![0, 1]],
            edge_cost: HashMap::from([((0, 0), 1.0), ((0, 1), 1.0)]),
            generated_for: vec![0, 0],
        };
        assert!(topk(&inst).is_err());
    }

    #[test]
    fn nan_edge_cost_is_a_clean_error_not_a_panic() {
        // Regression: the edge sort used `partial_cmp().expect(..)`.
        let inst = Instance {
            k: 2,
            node_cost: vec![1.0, 1.0],
            adjacency: vec![vec![0, 1]],
            edge_cost: HashMap::from([((0, 0), 1.0), ((0, 1), f64::NAN)]),
            generated_for: vec![0, 0],
        };
        assert!(topk(&inst).is_err());
    }

    #[test]
    fn ties_break_deterministically() {
        let inst = Instance {
            k: 1,
            node_cost: vec![5.0, 5.0],
            adjacency: vec![vec![1, 0]],
            edge_cost: HashMap::from([((0, 0), 7.0), ((0, 1), 7.0)]),
            generated_for: vec![0, 0],
        };
        assert_eq!(topk(&inst).unwrap().assignment, vec![vec![0]]);
    }
}
