//! The SetMultiCover greedy (Figure 5, §5.1).
//!
//! Adapts the classic greedy for Constrained Set Multicover: repeatedly
//! pick the query with the largest `remaining targets covered / Cost(q)`
//! benefit. Models *node* costs only — ignoring edge costs is exactly the
//! weakness the evaluation exposes on rule pairs (Figure 12) and at large
//! k (Figure 13).

use super::{Instance, Solution};
use ruletest_common::{Error, Result};

/// Runs the greedy SetMultiCover heuristic.
pub fn smc(inst: &Instance) -> Result<Solution> {
    let nt = inst.num_targets();
    let nq = inst.num_queries();
    let mut count = vec![0usize; nt];
    let mut picked = vec![false; nq];
    let mut assignment = vec![Vec::new(); nt];

    // Query -> targets it covers (inverse adjacency).
    let mut covers: Vec<Vec<usize>> = vec![Vec::new(); nq];
    for (t, adj) in inst.adjacency.iter().enumerate() {
        for &q in adj {
            covers[q].push(t);
        }
    }

    while count.iter().any(|&c| c < inst.k) {
        // Benefit of each unpicked query.
        let mut best: Option<(usize, f64)> = None;
        for q in 0..nq {
            if picked[q] {
                continue;
            }
            let remaining = covers[q].iter().filter(|&&t| count[t] < inst.k).count();
            if remaining == 0 {
                continue;
            }
            let benefit = remaining as f64 / inst.node_cost[q].max(1e-9);
            match best {
                Some((_, b)) if benefit <= b => {}
                _ => best = Some((q, benefit)),
            }
        }
        let Some((q, _)) = best else {
            return Err(Error::invalid(
                "SetMultiCover: no query can cover the remaining targets",
            ));
        };
        picked[q] = true;
        for &t in &covers[q] {
            if count[t] < inst.k {
                count[t] += 1;
                assignment[t].push(q);
            }
        }
    }
    let sol = Solution { assignment };
    sol.validate(inst)?;
    Ok(sol)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::example_1;
    use std::collections::HashMap;

    #[test]
    fn smc_finds_the_shared_solution_on_example_1() {
        // q2 covers both rules at the same node cost as q1, so its benefit
        // (2/100) beats q1's (1/100) and the greedy shares it — the optimal
        // 340-cost solution the paper derives.
        let inst = example_1();
        let sol = smc(&inst).unwrap();
        assert_eq!(sol.assignment, vec![vec![1], vec![1]]);
        assert_eq!(sol.total_cost(&inst), 340.0);
    }

    #[test]
    fn smc_ignores_edge_costs_by_design() {
        // One cheap query with a catastrophic edge cost vs. a slightly
        // pricier dedicated pair: the greedy picks the cheap shared node
        // anyway (this is the Figure 12 failure mode).
        let inst = Instance {
            k: 1,
            node_cost: vec![10.0, 11.0, 11.0],
            adjacency: vec![vec![0, 1], vec![0, 2]],
            edge_cost: HashMap::from([
                ((0, 0), 10_000.0),
                ((1, 0), 10_000.0),
                ((0, 1), 12.0),
                ((1, 2), 12.0),
            ]),
            generated_for: vec![0, 0, 1],
        };
        let sol = smc(&inst).unwrap();
        assert_eq!(sol.assignment, vec![vec![0], vec![0]]);
        assert!(sol.total_cost(&inst) > 20_000.0);
    }

    #[test]
    fn smc_respects_k_greater_than_one() {
        let inst = Instance {
            k: 2,
            node_cost: vec![1.0, 2.0, 3.0],
            adjacency: vec![vec![0, 1, 2]],
            edge_cost: HashMap::from([((0, 0), 1.0), ((0, 1), 2.0), ((0, 2), 3.0)]),
            generated_for: vec![0, 0, 0],
        };
        let sol = smc(&inst).unwrap();
        sol.validate(&inst).unwrap();
        assert_eq!(sol.assignment[0], vec![0, 1], "two cheapest nodes");
    }

    #[test]
    fn smc_reports_infeasibility() {
        let inst = Instance {
            k: 2,
            node_cost: vec![1.0],
            adjacency: vec![vec![0]],
            edge_cost: HashMap::from([((0, 0), 1.0)]),
            generated_for: vec![0],
        };
        assert!(smc(&inst).is_err());
    }
}
