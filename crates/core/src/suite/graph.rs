//! Bipartite-graph construction and edge-cost computation (§4.1), with the
//! monotonicity optimization of §5.3.1.
//!
//! Edge costs require invoking the optimizer with rules disabled — for rule
//! pairs, `nC2` invocations per query in the worst case — so the number of
//! optimizer invocations is itself the cost metric of Figure 14.

use super::{RuleTarget, TestSuite};
use crate::framework::Framework;
use ruletest_common::{try_par_map, Result};
use ruletest_optimizer::OptimizerConfig;
use ruletest_telemetry::{Counter, Event, Stage};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A fully materialized bipartite graph (Figure 4 / Figure 7).
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    pub targets: Vec<RuleTarget>,
    pub k: usize,
    /// `Cost(q)` per query.
    pub node_cost: Vec<f64>,
    /// Queries covering each target.
    pub adjacency: Vec<Vec<usize>>,
    /// `(target, query) -> Cost(q, ¬R)`; present for every adjacency pair
    /// when built eagerly, or for the demanded subset when built through
    /// the pruned oracle.
    pub edges: HashMap<(usize, usize), f64>,
    /// Which target each query was generated for (drives BASELINE).
    pub generated_for: Vec<usize>,
    /// Optimizer invocations spent computing edge costs.
    pub optimizer_calls: u64,
}

/// Demand-driven edge-cost computation with caching and invocation
/// counting. Thread-safe: campaign workers probing different targets
/// share one oracle.
pub struct EdgeOracle<'a> {
    fw: &'a Framework,
    suite: &'a TestSuite,
    cache: Mutex<HashMap<(usize, usize), f64>>,
    calls: AtomicU64,
}

impl<'a> EdgeOracle<'a> {
    pub fn new(fw: &'a Framework, suite: &'a TestSuite) -> Self {
        Self {
            fw,
            suite,
            cache: Mutex::new(HashMap::new()),
            calls: AtomicU64::new(0),
        }
    }

    /// `Cost(q, ¬R)` for query `q` and target `t` — one edge-cost
    /// computation (the Figure 14 invocation metric) per cache miss. The
    /// underlying optimizer call goes through the invocation cache, so
    /// repeated `(tree, mask)` pairs across graph builds cost nothing; the
    /// counter still reports the logical per-edge invocations §5.3.1
    /// prunes.
    pub fn edge_cost(&self, t: usize, q: usize) -> Result<f64> {
        if let Some(&c) = self.cache.lock().expect("edge cache poisoned").get(&(t, q)) {
            return Ok(c);
        }
        let rules = self.suite.targets[t].rules();
        let res = self.fw.optimizer.optimize_with_cached(
            &self.suite.queries[q].tree,
            &OptimizerConfig::disabling(&rules),
        )?;
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.fw.telemetry.incr(Counter::OracleCalls);
        self.cache
            .lock()
            .expect("edge cache poisoned")
            .insert((t, q), res.cost);
        Ok(res.cost)
    }

    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    fn into_edges(self) -> (HashMap<(usize, usize), f64>, u64) {
        let calls = self.calls.load(Ordering::Relaxed);
        (self.cache.into_inner().expect("edge cache poisoned"), calls)
    }
}

fn skeleton(suite: &TestSuite) -> (Vec<f64>, Vec<Vec<usize>>, Vec<usize>) {
    let node_cost: Vec<f64> = suite.queries.iter().map(|q| q.cost).collect();
    let adjacency: Vec<Vec<usize>> = (0..suite.targets.len())
        .map(|t| suite.covering(t))
        .collect();
    let generated_for = suite.queries.iter().map(|q| q.generated_for).collect();
    (node_cost, adjacency, generated_for)
}

/// Builds the graph eagerly: every adjacency edge's cost is computed — the
/// exhaustive strategy Figure 14 compares against.
pub fn build_graph(fw: &Framework, suite: &TestSuite) -> Result<BipartiteGraph> {
    let (node_cost, adjacency, generated_for) = skeleton(suite);
    let oracle = EdgeOracle::new(fw, suite);
    // One worker per target: every (t, q) edge belongs to exactly one
    // target, so workers never race on an edge, and edge costs are pure,
    // so the resulting map is identical at any thread count.
    let indexed: Vec<usize> = (0..adjacency.len()).collect();
    try_par_map(fw.parallelism.threads, &indexed, |_, &t| {
        // Per-target span inside the leaf closure: the tree shape stays
        // identical at any thread count.
        let _span = fw.telemetry.span(Stage::Graph);
        for &q in &adjacency[t] {
            oracle.edge_cost(t, q)?;
        }
        Ok(())
    })?;
    let (edges, optimizer_calls) = oracle.into_edges();
    Ok(BipartiteGraph {
        targets: suite.targets.clone(),
        k: suite.k,
        node_cost,
        adjacency,
        edges,
        generated_for,
        optimizer_calls,
    })
}

/// Builds the graph with the §5.3.1 pruning: for each target, queries are
/// visited in increasing `Cost(q)` order while maintaining the k cheapest
/// edges seen; once the next query's node cost reaches the current k-th
/// cheapest edge cost, no remaining query can improve the top-k (because
/// `Cost(q) <= Cost(q, ¬R)` for a well-behaved optimizer) and the scan
/// stops. Only the edges the TopKIndependent algorithm can ever use are
/// computed.
pub fn build_graph_pruned(fw: &Framework, suite: &TestSuite) -> Result<BipartiteGraph> {
    let (node_cost, adjacency, generated_for) = skeleton(suite);
    let oracle = EdgeOracle::new(fw, suite);
    // The §5.3.1 scan is sequential *within* a target (each edge decides
    // whether to keep scanning), but targets are independent — the
    // parallel campaign fans out across them with the pruning intact.
    let indexed: Vec<usize> = (0..adjacency.len()).collect();
    try_par_map(fw.parallelism.threads, &indexed, |_, &t| {
        let _span = fw.telemetry.span(Stage::Graph);
        let adj = &adjacency[t];
        let mut by_node_cost = adj.clone();
        by_node_cost.sort_by(|&a, &b| node_cost[a].total_cmp(&node_cost[b]));
        // Max-heap of the k cheapest edge costs seen so far.
        let mut heap: std::collections::BinaryHeap<ordered::F64> =
            std::collections::BinaryHeap::new();
        let mut scanned = 0u32;
        for &q in &by_node_cost {
            if heap.len() == suite.k {
                let kth = heap.peek().expect("heap is full").0;
                if node_cost[q] >= kth {
                    break; // every remaining edge is at least this expensive
                }
            }
            let c = oracle.edge_cost(t, q)?;
            scanned += 1;
            if heap.len() < suite.k {
                heap.push(ordered::F64(c));
            } else if c < heap.peek().expect("heap is full").0 {
                heap.pop();
                heap.push(ordered::F64(c));
            }
        }
        let pruned = adj.len() as u32 - scanned;
        fw.telemetry.add(Counter::EdgesPruned, pruned as u64);
        fw.telemetry.event(|| Event::GraphProbe {
            target: t as u32,
            scanned,
            pruned,
        });
        Ok(())
    })?;
    let (edges, optimizer_calls) = oracle.into_edges();
    Ok(BipartiteGraph {
        targets: suite.targets.clone(),
        k: suite.k,
        node_cost,
        adjacency,
        edges,
        generated_for,
        optimizer_calls,
    })
}

mod ordered {
    /// Total order wrapper for f64 costs. Uses `total_cmp` so a NaN cost
    /// (possible when a cost model divides by zero) orders after every
    /// finite value instead of panicking the heap operations.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct F64(pub f64);
    impl Eq for F64 {}
    #[allow(clippy::derive_ord_xor_partial_ord)]
    impl Ord for F64 {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0)
        }
    }
    impl PartialOrd for F64 {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use crate::generate::{GenConfig, Strategy};
    use crate::suite::{generate_suite, singleton_targets};

    fn small_suite() -> (Framework, TestSuite) {
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let targets = singleton_targets(&fw, 4);
        let suite =
            generate_suite(&fw, targets, 2, Strategy::Pattern, &GenConfig::default()).unwrap();
        (fw, suite)
    }

    #[test]
    fn nan_costs_sort_and_heap_deterministically_instead_of_panicking() {
        // Regression: `ordered::F64`'s `Ord` used
        // `partial_cmp().expect("finite costs")` and panicked on NaN.
        let mut heap = std::collections::BinaryHeap::new();
        for c in [3.0, f64::NAN, 1.0, 2.0] {
            heap.push(ordered::F64(c));
        }
        // NaN is the max under `total_cmp`, so it pops first; the rest pop
        // in descending order.
        assert!(heap.pop().unwrap().0.is_nan());
        assert_eq!(heap.pop().unwrap().0, 3.0);
        assert_eq!(heap.pop().unwrap().0, 2.0);
        assert_eq!(heap.pop().unwrap().0, 1.0);

        let mut costs = vec![2.0, f64::NAN, 1.0];
        costs.sort_by(f64::total_cmp);
        assert_eq!(costs[0], 1.0);
        assert_eq!(costs[1], 2.0);
        assert!(costs[2].is_nan());
    }

    #[test]
    fn eager_graph_has_all_adjacency_edges_with_monotone_costs() {
        let (fw, suite) = small_suite();
        let g = build_graph(&fw, &suite).unwrap();
        let mut total_edges = 0;
        for (t, adj) in g.adjacency.iter().enumerate() {
            assert!(adj.len() >= suite.k);
            for &q in adj {
                let e = g.edges[&(t, q)];
                assert!(
                    e >= g.node_cost[q] - 1e-9,
                    "edge cost below node cost: {} < {}",
                    e,
                    g.node_cost[q]
                );
                total_edges += 1;
            }
        }
        assert_eq!(g.edges.len(), total_edges);
        assert_eq!(g.optimizer_calls, total_edges as u64);
    }

    #[test]
    fn pruned_graph_spends_fewer_calls_and_keeps_the_topk_edges() {
        let (fw, suite) = small_suite();
        let eager = build_graph(&fw, &suite).unwrap();
        let pruned = build_graph_pruned(&fw, &suite).unwrap();
        assert!(pruned.optimizer_calls <= eager.optimizer_calls);
        // The k cheapest edges per target must be present and identical.
        for (t, adj) in eager.adjacency.iter().enumerate() {
            let mut costs: Vec<f64> = adj.iter().map(|&q| eager.edges[&(t, q)]).collect();
            costs.sort_by(f64::total_cmp);
            let kth = costs[suite.k - 1];
            let cheap: Vec<usize> = adj
                .iter()
                .copied()
                .filter(|&q| eager.edges[&(t, q)] <= kth + 1e-9)
                .collect();
            // At least k of the cheap edges were computed by the pruned
            // build (ties may differ, so check achievable coverage).
            let present = cheap
                .iter()
                .filter(|&&q| pruned.edges.contains_key(&(t, q)))
                .count();
            assert!(
                present >= suite.k.min(cheap.len()),
                "pruned build lost top-k edges for target {t}"
            );
        }
    }

    #[test]
    fn oracle_caches_repeated_edges() {
        let (fw, suite) = small_suite();
        let oracle = EdgeOracle::new(&fw, &suite);
        let a = oracle.edge_cost(0, 0).unwrap();
        let b = oracle.edge_cost(0, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(oracle.calls(), 1);
    }
}
