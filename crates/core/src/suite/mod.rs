//! Test suites for correctness testing (§2.3, §4).
//!
//! A test suite assigns to every rule (or rule pair) `k` distinct queries
//! that exercise it. The suite is represented as a bipartite graph
//! (Figure 4 / Figure 7): query nodes carry `Cost(q)`, and an edge
//! `(target, q)` carries `Cost(q, ¬R)` — the plan cost with the target's
//! rules disabled.

pub mod graph;

use crate::framework::Framework;
use crate::generate::{GenConfig, Strategy};
use ruletest_common::{par_map, try_par_map, Error, Result, RuleId};
use ruletest_logical::LogicalTree;
use std::collections::BTreeSet;

pub use graph::{build_graph, build_graph_pruned, BipartiteGraph, EdgeOracle};

/// What a test-suite slot validates: a single rule or a rule pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RuleTarget {
    Single(RuleId),
    Pair(RuleId, RuleId),
}

impl RuleTarget {
    /// The rules to disable for `Plan(q, ¬R)`.
    pub fn rules(&self) -> Vec<RuleId> {
        match self {
            RuleTarget::Single(r) => vec![*r],
            RuleTarget::Pair(a, b) => vec![*a, *b],
        }
    }

    /// True iff a query with this `RuleSet` exercises the target.
    pub fn covered_by(&self, rule_set: &BTreeSet<RuleId>) -> bool {
        self.rules().iter().all(|r| rule_set.contains(r))
    }

    /// Human-readable label.
    pub fn label(&self, optimizer: &ruletest_optimizer::Optimizer) -> String {
        match self {
            RuleTarget::Single(r) => optimizer.rule(*r).name.to_string(),
            RuleTarget::Pair(a, b) => {
                format!("{}+{}", optimizer.rule(*a).name, optimizer.rule(*b).name)
            }
        }
    }
}

/// One generated query in a suite.
#[derive(Debug, Clone)]
pub struct SuiteQuery {
    pub tree: LogicalTree,
    pub sql: String,
    /// `RuleSet(q)` from optimizing with all rules enabled.
    pub rule_set: BTreeSet<RuleId>,
    /// `Cost(q)` — the query node cost in the bipartite graph.
    pub cost: f64,
    /// Index of the target this query was generated for (the BASELINE
    /// method validates each target with exactly its own queries).
    pub generated_for: usize,
}

/// A complete test suite: `k` dedicated queries per target, plus the
/// cross-coverage information compression exploits.
#[derive(Debug, Clone)]
pub struct TestSuite {
    pub targets: Vec<RuleTarget>,
    pub k: usize,
    pub queries: Vec<SuiteQuery>,
    /// The generation seed (`GenConfig::seed`) the suite was built from —
    /// recorded so bug reports are reproducible.
    pub seed: u64,
}

impl TestSuite {
    /// Queries that cover target `t` (the adjacency of the bipartite
    /// graph).
    pub fn covering(&self, t: usize) -> Vec<usize> {
        self.queries
            .iter()
            .enumerate()
            .filter(|(_, q)| self.targets[t].covered_by(&q.rule_set))
            .map(|(i, _)| i)
            .collect()
    }
}

/// Generates a test suite, dropping targets for which `k` distinct
/// untruncated queries cannot be found within the attempt budget. Returns
/// the suite plus the skipped targets — the lenient entry point used by
/// sweep harnesses where one pathological target must not stall the run.
pub fn generate_suite_lenient(
    fw: &Framework,
    targets: Vec<RuleTarget>,
    k: usize,
    strategy: Strategy,
    cfg: &GenConfig,
) -> Result<(TestSuite, Vec<RuleTarget>)> {
    // Each target is an independent generation problem with its own seed
    // stream, so the fan-out is embarrassingly parallel; merging in target
    // order keeps the output identical to the sequential build.
    let per_target = par_map(fw.parallelism.threads, &targets, |_, target| {
        queries_for_target(fw, *target, 0, k, strategy, cfg)
    });
    let mut kept = Vec::new();
    let mut queries = Vec::new();
    let mut skipped = Vec::new();
    for (target, result) in targets.into_iter().zip(per_target) {
        match result {
            Ok(mini) => {
                let ti = kept.len();
                kept.push(target);
                queries.extend(mini.into_iter().map(|mut q| {
                    q.generated_for = ti;
                    q
                }));
            }
            Err(_) => skipped.push(target),
        }
    }
    Ok((
        TestSuite {
            targets: kept,
            k,
            queries,
            seed: cfg.seed,
        },
        skipped,
    ))
}

/// Generates a test suite: for each target, `k` distinct queries that
/// exercise it (§2.3's `TS = ∪ TS_i`).
pub fn generate_suite(
    fw: &Framework,
    targets: Vec<RuleTarget>,
    k: usize,
    strategy: Strategy,
    cfg: &GenConfig,
) -> Result<TestSuite> {
    // Per-target seed streams depend only on (cfg.seed, target index), and
    // distinctness is checked within a target, so targets can be generated
    // concurrently; collecting in target order makes the suite
    // byte-identical at any thread count.
    let per_target = try_par_map(
        fw.parallelism.threads,
        &targets.iter().copied().enumerate().collect::<Vec<_>>(),
        |_, &(ti, target)| queries_for_target(fw, target, ti, k, strategy, cfg),
    )?;
    Ok(TestSuite {
        targets,
        k,
        queries: per_target.into_iter().flatten().collect(),
        seed: cfg.seed,
    })
}

/// Finds `k` distinct untruncated queries for one target — the unit of
/// work the suite builders fan out over. `ti` feeds both the seed stream
/// and the `generated_for` tags of the returned queries.
pub(crate) fn queries_for_target(
    fw: &Framework,
    target: RuleTarget,
    ti: usize,
    k: usize,
    strategy: Strategy,
    cfg: &GenConfig,
) -> Result<Vec<SuiteQuery>> {
    let mut queries: Vec<SuiteQuery> = Vec::new();
    let mut attempt = 0u64;
    while queries.len() < k {
        if attempt > (k as u64) * 12 {
            return Err(Error::unsupported(format!(
                "could not find {k} distinct queries for target {ti}"
            )));
        }
        let sub_cfg = GenConfig {
            seed: cfg
                .seed
                .wrapping_add((ti as u64) << 32)
                .wrapping_add(attempt.wrapping_mul(0x9E37_79B9)),
            ..cfg.clone()
        };
        attempt += 1;
        let out = match &target.rules()[..] {
            [r] => fw.find_query_for_rule(*r, strategy, &sub_cfg),
            [a, b] => fw.find_query_for_pair((*a, *b), strategy, &sub_cfg),
            rs => fw.find_query_for_rules(rs, strategy, &sub_cfg),
        };
        let Ok(out) = out else {
            continue;
        };
        // Distinctness by SQL text.
        if queries.iter().any(|q| q.sql == out.sql) {
            continue;
        }
        // The generation trial already optimized this exact tree, so the
        // re-check below is a guaranteed cache hit rather than a repeat
        // invocation.
        let res = fw.optimizer.optimize_cached(&out.query)?;
        // A truncated search is not "well behaved": Cost(q) <= Cost(q, ¬R)
        // — the §5.2/§5.3.1 invariant — only holds when exploration
        // reaches its fixpoint. Reject such queries (the paper's
        // substrate prunes heuristically too, but its invariant
        // discussion assumes well-behaved costing).
        if res.truncated {
            continue;
        }
        queries.push(SuiteQuery {
            tree: out.query,
            sql: out.sql,
            rule_set: res.rule_set.clone(),
            cost: res.cost,
            generated_for: ti,
        });
    }
    Ok(queries)
}

/// All singleton targets for the first `n` exploration rules.
pub fn singleton_targets(fw: &Framework, n: usize) -> Vec<RuleTarget> {
    fw.optimizer
        .exploration_rule_ids()
        .into_iter()
        .take(n)
        .map(RuleTarget::Single)
        .collect()
}

/// All pair targets over the first `n` exploration rules (nC2 pairs, §3.2).
pub fn pair_targets(fw: &Framework, n: usize) -> Vec<RuleTarget> {
    let rules: Vec<RuleId> = fw
        .optimizer
        .exploration_rule_ids()
        .into_iter()
        .take(n)
        .collect();
    let mut out = Vec::new();
    for i in 0..rules.len() {
        for j in (i + 1)..rules.len() {
            out.push(RuleTarget::Pair(rules[i], rules[j]));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;

    fn fw() -> Framework {
        Framework::new(&FrameworkConfig::default()).unwrap()
    }

    #[test]
    fn target_cover_and_labels() {
        let fw = fw();
        let a = fw.optimizer.rule_id("InnerJoinCommute").unwrap();
        let b = fw.optimizer.rule_id("SelectMerge").unwrap();
        let single = RuleTarget::Single(a);
        let pair = RuleTarget::Pair(a, b);
        let mut rs = BTreeSet::new();
        rs.insert(a);
        assert!(single.covered_by(&rs));
        assert!(!pair.covered_by(&rs));
        rs.insert(b);
        assert!(pair.covered_by(&rs));
        assert_eq!(single.label(&fw.optimizer), "InnerJoinCommute");
        assert!(pair.label(&fw.optimizer).contains('+'));
    }

    #[test]
    fn generate_small_suite_with_cross_coverage() {
        let fw = fw();
        let targets = singleton_targets(&fw, 4);
        let suite =
            generate_suite(&fw, targets, 2, Strategy::Pattern, &GenConfig::default()).unwrap();
        assert_eq!(suite.queries.len(), 8, "k queries per target");
        for t in 0..suite.targets.len() {
            let cov = suite.covering(t);
            assert!(
                cov.len() >= 2,
                "each target covered at least by its own queries"
            );
            // The dedicated queries are among the coverers.
            let own: Vec<usize> = suite
                .queries
                .iter()
                .enumerate()
                .filter(|(_, q)| q.generated_for == t)
                .map(|(i, _)| i)
                .collect();
            for o in own {
                assert!(cov.contains(&o));
            }
        }
    }

    #[test]
    fn lenient_generation_drops_unfillable_targets() {
        let fw = fw();
        let a = fw.optimizer.rule_id("InnerJoinCommute").unwrap();
        let b = fw.optimizer.rule_id("SelectMerge").unwrap();
        // An absurd k with a one-trial budget cannot be filled; the lenient
        // generator must drop the target rather than err.
        let cfg = GenConfig {
            max_trials: 1,
            ..GenConfig::default()
        };
        let (suite, skipped) = generate_suite_lenient(
            &fw,
            vec![RuleTarget::Single(a), RuleTarget::Pair(a, b)],
            1,
            Strategy::Pattern,
            &cfg,
        )
        .unwrap();
        // The singleton fills in one trial; whether the pair fills in a
        // single trial depends on the candidate order, so just check
        // consistency of the split.
        assert_eq!(suite.targets.len() + skipped.len(), 2);
        assert!(suite.targets.contains(&RuleTarget::Single(a)));
        for (ti, _) in suite.targets.iter().enumerate() {
            assert_eq!(
                suite
                    .queries
                    .iter()
                    .filter(|q| q.generated_for == ti)
                    .count(),
                1
            );
        }
    }

    #[test]
    fn pair_targets_enumerate_n_choose_2() {
        let fw = fw();
        assert_eq!(pair_targets(&fw, 5).len(), 10);
        assert_eq!(pair_targets(&fw, 15).len(), 105);
        assert_eq!(singleton_targets(&fw, 30).len(), 30);
    }
}
