//! The RANDOM baseline: stochastic generation of valid logical query trees
//! (the trial-and-error state of the art the paper compares against —
//! RAGS [17] and its genetic extension [1]).

use super::args::{ArgGen, Built};
use ruletest_common::Rng;
use ruletest_expr::{BinOp, Expr};
use ruletest_logical::{IdGen, JoinKind, LogicalTree};
use ruletest_storage::Database;
use std::collections::HashMap;

/// Generates one random valid logical query tree with roughly `op_budget`
/// operators.
pub fn random_tree(db: &Database, rng: &mut Rng, ids: &mut IdGen, op_budget: usize) -> Built {
    let gen = ArgGen::new(db);
    build(db, &gen, rng, ids, op_budget.max(1))
}

fn build(db: &Database, gen: &ArgGen, rng: &mut Rng, ids: &mut IdGen, budget: usize) -> Built {
    if budget <= 1 {
        return gen.random_get(rng, ids);
    }
    // Weighted operator choice; binary operators need budget for two sides.
    let binary_ok = budget >= 3;
    let roll = rng.gen_below(100);
    match roll {
        // Joins dominate, as in realistic workloads.
        0..=34 if binary_ok => {
            let left_budget = 1 + rng.gen_index(budget - 2);
            let left = build(db, gen, rng, ids, left_budget);
            let right = build(db, gen, rng, ids, budget - 1 - left_budget);
            let kind = gen.random_join_kind(rng);
            let require_equi = matches!(kind, JoinKind::LeftSemi | JoinKind::LeftAnti);
            let pred = gen.join_predicate(rng, &left, &right, require_equi);
            let mut base = left.base_cols.clone();
            let keep_right = kind.emits_both_sides();
            if keep_right {
                base.extend(right.base_cols.clone());
            }
            let tree = LogicalTree::join(kind, left.tree, right.tree, pred);
            Built::new(db, tree, base).unwrap_or_else(|| gen.random_get(rng, ids))
        }
        35..=42 if binary_ok => {
            let left_budget = 1 + rng.gen_index(budget - 2);
            let left = build(db, gen, rng, ids, left_budget);
            let right = build(db, gen, rng, ids, budget - 1 - left_budget);
            match gen.union_alignment(rng, ids, &left, &right) {
                Some((outs, lc, rc)) => {
                    let tree = LogicalTree::union_all(left.tree, right.tree, outs, lc, rc);
                    Built::new(db, tree, HashMap::new()).unwrap_or_else(|| gen.random_get(rng, ids))
                }
                None => left,
            }
        }
        0..=54 => {
            // Select (also the fallback band when binary ops don't fit).
            let child = build(db, gen, rng, ids, budget - 1);
            let pred = gen.filter_predicate(rng, &child.schema);
            let base = child.base_cols.clone();
            let tree = LogicalTree::select(child.tree, pred);
            Built::new(db, tree, base).unwrap_or_else(|| gen.random_get(rng, ids))
        }
        55..=69 => {
            let child = build(db, gen, rng, ids, budget - 1);
            let (group_by, aggs) = gen.gbagg_args(rng, ids, &child);
            let base = child.base_cols.clone();
            let tree = LogicalTree::gbagg(child.tree, group_by, aggs);
            Built::new(db, tree, base).unwrap_or_else(|| gen.random_get(rng, ids))
        }
        70..=79 => {
            let child = build(db, gen, rng, ids, budget - 1);
            random_project(db, gen, rng, ids, child)
        }
        80..=85 => {
            let child = build(db, gen, rng, ids, budget - 1);
            let base = child.base_cols.clone();
            let tree = LogicalTree::distinct(child.tree);
            Built::new(db, tree, base).unwrap_or_else(|| gen.random_get(rng, ids))
        }
        86..=92 => {
            let child = build(db, gen, rng, ids, budget - 1);
            let keys = gen.sort_keys(rng, &child.schema);
            let base = child.base_cols.clone();
            let tree = LogicalTree::sort(child.tree, keys);
            Built::new(db, tree, base).unwrap_or_else(|| gen.random_get(rng, ids))
        }
        _ => {
            let child = build(db, gen, rng, ids, budget - 1);
            let keys = gen.sort_keys(rng, &child.schema);
            let n = 1 + rng.gen_below(20);
            let base = child.base_cols.clone();
            let tree = LogicalTree::top(child.tree, n, keys);
            Built::new(db, tree, base).unwrap_or_else(|| gen.random_get(rng, ids))
        }
    }
}

/// A random projection: a subset of child columns plus occasionally a
/// computed integer column.
pub(crate) fn random_project(
    db: &Database,
    gen: &ArgGen,
    rng: &mut Rng,
    ids: &mut IdGen,
    child: Built,
) -> Built {
    let schema = &child.schema;
    let keep = 1 + rng.gen_index(schema.len());
    let idxs = rng.sample_indices(schema.len(), keep);
    let mut outputs: Vec<(ruletest_common::ColId, Expr)> = Vec::new();
    let mut base = HashMap::new();
    for i in idxs {
        let src = schema[i].id;
        let out = ids.fresh();
        if let Some(b) = child.base_cols.get(&src) {
            base.insert(out, *b);
        }
        outputs.push((out, Expr::col(src)));
    }
    let int_cols: Vec<_> = schema
        .iter()
        .filter(|c| c.data_type == ruletest_common::DataType::Int)
        .map(|c| c.id)
        .collect();
    if !int_cols.is_empty() && rng.gen_bool(0.3) {
        let a = *rng.pick(&int_cols);
        let out = ids.fresh();
        outputs.push((
            out,
            Expr::bin(
                *rng.pick(&[BinOp::Add, BinOp::Sub, BinOp::Mul]),
                Expr::col(a),
                Expr::lit(rng.gen_range_i64(1, 5)),
            ),
        ));
    }
    let tree = LogicalTree::project(child.tree, outputs);
    Built::new(db, tree, base).unwrap_or_else(|| gen.random_get(rng, ids))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruletest_logical::derive_schema;
    use ruletest_storage::{tpch_database, TpchConfig};

    #[test]
    fn random_trees_are_always_valid() {
        let db = tpch_database(&TpchConfig::default()).unwrap();
        let mut rng = Rng::new(7);
        let mut ids = IdGen::new();
        for budget in [1, 2, 4, 8, 12] {
            for _ in 0..50 {
                let b = random_tree(&db, &mut rng, &mut ids, budget);
                assert!(derive_schema(&db.catalog, &b.tree).is_ok());
                assert!(b.tree.op_count() >= 1);
            }
        }
    }

    #[test]
    fn budgets_are_roughly_respected() {
        let db = tpch_database(&TpchConfig::default()).unwrap();
        let mut rng = Rng::new(8);
        let mut ids = IdGen::new();
        let mut total = 0usize;
        const N: usize = 100;
        for _ in 0..N {
            let b = random_tree(&db, &mut rng, &mut ids, 8);
            total += b.tree.op_count();
            assert!(b.tree.op_count() <= 9);
        }
        assert!(total / N >= 4, "average size should approach the budget");
    }

    #[test]
    fn generation_is_deterministic_in_the_seed() {
        let db = tpch_database(&TpchConfig::default()).unwrap();
        let t1 = {
            let mut rng = Rng::new(99);
            let mut ids = IdGen::new();
            random_tree(&db, &mut rng, &mut ids, 6).tree
        };
        let t2 = {
            let mut rng = Rng::new(99);
            let mut ids = IdGen::new();
            random_tree(&db, &mut rng, &mut ids, 6).tree
        };
        assert_eq!(t1, t2);
    }

    #[test]
    fn variety_of_operators_appears() {
        let db = tpch_database(&TpchConfig::default()).unwrap();
        let mut rng = Rng::new(10);
        let mut ids = IdGen::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..300 {
            let b = random_tree(&db, &mut rng, &mut ids, 7);
            b.tree.visit(&mut |n| {
                seen.insert(n.op.kind());
            });
        }
        use ruletest_logical::OpKind::*;
        for kind in [
            Get, Select, Project, Join, GbAgg, UnionAll, Distinct, Sort, Top,
        ] {
            assert!(seen.contains(&kind), "never generated {kind}");
        }
    }
}
