//! Query generation (paper §3).
//!
//! Two strategies are implemented, mirroring the paper's evaluation:
//!
//! * [`Strategy::Random`] — the state-of-the-art trial-and-error baseline:
//!   stochastically generated valid queries (RAGS-style [17], genetic
//!   extensions [1]) are optimized until one exercises the target rules.
//! * [`Strategy::Pattern`] — the paper's contribution: the target rule's
//!   pattern is fetched from the optimizer's export API and instantiated
//!   directly into a logical query tree (§3.1); rule pairs compose the two
//!   patterns (§3.2).

pub mod args;
pub mod dependency;
pub mod pairs;
pub mod pattern;
pub mod random;
pub mod relevant;

use ruletest_logical::LogicalTree;

/// Which query-generation method to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Stochastic trial-and-error (the baseline in Figures 8–10).
    Random,
    /// Rule-pattern instantiation (the paper's method).
    Pattern,
}

impl Strategy {
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Random => "RANDOM",
            Strategy::Pattern => "PATTERN",
        }
    }
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct GenConfig {
    pub seed: u64,
    /// Give up after this many optimize-and-check trials.
    pub max_trials: usize,
    /// Operator budget for RANDOM queries and for padding PATTERN queries
    /// ("generate a logical query tree with 10 operators that exercises a
    /// given rule", §2.3).
    pub target_ops: usize,
    /// Extra random operators stacked on top of an instantiated pattern
    /// (0 = the minimal pattern query).
    pub pad_ops: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        Self {
            seed: 42,
            max_trials: 500,
            target_ops: 8,
            pad_ops: 0,
        }
    }
}

/// The outcome of a successful generation.
#[derive(Debug, Clone)]
pub struct GenOutcome {
    /// The generated logical query tree.
    pub query: LogicalTree,
    /// Its SQL rendering (the Generate SQL module's output).
    pub sql: String,
    /// Number of optimize-and-check trials used (the paper's efficiency
    /// metric in Figures 8 and 9).
    pub trials: usize,
    /// Wall-clock time spent (Figure 10's metric).
    pub elapsed: std::time::Duration,
    /// Operators in the query.
    pub ops: usize,
}
