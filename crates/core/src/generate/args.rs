//! Shared argument instantiation for query generation.
//!
//! After a pattern (or a random shape) fixes the *operators*, their
//! *arguments* still have to be chosen: join predicates, filter conjuncts,
//! grouping columns, aggregate calls, union alignments (§3.1 step (b)).
//! The heuristics here are deliberately key- and type-aware — equality
//! predicates prefer foreign-key/primary-key pairs, groupings sometimes
//! cover a key — so that preconditions of schema-dependent rules are hit
//! with realistic probability, while still leaving room for misses (the
//! reason PATTERN occasionally needs more than one trial).

use ruletest_common::{ColId, DataType, Rng, TableId, Value};
use ruletest_expr::{AggCall, AggFunc, BinOp, Expr};
use ruletest_logical::{derive_schema, IdGen, JoinKind, LogicalTree, Schema, SortKey};
use ruletest_storage::Database;
use std::collections::HashMap;

/// String constants that actually occur in the generated TPC-H data, so
/// string equality predicates are sometimes selective rather than always
/// empty.
const STR_POOL: &[&str] = &[
    "ASIA",
    "EUROPE",
    "AMERICA",
    "AUTOMOBILE",
    "BUILDING",
    "Brand#11",
    "Brand#21",
    "A",
    "N",
    "R",
    "F",
    "O",
    "1-URGENT",
    "5-LOW",
    "NATION_03",
];

/// A tree under construction, carrying its derived schema and the mapping
/// from visible columns back to base-table columns (for key awareness).
#[derive(Debug, Clone)]
pub struct Built {
    pub tree: LogicalTree,
    pub schema: Schema,
    /// Visible column -> (base table, ordinal), for columns that are direct
    /// passthroughs of a base table column.
    pub base_cols: HashMap<ColId, (TableId, usize)>,
}

impl Built {
    /// Wraps and validates a finished subtree.
    pub fn new(
        db: &Database,
        tree: LogicalTree,
        base_cols: HashMap<ColId, (TableId, usize)>,
    ) -> Option<Built> {
        let schema = derive_schema(&db.catalog, &tree).ok()?;
        let base_cols = base_cols
            .into_iter()
            .filter(|(c, _)| schema.iter().any(|ci| ci.id == *c))
            .collect();
        Some(Built {
            tree,
            schema,
            base_cols,
        })
    }

    /// True iff `col` is a single-column unique key of its base table.
    pub fn is_key_col(&self, db: &Database, col: ColId) -> bool {
        self.base_cols.get(&col).is_some_and(|(t, ord)| {
            db.catalog
                .table(*t)
                .map(|def| def.is_unique_column(*ord))
                .unwrap_or(false)
        })
    }
}

/// Argument generator over a fixed test database.
pub struct ArgGen<'a> {
    pub db: &'a Database,
}

impl<'a> ArgGen<'a> {
    pub fn new(db: &'a Database) -> Self {
        Self { db }
    }

    /// A random base-table access.
    pub fn random_get(&self, rng: &mut Rng, ids: &mut IdGen) -> Built {
        let tables = self.db.catalog.tables();
        let def = &tables[rng.gen_index(tables.len())];
        let tree = LogicalTree::get(def, ids);
        let cols = match &tree.op {
            ruletest_logical::Operator::Get { cols, .. } => cols.clone(),
            _ => unreachable!(),
        };
        let base_cols = cols
            .iter()
            .enumerate()
            .map(|(ord, &c)| (c, (def.id, ord)))
            .collect();
        Built::new(self.db, tree, base_cols).expect("base table access is always valid")
    }

    fn cols_of_type(schema: &Schema, dt: DataType) -> Vec<ColId> {
        schema
            .iter()
            .filter(|c| c.data_type == dt)
            .map(|c| c.id)
            .collect()
    }

    fn random_literal(&self, rng: &mut Rng, dt: DataType) -> Value {
        match dt {
            DataType::Int => {
                if rng.gen_bool(0.6) {
                    Value::Int(rng.gen_range_i64(0, 20))
                } else {
                    Value::Int(rng.gen_range_i64(0, 10_000))
                }
            }
            DataType::Str => Value::Str(rng.pick(STR_POOL).to_string()),
            DataType::Bool => Value::Bool(rng.gen_bool(0.5)),
        }
    }

    /// One random comparison conjunct over `schema`.
    fn conjunct(&self, rng: &mut Rng, schema: &Schema) -> Expr {
        if schema.is_empty() {
            return Expr::true_lit();
        }
        let c = &schema[rng.gen_index(schema.len())];
        let roll = rng.gen_below(100);
        if roll < 8 {
            // Null tests keep null-rejection analysis honest.
            let e = Expr::is_null(Expr::col(c.id));
            return if rng.gen_bool(0.5) { Expr::not(e) } else { e };
        }
        if roll < 20 {
            // Column-to-column comparison within the schema.
            let peers = Self::cols_of_type(schema, c.data_type);
            if peers.len() > 1 {
                let other = loop {
                    let cand = *rng.pick(&peers);
                    if cand != c.id {
                        break cand;
                    }
                };
                let op = *rng.pick(&[BinOp::Eq, BinOp::Lt, BinOp::Ne]);
                return Expr::bin(op, Expr::col(c.id), Expr::col(other));
            }
        }
        let op = match c.data_type {
            DataType::Int => *rng.pick(&[
                BinOp::Eq,
                BinOp::Ne,
                BinOp::Lt,
                BinOp::Le,
                BinOp::Gt,
                BinOp::Ge,
            ]),
            _ => *rng.pick(&[BinOp::Eq, BinOp::Ne]),
        };
        Expr::bin(
            op,
            Expr::col(c.id),
            Expr::Lit(self.random_literal(rng, c.data_type)),
        )
    }

    /// A filter predicate: 1–3 conjuncts, occasionally an OR.
    pub fn filter_predicate(&self, rng: &mut Rng, schema: &Schema) -> Expr {
        let n = 1 + rng.gen_index(3);
        let mut parts: Vec<Expr> = (0..n).map(|_| self.conjunct(rng, schema)).collect();
        if parts.len() >= 2 && rng.gen_bool(0.15) {
            let b = parts.pop().expect("len >= 2");
            let a = parts.pop().expect("len >= 1");
            parts.push(Expr::or(a, b));
        }
        ruletest_expr::conjoin(parts)
    }

    /// A join predicate across two inputs. Prefers a cross-side equality,
    /// with a bias toward (foreign key, primary key) column pairs; with
    /// `require_equi` a cross-side equality is guaranteed (semi/anti joins
    /// and hash-join-dependent rules need one).
    pub fn join_predicate(
        &self,
        rng: &mut Rng,
        left: &Built,
        right: &Built,
        require_equi: bool,
    ) -> Expr {
        let mut candidates: Vec<(ColId, ColId, bool)> = Vec::new();
        for lc in &left.schema {
            for rc in &right.schema {
                if lc.data_type != rc.data_type || lc.data_type == DataType::Bool {
                    continue;
                }
                let keyish = left.is_key_col(self.db, lc.id) || right.is_key_col(self.db, rc.id);
                candidates.push((lc.id, rc.id, keyish));
            }
        }
        let pick_equi = |rng: &mut Rng, candidates: &[(ColId, ColId, bool)]| -> Option<Expr> {
            if candidates.is_empty() {
                return None;
            }
            // 70%: prefer a key-involving pair when one exists.
            let keyed: Vec<&(ColId, ColId, bool)> =
                candidates.iter().filter(|(_, _, k)| *k).collect();
            let (l, r, _) = if !keyed.is_empty() && rng.gen_bool(0.7) {
                **rng.pick(&keyed)
            } else {
                *rng.pick(candidates)
            };
            Some(Expr::eq(Expr::col(l), Expr::col(r)))
        };
        let equi = pick_equi(rng, &candidates);
        match equi {
            Some(eq) if require_equi || rng.gen_bool(0.85) => {
                if rng.gen_bool(0.25) {
                    // An extra one-sided conjunct exercises pushdown rules
                    // through the join predicate path.
                    let side = if rng.gen_bool(0.5) {
                        &left.schema
                    } else {
                        &right.schema
                    };
                    Expr::and(eq, self.conjunct(rng, side))
                } else {
                    eq
                }
            }
            _ if require_equi => Expr::true_lit(), // caller will fail validation/trial
            _ => {
                if rng.gen_bool(0.5) {
                    Expr::true_lit() // cross product
                } else {
                    let mut all = left.schema.clone();
                    all.extend(right.schema.iter().cloned());
                    self.conjunct(rng, &all)
                }
            }
        }
    }

    /// Grouping columns and aggregate calls over a child.
    ///
    /// Heuristics: with some probability the grouping covers a base-table
    /// key (enabling `GbAggEliminateOnKey`) or stays small; aggregates draw
    /// from COUNT(*) / COUNT / SUM / MIN / MAX with SUM restricted to INT.
    pub fn gbagg_args(
        &self,
        rng: &mut Rng,
        ids: &mut IdGen,
        child: &Built,
    ) -> (Vec<ColId>, Vec<AggCall>) {
        let schema = &child.schema;
        let mut group_by: Vec<ColId> = Vec::new();
        if !schema.is_empty() && rng.gen_bool(0.85) {
            if rng.gen_bool(0.35) {
                // Try to cover a single-column key.
                if let Some(key) = schema
                    .iter()
                    .map(|c| c.id)
                    .find(|&c| child.is_key_col(self.db, c))
                {
                    group_by.push(key);
                }
            }
            let extra = rng.gen_index(3);
            for _ in 0..extra {
                let c = schema[rng.gen_index(schema.len())].id;
                if !group_by.contains(&c) {
                    group_by.push(c);
                }
            }
            if group_by.is_empty() {
                group_by.push(schema[rng.gen_index(schema.len())].id);
            }
        }
        let int_cols = Self::cols_of_type(schema, DataType::Int);
        let n_aggs = 1 + rng.gen_index(2);
        let mut aggs = Vec::new();
        for _ in 0..n_aggs {
            let func = *rng.pick(&[
                AggFunc::CountStar,
                AggFunc::Count,
                AggFunc::Sum,
                AggFunc::Min,
                AggFunc::Max,
            ]);
            let arg = match func {
                AggFunc::CountStar => None,
                AggFunc::Sum => {
                    if int_cols.is_empty() {
                        continue;
                    }
                    Some(*rng.pick(&int_cols))
                }
                _ => {
                    if schema.is_empty() {
                        continue;
                    }
                    Some(schema[rng.gen_index(schema.len())].id)
                }
            };
            aggs.push(AggCall::new(func, arg, ids.fresh()));
        }
        (group_by, aggs)
    }

    /// Type-aligned column maps for a UNION ALL of two inputs, if any
    /// alignment exists.
    #[allow(clippy::type_complexity)]
    pub fn union_alignment(
        &self,
        rng: &mut Rng,
        ids: &mut IdGen,
        left: &Built,
        right: &Built,
    ) -> Option<(Vec<ColId>, Vec<ColId>, Vec<ColId>)> {
        let mut pairs: Vec<(ColId, ColId)> = Vec::new();
        let mut used_right: Vec<ColId> = Vec::new();
        let mut lcols: Vec<&ruletest_logical::ColumnInfo> = left.schema.iter().collect();
        rng.shuffle(&mut lcols);
        for lc in lcols {
            if let Some(rc) = right
                .schema
                .iter()
                .find(|rc| rc.data_type == lc.data_type && !used_right.contains(&rc.id))
            {
                used_right.push(rc.id);
                pairs.push((lc.id, rc.id));
            }
        }
        if pairs.is_empty() {
            return None;
        }
        let keep = 1 + rng.gen_index(pairs.len().min(3));
        pairs.truncate(keep);
        let outputs: Vec<ColId> = (0..pairs.len()).map(|_| ids.fresh()).collect();
        let left_cols = pairs.iter().map(|(l, _)| *l).collect();
        let right_cols = pairs.iter().map(|(_, r)| *r).collect();
        Some((outputs, left_cols, right_cols))
    }

    /// Random sort keys (1–2 columns).
    pub fn sort_keys(&self, rng: &mut Rng, schema: &Schema) -> Vec<SortKey> {
        if schema.is_empty() {
            return vec![];
        }
        let n = 1 + rng.gen_index(2.min(schema.len()));
        let idxs = rng.sample_indices(schema.len(), n);
        idxs.into_iter()
            .map(|i| SortKey {
                col: schema[i].id,
                descending: rng.gen_bool(0.4),
            })
            .collect()
    }

    /// A random join kind, weighted toward inner joins.
    pub fn random_join_kind(&self, rng: &mut Rng) -> JoinKind {
        let roll = rng.gen_below(100);
        match roll {
            0..=54 => JoinKind::Inner,
            55..=69 => JoinKind::LeftOuter,
            70..=76 => JoinKind::RightOuter,
            77..=82 => JoinKind::FullOuter,
            83..=91 => JoinKind::LeftSemi,
            _ => JoinKind::LeftAnti,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruletest_storage::{tpch_database, TpchConfig};

    fn db() -> Database {
        tpch_database(&TpchConfig::default()).unwrap()
    }

    #[test]
    fn random_get_is_valid_and_key_aware() {
        let db = db();
        let gen = ArgGen::new(&db);
        let mut rng = Rng::new(1);
        let mut ids = IdGen::new();
        for _ in 0..20 {
            let b = gen.random_get(&mut rng, &mut ids);
            assert!(!b.schema.is_empty());
            assert_eq!(b.base_cols.len(), b.schema.len());
        }
        // Nation's key column should be recognized.
        let def = db.catalog.table_by_name("nation").unwrap();
        let tree = LogicalTree::get(def, &mut ids);
        let base_cols = (0..3).map(|o| (tree.output_col(o), (def.id, o))).collect();
        let b = Built::new(&db, tree, base_cols).unwrap();
        assert!(b.is_key_col(&db, b.tree.output_col(0)));
        assert!(!b.is_key_col(&db, b.tree.output_col(2)));
    }

    #[test]
    fn predicates_type_check() {
        let db = db();
        let gen = ArgGen::new(&db);
        let mut rng = Rng::new(2);
        let mut ids = IdGen::new();
        for _ in 0..100 {
            let b = gen.random_get(&mut rng, &mut ids);
            let pred = gen.filter_predicate(&mut rng, &b.schema);
            let sel = LogicalTree::select(b.tree, pred);
            assert!(derive_schema(&db.catalog, &sel).is_ok());
        }
    }

    #[test]
    fn join_predicates_type_check_and_can_require_equi() {
        let db = db();
        let gen = ArgGen::new(&db);
        let mut rng = Rng::new(3);
        let mut ids = IdGen::new();
        for _ in 0..100 {
            let l = gen.random_get(&mut rng, &mut ids);
            let r = gen.random_get(&mut rng, &mut ids);
            let pred = gen.join_predicate(&mut rng, &l, &r, true);
            let j = LogicalTree::join(JoinKind::Inner, l.tree, r.tree, pred.clone());
            assert!(derive_schema(&db.catalog, &j).is_ok());
            // Required equi: must contain a cross-side equality (TPC-H
            // always has int columns on both sides).
            let schema_l = derive_schema(&db.catalog, &j.children[0]).unwrap();
            let schema_r = derive_schema(&db.catalog, &j.children[1]).unwrap();
            let (keys, _) =
                ruletest_optimizer::cost::split_equi_conjuncts(&pred, &schema_l, &schema_r);
            assert!(!keys.is_empty());
        }
    }

    #[test]
    fn gbagg_args_validate() {
        let db = db();
        let gen = ArgGen::new(&db);
        let mut rng = Rng::new(4);
        let mut ids = IdGen::new();
        for _ in 0..100 {
            let b = gen.random_get(&mut rng, &mut ids);
            let (group_by, aggs) = gen.gbagg_args(&mut rng, &mut ids, &b);
            let t = LogicalTree::gbagg(b.tree, group_by, aggs);
            assert!(derive_schema(&db.catalog, &t).is_ok());
        }
    }

    #[test]
    fn union_alignment_validates() {
        let db = db();
        let gen = ArgGen::new(&db);
        let mut rng = Rng::new(5);
        let mut ids = IdGen::new();
        for _ in 0..50 {
            let l = gen.random_get(&mut rng, &mut ids);
            let r = gen.random_get(&mut rng, &mut ids);
            let Some((outs, lc, rc)) = gen.union_alignment(&mut rng, &mut ids, &l, &r) else {
                panic!("TPC-H tables always share int columns");
            };
            let u = LogicalTree::union_all(l.tree, r.tree, outs, lc, rc);
            assert!(derive_schema(&db.catalog, &u).is_ok());
        }
    }

    #[test]
    fn sort_keys_reference_schema() {
        let db = db();
        let gen = ArgGen::new(&db);
        let mut rng = Rng::new(6);
        let mut ids = IdGen::new();
        let b = gen.random_get(&mut rng, &mut ids);
        for _ in 0..20 {
            let keys = gen.sort_keys(&mut rng, &b.schema);
            assert!(!keys.is_empty());
            for k in keys {
                assert!(b.schema.iter().any(|c| c.id == k.col));
            }
        }
    }
}
