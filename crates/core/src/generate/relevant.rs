//! The §7 "relevance" variant of query generation: find a query for which a
//! rule is not merely *exercised* but *relevant* — disabling it changes the
//! optimizer's final plan choice.

use crate::framework::Framework;
use crate::generate::{GenConfig, GenOutcome, Strategy};
use ruletest_common::{Error, Result, RuleId};
use ruletest_optimizer::OptimizerConfig;

/// Generates a query for which `rule` is relevant: `Plan(q)` differs from
/// `Plan(q, ¬{rule})`. Returns the query plus the number of exercising
/// queries that had to be discarded because the rule did not influence the
/// plan.
pub fn find_relevant_query(
    fw: &Framework,
    rule: RuleId,
    strategy: Strategy,
    cfg: &GenConfig,
) -> Result<(GenOutcome, usize)> {
    let mut discarded = 0usize;
    let mut trials_used = 0usize;
    let mut seed = cfg.seed;
    while trials_used < cfg.max_trials {
        let sub_cfg = GenConfig {
            seed,
            max_trials: cfg.max_trials - trials_used,
            ..cfg.clone()
        };
        let mut out = fw.find_query_for_rule(rule, strategy, &sub_cfg)?;
        trials_used += out.trials;
        let base = fw.optimizer.optimize(&out.query)?;
        let masked = fw
            .optimizer
            .optimize_with(&out.query, &OptimizerConfig::disabling(&[rule]))?;
        if !base.plan.same_shape(&masked.plan) {
            out.trials = trials_used;
            return Ok((out, discarded));
        }
        discarded += 1;
        seed = seed.wrapping_add(0x9E37_79B9);
    }
    Err(Error::unsupported(format!(
        "no query where {} is relevant found in {} trials",
        fw.optimizer.rule(rule).name,
        cfg.max_trials
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;

    #[test]
    fn finds_a_query_where_hash_join_rule_changes_the_plan() {
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        // Disabling the hash-join implementation almost always changes the
        // plan of any join query.
        let rule = fw.optimizer.rule_id("JoinToHashJoin").unwrap();
        let (out, _) =
            find_relevant_query(&fw, rule, Strategy::Pattern, &GenConfig::default()).unwrap();
        let base = fw.optimizer.optimize(&out.query).unwrap();
        let masked = fw
            .optimizer
            .optimize_with(&out.query, &OptimizerConfig::disabling(&[rule]))
            .unwrap();
        assert!(!base.plan.same_shape(&masked.plan));
    }

    #[test]
    fn relevance_is_stricter_than_exercise() {
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        // Join commutativity is exercised by every join query but often
        // does not change the final plan; the finder may discard a few.
        let rule = fw.optimizer.rule_id("InnerJoinCommute").unwrap();
        let cfg = GenConfig {
            max_trials: 300,
            ..GenConfig::default()
        };
        match find_relevant_query(&fw, rule, Strategy::Pattern, &cfg) {
            Ok((out, _discarded)) => {
                let base = fw.optimizer.optimize(&out.query).unwrap();
                let masked = fw
                    .optimizer
                    .optimize_with(&out.query, &OptimizerConfig::disabling(&[rule]))
                    .unwrap();
                assert!(!base.plan.same_shape(&masked.plan));
            }
            Err(e) => panic!("expected to find a relevant query: {e}"),
        }
    }
}
