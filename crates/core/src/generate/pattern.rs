//! PATTERN-based query generation (§3.1).
//!
//! The generator fetches a rule's pattern from the optimizer's export API
//! and builds a logical query tree around it: concrete pattern operators
//! are instantiated with generated arguments, placeholders ("circles")
//! become small random subtrees, and — optionally — extra random operators
//! are stacked on top to reach a requested complexity (§2.3).

use super::args::{ArgGen, Built};
use super::random::{random_project, random_tree};
use ruletest_common::Rng;
use ruletest_logical::{IdGen, JoinKind, LogicalTree, OpKind};
use ruletest_optimizer::{OpMatcher, PatternTree};
use ruletest_storage::Database;
use std::collections::HashMap;

/// Instantiates `pattern` into a valid logical query tree, or `None` when
/// the drawn arguments cannot be made valid (caller counts a trial and
/// retries).
pub fn instantiate_pattern(
    db: &Database,
    rng: &mut Rng,
    ids: &mut IdGen,
    pattern: &PatternTree,
) -> Option<Built> {
    let gen = ArgGen::new(db);
    instantiate(db, &gen, rng, ids, pattern)
}

fn instantiate(
    db: &Database,
    gen: &ArgGen,
    rng: &mut Rng,
    ids: &mut IdGen,
    pattern: &PatternTree,
) -> Option<Built> {
    match pattern {
        PatternTree::Any => {
            // A placeholder: usually a base table, occasionally a small
            // random subtree (placeholders match *any* operator).
            let budget = if rng.gen_bool(0.75) {
                1
            } else {
                2 + rng.gen_index(2)
            };
            Some(random_tree(db, rng, ids, budget))
        }
        PatternTree::Op { matcher, children } => {
            let kids: Vec<Built> = children
                .iter()
                .map(|c| instantiate(db, gen, rng, ids, c))
                .collect::<Option<_>>()?;
            build_op(db, gen, rng, ids, matcher, kids)
        }
    }
}

fn build_op(
    db: &Database,
    gen: &ArgGen,
    rng: &mut Rng,
    ids: &mut IdGen,
    matcher: &OpMatcher,
    mut kids: Vec<Built>,
) -> Option<Built> {
    match matcher {
        OpMatcher::Join(kinds) => {
            let right = kids.pop()?;
            let left = kids.pop()?;
            let kind = *rng.pick(kinds);
            let require_equi =
                matches!(kind, JoinKind::LeftSemi | JoinKind::LeftAnti) || rng.gen_bool(0.8);
            let pred = gen.join_predicate(rng, &left, &right, require_equi);
            let mut base = left.base_cols.clone();
            if kind.emits_both_sides() {
                base.extend(right.base_cols.clone());
            }
            Built::new(
                db,
                LogicalTree::join(kind, left.tree, right.tree, pred),
                base,
            )
        }
        OpMatcher::Kind(kind) => match kind {
            OpKind::Get => Some(gen.random_get(rng, ids)),
            OpKind::Select => {
                let child = kids.pop()?;
                let pred = gen.filter_predicate(rng, &child.schema);
                let base = child.base_cols.clone();
                Built::new(db, LogicalTree::select(child.tree, pred), base)
            }
            OpKind::Project => {
                let child = kids.pop()?;
                Some(random_project(db, gen, rng, ids, child))
            }
            OpKind::Join => {
                let right = kids.pop()?;
                let left = kids.pop()?;
                let kind = gen.random_join_kind(rng);
                let require_equi = matches!(kind, JoinKind::LeftSemi | JoinKind::LeftAnti);
                let pred = gen.join_predicate(rng, &left, &right, require_equi);
                let mut base = left.base_cols.clone();
                if kind.emits_both_sides() {
                    base.extend(right.base_cols.clone());
                }
                Built::new(
                    db,
                    LogicalTree::join(kind, left.tree, right.tree, pred),
                    base,
                )
            }
            OpKind::GbAgg => {
                let child = kids.pop()?;
                let (group_by, aggs) = gen.gbagg_args(rng, ids, &child);
                let base = child.base_cols.clone();
                Built::new(db, LogicalTree::gbagg(child.tree, group_by, aggs), base)
            }
            OpKind::UnionAll => {
                let right = kids.pop()?;
                let left = kids.pop()?;
                let (outs, lc, rc) = gen.union_alignment(rng, ids, &left, &right)?;
                Built::new(
                    db,
                    LogicalTree::union_all(left.tree, right.tree, outs, lc, rc),
                    HashMap::new(),
                )
            }
            OpKind::Distinct => {
                let child = kids.pop()?;
                let base = child.base_cols.clone();
                Built::new(db, LogicalTree::distinct(child.tree), base)
            }
            OpKind::Sort => {
                let child = kids.pop()?;
                let keys = gen.sort_keys(rng, &child.schema);
                if keys.is_empty() {
                    return None;
                }
                let base = child.base_cols.clone();
                Built::new(db, LogicalTree::sort(child.tree, keys), base)
            }
            OpKind::Top => {
                let child = kids.pop()?;
                let keys = gen.sort_keys(rng, &child.schema);
                let n = 1 + rng.gen_below(20);
                let base = child.base_cols.clone();
                Built::new(db, LogicalTree::top(child.tree, n, keys), base)
            }
        },
    }
}

/// Stacks `pad` extra random operators on top of an instantiated pattern
/// query without disturbing the pattern below (§2.3: "add an additional
/// number of (random) operators to an existing logical query tree").
pub fn pad_above(db: &Database, rng: &mut Rng, ids: &mut IdGen, built: Built, pad: usize) -> Built {
    let gen = ArgGen::new(db);
    let mut cur = built;
    for _ in 0..pad {
        let roll = rng.gen_below(100);
        let next = match roll {
            0..=39 => {
                let pred = gen.filter_predicate(rng, &cur.schema);
                let base = cur.base_cols.clone();
                Built::new(db, LogicalTree::select(cur.tree.clone(), pred), base)
            }
            // Join-padding multiplies the join-order search space; past a
            // modest size it would push exploration into truncation, which
            // suite generation rejects (truncated searches break the
            // Cost(q) <= Cost(q, ¬R) invariant).
            40..=64 if cur.tree.op_count() <= 6 => {
                // Join with a fresh base table on top.
                let right = gen.random_get(rng, ids);
                let pred = gen.join_predicate(rng, &cur, &right, true);
                let mut base = cur.base_cols.clone();
                base.extend(right.base_cols.clone());
                Built::new(
                    db,
                    LogicalTree::join(JoinKind::Inner, cur.tree.clone(), right.tree, pred),
                    base,
                )
            }
            65..=79 => {
                let keys = gen.sort_keys(rng, &cur.schema);
                let base = cur.base_cols.clone();
                if keys.is_empty() {
                    None
                } else {
                    Built::new(db, LogicalTree::sort(cur.tree.clone(), keys), base)
                }
            }
            80..=89 => {
                let base = cur.base_cols.clone();
                Built::new(db, LogicalTree::distinct(cur.tree.clone()), base)
            }
            _ => Some(random_project(db, &gen, rng, ids, cur.clone())),
        };
        if let Some(next) = next {
            cur = next;
        }
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use ruletest_logical::derive_schema;
    use ruletest_optimizer::Optimizer;
    use ruletest_storage::{tpch_database, TpchConfig};
    use std::sync::Arc;

    #[test]
    fn every_rule_pattern_instantiates_to_a_valid_tree() {
        let db = Arc::new(tpch_database(&TpchConfig::default()).unwrap());
        let opt = Optimizer::new(db.clone());
        let mut rng = Rng::new(11);
        for rid in opt.exploration_rule_ids() {
            let pattern = opt.rule_pattern(rid);
            let mut ok = 0;
            for _ in 0..20 {
                let mut ids = IdGen::new();
                if let Some(b) = instantiate_pattern(&db, &mut rng, &mut ids, pattern) {
                    assert!(
                        derive_schema(&db.catalog, &b.tree).is_ok(),
                        "invalid instantiation for {}",
                        opt.rule(rid).name
                    );
                    ok += 1;
                }
            }
            assert!(
                ok > 0,
                "pattern of {} never instantiated in 20 draws",
                opt.rule(rid).name
            );
        }
    }

    #[test]
    fn padding_grows_the_query_and_keeps_it_valid() {
        let db = Arc::new(tpch_database(&TpchConfig::default()).unwrap());
        let opt = Optimizer::new(db.clone());
        let commute = opt.rule_id("InnerJoinCommute").unwrap();
        let mut rng = Rng::new(12);
        let mut ids = IdGen::new();
        let b = instantiate_pattern(&db, &mut rng, &mut ids, opt.rule_pattern(commute)).unwrap();
        let before = b.tree.op_count();
        let padded = pad_above(&db, &mut rng, &mut ids, b, 5);
        assert!(padded.tree.op_count() > before);
        assert!(derive_schema(&db.catalog, &padded.tree).is_ok());
    }
}
