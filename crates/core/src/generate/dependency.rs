//! The §7 rule-*dependency* interaction: "a rule r2 is exercised on an
//! expression which was obtained as a result of exercising rule r1" —
//! stricter than co-occurrence in `RuleSet(q)`. The optimizer records
//! creator rules per memo expression, so dependencies are observed rather
//! than inferred.

use crate::framework::Framework;
use crate::generate::{GenConfig, GenOutcome, Strategy};
use ruletest_common::{Error, Result, RuleId};

/// Generates a query in whose optimization `r2` fires on an expression
/// created by `r1`. Returns the query plus the number of co-occurring
/// (but dependency-free) queries discarded along the way.
pub fn find_dependency_query(
    fw: &Framework,
    r1: RuleId,
    r2: RuleId,
    strategy: Strategy,
    cfg: &GenConfig,
) -> Result<(GenOutcome, usize)> {
    let mut discarded = 0usize;
    let mut trials_used = 0usize;
    let mut seed = cfg.seed;
    while trials_used < cfg.max_trials {
        let sub_cfg = GenConfig {
            seed,
            max_trials: cfg.max_trials - trials_used,
            ..cfg.clone()
        };
        let mut out = fw.find_query_for_pair((r1, r2), strategy, &sub_cfg)?;
        trials_used += out.trials;
        let res = fw.optimizer.optimize(&out.query)?;
        if res.rule_dependencies.contains(&(r1, r2)) {
            out.trials = trials_used;
            return Ok((out, discarded));
        }
        discarded += 1;
        seed = seed.wrapping_add(0x9E37_79B9);
    }
    Err(Error::unsupported(format!(
        "no query where {} feeds {} found in {} trials",
        fw.optimizer.rule(r1).name,
        fw.optimizer.rule(r2).name,
        cfg.max_trials
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::framework::FrameworkConfig;
    use ruletest_expr::Expr;
    use ruletest_logical::{IdGen, JoinKind, LogicalTree};

    /// The paper's §3 example, verbatim: `R JOIN (S LOJ T)` — the
    /// Join/LOJ associativity rule produces `(R JOIN S)`, on which join
    /// commutativity then fires. The dependency must be observed.
    #[test]
    fn papers_example_dependency_is_observed() {
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let cat = &fw.db.catalog;
        let mut ids = IdGen::new();
        let r = LogicalTree::get(cat.table_by_name("supplier").unwrap(), &mut ids);
        let s = LogicalTree::get(cat.table_by_name("nation").unwrap(), &mut ids);
        let t = LogicalTree::get(cat.table_by_name("region").unwrap(), &mut ids);
        let (r_nat, s_key, s_reg, t_key) = (
            r.output_col(2),
            s.output_col(0),
            s.output_col(2),
            t.output_col(0),
        );
        let loj = LogicalTree::join(
            JoinKind::LeftOuter,
            s,
            t,
            Expr::eq(Expr::col(s_reg), Expr::col(t_key)),
        );
        let query = LogicalTree::join(
            JoinKind::Inner,
            r,
            loj,
            Expr::eq(Expr::col(r_nat), Expr::col(s_key)),
        );
        let res = fw.optimizer.optimize(&query).unwrap();
        let assoc = fw.optimizer.rule_id("JoinLojAssoc").unwrap();
        let commute = fw.optimizer.rule_id("InnerJoinCommute").unwrap();
        assert!(
            res.rule_dependencies.contains(&(assoc, commute)),
            "expected (JoinLojAssoc -> InnerJoinCommute) in {:?}",
            res.rule_dependencies
                .iter()
                .map(|(a, b)| format!(
                    "{}->{}",
                    fw.optimizer.rule(*a).name,
                    fw.optimizer.rule(*b).name
                ))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn dependency_finder_returns_a_witness() {
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let assoc = fw.optimizer.rule_id("JoinLojAssoc").unwrap();
        let commute = fw.optimizer.rule_id("InnerJoinCommute").unwrap();
        let (out, _discarded) = find_dependency_query(
            &fw,
            assoc,
            commute,
            Strategy::Pattern,
            &GenConfig {
                max_trials: 400,
                ..Default::default()
            },
        )
        .unwrap();
        let res = fw.optimizer.optimize(&out.query).unwrap();
        assert!(res.rule_dependencies.contains(&(assoc, commute)));
    }

    #[test]
    fn seed_expressions_carry_no_creator() {
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let cat = &fw.db.catalog;
        let mut ids = IdGen::new();
        let t = LogicalTree::get(cat.table_by_name("region").unwrap(), &mut ids);
        let res = fw.optimizer.optimize(&t).unwrap();
        // A bare scan exercises no exploration rule, so no dependencies.
        assert!(res.rule_dependencies.is_empty());
    }
}
