//! Rule-pattern composition for rule pairs (§3.2).
//!
//! Two composition schemes, exactly as the paper describes:
//!
//! 1. a new root (join or union) with the two patterns as children, and
//! 2. substitution of one pattern into each generic placeholder ("circle")
//!    of the other, in both directions.

use ruletest_logical::{JoinKind, OpKind};
use ruletest_optimizer::PatternTree;

/// Replaces the placeholder at `path` (root-to-leaf child indexes) with
/// `replacement`.
pub fn substitute_at(
    pattern: &PatternTree,
    path: &[usize],
    replacement: &PatternTree,
) -> PatternTree {
    if path.is_empty() {
        debug_assert!(matches!(pattern, PatternTree::Any));
        return replacement.clone();
    }
    match pattern {
        PatternTree::Op { matcher, children } => {
            let mut children = children.clone();
            children[path[0]] = substitute_at(&children[path[0]], &path[1..], replacement);
            PatternTree::Op {
                matcher: matcher.clone(),
                children,
            }
        }
        PatternTree::Any => unreachable!("path leads through a concrete node"),
    }
}

/// All composite patterns for the pair `(a, b)`, ordered by increasing
/// concrete-operator count so the framework tries the smallest composites
/// first ("pick the query with the least number of operators", §3.2).
pub fn compose_patterns(a: &PatternTree, b: &PatternTree) -> Vec<PatternTree> {
    let mut out = Vec::new();
    // Scheme 1: new root with both patterns as children.
    out.push(PatternTree::join(
        vec![JoinKind::Inner],
        a.clone(),
        b.clone(),
    ));
    out.push(PatternTree::kind(
        OpKind::UnionAll,
        vec![a.clone(), b.clone()],
    ));
    // Scheme 2: substitute one pattern into each circle of the other.
    for path in a.placeholder_paths() {
        out.push(substitute_at(a, &path, b));
    }
    for path in b.placeholder_paths() {
        out.push(substitute_at(b, &path, a));
    }
    out.sort_by_key(PatternTree::concrete_ops);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn join_pattern() -> PatternTree {
        PatternTree::join(vec![JoinKind::Inner], PatternTree::Any, PatternTree::Any)
    }

    fn gbagg_pattern() -> PatternTree {
        PatternTree::kind(OpKind::GbAgg, vec![PatternTree::Any])
    }

    #[test]
    fn substitution_replaces_the_circle() {
        let a = join_pattern();
        let paths = a.placeholder_paths();
        assert_eq!(paths.len(), 2);
        let composed = substitute_at(&a, &paths[0], &gbagg_pattern());
        assert_eq!(composed.concrete_ops(), 2);
        // The right circle is still a placeholder.
        assert_eq!(composed.placeholder_paths().len(), 2);
    }

    #[test]
    fn compose_generates_root_and_substitution_schemes() {
        let a = join_pattern();
        let b = gbagg_pattern();
        let all = compose_patterns(&a, &b);
        // 2 root schemes + 2 circles of a + 1 circle of b.
        assert_eq!(all.len(), 5);
        // Sorted by concrete op count; every composite contains both
        // patterns' concrete ops.
        for w in all.windows(2) {
            assert!(w[0].concrete_ops() <= w[1].concrete_ops());
        }
        for c in &all {
            assert!(c.concrete_ops() >= a.concrete_ops() + b.concrete_ops());
        }
    }

    #[test]
    fn composition_of_leaf_patterns_uses_root_schemes_only() {
        let get = PatternTree::kind(OpKind::Get, vec![]);
        let all = compose_patterns(&get, &get);
        assert_eq!(all.len(), 2, "no circles to substitute into");
    }
}
