//! Correctness-validation execution (§2.3).
//!
//! For every query in a (compressed) suite, `Plan(q)` executes once; for
//! every `(target, query)` assignment, `Plan(q, ¬R)` executes and the two
//! result multisets are compared. Differing results are correctness bugs.
//! Per the paper's footnote 1, when the two plans are identical the
//! execution is skipped — the results are guaranteed equal.

use crate::compress::{Instance, Solution};
use crate::framework::Framework;
use crate::suite::{RuleTarget, TestSuite};
use crate::supervise::{absorb, Quarantine, SITE_EXEC_BASE, SITE_EXEC_PAIR};
use ruletest_common::{
    diff_multisets, par_map_supervised, try_par_map, Error, Failure, Result, Row,
};
use ruletest_executor::{execute_profiled, ExecConfig};
use ruletest_optimizer::OptimizerConfig;
use ruletest_telemetry::{Counter, Event, Stage};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// One detected correctness bug. Carries a full repro: the SQL alone is
/// not one, because the result diff depends on the generated database
/// (seed + scale) and on exactly which rules were masked.
#[derive(Debug, Clone)]
pub struct BugReport {
    pub target: RuleTarget,
    pub target_label: String,
    /// Index of the witness query in the suite (for triage post-processing).
    pub query: usize,
    pub sql: String,
    pub diff_summary: String,
    /// Suite generation seed (`GenConfig::seed`).
    pub seed: u64,
    /// Names of the rules disabled in the masked optimization.
    pub rule_mask: Vec<String>,
    /// Test-database scale factor at detection time.
    pub scale: usize,
}

/// The outcome of executing a test suite.
#[derive(Debug, Clone, Default)]
pub struct CorrectnessReport {
    /// (target, query) validations attempted.
    pub validations: usize,
    /// Plans actually executed (base plans + differing disabled plans).
    pub executions: usize,
    /// Validations skipped because `Plan(q)` and `Plan(q, ¬R)` were
    /// identical (footnote 1).
    pub skipped_identical: usize,
    /// Validations skipped because execution exceeded the work budget.
    pub skipped_expensive: usize,
    /// Validations skipped because the executor refused the masked plan
    /// (`Error::Unsupported`). Distinct from budget skips: a refused plan
    /// may hide an optimizer bug and deserves scrutiny, an expensive one
    /// is just slow.
    pub skipped_unsupported: usize,
    /// Validations skipped because the input is (or just became)
    /// quarantined: its plan pair crashed, timed out, or blew a budget
    /// under supervision — this run or a previous one. Always 0 in
    /// unsupervised execution.
    pub skipped_quarantined: usize,
    /// Total estimated cost actually incurred (nodes once + edges).
    pub estimated_cost: f64,
    pub bugs: Vec<BugReport>,
    pub elapsed: std::time::Duration,
}

impl CorrectnessReport {
    pub fn passed(&self) -> bool {
        self.bugs.is_empty()
    }
}

/// What one `(target, query)` validation produced, before the ordered
/// merge into the report.
enum Validation {
    Identical,
    Expensive,
    Unsupported,
    /// Supervised execution only: the input is quarantined (previously or
    /// just now) and the validation was not attempted / not completed.
    Quarantined,
    Clean,
    Bug(BugReport),
}

/// Executes a compressed test suite against the framework's optimizer.
/// Plan-pair executions run concurrently on the campaign pool; outcomes
/// are merged in assignment order, so the report (bug order, counters,
/// cost sums) is byte-identical at any thread count.
pub fn execute_solution(
    fw: &Framework,
    suite: &TestSuite,
    _inst: &Instance,
    sol: &Solution,
    exec_config: &ExecConfig,
) -> Result<CorrectnessReport> {
    let start = Instant::now();
    let mut report = CorrectnessReport::default();
    // Base results, one execution per distinct query (the node-cost-sharing
    // observation of §4.1). Each query is independent; results merge in
    // `used_queries` order so the floating-point cost sum is reproducible.
    let used: Vec<usize> = sol.used_queries().into_iter().collect();
    let base_items = try_par_map(fw.parallelism.threads, &used, |_, &q| {
        // Spans open inside the leaf closure so the tree shape is
        // thread-count-invariant.
        let _span = fw.telemetry.span(Stage::Correctness);
        let res = fw.optimizer.optimize_cached(&suite.queries[q].tree)?;
        let rows = match execute_profiled(&fw.db, &res.plan, exec_config, &fw.telemetry) {
            Ok(rows) => Some(rows),
            Err(Error::Budget(_) | Error::Unsupported(_)) => None,
            Err(e) => return Err(e),
        };
        Ok((q, res.cost, rows))
    })?;
    let mut base_results: HashMap<usize, Option<Vec<Row>>> = HashMap::new();
    for (q, cost, rows) in base_items {
        report.estimated_cost += cost;
        if rows.is_some() {
            report.executions += 1;
        }
        base_results.insert(q, rows);
    }

    // Every (target, query) assignment is an independent plan-pair
    // validation against the read-only test database.
    let pairs: Vec<(usize, usize)> = sol
        .assignment
        .iter()
        .enumerate()
        .flat_map(|(t, qs)| qs.iter().map(move |&q| (t, q)))
        .collect();
    let validated = try_par_map(fw.parallelism.threads, &pairs, |_, &(t, q)| {
        let _span = fw.telemetry.span(Stage::Correctness);
        let target = suite.targets[t];
        let rules = target.rules();
        // Both optimizations are near-guaranteed invocation-cache hits:
        // the base plan was computed for the base-results stage, the
        // masked plan during graph construction.
        let base = fw.optimizer.optimize_cached(&suite.queries[q].tree)?;
        let masked = fw
            .optimizer
            .optimize_with_cached(&suite.queries[q].tree, &OptimizerConfig::disabling(&rules))?;
        let cost = masked.cost;
        if base.plan.same_shape(&masked.plan) {
            return Ok((cost, Validation::Identical));
        }
        let Some(Some(expected)) = base_results.get(&q) else {
            return Ok((cost, Validation::Expensive));
        };
        match execute_profiled(&fw.db, &masked.plan, exec_config, &fw.telemetry) {
            Ok(actual) => {
                let diff = diff_multisets(expected, &actual);
                if diff.is_empty() {
                    Ok((cost, Validation::Clean))
                } else {
                    Ok((
                        cost,
                        Validation::Bug(BugReport {
                            target,
                            target_label: target.label(&fw.optimizer),
                            query: q,
                            sql: suite.queries[q].sql.clone(),
                            diff_summary: diff.summary(),
                            seed: suite.seed,
                            rule_mask: rules
                                .iter()
                                .map(|&r| fw.optimizer.rule(r).name.to_string())
                                .collect(),
                            scale: fw.db_profile.scale,
                        }),
                    ))
                }
            }
            Err(Error::Budget(_)) => Ok((cost, Validation::Expensive)),
            Err(Error::Unsupported(_)) => Ok((cost, Validation::Unsupported)),
            Err(e) => Err(e),
        }
    })?;
    // The merge runs in assignment order on one thread, so the telemetry
    // counters and events below are deterministic at any thread count.
    fw.telemetry
        .add(Counter::Executions, report.executions as u64);
    for ((t, q), (cost, outcome)) in pairs.iter().zip(validated) {
        merge_one(fw, &mut report, *t, *q, cost, outcome);
    }
    report.elapsed = start.elapsed();
    Ok(report)
}

/// Folds one `(target, query)` validation outcome into the report and the
/// telemetry stream — shared by the supervised and unsupervised merges so
/// their counter and event sequences are identical.
fn merge_one(
    fw: &Framework,
    report: &mut CorrectnessReport,
    t: usize,
    q: usize,
    cost: f64,
    outcome: Validation,
) {
    let tel = &fw.telemetry;
    report.validations += 1;
    report.estimated_cost += cost;
    tel.incr(Counter::Validations);
    let label = match outcome {
        Validation::Identical => {
            report.skipped_identical += 1;
            tel.incr(Counter::SkippedIdentical);
            "identical"
        }
        Validation::Expensive => {
            report.skipped_expensive += 1;
            tel.incr(Counter::SkippedExpensive);
            "expensive"
        }
        Validation::Unsupported => {
            report.skipped_unsupported += 1;
            tel.incr(Counter::SkippedUnsupported);
            "unsupported"
        }
        Validation::Quarantined => {
            report.skipped_quarantined += 1;
            "quarantined"
        }
        Validation::Clean => {
            report.executions += 1;
            tel.incr(Counter::Executions);
            "clean"
        }
        Validation::Bug(bug) => {
            report.executions += 1;
            tel.incr(Counter::Executions);
            tel.incr(Counter::CorrectnessBugs);
            report.bugs.push(bug);
            "bug"
        }
    };
    tel.event(|| Event::Validation {
        target: t as u32,
        query: q as u32,
        outcome: label,
    });
}

/// Supervised twin of [`execute_solution`]: the base and pair fan-outs
/// run under the panic sandbox, failed inputs are quarantined (with
/// their SQL, so the crash minimizer can shrink them later) instead of
/// aborting the campaign, and inputs already in the quarantine are
/// skipped *before* any optimizer or executor call — a resumed campaign
/// never re-triggers a known crash. On a clean run with an empty
/// quarantine, the optimizer/executor call sequence, spans, counters,
/// and events are identical to the unsupervised twin.
pub fn execute_solution_supervised(
    fw: &Framework,
    suite: &TestSuite,
    _inst: &Instance,
    sol: &Solution,
    exec_config: &ExecConfig,
    quarantine: &mut Quarantine,
) -> Result<CorrectnessReport> {
    let start = Instant::now();
    let mut report = CorrectnessReport::default();

    // Base stage: skip quarantined queries up front, sandbox the rest.
    let used: Vec<usize> = sol.used_queries().into_iter().collect();
    let mut poisoned: HashSet<usize> = HashSet::new();
    let mut base_results: HashMap<usize, Option<Vec<Row>>> = HashMap::new();
    let pending: Vec<usize> = used
        .into_iter()
        .filter(|&q| {
            if quarantine.contains_input(SITE_EXEC_BASE, &suite.queries[q].sql) {
                poisoned.insert(q);
                base_results.insert(q, None);
                false
            } else {
                true
            }
        })
        .collect();
    let base_items =
        par_map_supervised(fw.parallelism.threads, &pending, SITE_EXEC_BASE, |_, &q| {
            let _span = fw.telemetry.span(Stage::Correctness);
            let res = fw.optimizer.optimize_cached(&suite.queries[q].tree)?;
            let rows = match execute_profiled(&fw.db, &res.plan, exec_config, &fw.telemetry) {
                Ok(rows) => Some(rows),
                Err(Error::Budget(_) | Error::Unsupported(_)) => None,
                Err(e) => return Err(e),
            };
            Ok((res.cost, rows))
        });
    for (&q, item) in pending.iter().zip(base_items) {
        let sql = &suite.queries[q].sql;
        let mut quarantine_base = |failure: &Failure| {
            absorb(
                fw,
                quarantine,
                SITE_EXEC_BASE,
                sql,
                Some(sql.clone()),
                Vec::new(),
                failure,
            );
            poisoned.insert(q);
            base_results.insert(q, None);
        };
        match item {
            Ok(Ok((cost, rows))) => {
                report.estimated_cost += cost;
                if rows.is_some() {
                    report.executions += 1;
                }
                base_results.insert(q, rows);
            }
            Ok(Err(e)) => match Failure::from_error(&e) {
                Some(failure) => quarantine_base(&failure),
                None => return Err(e),
            },
            Err(failure) => quarantine_base(&failure),
        }
    }

    // Pair stage: pre-compute which pairs must be skipped (quarantined
    // pairs, or pairs over a base query that just failed) so the worker
    // closures never touch a poisoned input.
    let pairs: Vec<(usize, usize)> = sol
        .assignment
        .iter()
        .enumerate()
        .flat_map(|(t, qs)| qs.iter().map(move |&q| (t, q)))
        .collect();
    let labels: Vec<String> = suite
        .targets
        .iter()
        .map(|t| t.label(&fw.optimizer))
        .collect();
    let pair_label = |t: usize, q: usize| format!("{}|{}", labels[t], suite.queries[q].sql);
    let skip: Vec<bool> = pairs
        .iter()
        .map(|&(t, q)| {
            poisoned.contains(&q) || quarantine.contains_input(SITE_EXEC_PAIR, &pair_label(t, q))
        })
        .collect();
    let validated = par_map_supervised(
        fw.parallelism.threads,
        &pairs,
        SITE_EXEC_PAIR,
        |i, &(t, q)| {
            if skip[i] {
                return Ok((0.0, Validation::Quarantined));
            }
            let _span = fw.telemetry.span(Stage::Correctness);
            let target = suite.targets[t];
            let rules = target.rules();
            let base = fw.optimizer.optimize_cached(&suite.queries[q].tree)?;
            let masked = fw.optimizer.optimize_with_cached(
                &suite.queries[q].tree,
                &OptimizerConfig::disabling(&rules),
            )?;
            let cost = masked.cost;
            if base.plan.same_shape(&masked.plan) {
                return Ok((cost, Validation::Identical));
            }
            let Some(Some(expected)) = base_results.get(&q) else {
                return Ok((cost, Validation::Expensive));
            };
            match execute_profiled(&fw.db, &masked.plan, exec_config, &fw.telemetry) {
                Ok(actual) => {
                    let diff = diff_multisets(expected, &actual);
                    if diff.is_empty() {
                        Ok((cost, Validation::Clean))
                    } else {
                        Ok((
                            cost,
                            Validation::Bug(BugReport {
                                target,
                                target_label: target.label(&fw.optimizer),
                                query: q,
                                sql: suite.queries[q].sql.clone(),
                                diff_summary: diff.summary(),
                                seed: suite.seed,
                                rule_mask: rules
                                    .iter()
                                    .map(|&r| fw.optimizer.rule(r).name.to_string())
                                    .collect(),
                                scale: fw.db_profile.scale,
                            }),
                        ))
                    }
                }
                Err(Error::Budget(_)) => Ok((cost, Validation::Expensive)),
                Err(Error::Unsupported(_)) => Ok((cost, Validation::Unsupported)),
                Err(e) => Err(e),
            }
        },
    );
    fw.telemetry
        .add(Counter::Executions, report.executions as u64);
    for ((t, q), item) in pairs.iter().zip(validated) {
        let mask = || {
            suite.targets[*t]
                .rules()
                .iter()
                .map(|&r| fw.optimizer.rule(r).name.to_string())
                .collect()
        };
        let (cost, outcome) = match item {
            Ok(Ok(pair)) => pair,
            Ok(Err(e)) => match Failure::from_error(&e) {
                Some(failure) => {
                    let label = pair_label(*t, *q);
                    absorb(
                        fw,
                        quarantine,
                        SITE_EXEC_PAIR,
                        &label,
                        Some(suite.queries[*q].sql.clone()),
                        mask(),
                        &failure,
                    );
                    (0.0, Validation::Quarantined)
                }
                None => return Err(e),
            },
            Err(failure) => {
                let label = pair_label(*t, *q);
                absorb(
                    fw,
                    quarantine,
                    SITE_EXEC_PAIR,
                    &label,
                    Some(suite.queries[*q].sql.clone()),
                    mask(),
                    &failure,
                );
                (0.0, Validation::Quarantined)
            }
        };
        merge_one(fw, &mut report, *t, *q, cost, outcome);
    }
    report.elapsed = start.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{baseline, topk};
    use crate::framework::FrameworkConfig;
    use crate::generate::{GenConfig, Strategy};
    use crate::suite::{build_graph, generate_suite, singleton_targets};

    #[test]
    fn correct_rules_yield_no_bugs() {
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let targets = singleton_targets(&fw, 5);
        let suite = generate_suite(
            &fw,
            targets,
            2,
            Strategy::Pattern,
            &GenConfig {
                pad_ops: 2,
                ..GenConfig::default()
            },
        )
        .unwrap();
        let graph = build_graph(&fw, &suite).unwrap();
        let inst = Instance::from_graph(&graph);
        for sol in [baseline(&inst).unwrap(), topk(&inst).unwrap()] {
            let report =
                execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default()).unwrap();
            assert!(report.passed(), "false positives: {:?}", report.bugs);
            assert!(report.validations > 0);
            assert!(report.executions > 0);
        }
    }
}
