//! Correctness-validation execution (§2.3).
//!
//! For every query in a (compressed) suite, `Plan(q)` executes once; for
//! every `(target, query)` assignment, `Plan(q, ¬R)` executes and the two
//! result multisets are compared. Differing results are correctness bugs.
//! Per the paper's footnote 1, when the two plans are identical the
//! execution is skipped — the results are guaranteed equal.

use crate::compress::{Instance, Solution};
use crate::framework::Framework;
use crate::suite::{RuleTarget, TestSuite};
use ruletest_common::{diff_multisets, Error, Result, Row};
use ruletest_executor::{execute_with, ExecConfig};
use ruletest_optimizer::OptimizerConfig;
use std::collections::HashMap;
use std::time::Instant;

/// One detected correctness bug.
#[derive(Debug, Clone)]
pub struct BugReport {
    pub target: RuleTarget,
    pub target_label: String,
    pub sql: String,
    pub diff_summary: String,
}

/// The outcome of executing a test suite.
#[derive(Debug, Clone, Default)]
pub struct CorrectnessReport {
    /// (target, query) validations attempted.
    pub validations: usize,
    /// Plans actually executed (base plans + differing disabled plans).
    pub executions: usize,
    /// Validations skipped because `Plan(q)` and `Plan(q, ¬R)` were
    /// identical (footnote 1).
    pub skipped_identical: usize,
    /// Validations skipped because execution exceeded the work budget.
    pub skipped_expensive: usize,
    /// Total estimated cost actually incurred (nodes once + edges).
    pub estimated_cost: f64,
    pub bugs: Vec<BugReport>,
    pub elapsed: std::time::Duration,
}

impl CorrectnessReport {
    pub fn passed(&self) -> bool {
        self.bugs.is_empty()
    }
}

/// Executes a compressed test suite against the framework's optimizer.
pub fn execute_solution(
    fw: &Framework,
    suite: &TestSuite,
    _inst: &Instance,
    sol: &Solution,
    exec_config: &ExecConfig,
) -> Result<CorrectnessReport> {
    let start = Instant::now();
    let mut report = CorrectnessReport::default();
    // Base results, one execution per distinct query (the node-cost-sharing
    // observation of §4.1).
    let mut base_results: HashMap<usize, Option<Vec<Row>>> = HashMap::new();
    for &q in &sol.used_queries() {
        let res = fw.optimizer.optimize(&suite.queries[q].tree)?;
        report.estimated_cost += res.cost;
        match execute_with(&fw.db, &res.plan, exec_config) {
            Ok(rows) => {
                report.executions += 1;
                base_results.insert(q, Some(rows));
            }
            Err(Error::Unsupported(_)) => {
                base_results.insert(q, None);
            }
            Err(e) => return Err(e),
        }
    }

    for (t, qs) in sol.assignment.iter().enumerate() {
        let target = suite.targets[t];
        let rules = target.rules();
        for &q in qs {
            report.validations += 1;
            let base = fw.optimizer.optimize(&suite.queries[q].tree)?;
            let masked = fw
                .optimizer
                .optimize_with(&suite.queries[q].tree, &OptimizerConfig::disabling(&rules))?;
            report.estimated_cost += masked.cost;
            if base.plan.same_shape(&masked.plan) {
                report.skipped_identical += 1;
                continue;
            }
            let Some(Some(expected)) = base_results.get(&q) else {
                report.skipped_expensive += 1;
                continue;
            };
            match execute_with(&fw.db, &masked.plan, exec_config) {
                Ok(actual) => {
                    report.executions += 1;
                    let diff = diff_multisets(expected, &actual);
                    if !diff.is_empty() {
                        report.bugs.push(BugReport {
                            target,
                            target_label: target.label(&fw.optimizer),
                            sql: suite.queries[q].sql.clone(),
                            diff_summary: diff.summary(),
                        });
                    }
                }
                Err(Error::Unsupported(_)) => {
                    report.skipped_expensive += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
    report.elapsed = start.elapsed();
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{baseline, topk};
    use crate::framework::FrameworkConfig;
    use crate::generate::{GenConfig, Strategy};
    use crate::suite::{build_graph, generate_suite, singleton_targets};

    #[test]
    fn correct_rules_yield_no_bugs() {
        let fw = Framework::new(&FrameworkConfig::default()).unwrap();
        let targets = singleton_targets(&fw, 5);
        let suite = generate_suite(
            &fw,
            targets,
            2,
            Strategy::Pattern,
            &GenConfig {
                pad_ops: 2,
                ..GenConfig::default()
            },
        )
        .unwrap();
        let graph = build_graph(&fw, &suite).unwrap();
        let inst = Instance::from_graph(&graph);
        for sol in [baseline(&inst).unwrap(), topk(&inst).unwrap()] {
            let report =
                execute_solution(&fw, &suite, &inst, &sol, &ExecConfig::default()).unwrap();
            assert!(report.passed(), "false positives: {:?}", report.bugs);
            assert!(report.validations > 0);
            assert!(report.executions > 0);
        }
    }
}
