//! Multiset comparison of query results.
//!
//! Correctness validation (paper §2.3) executes `Plan(q)` and
//! `Plan(q, ¬{r})` and checks that "the results of the query are identical".
//! SQL results without a top-level ORDER BY are *bags*, so two equivalent
//! plans may emit rows in different orders; we therefore compare results as
//! multisets under the total value order from [`crate::value::Value::total_cmp`].

use crate::value::{Row, Value};
use std::cmp::Ordering;

/// Total order over rows: lexicographic under `Value::total_cmp`, shorter
/// rows first (row lengths only differ when schemas differ, which is itself
/// reported as a mismatch).
pub fn row_total_cmp(a: &Row, b: &Row) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        let c = x.total_cmp(y);
        if c != Ordering::Equal {
            return c;
        }
    }
    a.len().cmp(&b.len())
}

/// A human-readable account of how two result multisets differ.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultDiff {
    /// Rows present in the left result but missing (or under-counted) in the
    /// right, with multiplicity delta.
    pub only_left: Vec<(Row, usize)>,
    /// Rows present in the right result but missing in the left.
    pub only_right: Vec<(Row, usize)>,
    /// Row counts of the two inputs.
    pub left_rows: usize,
    pub right_rows: usize,
}

impl ResultDiff {
    /// True iff the two multisets were equal.
    pub fn is_empty(&self) -> bool {
        self.only_left.is_empty() && self.only_right.is_empty()
    }

    /// One-line summary suitable for a bug report.
    pub fn summary(&self) -> String {
        if self.is_empty() {
            return "results identical".to_string();
        }
        let show = |side: &[(Row, usize)]| -> String {
            side.iter()
                .take(3)
                .map(|(r, n)| {
                    let cells: Vec<String> = r.iter().map(Value::to_string).collect();
                    format!("{}x[{}]", n, cells.join(", "))
                })
                .collect::<Vec<_>>()
                .join("; ")
        };
        format!(
            "results differ: {} vs {} rows; only-left: {}; only-right: {}",
            self.left_rows,
            self.right_rows,
            show(&self.only_left),
            show(&self.only_right)
        )
    }
}

fn normalize(rows: &[Row]) -> Vec<&Row> {
    let mut v: Vec<&Row> = rows.iter().collect();
    v.sort_by(|a, b| row_total_cmp(a, b));
    v
}

/// Compares two results as multisets and reports the difference.
pub fn diff_multisets(left: &[Row], right: &[Row]) -> ResultDiff {
    let l = normalize(left);
    let r = normalize(right);
    let mut only_left: Vec<(Row, usize)> = Vec::new();
    let mut only_right: Vec<(Row, usize)> = Vec::new();

    let (mut i, mut j) = (0usize, 0usize);
    // Merge-walk the two sorted row lists, grouping equal runs.
    while i < l.len() || j < r.len() {
        if i < l.len() && j < r.len() {
            match row_total_cmp(l[i], r[j]) {
                Ordering::Equal => {
                    let row = l[i];
                    let mut li = 0;
                    while i < l.len() && row_total_cmp(l[i], row) == Ordering::Equal {
                        li += 1;
                        i += 1;
                    }
                    let mut rj = 0;
                    while j < r.len() && row_total_cmp(r[j], row) == Ordering::Equal {
                        rj += 1;
                        j += 1;
                    }
                    match li.cmp(&rj) {
                        Ordering::Greater => only_left.push((row.clone(), li - rj)),
                        Ordering::Less => only_right.push((row.clone(), rj - li)),
                        Ordering::Equal => {}
                    }
                }
                Ordering::Less => {
                    let row = l[i];
                    let mut n = 0;
                    while i < l.len() && row_total_cmp(l[i], row) == Ordering::Equal {
                        n += 1;
                        i += 1;
                    }
                    only_left.push((row.clone(), n));
                }
                Ordering::Greater => {
                    let row = r[j];
                    let mut n = 0;
                    while j < r.len() && row_total_cmp(r[j], row) == Ordering::Equal {
                        n += 1;
                        j += 1;
                    }
                    only_right.push((row.clone(), n));
                }
            }
        } else if i < l.len() {
            let row = l[i];
            let mut n = 0;
            while i < l.len() && row_total_cmp(l[i], row) == Ordering::Equal {
                n += 1;
                i += 1;
            }
            only_left.push((row.clone(), n));
        } else {
            let row = r[j];
            let mut n = 0;
            while j < r.len() && row_total_cmp(r[j], row) == Ordering::Equal {
                n += 1;
                j += 1;
            }
            only_right.push((row.clone(), n));
        }
    }

    ResultDiff {
        only_left,
        only_right,
        left_rows: left.len(),
        right_rows: right.len(),
    }
}

/// True iff the two results are equal as multisets.
///
/// ```
/// use ruletest_common::{multisets_equal, Value};
/// let a = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
/// let b = vec![vec![Value::Int(2)], vec![Value::Int(1)]];
/// assert!(multisets_equal(&a, &b)); // order-insensitive
/// assert!(!multisets_equal(&a, &a[..1]));
/// ```
pub fn multisets_equal(left: &[Row], right: &[Row]) -> bool {
    if left.len() != right.len() {
        return false;
    }
    diff_multisets(left, right).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(vals: &[i64]) -> Row {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn equal_ignores_order() {
        let a = vec![r(&[1, 2]), r(&[3, 4]), r(&[1, 2])];
        let b = vec![r(&[3, 4]), r(&[1, 2]), r(&[1, 2])];
        assert!(multisets_equal(&a, &b));
    }

    #[test]
    fn multiplicity_matters() {
        let a = vec![r(&[1]), r(&[1])];
        let b = vec![r(&[1])];
        assert!(!multisets_equal(&a, &b));
        let d = diff_multisets(&a, &b);
        assert_eq!(d.only_left, vec![(r(&[1]), 1)]);
        assert!(d.only_right.is_empty());
    }

    #[test]
    fn nulls_compare_equal_in_multiset() {
        let a = vec![vec![Value::Null, Value::Int(1)]];
        let b = vec![vec![Value::Null, Value::Int(1)]];
        assert!(multisets_equal(&a, &b));
    }

    #[test]
    fn disjoint_rows_reported_on_both_sides() {
        let a = vec![r(&[1]), r(&[2])];
        let b = vec![r(&[3])];
        let d = diff_multisets(&a, &b);
        assert_eq!(d.only_left.len(), 2);
        assert_eq!(d.only_right.len(), 1);
        assert!(!d.is_empty());
        assert!(d.summary().contains("results differ"));
    }

    #[test]
    fn empty_results_are_equal() {
        assert!(multisets_equal(&[], &[]));
        assert!(diff_multisets(&[], &[]).is_empty());
    }

    #[test]
    fn summary_of_equal_results() {
        let d = diff_multisets(&[r(&[1])], &[r(&[1])]);
        assert_eq!(d.summary(), "results identical");
    }

    #[test]
    fn row_cmp_is_lexicographic() {
        assert_eq!(row_total_cmp(&r(&[1, 2]), &r(&[1, 3])), Ordering::Less);
        assert_eq!(row_total_cmp(&r(&[2]), &r(&[1, 9])), Ordering::Greater);
        assert_eq!(row_total_cmp(&r(&[1]), &r(&[1, 0])), Ordering::Less);
    }

    #[test]
    fn mixed_types_and_strings() {
        let a = vec![vec![Value::Str("x".into()), Value::Bool(true)]];
        let b = vec![vec![Value::Str("x".into()), Value::Bool(false)]];
        assert!(!multisets_equal(&a, &b));
    }
}
