//! Error handling shared across the workspace.

use std::fmt;

/// Workspace-wide error type.
///
/// Variants are coarse-grained on purpose: the framework is a testing tool,
/// so errors carry a human-readable message plus enough classification for
/// callers that need to branch (e.g. the generator retries on `Unsupported`,
/// but propagates `Internal`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A malformed logical tree, expression, or plan (type error, unknown
    /// column, arity mismatch, ...).
    Invalid(String),
    /// Referencing a catalog object that does not exist.
    NotFound(String),
    /// A feature intentionally outside the supported dialect/operator set.
    Unsupported(String),
    /// Execution abandoned because it exceeded a resource budget. Distinct
    /// from `Unsupported`: the plan is runnable, just too expensive under
    /// the configured limits.
    Budget(String),
    /// A cooperative wall-clock deadline expired mid-computation (see
    /// `supervise::Deadline`). Distinct from `Budget`: the work abandoned
    /// was bounded by *time*, not by a unit-counted resource cap, so the
    /// result says nothing about how expensive the input actually is.
    Timeout(String),
    /// SQL text that failed to tokenize or parse.
    Parse(String),
    /// An invariant violation inside the framework itself — always a bug.
    Internal(String),
}

impl Error {
    /// Shorthand constructor for [`Error::Invalid`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::Invalid(msg.into())
    }

    /// Shorthand constructor for [`Error::NotFound`].
    pub fn not_found(msg: impl Into<String>) -> Self {
        Error::NotFound(msg.into())
    }

    /// Shorthand constructor for [`Error::Unsupported`].
    pub fn unsupported(msg: impl Into<String>) -> Self {
        Error::Unsupported(msg.into())
    }

    /// Shorthand constructor for [`Error::Budget`].
    pub fn budget(msg: impl Into<String>) -> Self {
        Error::Budget(msg.into())
    }

    /// Shorthand constructor for [`Error::Timeout`].
    pub fn timeout(msg: impl Into<String>) -> Self {
        Error::Timeout(msg.into())
    }

    /// Shorthand constructor for [`Error::Parse`].
    pub fn parse(msg: impl Into<String>) -> Self {
        Error::Parse(msg.into())
    }

    /// Shorthand constructor for [`Error::Internal`].
    pub fn internal(msg: impl Into<String>) -> Self {
        Error::Internal(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Invalid(m) => write!(f, "invalid: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Unsupported(m) => write!(f, "unsupported: {m}"),
            Error::Budget(m) => write!(f, "budget exceeded: {m}"),
            Error::Timeout(m) => write!(f, "deadline exceeded: {m}"),
            Error::Parse(m) => write!(f, "parse error: {m}"),
            Error::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for Error {}

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_classification_and_message() {
        assert_eq!(Error::invalid("bad tree").to_string(), "invalid: bad tree");
        assert_eq!(Error::not_found("t9").to_string(), "not found: t9");
        assert_eq!(
            Error::unsupported("window functions").to_string(),
            "unsupported: window functions"
        );
        assert_eq!(Error::parse("eof").to_string(), "parse error: eof");
        assert_eq!(
            Error::timeout("optimize").to_string(),
            "deadline exceeded: optimize"
        );
        assert_eq!(Error::internal("memo").to_string(), "internal error: memo");
    }

    #[test]
    fn errors_are_comparable_for_test_assertions() {
        assert_eq!(Error::invalid("x"), Error::Invalid("x".to_string()));
        assert_ne!(Error::invalid("x"), Error::parse("x"));
    }
}
